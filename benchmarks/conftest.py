"""Benchmark-suite helpers.

Each benchmark regenerates one paper table/figure through the experiment
harness, records its runtime with pytest-benchmark, saves the result JSON
under ``benchmarks/results/`` and asserts the headline shape.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_experiment():
    """Run an experiment once under the benchmark timer, save + print it."""

    def runner(benchmark, experiment_fn, **kwargs):
        result = benchmark.pedantic(
            lambda: experiment_fn(**kwargs), rounds=1, iterations=1
        )
        result.save_json(RESULTS_DIR)
        print()
        print(result.report())
        return result

    return runner
