"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.bench.ablation_cache import run as ablation_cache
from repro.bench.ablation_parallelism import run_cache_sweep, run_k_sweep
from repro.bench.ablation_sampler import run as ablation_sampler


def test_ablation_sampler(benchmark, record_experiment):
    """Streaming WRS wins on the FPGA; table methods hold on the CPU."""
    result = record_experiment(benchmark, ablation_sampler)
    for row in result.rows:
        assert row["fpga_wrs_over_table"] > 1.5, row
        # CPU-side PWRS is no silver bullet (paper Section 3.2).
        assert row["cpu_itx_over_pwrs"] < 1.5, row


def test_ablation_cache_policies(benchmark, record_experiment):
    """Degree-aware beats every recency policy; reordering needs prework."""
    result = record_experiment(benchmark, ablation_cache)
    by_policy = {row["policy"]: row for row in result.rows}
    dac = by_policy["degree-aware"]["hit_ratio"]
    for recency in ("direct-mapped", "lru", "fifo"):
        assert dac > by_policy[recency]["hit_ratio"], recency
    reorder = by_policy["degree-reorder+pin"]
    assert reorder["preprocessing_s"] > 0.0
    assert reorder["hit_ratio"] >= dac  # the offline upper bound


def test_ablation_k_sweep(benchmark, record_experiment):
    """Sampler binds at small k; memory binds from moderate k on."""
    result = record_experiment(benchmark, run_k_sweep)
    assert result.rows[0]["bottleneck"] == "sampler"
    assert result.rows[-1]["bottleneck"] == "memory"
    speedups = [row["speedup_vs_k1"] for row in result.rows]
    assert max(speedups) > 2.0
    # Returns flatten once memory binds.
    assert speedups[-1] < speedups[-2] * 1.2


def test_ablation_cache_size(benchmark, record_experiment):
    """Hit ratio is monotone in capacity; kernel time monotone down."""
    result = record_experiment(benchmark, run_cache_sweep)
    hits = [row["hit_ratio"] for row in result.rows]
    cycles = [row["kernel_cycles"] for row in result.rows]
    assert all(a <= b + 1e-9 for a, b in zip(hits, hits[1:]))
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))


def test_ablation_design_space(benchmark, record_experiment):
    """The Pareto frontier prefers dynamic bursts and full channel use."""
    from repro.bench.ablation_dse import run as ablation_dse

    result = record_experiment(benchmark, ablation_dse)
    assert result.rows, "frontier must be non-empty"
    for row in result.rows:
        assert row["fits"]
    # The fastest frontier point uses all four channels and dynamic bursts.
    fastest = max(result.rows, key=lambda r: float(r["steps_per_s"]))
    assert "x4" in fastest["config"]
    assert "b1+b0" not in fastest["config"]
