"""Figure 10 — WRS Sampler throughput vs parallelism and stream length."""

import pytest

from repro.bench.fig10_wrs_throughput import run_parallelism, run_stream_lengths


def test_fig10a_parallelism(benchmark, record_experiment):
    result = record_experiment(benchmark, run_parallelism)
    rates = [float(row["measured_items_per_s"]) for row in result.rows]
    ks = [row["k"] for row in result.rows]
    # Linear until k = 16 (channel saturation), flat afterwards.
    for i in range(len(ks) - 1):
        if ks[i + 1] <= 16:
            assert rates[i + 1] == pytest.approx(
                rates[i] * ks[i + 1] / ks[i], rel=0.15
            )
    saturated = [r for k, r in zip(ks, rates) if k >= 16]
    assert max(saturated) == pytest.approx(min(saturated), rel=0.01)


def test_fig10b_stream_lengths(benchmark, record_experiment):
    result = record_experiment(benchmark, run_stream_lengths)
    fractions = [row["fraction_of_peak"] for row in result.rows]
    # Monotone ramp to peak; short streams only slightly below.
    assert fractions == sorted(fractions)
    assert fractions[0] > 0.5
    assert fractions[-1] == pytest.approx(1.0, abs=0.02)
