"""Figure 11 — degree-aware cache vs direct-mapped cache miss ratios."""

from repro.bench.fig11_cache_miss import run


def test_fig11_cache_miss(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    cache_bits = 12
    for row in result.rows:
        scale = int(row["vertices"].split("^")[1])
        if scale <= cache_bits:
            # Everything fits: only cold misses remain.
            assert row["dac_miss_ratio"] < 0.15, row
        else:
            # Beyond capacity the degree-aware policy wins clearly.
            assert row["dac_miss_ratio"] < row["dmc_miss_ratio"], row
    largest = result.rows[-1]
    assert largest["dmc_miss_ratio"] > 0.9  # DMC approaches 100 %
    assert largest["dac_miss_ratio"] < largest["dmc_miss_ratio"] - 0.05
