"""Figure 12 — dynamic burst strategies vs the b1+b0 baseline."""

from repro.bench.fig12_burst_strategies import run


def test_fig12_burst_strategies(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    for row in result.rows:
        # The paper's winner delivers a clear speedup over short-only...
        assert row["b1+b32"] > 1.4, row
        # ...and tiny long bursts are the worst strategy (engine overhead
        # not amortized).
        assert row["b1+b2"] < 1.0, row
        assert row["b1+b2"] == min(v for k, v in row.items() if k != "graph"), row
