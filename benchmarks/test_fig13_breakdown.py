"""Figure 13 — ablation breakdown of WRS, DYB and DAC."""

from repro.bench.fig13_breakdown import run


def test_fig13_breakdown(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    for row in result.rows:
        # WRS (pipelined streaming sampling) contributes the most: the
        # paper reports losing 41-79% without it.
        assert 0.2 < row["w/o WRS"] < 0.7, row
        # DAC is the smallest contributor (single-digit percent).
        assert row["w/o DAC"] > 0.9, row
        assert row["w/o WRS"] < row["w/o DAC"], row
    # DYB helps MetaPath more than Node2Vec (paper Section 6.4).
    metapath = [r["w/o DYB"] for r in result.rows if r["app"] == "MetaPath"]
    node2vec = [r["w/o DYB"] for r in result.rows if r["app"] == "Node2Vec"]
    assert sum(metapath) / len(metapath) < sum(node2vec) / len(node2vec)
