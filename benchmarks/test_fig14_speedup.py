"""Figure 14 — the headline: LightRW vs ThunderRW speedup per graph."""

from repro.bench.fig14_speedup import run


def test_fig14_speedup(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    speedups = {(row["graph"], row["app"]): row["speedup"] for row in result.rows}
    # LightRW wins on every workload (paper: 6.27-9.55x MetaPath,
    # 5.17-9.10x Node2Vec; our modeled band is wider at the low end).
    assert all(value > 1.5 for value in speedups.values()), speedups
    assert max(speedups.values()) < 20.0
    # The youtube graph shows the smallest speedup of its application
    # (it fits the CPU's cache).
    for app in ("MetaPath", "Node2Vec"):
        per_app = {g: s for (g, a), s in speedups.items() if a == app}
        assert min(per_app, key=per_app.get) == "youtube", per_app
    # ThunderRW w/ PWRS is mixed: no dramatic win anywhere (paper: 1.84x
    # best case, degradations elsewhere).
    pwrs = [row["thunderrw_w_pwrs"] for row in result.rows]
    assert all(0.4 < value < 2.2 for value in pwrs), pwrs
