"""Figure 15 — query latency distributions: LightRW lower and tighter."""

from repro.bench.fig15_latency import run


def test_fig15_latency(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    by_key = {(r["graph"], r["app"], r["system"]): r for r in result.rows}
    for (graph, app, system), row in by_key.items():
        if system != "LightRW":
            continue
        thunder = by_key[(graph, app, "ThunderRW")]
        # LightRW's median latency is lower...
        assert row["median_us"] < thunder["median_us"], (graph, app)
        # ...and its interquartile spread is tighter relative to the median.
        light_iqr = (row["q3_us"] - row["q1_us"]) / max(row["median_us"], 1e-9)
        thunder_iqr = (thunder["q3_us"] - thunder["q1_us"]) / max(
            thunder["median_us"], 1e-9
        )
        assert light_iqr <= thunder_iqr * 1.5, (graph, app)
