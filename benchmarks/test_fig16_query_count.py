"""Figure 16 — throughput vs number of queries."""

import pytest

from repro.bench.fig16_query_count import run


def test_fig16_query_count(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    for app in ("MetaPath", "Node2Vec"):
        rows = [r for r in result.rows if r["app"] == app]
        light = [float(r["lightrw_steps_per_s"]) for r in rows]
        speedups = [r["speedup"] for r in rows]
        # LightRW throughput is nearly constant across query counts.
        assert max(light) / min(light) < 1.6, (app, light)
        # ThunderRW's constant initialization craters small batches: the
        # speedup is largest at the smallest batch (paper: up to 75x).
        assert speedups[0] == max(speedups), (app, speedups)
        assert speedups[0] > 3 * speedups[-1], (app, speedups)
