"""Figure 17 — throughput vs query length: stable advantage."""

from repro.bench.fig17_query_length import run


def test_fig17_query_length(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    for app in ("MetaPath", "Node2Vec"):
        rows = [r for r in result.rows if r["app"] == app]
        speedups = [r["speedup"] for r in rows]
        light = [float(r["lightrw_steps_per_s"]) for r in rows]
        # Both systems deliver roughly constant throughput, so the
        # speedup band is narrow across lengths 10-80 (paper: ~10x
        # MetaPath, 8.3-9.3x Node2Vec).
        assert max(speedups) / min(speedups) < 1.7, (app, speedups)
        assert max(light) / min(light) < 1.7, (app, light)
        assert min(speedups) > 1.5, (app, speedups)
