"""Figure 18 — link prediction case study time breakdown."""

from repro.bench.fig18_link_prediction import run


def test_fig18_link_prediction(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    snap = {k: float(v) for k, v in result.rows[0].items() if k != "deployment"}
    accelerated = {k: float(v) for k, v in result.rows[1].items() if k != "deployment"}
    # The Node2Vec walk dominates plain SNAP's pipeline.
    assert snap["walk"] == max(snap["walk"], snap["learning"], snap["scoring"])
    # Accelerating the walk shrinks end-to-end time substantially (paper:
    # roughly halved).
    speedup = snap["total"] / accelerated["total"]
    assert 1.3 < speedup < 4.0, speedup
    # Transfer is negligible relative to the total (paper Section 6.7).
    assert accelerated["transfer"] < 0.05 * accelerated["total"]
