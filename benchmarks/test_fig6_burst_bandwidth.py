"""Figure 6 — DRAM bandwidth rises with burst length; valid-data ratio falls."""

import pytest

from repro.bench.fig06_burst_bandwidth import run


def test_fig6_burst_bandwidth(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    bandwidths = [row["bandwidth_gbps"] for row in result.rows]
    ratios = [row["valid_data_ratio"] for row in result.rows]
    assert bandwidths == sorted(bandwidths)
    assert ratios == sorted(ratios, reverse=True)
    # The measured peak of the paper's platform.
    assert bandwidths[-1] == pytest.approx(17.57, rel=0.01)
    # Short bursts leave most of the bandwidth unused.
    assert bandwidths[0] < 0.25 * bandwidths[-1]
