"""Future-work studies (paper Section 8), modeled."""

from repro.bench.future_work import run_distributed, run_hbm


def test_future_distributed(benchmark, record_experiment):
    result = record_experiment(benchmark, run_distributed)
    hash_rows = [row for row in result.rows if row["partitioner"] == "hash"]
    speedups = [row["speedup"] for row in hash_rows]
    fractions = [row["migration_fraction"] for row in hash_rows]
    # Scaling helps but sub-linearly: walker migration loads the network.
    assert speedups == sorted(speedups)
    assert speedups[-1] > 1.5
    assert speedups[-1] < hash_rows[-1]["boards"] * 0.8
    assert fractions == sorted(fractions)
    # The locality-aware partitioner migrates less than hash at the same
    # board count and is at least as fast.
    boards = hash_rows[-1]["boards"]
    greedy = next(r for r in result.rows if r["partitioner"].startswith("greedy"))
    assert greedy["migration_fraction"] < hash_rows[-1]["migration_fraction"]
    assert greedy["speedup"] >= hash_rows[-1]["speedup"] * 0.95


def test_future_hbm(benchmark, record_experiment):
    result = record_experiment(benchmark, run_hbm)
    for row in result.rows:
        u250 = float(row["U250 (4x DDR4)"])
        hbm16 = float(row["U280 (16x HBM)"])
        hbm32 = float(row["U280 (32x HBM)"])
        assert hbm16 > u250, row
        assert hbm32 > hbm16, row


def test_energy_extended(benchmark, record_experiment):
    from repro.bench.energy_capacity import run_energy

    result = record_experiment(benchmark, run_energy)
    for row in result.rows:
        assert row["lightrw_nj_per_step"] < row["thunderrw_nj_per_step"], row
        assert row["energy_improvement"] > 3.0, row
        # EDP compounds the speedup on top of the energy win.
        assert row["edp_improvement"] > row["energy_improvement"], row


def test_future_capacity(benchmark, record_experiment):
    from repro.bench.energy_capacity import run_capacity

    result = record_experiment(benchmark, run_capacity)
    by_graph = {row["graph"]: row for row in result.rows}
    assert by_graph["livejournal (paper scale)"]["replication"] == "per-channel"
    assert by_graph["uk2002 (paper scale)"]["boards"] == 1
    terabyte = by_graph["terabyte-scale"]
    assert terabyte["replication"] == "partitioned"
    assert terabyte["boards"] >= 30


def test_realtime_serving(benchmark, record_experiment):
    """Section 6.5.2's real-time claim under open-loop load."""
    from repro.bench.realtime import run as realtime

    result = record_experiment(benchmark, realtime)
    by_system = {}
    for row in result.rows:
        by_system.setdefault(row["system"], []).append(row)
    light = by_system["LightRW"]
    thunder = by_system["ThunderRW"]
    # At every load level LightRW responds faster...
    for l_row, t_row in zip(light, thunder):
        assert l_row["mean_response_us"] < t_row["mean_response_us"]
        assert l_row["p99_response_us"] < t_row["p99_response_us"]
    # ...and it sustains a much higher arrival rate at the same load.
    assert float(light[-1]["arrival_qps"]) > 3 * float(thunder[-1]["arrival_qps"])
    # Its curve is flatter: relative growth from 10% to 90% load.
    light_growth = light[-1]["mean_response_us"] / light[0]["mean_response_us"]
    thunder_growth = thunder[-1]["mean_response_us"] / thunder[0]["mean_response_us"]
    assert light_growth <= thunder_growth * 1.25


def test_roofline(benchmark, record_experiment):
    """Every GDRW workload is memory-bound, left of the ridge point."""
    from repro.bench.roofline_bench import run as roofline

    result = record_experiment(benchmark, roofline)
    for row in result.rows:
        assert row["bound"] == "memory", row
        efficiency = float(row["efficiency"].rstrip("%"))
        assert 5.0 < efficiency <= 105.0, row
