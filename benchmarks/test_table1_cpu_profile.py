"""Table 1 — ThunderRW top-down profile (LLC miss / memory bound / retiring)."""

from repro.bench.table1_cpu_profile import run


def test_table1_cpu_profile(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    for row in result.rows:
        miss = float(row["llc_miss"].rstrip("%"))
        memory_bound = float(row["memory_bound"].rstrip("%"))
        retiring = float(row["retiring"].rstrip("%"))
        # Paper bands: LLC miss 58-77%, memory bound 31-60%, retiring 8-34%.
        assert 40.0 <= miss <= 95.0, row
        assert 25.0 <= memory_bound <= 75.0, row
        assert 5.0 <= retiring <= 45.0, row
