"""Table 2 — dataset inventory: the stand-ins match the originals' shape."""

from repro.bench.table2_datasets import run


def test_table2_datasets(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    assert len(result.rows) == 5
    for row in result.rows:
        # Average degree preserved within 35%.
        assert abs(row["standin_D"] - row["paper_D"]) / row["paper_D"] < 0.35, row
