"""Table 3 — power efficiency improvement."""

from repro.bench.table3_power import run


def test_table3_power(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    for row in result.rows:
        low, high = (
            float(part.rstrip("x")) for part in row["efficiency_improvement"].split("~")
        )
        # Paper: 15-26x (MetaPath), 16-24x (Node2Vec).  Our modeled band
        # tracks the modeled speedups, so allow a wider envelope while
        # requiring a clear order-of-magnitude efficiency win at the top.
        assert low > 3.0, row
        assert high > 12.0, row
        assert high < 60.0, row
