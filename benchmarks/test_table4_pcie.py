"""Table 4 — PCIe transfer share of end-to-end time."""

from repro.bench.table4_pcie import run
from repro.graph.datasets import DATASET_ORDER


def _fraction(cell: str) -> float:
    return float(cell.split("%")[0]) / 100.0


def test_table4_pcie(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    metapath, node2vec = result.rows
    for name in DATASET_ORDER:
        mp = _fraction(metapath[name])
        n2v = _fraction(node2vec[name])
        # MetaPath's 5-step queries leave the transfer visible (paper:
        # 15.3-33.5%); Node2Vec's 80-step walks amortize it (paper <1.1%).
        assert 0.03 < mp < 0.6, (name, mp)
        assert n2v < 0.12, (name, n2v)
        assert n2v < mp, name
