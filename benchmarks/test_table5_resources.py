"""Table 5 — FPGA resource utilization of the two builds."""

import pytest

from repro.bench.table5_resources import run


def test_table5_resources(benchmark, record_experiment):
    result = record_experiment(benchmark, run)
    for row in result.rows:
        for column in ("LUTs", "REGs", "BRAMs", "DSPs"):
            ours = float(row[column].split("%")[0])
            paper = float(row[column].split("paper ")[1].rstrip(")%"))
            assert ours == pytest.approx(paper, abs=1.0), (row["app"], column)
    metapath, node2vec = result.rows
    # The paper's contrast: MetaPath's build is logic-heavy, Node2Vec's is
    # BRAM-heavy (the previous-stream membership buffer).
    assert float(metapath["LUTs"].split("%")[0]) > float(node2vec["LUTs"].split("%")[0])
    assert float(node2vec["BRAMs"].split("%")[0]) > float(metapath["BRAMs"].split("%")[0])
