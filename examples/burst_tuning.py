#!/usr/bin/env python
"""Tune the dynamic burst engine for your own graph.

Sweeps burst strategies over a user-chosen workload (the Figure 12
methodology as a reusable tool) and reports the winner plus the valid-data
and bandwidth trade-off behind it.

Usage:  python examples/burst_tuning.py [dataset] [scale]
"""

import sys

from repro import LightRWConfig, MetaPathWalk, load_dataset
from repro.fpga.burst import SHORT_ONLY, BurstStrategy
from repro.fpga.perfmodel import FPGAPerfModel
from repro.graph.stats import degree_stats
from repro.walks.stepper import PWRSSampler, run_walks


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "orkut"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    graph = load_dataset(dataset, scale_divisor=scale)
    print(f"graph: {graph}")
    stats = degree_stats(graph)
    print(f"degree profile: mean {stats.mean:.1f}, median {stats.median:.0f}, "
          f"max {stats.maximum}, stationary mean {stats.stationary_mean_degree:.0f}")

    walk = MetaPathWalk([0, 1, 2, 3])
    starts = graph.nonzero_degree_vertices()[:1024]
    session = run_walks(graph, starts, 5, walk, PWRSSampler(16, 7))

    print(f"\n{'strategy':<10}{'kernel cycles':>15}{'speedup':>10}"
          f"{'valid data':>12}{'bandwidth':>12}")
    baseline = None
    best = (None, 0.0)
    for long_beats in (0, 2, 4, 8, 16, 32, 64):
        strategy = (
            SHORT_ONLY if long_beats == 0
            else BurstStrategy(short_beats=1, long_beats=long_beats)
        )
        config = LightRWConfig(strategy=strategy).scaled(scale)
        breakdown = FPGAPerfModel(config, walk).evaluate(session, record_latency=False)
        if baseline is None:
            baseline = breakdown.kernel_cycles
        speedup = baseline / breakdown.kernel_cycles
        if speedup > best[1]:
            best = (strategy.label, speedup)
        print(f"{strategy.label:<10}{breakdown.kernel_cycles:>15.0f}"
              f"{speedup:>10.2f}{breakdown.valid_ratio:>12.1%}"
              f"{breakdown.achieved_bandwidth_gbps:>10.2f} GB/s")

    print(f"\nbest strategy for {dataset}: {best[0]} ({best[1]:.2f}x over b1+b0)")
    print("the paper's b1+b32 wins on hub-heavy graphs; median-degree-bound "
          "workloads peak earlier (see EXPERIMENTS.md, Figure 12)")


if __name__ == "__main__":
    main()
