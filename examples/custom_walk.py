#!/usr/bin/env python
"""Extending LightRW with a custom GDRW: a degree-penalized walk.

The accelerator's Weight Updater is application-specific hardware; in this
library any :class:`~repro.walks.base.WalkAlgorithm` subclass plays that
role.  This example defines a walk that penalizes hubs
(``w^t = w* / deg(b)^beta`` — a load-balancing walk used in crawling),
validates its sampling distribution against the exact law with the
built-in chi-square tooling, and runs it on the modeled accelerator.

Usage:  python examples/custom_walk.py
"""

import numpy as np

from repro import LightRW, load_dataset
from repro.walks.base import StepContext, WalkAlgorithm
from repro.walks.validation import (
    chi_square_step_test,
    empirical_step_distribution,
    exact_step_distribution,
)


class DegreePenalizedWalk(WalkAlgorithm):
    """``w^t(a, b) = w*(a, b) / deg(b)^beta`` — hub-avoiding exploration."""

    name = "degree-penalized"

    def __init__(self, beta: float = 1.0) -> None:
        if beta < 0:
            raise ValueError(f"beta must be non-negative, got {beta}")
        self.beta = beta

    def dynamic_weights(self, ctx: StepContext) -> np.ndarray:
        destination_degrees = ctx.graph.degrees[ctx.dst].astype(np.float64)
        penalty = np.maximum(destination_degrees, 1.0) ** self.beta
        return ctx.static_weights / penalty


def main() -> None:
    graph = load_dataset("youtube", scale_divisor=512)
    print(f"graph: {graph}")
    walk = DegreePenalizedWalk(beta=1.0)

    # 1. Validate the sampler against the exact transition law.
    hub = int(np.argmax(graph.degrees))
    samples = empirical_step_distribution(graph, walk, hub, n_samples=4000, seed=3)
    statistic, p_value = chi_square_step_test(graph, walk, hub, samples)
    print(f"\nchi-square of sampled steps vs exact law at the top hub "
          f"(degree {graph.degree(hub)}): p = {p_value:.3f}")

    # 2. Run it on the accelerator like any built-in walk.
    engine = LightRW(graph, hardware_scale=512, seed=3)
    result = engine.run(walk, n_steps=30, max_sampled_queries=512)
    print(f"ran {result.num_queries} queries: "
          f"{result.steps_per_second:.3g} steps/s modeled")

    # 3. Show the behavioural difference vs an unpenalized walk.
    from repro.walks import StaticWalk

    plain = engine.run(StaticWalk(), n_steps=30, max_sampled_queries=512)

    def mean_visited_degree(run):
        visited = run.paths[run.paths >= 0]
        return graph.degrees[visited].mean()

    print(f"\nmean degree of visited vertices:")
    print(f"  static walk:           {mean_visited_degree(plain):8.1f}")
    print(f"  degree-penalized walk: {mean_visited_degree(result):8.1f}  "
          f"(hubs avoided)")

    exact = exact_step_distribution(graph, walk, hub)
    top_neighbor = int(np.argmax(exact))
    print(f"\nmost likely step from the hub goes to vertex {top_neighbor} "
          f"(degree {graph.degree(top_neighbor)}, p = {exact[top_neighbor]:.3f})")


if __name__ == "__main__":
    main()
