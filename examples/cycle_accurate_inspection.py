#!/usr/bin/env python
"""Peek inside the accelerator with the cycle-accurate backend.

Runs a small MetaPath batch on both FPGA backends, verifies the walks are
bit-identical, and prints the per-instance hardware counters the clocked
simulator collects (DRAM occupancy, cache hits, burst efficiency).

Usage:  python examples/cycle_accurate_inspection.py
"""

import numpy as np

from repro import LightRW, LightRWConfig, MetaPathWalk, load_dataset, make_queries

SCALE = 1024


def main() -> None:
    graph = load_dataset("youtube", scale_divisor=SCALE)
    print(f"graph: {graph}")

    config = LightRWConfig(n_instances=2, max_inflight=16)
    walk = MetaPathWalk([0, 1, 2, 3])
    starts = make_queries(graph, n_queries=64, seed=9)

    cycle = LightRW(graph, config=config, backend="fpga-cycle",
                    hardware_scale=SCALE, seed=9)
    model = LightRW(graph, config=config, backend="fpga-model",
                    hardware_scale=SCALE, seed=9)

    print("\nsimulating cycle by cycle ...")
    r_cycle = cycle.run(walk, n_steps=5, starts=starts)
    r_model = model.run(walk, n_steps=5, starts=starts)

    identical = all(
        np.array_equal(
            r_cycle.paths[q, : r_cycle.lengths[q] + 1],
            r_model.paths[q, : r_model.lengths[q] + 1],
        )
        for q in range(starts.size)
    )
    print(f"walks bit-identical across backends: {identical}")
    print(f"cycle-accurate kernel: {r_cycle.breakdown.cycles} cycles "
          f"({r_cycle.kernel_s * 1e6:.1f} us at 300 MHz)")
    print(f"analytic model kernel: {r_model.breakdown.kernel_cycles:.0f} cycles "
          f"({r_model.kernel_s * 1e6:.1f} us)")

    print("\nper-instance hardware counters (cycle backend):")
    for index, stats in enumerate(r_cycle.breakdown.instances):
        if stats.cycles == 0:
            continue
        print(f"  instance {index}: {stats.cycles} cycles, "
              f"DRAM busy {stats.dram_busy_cycles} "
              f"({stats.dram_busy_cycles / stats.cycles:.0%}), "
              f"{stats.dram_requests} requests, "
              f"cache hit {stats.cache_hit_ratio:.1%}, "
              f"burst valid-data {stats.valid_ratio:.1%}")

    print("\npipeline utilization (busy fraction per module):")
    for name, value in sorted(
        r_cycle.breakdown.utilization_report().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:<16}{value:6.1%}")

    stats = r_cycle.query_latency_s
    print(f"\nper-query latency: median {np.median(stats) * 1e6:.1f} us, "
          f"max {stats.max() * 1e6:.1f} us")


if __name__ == "__main__":
    main()
