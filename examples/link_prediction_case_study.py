#!/usr/bin/env python
"""The paper's Section 6.7 case study: link prediction with LightRW.

Runs the full SNAP-style pipeline on the livejournal stand-in — hold out
edges, walk, embed, score — and prints the Figure 18 time breakdown for
plain SNAP and SNAP with LightRW-accelerated walks.

Usage:  python examples/link_prediction_case_study.py
"""

from repro import load_dataset
from repro.apps import LinkPredictionPipeline

SCALE = 512


def main() -> None:
    graph = load_dataset("livejournal", scale_divisor=SCALE)
    print(f"graph: {graph}")

    pipeline = LinkPredictionPipeline(
        graph, hardware_scale=SCALE, walk_length=40, embedding_dim=32, seed=11
    )
    print("running the pipeline (hold out edges, walk, embed, score) ...")
    report = pipeline.run(
        holdout_fraction=0.1, max_sampled_queries=1024,
        max_training_pairs=150_000, epochs=2,
    )

    print(f"\nlink-prediction AUC on {report.num_test_pairs} held-out "
          f"pairs: {report.auc:.3f}")

    print("\ntime breakdown (seconds, modeled platform frame):")
    header = f"{'phase':<12}{'SNAP':>12}{'SNAP w/LightRW':>18}"
    print(header)
    print("-" * len(header))
    snap = report.snap.as_row()
    accel = report.snap_with_lightrw.as_row()
    for phase in ("walk", "transfer", "learning", "scoring", "total"):
        print(f"{phase:<12}{snap[phase]:>12.4f}{accel[phase]:>18.4f}")

    print(f"\nwalk-phase speedup:  {report.extras['walk_speedup']:.2f}x")
    print(f"end-to-end speedup:  {report.end_to_end_speedup:.2f}x "
          f"(paper: total time roughly halved)")


if __name__ == "__main__":
    main()
