#!/usr/bin/env python
"""MetaPath walks on a heterogeneous "knowledge graph".

Builds a synthetic author / paper / venue graph, defines the classic
A-P-V-P-A meta-path, and runs label-constrained walks on the modeled
accelerator — every sampled path provably follows the schema.

Usage:  python examples/metapath_knowledge_graph.py
"""

import numpy as np

from repro import LightRW, LightRWConfig, MetaPathWalk
from repro.graph.builders import from_edge_list
from repro.graph.csr import CSRGraph

AUTHOR, PAPER, VENUE = 0, 1, 2
LABEL_NAMES = {AUTHOR: "Author", PAPER: "Paper", VENUE: "Venue"}


def build_bibliographic_graph(
    n_authors: int = 300, n_papers: int = 600, n_venues: int = 25, seed: int = 1
) -> CSRGraph:
    """Authors write papers; papers appear at venues (bipartite layers)."""
    rng = np.random.default_rng(seed)
    authors = np.arange(n_authors)
    papers = n_authors + np.arange(n_papers)
    venues = n_authors + n_papers + np.arange(n_venues)

    edges = []
    for paper in papers:
        for author in rng.choice(authors, size=rng.integers(1, 4), replace=False):
            edges.append((author, paper))
        edges.append((paper, venues[rng.integers(0, n_venues)]))

    labels = np.concatenate([
        np.full(n_authors, AUTHOR),
        np.full(n_papers, PAPER),
        np.full(n_venues, VENUE),
    ]).astype(np.int16)

    graph = from_edge_list(
        np.array(edges), num_vertices=n_authors + n_papers + n_venues,
        directed=False, name="bibliographic",
    )
    graph.vertex_labels = labels
    return graph


def main() -> None:
    graph = build_bibliographic_graph()
    print(f"knowledge graph: {graph}")

    # The A-P-V-P-A meta-path: find authors related through a venue.
    schema = [AUTHOR, PAPER, VENUE, PAPER, AUTHOR]
    walk = MetaPathWalk(schema, weighted=False)

    engine = LightRW(graph, config=LightRWConfig(n_instances=2), seed=3)
    authors = np.nonzero(graph.vertex_labels == AUTHOR)[0]
    starts = authors[graph.degrees[authors] > 0][:200]
    result = engine.run(walk, n_steps=len(schema) - 1, starts=starts)

    complete = result.lengths == len(schema) - 1
    print(f"\n{complete.sum()} of {starts.size} walks completed the "
          f"A-P-V-P-A meta-path (others hit dead ends)")

    print("\nsample meta-paths (vertex: label):")
    shown = 0
    for q in np.nonzero(complete)[0][:5]:
        path = result.paths[q, : result.lengths[q] + 1]
        rendered = " -> ".join(
            f"{v}:{LABEL_NAMES[int(graph.vertex_labels[v])]}" for v in path
        )
        print(f"  {rendered}")
        shown += 1
        # Every step matches the schema by construction:
        for position, vertex in enumerate(path):
            assert graph.vertex_labels[vertex] == schema[position]
    if shown:
        print("\nall sampled paths verified against the schema")

    print(f"\nmodeled kernel time: {result.kernel_s * 1e6:.1f} us "
          f"({result.steps_per_second:.3g} steps/s)")


if __name__ == "__main__":
    main()
