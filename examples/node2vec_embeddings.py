#!/usr/bin/env python
"""Node2Vec embeddings end to end: walks -> skip-gram -> nearest neighbors.

Generates accelerated Node2Vec walks over a community-structured graph,
trains the library's numpy skip-gram model, and shows that embedding
nearest-neighbors recover the communities.

Usage:  python examples/node2vec_embeddings.py
"""

import numpy as np

from repro import LightRW, Node2VecWalk
from repro.apps.word2vec import train_skipgram, walk_training_pairs
from repro.graph.builders import from_edge_list


def build_community_graph(n_blocks: int = 8, block_size: int = 24, seed: int = 5):
    """A stochastic block model: dense blocks, sparse bridges."""
    rng = np.random.default_rng(seed)
    n = n_blocks * block_size
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            same_block = u // block_size == v // block_size
            p = 0.25 if same_block else 0.004
            if rng.random() < p:
                edges.append((u, v))
    return from_edge_list(
        np.array(edges), num_vertices=n, directed=False, name="sbm"
    )


def main() -> None:
    graph = build_community_graph()
    print(f"community graph: {graph}")
    block_of = np.arange(graph.num_vertices) // 24

    engine = LightRW(graph, seed=7)
    result = engine.run(Node2VecWalk(p=1.0, q=0.5), n_steps=30)
    print(f"walked {result.num_queries} queries; modeled kernel "
          f"{result.kernel_s * 1e6:.0f} us")

    pairs = walk_training_pairs(result.paths, result.lengths, window=4, seed=7)
    print(f"training skip-gram on {pairs.shape[0]} (target, context) pairs ...")
    model = train_skipgram(
        pairs, graph.num_vertices, dim=24, epochs=4, seed=7,
        degree_weights=graph.degrees,
    )

    # Nearest neighbors by cosine similarity should share the community.
    normalized = model.in_vectors / np.maximum(
        np.linalg.norm(model.in_vectors, axis=1, keepdims=True), 1e-12
    )
    similarity = normalized @ normalized.T
    np.fill_diagonal(similarity, -np.inf)
    nearest = similarity.argmax(axis=1)
    same_block = (block_of[nearest] == block_of).mean()
    print(f"nearest embedding neighbor shares the community for "
          f"{same_block:.0%} of vertices (chance: ~12%)")

    probe = 0
    top5 = np.argsort(similarity[probe])[::-1][:5]
    print(f"\nvertex {probe} (block {block_of[probe]}) nearest neighbors: "
          f"{[(int(v), int(block_of[v])) for v in top5]}")


if __name__ == "__main__":
    main()
