#!/usr/bin/env python
"""Personalized PageRank by accelerated restart walks.

The paper's introduction motivates GDRWs with recommendation systems;
this example builds one: run random walks with restart from a user vertex
on the modeled accelerator, rank items by visit frequency, and validate
the ranking against exact personalized PageRank by power iteration.

Usage:  python examples/personalized_pagerank.py
"""

import numpy as np

from repro import LightRW, load_dataset
from repro.walks.ppr import exact_ppr, visit_frequencies

SCALE = 1024
ALPHA = 0.15


def main() -> None:
    graph = load_dataset("livejournal", scale_divisor=SCALE)
    print(f"graph: {graph}")

    # Recommend for the user with the median degree (a typical vertex).
    walkable = graph.nonzero_degree_vertices()
    user = int(walkable[np.argsort(graph.degrees[walkable])[walkable.size // 2]])
    print(f"user vertex: {user} (degree {graph.degree(user)})")

    engine = LightRW(graph, hardware_scale=SCALE, seed=13)
    starts = np.full(2000, user, dtype=np.int64)
    result = engine.run_restart(n_steps=40, alpha=ALPHA, starts=starts)
    print(f"\nran {result.num_queries} restart walks x 40 steps: "
          f"{result.total_steps} steps in {result.kernel_s * 1e3:.2f} ms modeled "
          f"({result.steps_per_second:.3g} steps/s)")

    estimate = visit_frequencies(result.paths, graph.num_vertices)
    exact = exact_ppr(graph, user, alpha=ALPHA)
    correlation = np.corrcoef(estimate, exact)[0, 1]
    print(f"correlation of walk-based scores with exact PPR: {correlation:.3f}")

    # Top recommendations: highest-PPR vertices the user isn't linked to.
    candidates = np.argsort(estimate)[::-1]
    neighbors = set(graph.neighbors(user).tolist()) | {user}
    print("\ntop recommendations (vertex, walk score, exact PPR):")
    shown = 0
    for vertex in candidates:
        if int(vertex) in neighbors:
            continue
        print(f"  {int(vertex):>6}  {estimate[vertex]:.5f}  {exact[vertex]:.5f}")
        shown += 1
        if shown == 5:
            break


if __name__ == "__main__":
    main()
