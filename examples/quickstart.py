#!/usr/bin/env python
"""Quickstart: run Node2Vec on the modeled LightRW accelerator.

Loads the livejournal stand-in, runs one query per vertex through the
analytic FPGA backend, and prints walks, throughput and the comparison
against the modeled ThunderRW CPU baseline.

Usage:  python examples/quickstart.py
"""

from repro import LightRW, Node2VecWalk, compare_engines, load_dataset
from repro.units import format_rate

SCALE = 512  # dataset scale divisor (see DESIGN.md's scaled-platform rule)


def main() -> None:
    graph = load_dataset("livejournal", scale_divisor=SCALE)
    print(f"graph: {graph}")

    engine = LightRW(graph, hardware_scale=SCALE, seed=42)
    walk = Node2VecWalk(p=2.0, q=0.5)
    result = engine.run(walk, n_steps=80, max_sampled_queries=1024)

    print(f"\nran {result.num_queries} Node2Vec queries x 80 steps")
    print(f"kernel time (modeled): {result.kernel_s * 1e3:.2f} ms")
    print(f"PCIe transfer:         {result.pcie_s * 1e3:.2f} ms "
          f"({result.pcie_fraction:.1%} of end-to-end)")
    print(f"throughput:            {format_rate(result.steps_per_second)}")

    print("\nfirst three walks:")
    for q in range(3):
        path = result.paths[q, : result.lengths[q] + 1]
        print(f"  query {q}: {path[:12].tolist()}{' ...' if path.size > 12 else ''}")

    print("\ncomparing against the modeled ThunderRW baseline ...")
    report = compare_engines(
        graph, walk, n_steps=80, hardware_scale=SCALE, max_sampled_queries=512
    )
    print(f"LightRW:   {format_rate(report.lightrw.steps_per_second)}")
    print(f"ThunderRW: {format_rate(report.thunderrw.steps_per_second)}")
    print(f"speedup:   {report.speedup:.2f}x  "
          f"(paper band for Node2Vec: 5.17x - 9.10x)")
    print(f"power efficiency improvement: "
          f"{report.power_efficiency_improvement():.1f}x")


if __name__ == "__main__":
    main()
