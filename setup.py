"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The offline environment ships setuptools without the `wheel` package, so the
PEP 517 editable path (which builds a wheel) is unavailable; this file lets
`setup.py develop` handle it.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
