"""LightRW reproduction — FPGA-accelerated graph dynamic random walks.

A comprehensive Python reproduction of *LightRW: FPGA Accelerated Graph
Dynamic Random Walks* (Tan et al., SIGMOD 2023): the parallel weighted
reservoir sampler, the degree-aware cache and dynamic burst engine, a
cycle-level simulator of the full accelerator, a modeled ThunderRW CPU
baseline, and a regenerator for every table and figure of the paper's
evaluation.

Quickstart
----------
>>> from repro import LightRW, Node2VecWalk, load_dataset
>>> graph = load_dataset("livejournal", scale_divisor=512)
>>> engine = LightRW(graph, hardware_scale=512)
>>> result = engine.run(Node2VecWalk(p=2, q=0.5), n_steps=80,
...                     max_sampled_queries=512)
>>> result.paths.shape[1] == 81
True

See DESIGN.md for the architecture and the hardware-substitution rules,
and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core.api import LightRW, RunResult
from repro.core.compare import SpeedupReport, compare_engines
from repro.core.queries import make_queries, sample_queries
from repro.cpu.costmodel import CPUSpec
from repro.cpu.engine import ThunderRWEngine
from repro.errors import (
    ArtifactCorruptionError,
    ConfigError,
    GraphFormatError,
    QueryError,
    ReproError,
    ShardExecutionError,
    ShardTimeoutError,
    SimulationError,
    SimulationStallError,
)
from repro.fpga.accelerator import LightRWAcceleratorSim
from repro.fpga.burst import BurstStrategy
from repro.fpga.config import LightRWConfig
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASET_ORDER, DATASETS, load_dataset
from repro.graph.generators import chung_lu_graph, erdos_renyi_graph, rmat_graph
from repro.obs import MetricsRegistry, Observer, RunManifest, use_observer
from repro.runtime import (
    Backend,
    BackendCapabilities,
    BatchScheduler,
    InjectedFault,
    RetryPolicy,
    RunCheckpoint,
    ShardFailure,
    SweepCheckpoint,
    TimingBreakdown,
    backend_names,
    register_backend,
    resume_run,
)
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk
from repro.walks.static import StaticWalk
from repro.walks.uniform import UniformWalk

__version__ = "1.0.0"

__all__ = [
    "ArtifactCorruptionError",
    "Backend",
    "BackendCapabilities",
    "BatchScheduler",
    "BurstStrategy",
    "CPUSpec",
    "CSRGraph",
    "ConfigError",
    "DATASETS",
    "DATASET_ORDER",
    "GraphFormatError",
    "LightRW",
    "LightRWAcceleratorSim",
    "LightRWConfig",
    "MetaPathWalk",
    "MetricsRegistry",
    "Node2VecWalk",
    "InjectedFault",
    "Observer",
    "QueryError",
    "ReproError",
    "RetryPolicy",
    "RunCheckpoint",
    "RunManifest",
    "RunResult",
    "ShardExecutionError",
    "ShardFailure",
    "ShardTimeoutError",
    "SimulationError",
    "SimulationStallError",
    "SpeedupReport",
    "StaticWalk",
    "SweepCheckpoint",
    "ThunderRWEngine",
    "TimingBreakdown",
    "UniformWalk",
    "__version__",
    "backend_names",
    "chung_lu_graph",
    "compare_engines",
    "erdos_renyi_graph",
    "load_dataset",
    "make_queries",
    "register_backend",
    "resume_run",
    "rmat_graph",
    "sample_queries",
    "use_observer",
]
