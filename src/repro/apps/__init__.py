"""Application layer: the paper's link-prediction case study (Section 6.7).

The case study plugs LightRW-accelerated Node2Vec into a SNAP-style
pipeline: generate walks, train skip-gram embeddings, score vertex pairs
by cosine similarity.  :mod:`repro.apps.word2vec` is a from-scratch numpy
implementation of skip-gram with negative sampling (the Word2Vec stand-in)
and :mod:`repro.apps.link_prediction` assembles the full pipeline with the
Figure 18 time breakdown.
"""

from repro.apps.corpus import (
    corpus_statistics,
    load_walk_corpus,
    save_walk_corpus,
)
from repro.apps.evaluation import (
    community_separation,
    embedding_report,
    nearest_neighbor_label_accuracy,
    precision_at_k,
)
from repro.apps.link_prediction import LinkPredictionPipeline, LinkPredictionReport
from repro.apps.word2vec import SkipGramModel, train_skipgram

__all__ = [
    "LinkPredictionPipeline",
    "LinkPredictionReport",
    "SkipGramModel",
    "community_separation",
    "corpus_statistics",
    "embedding_report",
    "load_walk_corpus",
    "nearest_neighbor_label_accuracy",
    "precision_at_k",
    "save_walk_corpus",
    "train_skipgram",
]
