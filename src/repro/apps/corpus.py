"""Walk-corpus persistence — the interchange point with embedding tools.

Node2Vec pipelines feed walks to word2vec implementations as "sentences":
one line per walk, space-separated vertex ids.  These helpers write and
read that format (the one SNAP, gensim and the original node2vec code all
consume), so walks produced by this library's accelerator models can be
trained by any external tool, and external corpora can be scored here.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import QueryError


def save_walk_corpus(
    paths: np.ndarray,
    lengths: np.ndarray,
    destination: str | Path,
    min_length: int = 1,
) -> int:
    """Write walks as word2vec sentences; returns the number written.

    Walks shorter than ``min_length`` steps are dropped (degenerate
    single-vertex "sentences" carry no training signal).
    """
    if paths.ndim != 2:
        raise QueryError(f"paths must be 2-D, got shape {paths.shape}")
    if min_length < 0:
        raise QueryError(f"min_length must be non-negative, got {min_length}")
    written = 0
    with open(destination, "w", encoding="utf-8") as handle:
        for row, n_steps in zip(paths, np.asarray(lengths)):
            if n_steps < min_length:
                continue
            walk = row[: int(n_steps) + 1]
            handle.write(" ".join(map(str, walk.tolist())))
            handle.write("\n")
            written += 1
    return written


def load_walk_corpus(source: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Read a sentence file back into ``(paths, lengths)`` (-1 padded)."""
    walks: list[list[int]] = []
    with open(source, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                walk = [int(token) for token in stripped.split()]
            except ValueError as exc:
                raise QueryError(
                    f"{source}:{line_number}: non-integer vertex id"
                ) from exc
            if not walk:
                continue
            walks.append(walk)
    if not walks:
        return np.zeros((0, 1), dtype=np.int64), np.zeros(0, dtype=np.int64)
    width = max(len(walk) for walk in walks)
    paths = np.full((len(walks), width), -1, dtype=np.int64)
    lengths = np.zeros(len(walks), dtype=np.int64)
    for index, walk in enumerate(walks):
        paths[index, : len(walk)] = walk
        lengths[index] = len(walk) - 1
    return paths, lengths


def corpus_statistics(paths: np.ndarray, lengths: np.ndarray) -> dict[str, float]:
    """Summary of a walk corpus (tokens, coverage, mean length)."""
    lengths = np.asarray(lengths)
    tokens = int((paths >= 0).sum())
    vertices = paths[paths >= 0]
    return {
        "walks": int(lengths.size),
        "tokens": tokens,
        "mean_length": float(lengths.mean()) if lengths.size else 0.0,
        "distinct_vertices": int(np.unique(vertices).size) if tokens else 0,
    }
