"""Embedding quality metrics beyond AUC.

The case study reports AUC; practitioners also look at ranking precision
and label coherence.  These metrics operate on any
:class:`~repro.apps.word2vec.SkipGramModel` (or raw embedding matrix) and
are used by the tests and examples to show the accelerated walks produce
embeddings that actually work downstream.
"""

from __future__ import annotations

import numpy as np

from repro.apps.word2vec import SkipGramModel


def precision_at_k(
    model: SkipGramModel,
    positives: np.ndarray,
    negatives: np.ndarray,
    k: int,
) -> float:
    """Fraction of the k highest-scored test pairs that are true edges."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    pos_scores = model.score_pairs(positives)
    neg_scores = model.score_pairs(negatives)
    scores = np.concatenate([pos_scores, neg_scores])
    is_positive = np.concatenate(
        [np.ones(pos_scores.size, bool), np.zeros(neg_scores.size, bool)]
    )
    k = min(k, scores.size)
    top = np.argsort(scores)[::-1][:k]
    return float(is_positive[top].mean())


def _normalized(vectors: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / np.maximum(norms, 1e-12)


def nearest_neighbor_label_accuracy(
    model: SkipGramModel, labels: np.ndarray
) -> float:
    """Share of vertices whose nearest embedding neighbor shares the label.

    The standard intrinsic check for community-structured graphs: good
    walk embeddings place same-community vertices together.
    """
    labels = np.asarray(labels)
    vectors = _normalized(model.in_vectors)
    similarity = vectors @ vectors.T
    np.fill_diagonal(similarity, -np.inf)
    nearest = similarity.argmax(axis=1)
    return float((labels[nearest] == labels).mean())


def community_separation(model: SkipGramModel, labels: np.ndarray) -> float:
    """Mean intra-community minus inter-community cosine similarity.

    Positive values mean communities are separated in embedding space;
    zero is chance.
    """
    labels = np.asarray(labels)
    vectors = _normalized(model.in_vectors)
    similarity = vectors @ vectors.T
    same = labels[:, None] == labels[None, :]
    off_diagonal = ~np.eye(labels.size, dtype=bool)
    intra = similarity[same & off_diagonal]
    inter = similarity[~same]
    if intra.size == 0 or inter.size == 0:
        raise ValueError("need at least two communities with two members each")
    return float(intra.mean() - inter.mean())


def embedding_report(
    model: SkipGramModel,
    positives: np.ndarray,
    negatives: np.ndarray,
    labels: np.ndarray | None = None,
    k: int = 100,
) -> dict[str, float]:
    """One-call summary: AUC, precision@k, and (with labels) coherence."""
    from repro.apps.link_prediction import auc_score

    report = {
        "auc": auc_score(
            model.score_pairs(positives), model.score_pairs(negatives)
        ),
        f"precision_at_{k}": precision_at_k(model, positives, negatives, k),
    }
    if labels is not None:
        report["nn_label_accuracy"] = nearest_neighbor_label_accuracy(model, labels)
        report["community_separation"] = community_separation(model, labels)
    return report
