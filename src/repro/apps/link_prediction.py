"""Link prediction case study (paper Section 6.7, Figure 18).

The pipeline the paper integrates into SNAP:

1. hold out a fraction of edges as positive test pairs (plus sampled
   non-edges as negatives),
2. run Node2Vec walks over the remaining graph — on the modeled CPU
   (plain "SNAP") or on the modeled accelerator ("SNAP w/ LightRW"),
3. train skip-gram embeddings on the walk corpus,
4. score test pairs by cosine similarity and evaluate AUC.

The report carries the Figure 18 quantities: per-phase time for both
deployments, showing the walk phase dominating and LightRW roughly
halving the end-to-end time.  All phases are expressed in the same
modeling frame: walk time comes from the platform models, and learning
time is charged per training pair at the rate of SNAP's optimized C++
word2vec (``WORD2VEC_S_PER_PAIR``) — the *functional* embedding training
still happens (in numpy, producing the real AUC), but its Python
wall-clock is reported separately in ``extras`` rather than mixed into
the cross-platform comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.apps.word2vec import train_skipgram, walk_training_pairs
from repro.core.api import LightRW
from repro.core.queries import make_queries
from repro.fpga.config import LightRWConfig
from repro.graph.builders import from_edge_list
from repro.graph.csr import CSRGraph
from repro.walks.node2vec import Node2VecWalk

#: Modeled cost of one (target, context) SGNS update in SNAP's C++
#: word2vec: ~400 flops (dim 32, 5 negatives) plus memory traffic, on one
#: core.  Divided by the thread count at use.
WORD2VEC_S_PER_PAIR = 100e-9
#: Threads SNAP's word2vec uses on the modeled server.
WORD2VEC_THREADS = 16


@dataclass
class PhaseTimes:
    """Per-phase seconds of one deployment (one bar of Figure 18)."""

    walk_s: float
    transfer_s: float
    learning_s: float
    scoring_s: float

    @property
    def total_s(self) -> float:
        return self.walk_s + self.transfer_s + self.learning_s + self.scoring_s

    def as_row(self) -> dict[str, float]:
        return {
            "walk": self.walk_s,
            "transfer": self.transfer_s,
            "learning": self.learning_s,
            "scoring": self.scoring_s,
            "total": self.total_s,
        }


@dataclass
class LinkPredictionReport:
    """Outcome of the case study."""

    auc: float
    snap: PhaseTimes
    snap_with_lightrw: PhaseTimes
    num_test_pairs: int
    extras: dict = field(default_factory=dict)

    @property
    def end_to_end_speedup(self) -> float:
        return self.snap.total_s / self.snap_with_lightrw.total_s


def split_edges(
    graph: CSRGraph, holdout_fraction: float = 0.1, seed: int = 0
) -> tuple[CSRGraph, np.ndarray, np.ndarray]:
    """Hold out edges for evaluation.

    Returns ``(train_graph, positive_pairs, negative_pairs)``; for
    undirected graphs both arc directions of a held-out edge are removed.
    """
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError(f"holdout_fraction must be in (0, 1), got {holdout_fraction}")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    sources = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    targets = graph.col_index.astype(np.int64)
    # Work on canonical pairs so undirected edges are held out atomically.
    canonical = sources < targets if not graph.directed else np.ones(sources.size, bool)
    pairs = np.stack([sources[canonical], targets[canonical]], axis=1)
    n_holdout = max(int(pairs.shape[0] * holdout_fraction), 1)
    held_idx = rng.choice(pairs.shape[0], size=n_holdout, replace=False)
    held_mask = np.zeros(pairs.shape[0], dtype=bool)
    held_mask[held_idx] = True
    positives = pairs[held_mask]
    kept = pairs[~held_mask]

    train_graph = from_edge_list(
        kept,
        num_vertices=n,
        directed=graph.directed,
        name=f"{graph.name}-train",
    )
    # Negatives: uniformly sampled non-edges (rejection against the
    # original graph).
    negatives = []
    needed = positives.shape[0]
    while len(negatives) < needed:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v and not graph.has_edge(u, v):
            negatives.append((u, v))
    return train_graph, positives, np.asarray(negatives, dtype=np.int64)


def auc_score(pos_scores: np.ndarray, neg_scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum formulation."""
    if pos_scores.size == 0 or neg_scores.size == 0:
        raise ValueError("need both positive and negative scores")
    combined = np.concatenate([pos_scores, neg_scores])
    ranks = np.argsort(np.argsort(combined)) + 1.0
    pos_rank_sum = ranks[: pos_scores.size].sum()
    n_pos, n_neg = pos_scores.size, neg_scores.size
    return float((pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


class LinkPredictionPipeline:
    """SNAP-style link prediction with pluggable walk acceleration."""

    def __init__(
        self,
        graph: CSRGraph,
        hardware_scale: int = 1,
        config: LightRWConfig | None = None,
        walk_length: int = 40,
        window: int = 5,
        embedding_dim: int = 32,
        p: float = 2.0,
        q: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.hardware_scale = hardware_scale
        self.config = config
        self.walk_length = walk_length
        self.window = window
        self.embedding_dim = embedding_dim
        self.algorithm = Node2VecWalk(p=p, q=q)
        self.seed = seed

    def run(
        self,
        holdout_fraction: float = 0.1,
        max_sampled_queries: int = 2048,
        max_training_pairs: int = 200_000,
        epochs: int = 2,
    ) -> LinkPredictionReport:
        """Execute the full case study and report Figure 18 quantities."""
        train_graph, positives, negatives = split_edges(
            self.graph, holdout_fraction, seed=self.seed
        )
        starts = make_queries(train_graph, seed=self.seed)

        fpga = LightRW(
            train_graph,
            config=self.config,
            backend="fpga-model",
            hardware_scale=self.hardware_scale,
            seed=self.seed,
        )
        cpu = LightRW(
            train_graph,
            config=self.config,
            backend="cpu-baseline",
            hardware_scale=self.hardware_scale,
            seed=self.seed,
        )
        fpga_run = fpga.run(
            self.algorithm,
            self.walk_length,
            starts=starts,
            max_sampled_queries=max_sampled_queries,
        )
        cpu_run = cpu.run(
            self.algorithm,
            self.walk_length,
            starts=starts,
            max_sampled_queries=max_sampled_queries,
        )

        t0 = time.perf_counter()
        pairs = walk_training_pairs(
            fpga_run.paths,
            fpga_run.lengths,
            window=self.window,
            max_pairs=max_training_pairs,
            seed=self.seed,
        )
        model = train_skipgram(
            pairs,
            train_graph.num_vertices,
            dim=self.embedding_dim,
            epochs=epochs,
            seed=self.seed,
            degree_weights=train_graph.degrees,
        )
        measured_learning_s = time.perf_counter() - t0
        # Modeled learning time: the full (non-subsampled) corpus of the
        # full query batch, trained by SNAP's multithreaded C++ word2vec.
        sample_factor = fpga_run.num_queries / max(fpga_run.paths.shape[0], 1)
        full_pairs = (
            float(fpga_run.lengths.sum()) * 2.0 * self.window * sample_factor
        )
        learning_s = full_pairs * epochs * WORD2VEC_S_PER_PAIR / WORD2VEC_THREADS

        t0 = time.perf_counter()
        pos_scores = model.score_pairs(positives)
        neg_scores = model.score_pairs(negatives)
        auc = auc_score(pos_scores, neg_scores)
        scoring_s = time.perf_counter() - t0

        snap = PhaseTimes(
            walk_s=cpu_run.kernel_s + cpu_run.setup_s,
            transfer_s=0.0,
            learning_s=learning_s,
            scoring_s=scoring_s,
        )
        accelerated = PhaseTimes(
            walk_s=fpga_run.kernel_s,
            transfer_s=fpga_run.pcie_s,
            learning_s=learning_s,
            scoring_s=scoring_s,
        )
        return LinkPredictionReport(
            auc=auc,
            snap=snap,
            snap_with_lightrw=accelerated,
            num_test_pairs=int(positives.shape[0] + negatives.shape[0]),
            extras={
                "walk_speedup": snap.walk_s / max(accelerated.walk_s + accelerated.transfer_s, 1e-12),
                "num_queries": fpga_run.num_queries,
                "measured_learning_s": measured_learning_s,
                "training_pairs_used": int(pairs.shape[0]),
            },
        )
