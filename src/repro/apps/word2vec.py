"""Skip-gram with negative sampling (SGNS) over walk corpora.

A from-scratch numpy Word2Vec: vertices are the vocabulary, random-walk
paths are the sentences, and training maximizes

    log sigma(u_c . v_t) + sum_neg log sigma(-u_n . v_t)

over (target, context) pairs from a sliding window — exactly the
embedding step of Node2Vec and of the paper's link-prediction case study.
Mini-batched SGD with vectorized gradient scatter; no external ML
dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


#: Maximum L2 displacement of one vector per mini-batch.
_MAX_STEP_NORM = 0.5


def _scatter_clipped_update(
    table: np.ndarray, indices: np.ndarray, grads: np.ndarray, lr: float
) -> None:
    """Apply summed per-vertex gradients with a step-norm clip.

    Frequent vertices occur thousands of times per mini-batch; the summed
    step approximates the drift sequential SGD would accumulate, but
    applied at stale parameters it can oscillate and diverge.  Capping the
    per-vertex displacement keeps the drift while guaranteeing stability.
    """
    accum = np.zeros_like(table)
    np.add.at(accum, indices, grads)
    step = lr * accum
    norms = np.linalg.norm(step, axis=1, keepdims=True)
    scale = np.minimum(1.0, _MAX_STEP_NORM / np.maximum(norms, 1e-12))
    table -= step * scale


def walk_training_pairs(
    paths: np.ndarray,
    lengths: np.ndarray,
    window: int = 5,
    max_pairs: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """(target, context) pairs from padded walk paths.

    Parameters
    ----------
    paths:
        ``(Q, L)`` int array, -1 padded (a :class:`WalkSession`'s paths).
    lengths:
        Steps taken per walk; vertices beyond ``lengths[q] + 1`` ignored.
    window:
        Max offset between target and context within a walk.
    max_pairs:
        Optional uniform subsample (keeps training time bounded).
    """
    pair_list: list[np.ndarray] = []
    for offset in range(1, window + 1):
        if paths.shape[1] <= offset:
            break
        left = paths[:, :-offset]
        right = paths[:, offset:]
        valid = (left >= 0) & (right >= 0)
        stacked = np.stack([left[valid], right[valid]], axis=1)
        pair_list.append(stacked)
        pair_list.append(stacked[:, ::-1])
    if not pair_list:
        return np.zeros((0, 2), dtype=np.int64)
    pairs = np.concatenate(pair_list, axis=0)
    if max_pairs is not None and pairs.shape[0] > max_pairs:
        rng = np.random.default_rng(seed)
        keep = rng.choice(pairs.shape[0], size=max_pairs, replace=False)
        pairs = pairs[keep]
    return pairs


@dataclass
class SkipGramModel:
    """Trained embeddings: ``in_vectors`` are the vertex representations."""

    in_vectors: np.ndarray
    out_vectors: np.ndarray

    @property
    def dim(self) -> int:
        return self.in_vectors.shape[1]

    def similarity(self, u: int, v: int) -> float:
        """Cosine similarity between two vertex embeddings."""
        a, b = self.in_vectors[u], self.in_vectors[v]
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        return float(a @ b / denom) if denom > 0 else 0.0

    def score_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Vectorized cosine similarity for an ``(m, 2)`` pair array."""
        a = self.in_vectors[pairs[:, 0]]
        b = self.in_vectors[pairs[:, 1]]
        norms = np.linalg.norm(a, axis=1) * np.linalg.norm(b, axis=1)
        dots = np.einsum("ij,ij->i", a, b)
        return np.where(norms > 0, dots / np.maximum(norms, 1e-12), 0.0)


def train_skipgram(
    pairs: np.ndarray,
    num_vertices: int,
    dim: int = 32,
    negatives: int = 5,
    epochs: int = 2,
    learning_rate: float = 0.05,
    batch_size: int = 8192,
    seed: int = 0,
    degree_weights: np.ndarray | None = None,
) -> SkipGramModel:
    """Train SGNS embeddings from (target, context) pairs.

    ``degree_weights`` biases negative sampling toward frequent vertices
    (the classic unigram^0.75 distribution); uniform when omitted.
    """
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")
    rng = np.random.default_rng(seed)
    in_vec = (rng.random((num_vertices, dim)) - 0.5) / dim
    out_vec = np.zeros((num_vertices, dim))

    if degree_weights is not None:
        probs = np.asarray(degree_weights, dtype=np.float64) ** 0.75
        total = probs.sum()
        probs = probs / total if total > 0 else None
    else:
        probs = None

    n = pairs.shape[0]
    for epoch in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            batch = pairs[order[start : start + batch_size]]
            targets, contexts = batch[:, 0], batch[:, 1]
            m = targets.size
            if probs is not None:
                neg = rng.choice(num_vertices, size=(m, negatives), p=probs)
            else:
                neg = rng.integers(0, num_vertices, size=(m, negatives))

            t_vec = in_vec[targets]
            c_vec = out_vec[contexts]
            n_vec = out_vec[neg]

            pos_score = _sigmoid(np.einsum("ij,ij->i", t_vec, c_vec))
            neg_score = _sigmoid(np.einsum("ijk,ik->ij", n_vec, t_vec))

            g_pos = (pos_score - 1.0)[:, None]
            g_neg = neg_score[:, :, None]

            grad_t = g_pos * c_vec + np.einsum("ijk,ij->ik", n_vec, neg_score)
            grad_c = g_pos * t_vec
            grad_n = g_neg * t_vec[:, None, :]

            lr = learning_rate * (1.0 - (epoch * n + start) / (epochs * n + 1))
            lr = max(lr, learning_rate * 0.1)
            _scatter_clipped_update(in_vec, targets, grad_t, lr)
            _scatter_clipped_update(out_vec, contexts, grad_c, lr)
            _scatter_clipped_update(out_vec, neg.reshape(-1), grad_n.reshape(-1, dim), lr)
    return SkipGramModel(in_vectors=in_vec, out_vectors=out_vec)
