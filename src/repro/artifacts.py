"""Crash-safe artifact I/O: atomic writes, content checksums, quarantine.

Every artifact the library persists — NPZ bundles (graphs, walk paths),
JSONL telemetry records, bench result JSON, run checkpoints — goes
through this module so the same two guarantees hold everywhere:

* **Atomicity** — files are written to a temporary name in the target
  directory, flushed and fsynced, then renamed over the destination.
  A reader (or a process resuming after a crash) only ever sees the old
  complete file or the new complete file, never a torn write.
* **Integrity** — payloads embed a SHA-256 content checksum that loaders
  verify.  A file that fails verification is *quarantined* (renamed to
  ``<name>.corrupt``) and reported as a structured
  :class:`~repro.errors.ArtifactCorruptionError` — corrupted data is
  never silently loaded, and never silently re-read on the next attempt.

Three container formats cover the repo's artifacts:

* :func:`write_json_artifact` / :func:`read_json_artifact` — a JSON
  object with ``format_version``, ``kind`` and ``checksum`` keys wrapped
  around the payload (bench results, sweep checkpoints, run metadata);
* :func:`write_binary_artifact` / :func:`read_binary_artifact` — a small
  self-describing binary envelope (magic, JSON header, payload) for
  opaque bytes such as pickled shard checkpoints;
* :func:`save_npz_checked` / :func:`load_npz_checked` — NumPy ``.npz``
  bundles with the digest of every member array stored as a ``checksum``
  entry (CSR graph bundles, walk-path outputs).

JSONL logs are append-only and therefore cannot be replaced atomically;
instead each *record* carries its own checksum (:func:`checked_record` /
:func:`record_checksum_ok`) and appends are fsynced, so a crash can only
ever tear the final line — which readers detect and skip.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import ArtifactCorruptionError, ConfigError

logger = logging.getLogger(__name__)

__all__ = [
    "ARTIFACT_VERSION",
    "atomic_write_bytes",
    "atomic_write_text",
    "checked_record",
    "checksum_hex",
    "load_npz_checked",
    "npz_checksum",
    "quarantine",
    "read_binary_artifact",
    "read_json_artifact",
    "record_checksum_ok",
    "save_npz_checked",
    "write_binary_artifact",
    "write_json_artifact",
]

#: Version of the artifact *envelope* (not of any payload schema).
ARTIFACT_VERSION = 1

_BINARY_MAGIC = b"REPROART\n"
_RESERVED_KEYS = ("format_version", "kind", "checksum")


def checksum_hex(data: bytes) -> str:
    """SHA-256 hex digest — the checksum used by every artifact format."""
    return hashlib.sha256(data).hexdigest()


def _canonical_json(payload: object) -> bytes:
    """Stable byte serialization used for checksumming JSON payloads.

    ``default=str`` must match the serialization the writers use, so a
    payload checksums identically before writing and after a round trip.
    """
    return json.dumps(payload, sort_keys=True, default=str).encode()


# -- atomic writes ------------------------------------------------------------


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (tmp file + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    return atomic_write_bytes(path, text.encode("utf-8"))


def _fsync_directory(directory: Path) -> None:
    """Persist a rename by fsyncing its directory (best-effort)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


def quarantine(path: str | Path) -> Path | None:
    """Move a corrupt file aside; returns the new path (None on failure).

    The quarantined name is ``<name>.corrupt`` (numbered when taken), in
    the same directory, so the evidence survives for inspection while the
    original name is free for a clean rewrite — and a retry loop can
    never re-read the same garbage.
    """
    path = Path(path)
    if not path.exists():
        return None
    target = path.with_name(path.name + ".corrupt")
    serial = 0
    while target.exists():
        serial += 1
        target = path.with_name(f"{path.name}.corrupt.{serial}")
    try:
        os.replace(path, target)
    except OSError:  # pragma: no cover - permission/filesystem races
        return None
    logger.warning("quarantined corrupt artifact %s -> %s", path, target.name)
    return target


def _corrupt(path: Path, reason: str) -> None:
    """Quarantine ``path`` and raise the structured corruption error."""
    moved = quarantine(path)
    where = f" (quarantined to {moved})" if moved else ""
    raise ArtifactCorruptionError(
        f"{path}: {reason}{where}", path=path, quarantine_path=moved
    )


# -- JSON artifacts -----------------------------------------------------------


def write_json_artifact(path: str | Path, payload: dict, kind: str) -> Path:
    """Atomically write ``payload`` wrapped in a checksummed envelope."""
    for key in _RESERVED_KEYS:
        if key in payload:
            raise ConfigError(
                f"artifact payload may not use the reserved key {key!r}"
            )
    envelope = {
        "format_version": ARTIFACT_VERSION,
        "kind": kind,
        "checksum": checksum_hex(_canonical_json(payload)),
        **payload,
    }
    return atomic_write_text(
        path, json.dumps(envelope, indent=2, default=str)
    )


def read_json_artifact(path: str | Path, kind: str | None = None) -> dict:
    """Read and verify a JSON artifact; returns the payload (envelope keys
    stripped).

    Raises :class:`~repro.errors.ArtifactCorruptionError` — after
    quarantining the file — for empty/truncated/unparseable content, a
    wrong ``kind`` or a checksum mismatch, and
    :class:`~repro.errors.ConfigError` for an envelope written by a newer
    library version (the file is intact; quarantining would destroy it).
    """
    path = Path(path)
    text = path.read_text()  # missing file stays a FileNotFoundError
    if not text.strip():
        _corrupt(path, "empty artifact file")
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError:
        _corrupt(path, "unparseable JSON (truncated or torn write)")
    if not isinstance(envelope, dict):
        _corrupt(path, "artifact is not a JSON object")
    version = envelope.get("format_version")
    if not isinstance(version, int):
        _corrupt(path, "missing format_version")
    if version > ARTIFACT_VERSION:
        raise ConfigError(
            f"{path}: artifact format_version {version} is newer than this "
            f"library supports ({ARTIFACT_VERSION}); upgrade the library"
        )
    if kind is not None and envelope.get("kind") != kind:
        _corrupt(
            path,
            f"artifact kind {envelope.get('kind')!r} where {kind!r} expected",
        )
    stored = envelope.get("checksum")
    payload = {k: v for k, v in envelope.items() if k not in _RESERVED_KEYS}
    if stored != checksum_hex(_canonical_json(payload)):
        _corrupt(path, "content checksum mismatch")
    return payload


# -- binary artifacts ---------------------------------------------------------


def write_binary_artifact(path: str | Path, payload: bytes, kind: str) -> Path:
    """Atomically write opaque bytes inside a checksummed envelope."""
    header = json.dumps(
        {
            "format_version": ARTIFACT_VERSION,
            "kind": kind,
            "size": len(payload),
            "checksum": checksum_hex(payload),
        },
        sort_keys=True,
    ).encode()
    blob = _BINARY_MAGIC + len(header).to_bytes(4, "big") + header + payload
    return atomic_write_bytes(path, blob)


def read_binary_artifact(path: str | Path, kind: str | None = None) -> bytes:
    """Read and verify a binary artifact; returns the payload bytes."""
    path = Path(path)
    blob = path.read_bytes()  # missing file stays a FileNotFoundError
    prefix = len(_BINARY_MAGIC)
    if len(blob) < prefix + 4:
        _corrupt(path, "truncated artifact (no header)")
    if blob[:prefix] != _BINARY_MAGIC:
        _corrupt(path, "bad magic (not a repro binary artifact)")
    header_len = int.from_bytes(blob[prefix : prefix + 4], "big")
    header_end = prefix + 4 + header_len
    if header_len <= 0 or len(blob) < header_end:
        _corrupt(path, "truncated artifact header")
    try:
        header = json.loads(blob[prefix + 4 : header_end])
    except json.JSONDecodeError:
        _corrupt(path, "unparseable artifact header")
    version = header.get("format_version")
    if not isinstance(version, int):
        _corrupt(path, "missing format_version")
    if version > ARTIFACT_VERSION:
        raise ConfigError(
            f"{path}: artifact format_version {version} is newer than this "
            f"library supports ({ARTIFACT_VERSION}); upgrade the library"
        )
    if kind is not None and header.get("kind") != kind:
        _corrupt(
            path,
            f"artifact kind {header.get('kind')!r} where {kind!r} expected",
        )
    payload = blob[header_end:]
    if len(payload) != header.get("size"):
        _corrupt(
            path,
            f"payload truncated ({len(payload)} of {header.get('size')} bytes)",
        )
    if checksum_hex(payload) != header.get("checksum"):
        _corrupt(path, "content checksum mismatch")
    return payload


# -- NPZ bundles --------------------------------------------------------------


def npz_checksum(arrays: Mapping[str, object]) -> str:
    """Digest over every member array (key, dtype, shape and raw bytes)."""
    digest = hashlib.sha256()
    for key in sorted(arrays):
        if key == "checksum":
            continue
        arr = np.ascontiguousarray(np.asarray(arrays[key]))
        digest.update(key.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def save_npz_checked(path: str | Path, arrays: Mapping[str, object]) -> Path:
    """Atomically write a compressed NPZ with an embedded ``checksum`` entry.

    Matches ``np.savez_compressed``'s convention of appending ``.npz``
    when the extension is missing (so existing call sites keep their
    file-naming behaviour).
    """
    if "checksum" in arrays:
        raise ConfigError("'checksum' is reserved for the embedded digest")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(arrays)
    payload["checksum"] = np.str_(npz_checksum(payload))
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return path


def load_npz_checked(
    path: str | Path, require_checksum: bool = False
) -> dict[str, np.ndarray]:
    """Load an NPZ bundle, verifying the embedded checksum when present.

    Zero-byte, truncated or otherwise unreadable files — and any file
    whose content digest disagrees with its ``checksum`` entry — are
    quarantined and raised as
    :class:`~repro.errors.ArtifactCorruptionError`.  Bundles written
    before checksums existed load unverified unless ``require_checksum``.
    """
    path = Path(path)
    if path.stat().st_size == 0:  # missing file stays a FileNotFoundError
        _corrupt(path, "zero-byte file")
    try:
        with np.load(str(path), allow_pickle=False) as bundle:
            arrays = {key: bundle[key] for key in bundle.files}
    except (
        zipfile.BadZipFile, zlib.error, ValueError, EOFError, KeyError, OSError,
    ) as exc:
        _corrupt(path, f"unreadable NPZ ({type(exc).__name__}: {exc})")
    if "checksum" in arrays:
        stored = str(arrays.pop("checksum"))
        if stored != npz_checksum(arrays):
            _corrupt(path, "content checksum mismatch")
    elif require_checksum:
        _corrupt(path, "missing checksum entry")
    return arrays


# -- JSONL records ------------------------------------------------------------


def checked_record(record: dict) -> dict:
    """Return ``record`` with its content checksum embedded.

    JSONL files cannot be rewritten atomically on append, so integrity is
    per record: each line carries the digest of its own body.
    """
    if "checksum" in record:
        raise ConfigError("'checksum' is reserved for the embedded digest")
    return {**record, "checksum": checksum_hex(_canonical_json(record))}


def record_checksum_ok(record: dict) -> bool | None:
    """Verify one JSONL record: True/False, or None for legacy records
    written before checksums existed (nothing to verify)."""
    stored = record.get("checksum")
    if stored is None:
        return None
    body = {k: v for k, v in record.items() if k != "checksum"}
    return stored == checksum_hex(_canonical_json(body))
