"""Experiment harness: one regenerator per paper table and figure.

Each experiment module exposes ``run(**params) -> ExperimentResult``; the
CLI (``python -m repro.bench <experiment>`` or the ``lightrw-bench``
entry point) runs them and prints the paper-style tables.  The
``benchmarks/`` pytest-benchmark suite wraps the same functions.
"""

from repro.bench.common import ExperimentResult, REGISTRY, register

# Importing the experiment modules populates the registry.
from repro.bench import (  # noqa: F401  (imported for registration side effect)
    ablation_cache,
    ablation_dse,
    ablation_parallelism,
    ablation_sampler,
    energy_capacity,
    fig06_burst_bandwidth,
    fig10_wrs_throughput,
    fig11_cache_miss,
    fig12_burst_strategies,
    fig13_breakdown,
    fig14_speedup,
    fig15_latency,
    fig16_query_count,
    fig17_query_length,
    fig18_link_prediction,
    future_work,
    realtime,
    roofline_bench,
    table1_cpu_profile,
    table2_datasets,
    table3_power,
    table4_pcie,
    table5_resources,
)

__all__ = ["ExperimentResult", "REGISTRY", "register"]
