"""``python -m repro.bench`` entry point."""

from repro.bench.runner import main

raise SystemExit(main())
