"""Ablation — cache replacement policies and the reordering alternative.

Section 5.1's two arguments, quantified:

1. recency policies (LRU, FIFO, direct-mapped) cannot cope with random-
   walk reuse distances; the degree-aware policy can;
2. degree-*reordering* the graph offline (Balaji & Lucia) achieves a
   similar hit ratio but pays a preprocessing cost the runtime cache
   avoids entirely.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import DEFAULT_SEED, ExperimentResult, register
from repro.fpga.cache import (
    DegreeAwareCache,
    DirectMappedCache,
    FIFOCache,
    LRUCache,
)
from repro.graph.generators import rmat_graph
from repro.graph.reorder import (
    degree_sort_reorder,
    hot_prefix_hit_ratio,
    reordering_cost_model,
)
from repro.walks.stepper import PWRSSampler, run_walks
from repro.walks.uniform import UniformWalk


@register("ablation-cache")
def run(
    rmat_scale: int = 15,
    cache_entries: int = 1 << 10,
    n_queries: int = 4096,
    walk_length: int = 15,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = rmat_graph(rmat_scale, edge_factor=8, seed=seed)
    starts = graph.nonzero_degree_vertices()
    if starts.size > n_queries:
        starts = starts[:: starts.size // n_queries][:n_queries]
    session = run_walks(graph, starts, walk_length, UniformWalk(), PWRSSampler(16, seed))
    trace = np.concatenate([r.curr for r in session.records])
    degrees = graph.degrees

    rows = []
    for cache in (
        DegreeAwareCache(cache_entries),
        DirectMappedCache(cache_entries),
        LRUCache(cache_entries, ways=4),
        FIFOCache(cache_entries, ways=4),
    ):
        for vertex in trace.tolist():
            cache.access(vertex, int(degrees[vertex]))
        rows.append(
            {
                "policy": cache.name,
                "hit_ratio": round(1.0 - cache.miss_ratio, 3),
                "preprocessing_s": 0.0,
            }
        )

    # The reordering alternative: preprocessing buys a pinned hot prefix.
    reordered = degree_sort_reorder(graph)
    prefix_hits = hot_prefix_hit_ratio(graph, cache_entries)
    rows.append(
        {
            "policy": "degree-reorder+pin",
            "hit_ratio": round(prefix_hits, 3),
            "preprocessing_s": round(reordering_cost_model(graph), 4),
        }
    )
    assert reordered.graph.num_edges == graph.num_edges

    return ExperimentResult(
        name="ablation-cache",
        title=f"Cache policy ablation ({trace.size} accesses, {cache_entries} entries)",
        rows=rows,
        paper_expectation=(
            "degree-aware beats every recency policy at random-walk reuse "
            "distances; offline degree reordering reaches a similar hit "
            "ratio but pays a preprocessing cost the runtime cache avoids "
            "(Section 5.1's argument)"
        ),
        params={
            "rmat_scale": rmat_scale,
            "cache_entries": cache_entries,
            "walk_length": walk_length,
        },
    )
