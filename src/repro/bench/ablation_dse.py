"""Design-space exploration experiment: throughput/area Pareto frontier.

The architect's summary of the paper's component sweeps (Sections
6.2/6.3): which (k, burst, cache, instances) configurations are
Pareto-optimal in modeled throughput versus device utilization for each
workload.
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    ExperimentResult,
    register,
)
from repro.fpga.sweep import sweep_design_space
from repro.graph.datasets import load_dataset
from repro.walks.metapath import MetaPathWalk


@register("ablation-dse")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    n_queries: int = 512,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = load_dataset("livejournal", scale_divisor=scale_divisor, seed=seed)
    starts = graph.nonzero_degree_vertices()[:n_queries]
    points, frontier = sweep_design_space(
        graph,
        MetaPathWalk(METAPATH_SCHEMA),
        "metapath",
        METAPATH_LENGTH,
        starts,
        hardware_scale=scale_divisor,
        seed=seed,
    )
    rows = [point.as_row() for point in frontier]
    paper_point = next(
        (
            p
            for p in points
            if p.config.k == 16
            and p.config.strategy.label == "b1+b32"
            and p.config.cache_entries == 1 << 12
            and p.config.n_instances == 4
        ),
        None,
    )
    notes = [f"{len(points)} configurations evaluated, {len(frontier)} Pareto-optimal"]
    if paper_point is not None:
        notes.append(
            f"the paper's configuration ({paper_point.label}) reaches "
            f"{paper_point.steps_per_second:.3g} steps/s at "
            f"{paper_point.peak_utilization:.1%} peak utilization"
        )
    return ExperimentResult(
        name="ablation-dse",
        title="Design-space exploration: Pareto frontier (MetaPath on LJ)",
        rows=rows,
        paper_expectation=(
            "the paper's k=16 / b1+b32 / 2^12 / 4-instance choice sits "
            "near the frontier's high-throughput end; dynamic bursts and "
            "four instances dominate the frontier"
        ),
        params={"scale_divisor": scale_divisor, "n_queries": n_queries},
        notes=notes,
    )
