"""Ablation — sampler parallelism k and cache capacity sweeps.

Two configuration sweeps over the whole accelerator (not just the sampler
microbenchmark of Figure 10): how k and the degree-aware cache capacity
move end-to-end kernel time, and where the returns stop.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.common import (
    DEFAULT_SAMPLED_QUERIES,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    ExperimentResult,
    register,
)
from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel
from repro.graph.datasets import load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.stepper import PWRSSampler, run_walks


@register("ablation-k")
def run_k_sweep(
    scale_divisor: int = DEFAULT_SCALE,
    k_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = load_dataset("livejournal", scale_divisor=scale_divisor, seed=seed)
    algorithm = MetaPathWalk(METAPATH_SCHEMA)
    starts = graph.nonzero_degree_vertices()[:DEFAULT_SAMPLED_QUERIES]
    rows = []
    base_cycles = None
    for k in k_values:
        session = run_walks(
            graph, starts, METAPATH_LENGTH, algorithm, PWRSSampler(k=k, seed=seed)
        )
        config = replace(LightRWConfig(k=k), hardware_scale=scale_divisor)
        breakdown = FPGAPerfModel(config, algorithm).evaluate(
            session, record_latency=False
        )
        if base_cycles is None:
            base_cycles = breakdown.kernel_cycles
        rows.append(
            {
                "k": k,
                "kernel_cycles": int(breakdown.kernel_cycles),
                "speedup_vs_k1": round(base_cycles / breakdown.kernel_cycles, 2),
                "bottleneck": breakdown.bottleneck,
            }
        )
    return ExperimentResult(
        name="ablation-k",
        title="End-to-end impact of sampler parallelism k (MetaPath on LJ)",
        rows=rows,
        paper_expectation=(
            "small k leaves the sampler as the bottleneck; by k = 16 the "
            "memory system binds and larger k buys nothing (consistent "
            "with Figure 10a's saturation)"
        ),
        params={"scale_divisor": scale_divisor, "k_values": list(k_values)},
    )


@register("ablation-cache-size")
def run_cache_sweep(
    scale_divisor: int = DEFAULT_SCALE,
    capacity_bits: tuple[int, ...] = (2, 4, 6, 8, 10, 12),
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = load_dataset("livejournal", scale_divisor=scale_divisor, seed=seed)
    algorithm = MetaPathWalk(METAPATH_SCHEMA)
    starts = graph.nonzero_degree_vertices()[:DEFAULT_SAMPLED_QUERIES]
    session = run_walks(
        graph, starts, METAPATH_LENGTH, algorithm, PWRSSampler(16, seed)
    )
    rows = []
    for bits in capacity_bits:
        # Sweep the physical capacity directly (hardware_scale = 1 so the
        # configured size is what the cache actually gets).
        config = LightRWConfig(cache_entries=1 << bits)
        breakdown = FPGAPerfModel(config, algorithm).evaluate(
            session, record_latency=False
        )
        rows.append(
            {
                "cache_entries": f"2^{bits}",
                "hit_ratio": round(breakdown.cache_hit_ratio, 3),
                "kernel_cycles": int(breakdown.kernel_cycles),
            }
        )
    return ExperimentResult(
        name="ablation-cache-size",
        title="Degree-aware cache capacity sweep (MetaPath on LJ stand-in)",
        rows=rows,
        paper_expectation=(
            "hit ratio grows with capacity following the degree mass of "
            "the cached hot set; kernel time improves modestly (the cache "
            "serves row_index lookups only — Figure 13's small DAC bar)"
        ),
        params={"scale_divisor": scale_divisor, "capacity_bits": list(capacity_bits)},
    )
