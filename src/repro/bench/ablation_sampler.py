"""Ablation — why WRS on the FPGA and not a table method (and vice versa).

Two views of the same design choice:

* on the **FPGA**, the streaming WRS pipeline vs the table-based sampler
  (the WRS-off ablation): the table forces a DRAM round-trip of the
  updated weights and serializes initialization/generation;
* on the **CPU**, the table methods vs parallel WRS dropped into
  ThunderRW: there the per-item random numbers are the expensive part —
  the asymmetry that motivates the whole paper (Section 3.2's "8.2x
  worse" probe).
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SAMPLED_QUERIES,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    ExperimentResult,
    register,
)
from repro.cpu.costmodel import CPUSpec
from repro.cpu.engine import ThunderRWEngine
from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel
from repro.graph.datasets import load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.stepper import PWRSSampler, run_walks


@register("ablation-sampler")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    graphs: tuple[str, ...] = ("livejournal", "orkut"),
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    algorithm = MetaPathWalk(METAPATH_SCHEMA)
    rows = []
    for name in graphs:
        graph = load_dataset(name, scale_divisor=scale_divisor, seed=seed)
        starts = graph.nonzero_degree_vertices()[:DEFAULT_SAMPLED_QUERIES]
        session = run_walks(
            graph, starts, METAPATH_LENGTH, algorithm, PWRSSampler(16, seed)
        )
        config = LightRWConfig().scaled(scale_divisor)
        fpga_wrs = FPGAPerfModel(config, algorithm).evaluate(session, record_latency=False)
        fpga_table = FPGAPerfModel(
            config.with_ablation(wrs=False), algorithm
        ).evaluate(session, record_latency=False)

        spec = CPUSpec().scaled(scale_divisor)
        cpu = {
            kind: ThunderRWEngine(graph, spec, sampler=kind, seed=seed).run(
                starts, METAPATH_LENGTH, algorithm
            )
            for kind in ("inverse-transform", "alias", "pwrs")
        }
        itx_exec = cpu["inverse-transform"].timing.exec_s
        rows.append(
            {
                "graph": name,
                "fpga_wrs_over_table": round(
                    fpga_table.kernel_cycles / fpga_wrs.kernel_cycles, 2
                ),
                "cpu_itx_over_pwrs": round(
                    cpu["pwrs"].timing.exec_s / itx_exec, 2
                ),
                "cpu_alias_over_itx": round(
                    cpu["alias"].timing.exec_s / itx_exec, 2
                ),
            }
        )
    return ExperimentResult(
        name="ablation-sampler",
        title="Sampling-method ablation: streaming WRS vs table methods",
        rows=rows,
        paper_expectation=(
            "WRS on the FPGA beats the table pipeline clearly (the Figure "
            "13 WRS bar); on the CPU the table methods stay competitive "
            "with (or beat) PWRS because per-item RNG is expensive there "
            "— the asymmetry that motivates the accelerator"
        ),
        params={"scale_divisor": scale_divisor},
    )
