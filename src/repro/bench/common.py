"""Shared infrastructure of the experiment harness."""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.artifacts import read_json_artifact, write_json_artifact
from repro.runtime import backend_names, comparison_backends, describe_backends

logger = logging.getLogger(__name__)

__all__ = [
    "DEFAULT_SAMPLED_QUERIES",
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "ExperimentResult",
    "METAPATH_LENGTH",
    "METAPATH_SCHEMA",
    "NODE2VEC_LENGTH",
    "NODE2VEC_P",
    "NODE2VEC_Q",
    "REGISTRY",
    "backend_names",
    "comparison_backends",
    "describe_backends",
    "load_result_json",
    "register",
]

#: Default dataset scale divisor used by the experiments (see DESIGN.md's
#: substitution table; the scaled-platform rule keeps ratios meaningful).
DEFAULT_SCALE = 512
#: Default seed for every experiment.
DEFAULT_SEED = 7
#: Query-sampling budget for functional walks.
DEFAULT_SAMPLED_QUERIES = 1024

#: The paper's workload parameters (Section 6.1.4).
METAPATH_SCHEMA = [0, 1, 2, 3]
METAPATH_LENGTH = 5
NODE2VEC_LENGTH = 80
NODE2VEC_P = 2.0
NODE2VEC_Q = 0.5


@dataclass
class ExperimentResult:
    """Output of one experiment: rows plus reproduction context."""

    name: str
    title: str
    rows: list[dict]
    paper_expectation: str
    params: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: Telemetry snapshot of the runs behind this experiment (populated by
    #: the runner when it executes under an observer; see repro.obs).
    metrics: dict = field(default_factory=dict)

    def column_names(self) -> list[str]:
        names: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def format_table(self) -> str:
        """Render the rows as an aligned text table."""
        columns = self.column_names()
        if not columns:
            return "(no rows)"
        formatted = [
            {c: _format_cell(row.get(c, "")) for c in columns} for row in self.rows
        ]
        widths = {
            c: max(len(c), *(len(row[c]) for row in formatted)) for c in columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in columns)
        separator = "  ".join("-" * widths[c] for c in columns)
        body = "\n".join(
            "  ".join(row[c].ljust(widths[c]) for c in columns) for row in formatted
        )
        return "\n".join([header, separator, body])

    def report(self) -> str:
        lines = [f"== {self.name}: {self.title} ==", ""]
        if self.params:
            lines.append(f"params: {self.params}")
        lines.append(f"paper expects: {self.paper_expectation}")
        lines.append("")
        lines.append(self.format_table())
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def save_json(self, directory: str | Path) -> Path:
        """Write the result as a checksummed JSON artifact (atomic)."""
        directory = Path(directory)
        path = directory / f"{self.name}.json"
        payload = {
            "name": self.name,
            "title": self.title,
            "paper_expectation": self.paper_expectation,
            "params": self.params,
            "rows": self.rows,
            "notes": self.notes,
        }
        if self.metrics:
            payload["metrics"] = self.metrics
        return write_json_artifact(path, payload, kind="bench-result")


def load_result_json(path: str | Path) -> dict:
    """Load one saved experiment result, verifying its integrity.

    Results written by :meth:`ExperimentResult.save_json` carry a
    checksummed envelope which is verified (corruption is quarantined and
    raised as :class:`~repro.errors.ArtifactCorruptionError`); results
    saved before the envelope existed load unverified with a warning.
    """
    path = Path(path)
    try:
        parsed = json.loads(path.read_text())
    except json.JSONDecodeError:
        parsed = None  # defer to read_json_artifact for quarantine + error
    if isinstance(parsed, dict) and "format_version" not in parsed:
        logger.warning("%s: legacy bench result without integrity envelope", path)
        return parsed
    return read_json_artifact(path, kind="bench-result")


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


#: name -> run callable returning an ExperimentResult.
REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(name: str) -> Callable:
    """Decorator registering an experiment's ``run`` function."""

    def wrap(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        REGISTRY[name] = fn
        return fn

    return wrap
