"""Energy accounting and terabyte-scale capacity projection experiments.

Extensions of Table 3 (energy per step, energy-delay product) and of the
paper's concluding remark about terabyte-scale graphs needing multiple
boards.
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    NODE2VEC_LENGTH,
    NODE2VEC_P,
    NODE2VEC_Q,
    ExperimentResult,
    register,
)
from repro.core.compare import compare_engines
from repro.fpga.energy import energy_comparison
from repro.fpga.projection import plan_capacity
from repro.graph.datasets import DATASETS, load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk


@register("energy")
def run_energy(
    scale_divisor: int = DEFAULT_SCALE,
    graphs: tuple[str, ...] = ("livejournal", "uk2002"),
    node2vec_length: int = NODE2VEC_LENGTH // 2,
    max_sampled_queries: int = 1024,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    workloads = [
        ("metapath", MetaPathWalk(METAPATH_SCHEMA), METAPATH_LENGTH),
        ("node2vec", Node2VecWalk(NODE2VEC_P, NODE2VEC_Q), node2vec_length),
    ]
    rows = []
    for name in graphs:
        graph = load_dataset(name, scale_divisor=scale_divisor, seed=seed)
        for app, algorithm, n_steps in workloads:
            report = compare_engines(
                graph, algorithm, n_steps, hardware_scale=scale_divisor,
                max_sampled_queries=max_sampled_queries, seed=seed,
            )
            figures = energy_comparison(
                app,
                fpga_time_s=report.lightrw.end_to_end_s,
                cpu_time_s=report.thunderrw.kernel_s,
                total_steps=report.lightrw.total_steps,
            )
            rows.append(
                {
                    "graph": name,
                    "app": app,
                    "lightrw_nj_per_step": round(figures["lightrw_nj_per_step"], 1),
                    "thunderrw_nj_per_step": round(figures["thunderrw_nj_per_step"], 1),
                    "energy_improvement": round(figures["energy_improvement"], 1),
                    "edp_improvement": round(figures["edp_improvement"], 1),
                }
            )
    return ExperimentResult(
        name="energy",
        title="Energy per step and energy-delay product (Table 3 extended)",
        rows=rows,
        paper_expectation=(
            "LightRW spends an order of magnitude less energy per sampled "
            "step; the energy-delay product compounds the speedup on top"
        ),
        params={"scale_divisor": scale_divisor, "node2vec_length": node2vec_length},
    )


@register("future-capacity")
def run_capacity() -> ExperimentResult:
    """Board planning for the paper's datasets and terabyte-scale targets."""
    rows = []
    for name in ("livejournal", "uk2002"):
        spec = DATASETS[name]
        plan = plan_capacity(spec.num_vertices, spec.num_edges)
        rows.append({"graph": f"{name} (paper scale)", **plan.as_row()})
    # The conclusion's hypothetical: a terabyte-scale web graph.
    for label, vertices, edges in (
        ("web 10x uk2002", 185_000_000, 3_000_000_000),
        ("terabyte-scale", 4_000_000_000, 125_000_000_000),
    ):
        plan = plan_capacity(vertices, edges)
        rows.append({"graph": label, **plan.as_row()})
    return ExperimentResult(
        name="future-capacity",
        title="Capacity projection: boards needed per graph (paper Section 8)",
        rows=rows,
        paper_expectation=(
            "the paper's datasets fit one U250 (per-channel replication); "
            "terabyte-scale graphs force a partitioned multi-board "
            "deployment whose throughput the network bounds"
        ),
    )
