"""Figure 6 — memory bandwidth and valid-data ratio vs burst length.

Blue curve: sustained bandwidth of back-to-back fixed-length bursts.
Red curve: ratio of useful bytes when MetaPath's neighbor fetches on
livejournal are forced through that fixed burst length.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import (
    DEFAULT_SAMPLED_QUERIES,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    ExperimentResult,
    register,
)
from repro.fpga.burst import BurstStrategy, plan_bursts
from repro.fpga.dram import DRAMTimings, burst_bandwidth_gbps
from repro.graph.csr import EDGE_RECORD_BYTES
from repro.graph.datasets import load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.stepper import PWRSSampler, run_walks


@register("fig6")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    burst_lengths: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = load_dataset("livejournal", scale_divisor=scale_divisor, seed=seed)
    starts = graph.nonzero_degree_vertices()[:DEFAULT_SAMPLED_QUERIES]
    session = run_walks(
        graph,
        starts,
        METAPATH_LENGTH,
        MetaPathWalk(METAPATH_SCHEMA),
        PWRSSampler(k=16, seed=seed),
    )
    fetch_bytes = np.concatenate(
        [r.degrees * EDGE_RECORD_BYTES for r in session.records]
    )
    timings = DRAMTimings()
    rows = []
    for beats in burst_lengths:
        bandwidth = burst_bandwidth_gbps(timings, beats)
        plan = plan_bursts(fetch_bytes, BurstStrategy(short_beats=beats, long_beats=0), timings)
        rows.append(
            {
                "burst_length": beats,
                "bandwidth_gbps": round(bandwidth, 2),
                "valid_data_ratio": round(plan.valid_ratio, 3),
            }
        )
    return ExperimentResult(
        name="fig6",
        title="Memory bandwidth and valid-data ratio vs burst length (MetaPath on LJ)",
        rows=rows,
        paper_expectation=(
            "bandwidth rises with burst length to the 17.57 GB/s peak; the "
            "valid-data ratio is highest at burst length 1 and decreases "
            "monotonically"
        ),
        params={"scale_divisor": scale_divisor, "burst_lengths": list(burst_lengths)},
    )
