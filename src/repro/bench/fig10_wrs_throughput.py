"""Figure 10 — WRS Sampler throughput.

(a) throughput vs parallelism k: linear scaling until the DRAM feed rate
binds (k = 16 saturates one channel); (b) throughput vs stream length at
k = 16: slightly below peak for short streams (pipeline fill), flat
otherwise.

The "measured" numbers come from driving the *cycle-accurate* sampler
module with synthetic weight streams; the "theoretical" line is
``k x frequency``.
"""

from __future__ import annotations

from repro.bench.common import DEFAULT_SEED, ExperimentResult, register
from repro.fpga.dram import DRAMTimings
from repro.fpga.wrs_sampler import WRSSamplerModel


def _measured_items_per_second(model: WRSSamplerModel, stream_items: int) -> float:
    return model.measured_throughput(stream_items, DRAMTimings())


@register("fig10a")
def run_parallelism(
    k_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    stream_items: int = 1 << 16,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    rows = []
    for k in k_values:
        model = WRSSamplerModel(k=k)
        measured = _measured_items_per_second(model, stream_items)
        rows.append(
            {
                "k": k,
                "measured_items_per_s": f"{measured:.3g}",
                "theoretical_items_per_s": f"{k * model.frequency_hz:.3g}",
                "bandwidth_equiv_gbps": round(measured * 4 / 1e9, 2),
            }
        )
    return ExperimentResult(
        name="fig10a",
        title="WRS Sampler throughput vs degree of parallelism k",
        rows=rows,
        paper_expectation=(
            "linear scaling matching the theoretical line up to k = 16, "
            "where the sampler saturates the channel's ~17 GB/s (4-byte "
            "items); larger k gains nothing"
        ),
        params={"stream_items": stream_items},
    )


@register("fig10b")
def run_stream_lengths(
    k: int = 16,
    exponents: tuple[int, ...] = (6, 8, 10, 12, 14, 16),
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    model = WRSSamplerModel(k=k)
    peak = model.sustained_items_per_second(DRAMTimings())
    rows = []
    for exp in exponents:
        n = 1 << exp
        measured = _measured_items_per_second(model, n)
        rows.append(
            {
                "stream_length": f"2^{exp}",
                "measured_items_per_s": f"{measured:.3g}",
                "fraction_of_peak": round(measured / peak, 3),
            }
        )
    return ExperimentResult(
        name="fig10b",
        title=f"WRS Sampler throughput vs stream length (k = {k})",
        rows=rows,
        paper_expectation=(
            "slightly below the memory-bound peak for small streams due to "
            "pipeline fill; negligible difference at scale"
        ),
        params={"k": k},
    )
