"""Figure 11 — degree-aware vs direct-mapped cache miss ratio.

Row-index access traces on growing RMAT graphs, against a cache of 2^12
vertices.  Both cache simulations are exact (see :mod:`repro.fpga.cache`).

Workload note: the paper drives this with MetaPath queries at paper scale,
where walks are long enough that the access stream is dominated by the
degree-biased stationary mix.  On our scaled stand-ins a 5-step MetaPath
trace is dominated by its uniform cold starts instead, which masks the
policy difference; we therefore use 20-step walks (the same unnormalized
stationary distribution) and report the cold-start share per row.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import DEFAULT_SEED, ExperimentResult, register
from repro.fpga.cache import simulate_degree_aware, simulate_direct_mapped
from repro.graph.generators import rmat_graph
from repro.walks.stepper import PWRSSampler, run_walks
from repro.walks.uniform import UniformWalk


@register("fig11")
def run(
    scales: tuple[int, ...] = (6, 8, 10, 12, 14, 16, 18),
    cache_entries: int = 1 << 12,
    max_queries: int = 1 << 13,
    walk_length: int = 20,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    rows = []
    for scale in scales:
        graph = rmat_graph(scale, edge_factor=8, seed=seed)
        starts = graph.nonzero_degree_vertices()
        if starts.size > max_queries:
            starts = starts[:: starts.size // max_queries][:max_queries]
        session = run_walks(
            graph, starts, walk_length, UniformWalk(), PWRSSampler(k=16, seed=seed)
        )
        trace = np.concatenate([r.curr for r in session.records])
        dac_hits = simulate_degree_aware(trace, graph.degrees, cache_entries)
        dmc_hits = simulate_direct_mapped(trace, cache_entries)
        rows.append(
            {
                "vertices": f"2^{scale}",
                "trace_len": trace.size,
                "cold_share": round(starts.size / max(trace.size, 1), 3),
                "dac_miss_ratio": round(1.0 - dac_hits.mean(), 3),
                "dmc_miss_ratio": round(1.0 - dmc_hits.mean(), 3),
            }
        )
    return ExperimentResult(
        name="fig11",
        title="Cache miss ratio: degree-aware (DAC) vs direct-mapped (DMC) on RMAT",
        rows=rows,
        paper_expectation=(
            "near-zero miss below 2^12 vertices (everything fits); beyond "
            "that DMC approaches 100% while DAC stays much lower (~49% at "
            "2^18 in the paper)"
        ),
        params={
            "cache_entries": cache_entries,
            "scales": list(scales),
            "walk_length": walk_length,
        },
        notes=[
            "20-step unbiased walks replace 5-step MetaPath so the scaled "
            "trace has the stationary (degree-biased) access mix of the "
            "paper-scale experiment; see module docstring"
        ],
    )
