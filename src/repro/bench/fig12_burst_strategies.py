"""Figure 12 — dynamic burst strategies on MetaPath.

Speedup of each ``b1+b{L}`` strategy over the short-only ``b1+b0``
baseline, on RMAT synthetics and real-graph stand-ins.
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SAMPLED_QUERIES,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    ExperimentResult,
    register,
)
from repro.fpga.burst import SHORT_ONLY, BurstStrategy
from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel
from repro.graph.datasets import load_dataset
from repro.graph.generators import rmat_graph
from repro.graph.labels import assign_random_weights, assign_vertex_labels
from repro.walks.metapath import MetaPathWalk
from repro.walks.stepper import PWRSSampler, run_walks


def _graphs(scale_divisor: int, rmat_scales: tuple[int, ...], seed: int):
    for rmat_scale in rmat_scales:
        graph = rmat_graph(rmat_scale, edge_factor=8, seed=seed)
        graph = assign_vertex_labels(graph, n_labels=4, seed=seed + 1)
        graph = assign_random_weights(graph, seed=seed + 2)
        yield graph, f"rmat-{rmat_scale}", 1
    for name in ("livejournal", "orkut"):
        yield load_dataset(name, scale_divisor=scale_divisor, seed=seed), name, scale_divisor


@register("fig12")
def run(
    scale_divisor: int = DEFAULT_SCALE // 4,
    rmat_scales: tuple[int, ...] = (16, 18, 20),
    long_lengths: tuple[int, ...] = (0, 2, 4, 8, 16, 32),
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    algorithm = MetaPathWalk(METAPATH_SCHEMA)
    rows = []
    best_by_graph: dict[str, str] = {}
    for graph, label, hw_scale in _graphs(scale_divisor, rmat_scales, seed):
        starts = graph.nonzero_degree_vertices()[:DEFAULT_SAMPLED_QUERIES]
        session = run_walks(
            graph, starts, METAPATH_LENGTH, algorithm, PWRSSampler(k=16, seed=seed)
        )
        row: dict[str, object] = {"graph": label}
        baseline_cycles = None
        best = (None, 0.0)
        for long_beats in long_lengths:
            strategy = (
                SHORT_ONLY
                if long_beats == 0
                else BurstStrategy(short_beats=1, long_beats=long_beats)
            )
            config = LightRWConfig(strategy=strategy).scaled(hw_scale)
            breakdown = FPGAPerfModel(config, algorithm).evaluate(
                session, record_latency=False
            )
            if baseline_cycles is None:
                baseline_cycles = breakdown.kernel_cycles
            speedup = baseline_cycles / breakdown.kernel_cycles
            row[strategy.label] = round(speedup, 2)
            if speedup > best[1]:
                best = (strategy.label, speedup)
        best_by_graph[label] = best[0]
        rows.append(row)
    return ExperimentResult(
        name="fig12",
        title="Dynamic burst strategy speedup over b1+b0 (MetaPath)",
        rows=rows,
        paper_expectation=(
            "b1+b32 wins everywhere (up to 4.24x on synthetic, up to 3.26x "
            "on real graphs); b1+b2 is the worst strategy (long bursts of "
            "two cannot amortize the engine overhead)"
        ),
        params={"long_lengths": list(long_lengths), "scale_divisor": scale_divisor},
        notes=[f"best strategy per graph: {best_by_graph}"],
    )
