"""Figure 13 — performance breakdown of WRS, DYB and DAC.

Each technique is disabled one at a time; the bar is the ablated
configuration's performance relative to everything enabled (1.0 = no
contribution, lower = the technique mattered more).
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SAMPLED_QUERIES,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    NODE2VEC_LENGTH,
    NODE2VEC_P,
    NODE2VEC_Q,
    ExperimentResult,
    register,
)
from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel
from repro.graph.datasets import DATASET_ORDER, load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk
from repro.walks.stepper import PWRSSampler, run_walks


@register("fig13")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    graphs: tuple[str, ...] = tuple(DATASET_ORDER),
    node2vec_length: int = NODE2VEC_LENGTH // 2,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    workloads = [
        ("MetaPath", MetaPathWalk(METAPATH_SCHEMA), METAPATH_LENGTH),
        ("Node2Vec", Node2VecWalk(NODE2VEC_P, NODE2VEC_Q), node2vec_length),
    ]
    rows = []
    for name in graphs:
        graph = load_dataset(name, scale_divisor=scale_divisor, seed=seed)
        starts = graph.nonzero_degree_vertices()[:DEFAULT_SAMPLED_QUERIES]
        for app, algorithm, n_steps in workloads:
            session = run_walks(
                graph, starts, n_steps, algorithm, PWRSSampler(k=16, seed=seed)
            )
            full_config = LightRWConfig().scaled(scale_divisor)
            full = FPGAPerfModel(full_config, algorithm).evaluate(
                session, record_latency=False
            )
            row: dict[str, object] = {"graph": name, "app": app}
            for column, ablated in (
                ("w/o WRS", full_config.with_ablation(wrs=False)),
                ("w/o DYB", full_config.with_ablation(dynamic_burst=False)),
                ("w/o DAC", full_config.with_ablation(cache=False)),
            ):
                breakdown = FPGAPerfModel(ablated, algorithm).evaluate(
                    session, record_latency=False
                )
                row[column] = round(full.kernel_cycles / breakdown.kernel_cycles, 3)
            rows.append(row)
    return ExperimentResult(
        name="fig13",
        title="Ablation: relative performance with one technique disabled",
        rows=rows,
        paper_expectation=(
            "WRS contributes the most (disabling it loses 41-79%, more on "
            "Node2Vec); DYB helps Node2Vec less than MetaPath; DAC is the "
            "smallest contributor, larger on MetaPath and biggest on the "
            "largest graph (uk2002, ~6%)"
        ),
        params={"scale_divisor": scale_divisor, "node2vec_length": node2vec_length},
    )
