"""Figure 14 — LightRW vs ThunderRW speedup on the real-graph stand-ins.

Includes the "ThunderRW w/ PWRS" variant: the parallel reservoir sampler
dropped into the CPU engine.
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    NODE2VEC_LENGTH,
    NODE2VEC_P,
    NODE2VEC_Q,
    ExperimentResult,
    register,
)
from repro.core.compare import compare_engines
from repro.graph.datasets import DATASET_ORDER, load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk


@register("fig14")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    graphs: tuple[str, ...] = tuple(DATASET_ORDER),
    node2vec_length: int = NODE2VEC_LENGTH // 2,
    max_sampled_queries: int = 1024,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    workloads = [
        ("MetaPath", MetaPathWalk(METAPATH_SCHEMA), METAPATH_LENGTH),
        ("Node2Vec", Node2VecWalk(NODE2VEC_P, NODE2VEC_Q), node2vec_length),
    ]
    rows = []
    for name in graphs:
        graph = load_dataset(name, scale_divisor=scale_divisor, seed=seed)
        for app, algorithm, n_steps in workloads:
            report = compare_engines(
                graph,
                algorithm,
                n_steps,
                hardware_scale=scale_divisor,
                max_sampled_queries=max_sampled_queries,
                include_pwrs_variant=True,
                seed=seed,
            )
            rows.append(
                {
                    "graph": name,
                    "app": app,
                    "speedup": round(report.speedup, 2),
                    "thunderrw_w_pwrs": round(report.pwrs_on_cpu_speedup, 2),
                    "lightrw_steps_per_s": f"{report.lightrw.steps_per_second:.3g}",
                    "thunderrw_steps_per_s": f"{report.thunderrw.steps_per_second:.3g}",
                }
            )
    return ExperimentResult(
        name="fig14",
        title="LightRW speedup over ThunderRW (end-to-end, PCIe included)",
        rows=rows,
        paper_expectation=(
            "6.27-9.55x on MetaPath and 5.17-9.10x on Node2Vec; smallest "
            "speedup on youtube (it fits the CPU LLC); ThunderRW w/ PWRS "
            "is mixed — up to 1.84x better on orkut, worse on some graphs"
        ),
        params={
            "scale_divisor": scale_divisor,
            "node2vec_length": node2vec_length,
            "max_sampled_queries": max_sampled_queries,
        },
    )
