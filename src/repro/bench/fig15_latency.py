"""Figure 15 — per-query latency distributions (box plots).

8192 random queries per graph on both systems; the five box-plot numbers
(min, quartiles, max) per system per workload.
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    NODE2VEC_LENGTH,
    NODE2VEC_P,
    NODE2VEC_Q,
    ExperimentResult,
    comparison_backends,
    register,
)
from repro.core.api import LightRW
from repro.core.queries import make_queries
from repro.graph.datasets import DATASET_ORDER, load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk


@register("fig15")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    graphs: tuple[str, ...] = tuple(DATASET_ORDER),
    n_queries: int = 8192,
    max_sampled_queries: int = 1024,
    node2vec_length: int = NODE2VEC_LENGTH // 2,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    workloads = [
        ("MetaPath", MetaPathWalk(METAPATH_SCHEMA), METAPATH_LENGTH),
        ("Node2Vec", Node2VecWalk(NODE2VEC_P, NODE2VEC_Q), node2vec_length),
    ]
    rows = []
    for name in graphs:
        graph = load_dataset(name, scale_divisor=scale_divisor, seed=seed)
        starts = make_queries(graph, n_queries=n_queries, seed=seed)
        for app, algorithm, n_steps in workloads:
            for backend, system in comparison_backends():
                engine = LightRW(
                    graph, backend=backend, hardware_scale=scale_divisor, seed=seed
                )
                result = engine.run(
                    algorithm,
                    n_steps,
                    starts=starts,
                    max_sampled_queries=max_sampled_queries,
                )
                stats = result.latency_stats().as_row(unit_scale=1e6)
                rows.append(
                    {
                        "graph": name,
                        "app": app,
                        "system": system,
                        **{f"{k}_us": round(v, 2) for k, v in stats.items()},
                    }
                )
    return ExperimentResult(
        name="fig15",
        title="Query latency distribution (microseconds)",
        rows=rows,
        paper_expectation=(
            "LightRW has much lower latency than ThunderRW and a tighter, "
            "more consistent spread across graphs (deterministic hardware "
            "vs multi-threaded CPU jitter)"
        ),
        params={
            "scale_divisor": scale_divisor,
            "n_queries": n_queries,
            "node2vec_length": node2vec_length,
        },
    )
