"""Figure 16 — throughput vs number of queries on livejournal.

LightRW kernel throughput stays flat; ThunderRW includes its constant
initialization (thread pool, buffers), so small batches crater its
throughput — the source of the paper's up-to-75x small-batch speedups.
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    NODE2VEC_LENGTH,
    NODE2VEC_P,
    NODE2VEC_Q,
    ExperimentResult,
    register,
)
from repro.core.api import LightRW
from repro.core.queries import make_queries
from repro.graph.datasets import load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk


@register("fig16")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    query_exponents: tuple[int, ...] = (10, 12, 14, 16, 18, 20, 22),
    max_sampled_queries: int = 1024,
    node2vec_length: int = NODE2VEC_LENGTH // 2,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = load_dataset("livejournal", scale_divisor=scale_divisor, seed=seed)
    workloads = [
        ("MetaPath", MetaPathWalk(METAPATH_SCHEMA), METAPATH_LENGTH),
        ("Node2Vec", Node2VecWalk(NODE2VEC_P, NODE2VEC_Q), node2vec_length),
    ]
    fpga = LightRW(graph, backend="fpga-model", hardware_scale=scale_divisor, seed=seed)
    cpu = LightRW(graph, backend="cpu-baseline", hardware_scale=scale_divisor, seed=seed)
    rows = []
    for app, algorithm, n_steps in workloads:
        for exp in query_exponents:
            n_queries = 1 << exp
            starts = make_queries(graph, n_queries=n_queries, seed=seed)
            light = fpga.run(
                algorithm, n_steps, starts=starts,
                max_sampled_queries=max_sampled_queries, record_latency=False,
            )
            thunder = cpu.run(
                algorithm, n_steps, starts=starts,
                max_sampled_queries=max_sampled_queries,
            )
            # ThunderRW throughput includes its initialization (the paper's
            # point); LightRW's is kernel throughput.
            thunder_tput = thunder.total_steps / thunder.end_to_end_s
            rows.append(
                {
                    "app": app,
                    "queries": f"2^{exp}",
                    "lightrw_steps_per_s": f"{light.steps_per_second:.3g}",
                    "thunderrw_steps_per_s": f"{thunder_tput:.3g}",
                    "speedup": round(light.steps_per_second / thunder_tput, 1),
                }
            )
    return ExperimentResult(
        name="fig16",
        title="Throughput vs number of queries (livejournal)",
        rows=rows,
        paper_expectation=(
            "LightRW nearly constant (4.8e7 steps/s MetaPath, 3.5e7 "
            "Node2Vec at paper scale); speedup 11-75x on MetaPath and "
            "8.3-35x on Node2Vec, largest at 2^10 queries where "
            "ThunderRW's constant initialization dominates"
        ),
        params={
            "scale_divisor": scale_divisor,
            "node2vec_length": node2vec_length,
            "query_exponents": list(query_exponents),
        },
    )
