"""Figure 17 — throughput vs query length on livejournal.

Both systems should deliver roughly constant throughput as the walk
length grows from 10 to 80, with LightRW's advantage stable (~10x on
MetaPath, ~8-9x on Node2Vec in the paper).
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_SCHEMA,
    NODE2VEC_P,
    NODE2VEC_Q,
    ExperimentResult,
    register,
)
from repro.core.api import LightRW
from repro.core.queries import make_queries
from repro.graph.datasets import load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk


@register("fig17")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    lengths: tuple[int, ...] = (10, 20, 40, 60, 80),
    max_sampled_queries: int = 768,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = load_dataset("livejournal", scale_divisor=scale_divisor, seed=seed)
    starts = make_queries(graph, seed=seed)
    workloads = [
        # A cyclic schema keeps MetaPath walks alive at any length.
        ("MetaPath", MetaPathWalk(METAPATH_SCHEMA)),
        ("Node2Vec", Node2VecWalk(NODE2VEC_P, NODE2VEC_Q)),
    ]
    fpga = LightRW(graph, backend="fpga-model", hardware_scale=scale_divisor, seed=seed)
    cpu = LightRW(graph, backend="cpu-baseline", hardware_scale=scale_divisor, seed=seed)
    rows = []
    for app, algorithm in workloads:
        for length in lengths:
            light = fpga.run(
                algorithm, length, starts=starts,
                max_sampled_queries=max_sampled_queries, record_latency=False,
            )
            thunder = cpu.run(
                algorithm, length, starts=starts,
                max_sampled_queries=max_sampled_queries,
            )
            rows.append(
                {
                    "app": app,
                    "length": length,
                    "lightrw_steps_per_s": f"{light.steps_per_second:.3g}",
                    "thunderrw_steps_per_s": f"{thunder.steps_per_second:.3g}",
                    "speedup": round(light.steps_per_second / thunder.steps_per_second, 2),
                }
            )
    return ExperimentResult(
        name="fig17",
        title="Throughput vs query length (livejournal)",
        rows=rows,
        paper_expectation=(
            "flat throughput for both systems across lengths 10-80; "
            "speedup ~9.97-10.20x on MetaPath and ~8.28-9.31x on Node2Vec "
            "at paper scale"
        ),
        params={"scale_divisor": scale_divisor, "lengths": list(lengths)},
    )
