"""Figure 18 — link prediction case study on livejournal.

Per-phase execution time of the SNAP pipeline with and without LightRW
acceleration of the Node2Vec walk.
"""

from __future__ import annotations

from repro.bench.common import DEFAULT_SCALE, DEFAULT_SEED, ExperimentResult, register
from repro.apps.link_prediction import LinkPredictionPipeline
from repro.graph.datasets import load_dataset


@register("fig18")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    walk_length: int = 40,
    max_sampled_queries: int = 1024,
    epochs: int = 2,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = load_dataset("livejournal", scale_divisor=scale_divisor, seed=seed)
    pipeline = LinkPredictionPipeline(
        graph, hardware_scale=scale_divisor, walk_length=walk_length, seed=seed
    )
    report = pipeline.run(
        max_sampled_queries=max_sampled_queries,
        max_training_pairs=150_000,
        epochs=epochs,
    )
    rows = [
        {"deployment": "SNAP", **{k: f"{v:.4g}" for k, v in report.snap.as_row().items()}},
        {
            "deployment": "SNAP w/ LightRW",
            **{k: f"{v:.4g}" for k, v in report.snap_with_lightrw.as_row().items()},
        },
    ]
    return ExperimentResult(
        name="fig18",
        title="Link prediction time breakdown (seconds, modeled platform frame)",
        rows=rows,
        paper_expectation=(
            "the Node2Vec walk dominates plain SNAP; accelerating it with "
            "LightRW roughly halves end-to-end time, with transfer "
            "negligible"
        ),
        params={
            "scale_divisor": scale_divisor,
            "walk_length": walk_length,
            "epochs": epochs,
        },
        notes=[
            f"embedding AUC on held-out edges: {report.auc:.3f} "
            f"({report.num_test_pairs} test pairs)",
            f"end-to-end speedup: {report.end_to_end_speedup:.2f}x; "
            f"walk-phase speedup: {report.extras['walk_speedup']:.2f}x",
            f"functional (numpy) training wall time: "
            f"{report.extras['measured_learning_s']:.2f}s",
        ],
    )
