"""Future-work studies: distributed LightRW and an HBM deployment.

The paper's Section 8 sketches two directions; both are modeled here so
the benchmarks can chart their behaviour:

* ``future-distributed`` — walker-migration scaling across boards over
  100G Ethernet: speedup until the network (and hash imbalance) binds;
* ``future-hbm`` — the same workload on an HBM board (many narrow
  pseudo-channels) vs the paper's U250 (four wide DDR4 channels).
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SAMPLED_QUERIES,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    NODE2VEC_P,
    NODE2VEC_Q,
    ExperimentResult,
    register,
)
from repro.fpga.distributed import DistributedLightRW
from repro.graph.partition import (
    greedy_grow_partition,
    partition_quality,
    range_partition,
)
from repro.fpga.perfmodel import FPGAPerfModel
from repro.fpga.platforms import u250_config, u280_hbm_config
from repro.graph.datasets import load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk
from repro.walks.stepper import PWRSSampler, run_walks


@register("future-distributed")
def run_distributed(
    scale_divisor: int = DEFAULT_SCALE,
    board_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = load_dataset("livejournal", scale_divisor=scale_divisor, seed=seed)
    algorithm = MetaPathWalk(METAPATH_SCHEMA)
    starts = graph.nonzero_degree_vertices()[:DEFAULT_SAMPLED_QUERIES]
    session = run_walks(
        graph, starts, METAPATH_LENGTH, algorithm, PWRSSampler(16, seed)
    )
    config = u250_config().scaled(scale_divisor)
    sweep = DistributedLightRW(config, algorithm, 1).scaling_curve(
        session, list(board_counts)
    )
    base = sweep[0].wall_s
    rows = [
        {
            "boards": outcome.n_boards,
            "partitioner": "hash",
            "migration_fraction": round(outcome.migration_fraction, 3),
            "kernel_ms": round(outcome.kernel_s * 1e3, 4),
            "network_ms": round(outcome.network_s * 1e3, 4),
            "speedup": round(base / outcome.wall_s, 2),
        }
        for outcome in sweep
    ]
    # Partitioner comparison at the largest board count: how much a
    # locality-aware assignment buys back from the network.
    boards = board_counts[-1]
    for label, assignment in (
        ("range", range_partition(graph, boards)),
        ("greedy", greedy_grow_partition(graph, boards, seed=seed)),
    ):
        outcome = DistributedLightRW(
            config, algorithm, boards, assignment=assignment
        ).evaluate(session)
        quality = partition_quality(graph, assignment)
        rows.append(
            {
                "boards": boards,
                "partitioner": f"{label} (cut {quality.edge_cut_fraction:.2f})",
                "migration_fraction": round(outcome.migration_fraction, 3),
                "kernel_ms": round(outcome.kernel_s * 1e3, 4),
                "network_ms": round(outcome.network_s * 1e3, 4),
                "speedup": round(base / outcome.wall_s, 2),
            }
        )
    return ExperimentResult(
        name="future-distributed",
        title="Distributed LightRW scaling (modeled, 100G Ethernet)",
        rows=rows,
        paper_expectation=(
            "future work (Section 8): speedup grows with boards while "
            "per-board DRAM dominates, then flattens as walker migration "
            "(~(B-1)/B of steps under hash partitioning) loads the network"
        ),
        params={"scale_divisor": scale_divisor, "board_counts": list(board_counts)},
    )


@register("future-hbm")
def run_hbm(
    scale_divisor: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = load_dataset("livejournal", scale_divisor=scale_divisor, seed=seed)
    workloads = [
        ("MetaPath", MetaPathWalk(METAPATH_SCHEMA), METAPATH_LENGTH),
        ("Node2Vec", Node2VecWalk(NODE2VEC_P, NODE2VEC_Q), 20),
    ]
    platforms = [
        ("U250 (4x DDR4)", u250_config().scaled(scale_divisor)),
        ("U280 (16x HBM)", u280_hbm_config(16).scaled(scale_divisor)),
        ("U280 (32x HBM)", u280_hbm_config(32).scaled(scale_divisor)),
    ]
    rows = []
    for app, algorithm, n_steps in workloads:
        starts = graph.nonzero_degree_vertices()[:DEFAULT_SAMPLED_QUERIES]
        row: dict[str, object] = {"app": app}
        for label, config in platforms:
            session = run_walks(
                graph, starts, n_steps, algorithm, PWRSSampler(config.k, seed)
            )
            breakdown = FPGAPerfModel(config, algorithm).evaluate(
                session, record_latency=False
            )
            row[label] = f"{breakdown.steps_per_second:.3g}"
        rows.append(row)
    return ExperimentResult(
        name="future-hbm",
        title="Platform study: DDR4 U250 vs HBM U280 (steps/s)",
        rows=rows,
        paper_expectation=(
            "related work (Su et al.) uses HBM: many narrow channels "
            "trade per-channel bandwidth for channel count; with one "
            "LightRW instance per pseudo-channel the aggregate wins on "
            "short-adjacency workloads"
        ),
        params={"scale_divisor": scale_divisor},
    )
