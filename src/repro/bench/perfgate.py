"""Benchmark regression gate: ``lightrw-bench perfgate``.

LightRW's argument is won or lost on measured throughput, so performance
is machine-checked like correctness: this module times a pinned workload
matrix — facade runs (backend × algorithm × execution mode), the
vectorized cache-trace kernels against their stateful per-access loops,
and the cycle simulator's tick loop — writes the numbers as a
sequence-numbered ``BENCH_perf_<n>.json`` artifact, and fails when any
gated metric regresses beyond a tolerance against the committed
``BENCH_perf_baseline.json``.

All gated metrics are higher-is-better throughput/speedup figures, so a
regression is ``current < baseline * (1 - tolerance)``; absolute seconds
ride along for humans but are never gated (they are machine-dependent —
the ``speedup`` ratio is the machine-independent acceptance figure).

Exit codes: 0 = no regression, 1 = regression, 2 = configuration error
(e.g. no baseline; record one with ``--write-baseline``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.artifacts import read_json_artifact, write_json_artifact
from repro.errors import ReproError

__all__ = ["GATED_METRICS", "Workload", "compare_runs", "default_workloads", "main"]

#: Default baseline file (committed at the repo root).
BASELINE_NAME = "BENCH_perf_baseline.json"

#: Allowed fractional slowdown before a gated metric fails.
DEFAULT_TOLERANCE = 0.25

#: Metrics compared against the baseline — all higher-is-better.
GATED_METRICS = ("steps_per_s", "accesses_per_s", "speedup", "cycles_per_s")


@dataclass(frozen=True)
class Workload:
    """One pinned measurement: a key, a runner kind and its parameters."""

    key: str
    kind: str  # "facade" | "cache-sim" | "sim-tick"
    quick: bool  # part of the --quick subset?
    params: dict


def default_workloads() -> list[Workload]:
    """The pinned matrix; keys are stable so baselines stay comparable."""
    out: list[Workload] = []
    for backend in ("fpga-model", "cpu-baseline"):
        for algorithm in ("uniform", "node2vec"):
            for mode in ("sequential", "thread", "process"):
                quick = algorithm == "uniform" and (
                    (backend == "fpga-model" and mode != "thread")
                    or (backend == "cpu-baseline" and mode == "sequential")
                )
                out.append(
                    Workload(
                        key=f"run:{backend}:{algorithm}:{mode}",
                        kind="facade",
                        quick=quick,
                        params={
                            "backend": backend,
                            "algorithm": algorithm,
                            "mode": mode,
                            "shards": 4,
                        },
                    )
                )
    out.append(
        Workload(
            key="run:fpga-cycle:uniform:sequential",
            kind="facade",
            quick=False,
            params={
                "backend": "fpga-cycle",
                "algorithm": "uniform",
                "mode": "sequential",
                "shards": 1,
                "queries": 32,
                "length": 8,
            },
        )
    )
    out.append(Workload("cache-sim-lru", "cache-sim", True, {"policy": "lru"}))
    out.append(Workload("cache-sim-fifo", "cache-sim", True, {"policy": "fifo"}))
    out.append(Workload("sim-tick", "sim-tick", True, {}))
    return out


# -- workload runners ---------------------------------------------------------

_GRAPH_CACHE: dict[tuple, object] = {}


def _facade_graph(scale: int, seed: int):
    from repro.graph.generators import rmat_graph

    key = ("graph", scale, seed)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = rmat_graph(scale, edge_factor=8, seed=seed)
    return _GRAPH_CACHE[key]


def _walk_trace(scale: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """The cache-ablation access trace (mirrors ``ablation-cache``)."""
    from repro.walks.stepper import PWRSSampler, run_walks
    from repro.walks.uniform import UniformWalk

    key = ("trace", scale, seed)
    if key not in _GRAPH_CACHE:
        graph = _facade_graph(scale, seed)
        starts = graph.nonzero_degree_vertices()
        if starts.size > 4096:
            starts = starts[:: starts.size // 4096][:4096]
        session = run_walks(graph, starts, 15, UniformWalk(), PWRSSampler(16, seed))
        trace = np.concatenate([r.curr for r in session.records])
        _GRAPH_CACHE[key] = (trace, graph.degrees)
    return _GRAPH_CACHE[key]


def _run_facade(workload: Workload, args, repeat: int) -> dict:
    from repro.core.api import LightRW
    from repro.core.queries import make_queries
    from repro.walks.node2vec import Node2VecWalk
    from repro.walks.uniform import UniformWalk

    params = workload.params
    graph = _facade_graph(args.rmat_scale_run, args.seed)
    n_queries = int(params.get("queries", args.queries))
    length = int(params.get("length", args.length))
    algorithm = (
        Node2VecWalk(p=2.0, q=0.5)
        if params["algorithm"] == "node2vec"
        else UniformWalk()
    )
    engine = LightRW(graph, backend=params["backend"], seed=args.seed)
    starts = make_queries(graph, n_queries=n_queries, seed=args.seed)
    best_s = float("inf")
    total_steps = 0
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = engine.run(
            algorithm,
            length,
            starts=starts,
            shards=int(params.get("shards", 4)),
            mode=params["mode"],
            record_latency=False,
        )
        best_s = min(best_s, time.perf_counter() - t0)
        total_steps = result.total_steps
    return {
        "steps_per_s": total_steps / best_s,
        "wall_s": best_s,
        "total_steps": total_steps,
    }


def _run_cache_sim(workload: Workload, args, repeat: int) -> dict:
    from repro.fpga.cache import FIFOCache, LRUCache, simulate_fifo, simulate_lru

    policy = workload.params["policy"]
    trace, degrees = _walk_trace(args.rmat_scale, args.seed)
    capacity, ways = 1 << 10, 4
    vectorized = simulate_lru if policy == "lru" else simulate_fifo
    stateful_cls = LRUCache if policy == "lru" else FIFOCache

    vector_s = float("inf")
    hits = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        hits = vectorized(trace, capacity, ways=ways)
        vector_s = min(vector_s, time.perf_counter() - t0)

    # The reference loop reproduces the hot path the vectorized kernels
    # replaced in FPGAPerfModel._cache_hits: a stateful cache walked one
    # access at a time into a per-access hit mask.
    loop_s = float("inf")
    loop_hits = None
    for _ in range(repeat):
        cache = stateful_cls(capacity, ways=ways)
        t0 = time.perf_counter()
        loop_hits = np.zeros(trace.size, dtype=bool)
        for i, vertex in enumerate(trace.tolist()):
            loop_hits[i] = cache.access(vertex, int(degrees[vertex]))
        loop_s = min(loop_s, time.perf_counter() - t0)

    if not np.array_equal(hits, loop_hits):
        raise ReproError(
            f"cache-sim-{policy}: vectorized hit mask disagrees with the "
            f"stateful cache ({int(hits.sum())} vs {int(loop_hits.sum())} hits)"
        )
    return {
        "vector_s": vector_s,
        "loop_s": loop_s,
        "speedup": loop_s / vector_s,
        "accesses_per_s": trace.size / vector_s,
        "accesses": int(trace.size),
        "hit_ratio": float(hits.mean()),
    }


def _run_sim_tick(workload: Workload, args, repeat: int) -> dict:
    from repro.fpga.sim.clock import Simulator
    from repro.fpga.sim.fifo import FIFO
    from repro.fpga.sim.module import Module

    events = int(args.events)

    class Producer(Module):
        def __init__(self, fifo: FIFO, total: int) -> None:
            super().__init__("producer")
            self.fifo = fifo
            self.total = total
            self.sent = 0

        def tick(self, cycle: int) -> None:
            if self.sent < self.total and self.fifo.can_push():
                self.fifo.push(self.sent)
                self.sent += 1
                self.busy_cycles += 1

        def is_idle(self) -> bool:
            return self.sent >= self.total

    class Consumer(Module):
        def __init__(self, fifo: FIFO) -> None:
            super().__init__("consumer")
            self.fifo = fifo
            self.received = 0

        def tick(self, cycle: int) -> None:
            if self.fifo.can_pop():
                self.fifo.pop()
                self.received += 1
                self.busy_cycles += 1

    best_s = float("inf")
    cycles = 0
    for _ in range(repeat):
        channel = FIFO("channel", depth=8)
        producer = Producer(channel, events)
        consumer = Consumer(channel)
        sim = Simulator([producer, consumer], [channel])
        t0 = time.perf_counter()
        cycles = sim.run_until(lambda: consumer.received >= events)
        best_s = min(best_s, time.perf_counter() - t0)
    return {
        "cycles_per_s": cycles / best_s,
        "wall_s": best_s,
        "cycles": cycles,
    }


_RUNNERS = {
    "facade": _run_facade,
    "cache-sim": _run_cache_sim,
    "sim-tick": _run_sim_tick,
}


# -- gating -------------------------------------------------------------------


def compare_runs(
    current: dict, baseline: dict, tolerance: float
) -> tuple[int, list[dict]]:
    """Count gated comparisons and collect the regressions.

    Only (workload, metric) pairs present in *both* runs are compared, so
    a ``--quick`` run gates against the subset a full baseline shares
    with it.
    """
    compared = 0
    regressions: list[dict] = []
    for key, metrics in current.items():
        base = baseline.get(key)
        if not isinstance(base, dict):
            continue
        for name in GATED_METRICS:
            if name not in metrics or name not in base or base[name] <= 0:
                continue
            compared += 1
            floor = base[name] * (1.0 - tolerance)
            if metrics[name] < floor:
                regressions.append(
                    {
                        "workload": key,
                        "metric": name,
                        "current": metrics[name],
                        "baseline": base[name],
                        "floor": floor,
                    }
                )
    return compared, regressions


def _load_baseline(path: Path) -> dict:
    """Read a baseline file, with or without the artifact envelope."""
    parsed = json.loads(path.read_text())
    if isinstance(parsed, dict) and "format_version" in parsed:
        parsed = read_json_artifact(path, kind="perf-gate")
    workloads = parsed.get("workloads")
    if not isinstance(workloads, dict):
        raise ReproError(f"{path}: not a perfgate result (no 'workloads' map)")
    return workloads


def _next_sequence(out_dir: Path) -> int:
    """The next ``BENCH_perf_<n>.json`` number in ``out_dir``."""
    highest = 0
    for existing in out_dir.glob("BENCH_perf_*.json"):
        suffix = existing.stem.removeprefix("BENCH_perf_")
        if suffix.isdigit():
            highest = max(highest, int(suffix))
    return highest + 1


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lightrw-bench perfgate",
        description="Time the pinned workload matrix and gate against the "
        "committed performance baseline.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the CI subset of the matrix with a single repeat",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline to gate against (default: ./{BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record this run as the baseline instead of gating",
    )
    parser.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_perf_<n>.json (default: current directory)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown per gated metric "
        f"(default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--repeat", type=int, default=None, metavar="N",
        help="best-of-N timing repeats (default: 3, or 2 with --quick)",
    )
    parser.add_argument(
        "--workload", action="append", default=None, metavar="KEY",
        help="run only workloads whose key contains KEY (repeatable)",
    )
    # Micro-override knobs so tests and constrained machines can shrink
    # the matrix; overriding them makes absolute numbers incomparable to
    # a baseline taken at the defaults (the keys stay the same).
    parser.add_argument("--rmat-scale", type=int, default=15,
                        help="cache-trace graph scale (default 15)")
    parser.add_argument("--rmat-scale-run", type=int, default=12,
                        help="facade-run graph scale (default 12)")
    parser.add_argument("--queries", type=int, default=256)
    parser.add_argument("--length", type=int, default=16)
    parser.add_argument("--events", type=int, default=200_000,
                        help="sim-tick transfer count (default 200000)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.tolerance < 0 or args.tolerance >= 1:
        print(f"error: --tolerance must be in [0, 1), got {args.tolerance}",
              file=sys.stderr)
        return 2
    repeat = args.repeat if args.repeat is not None else (2 if args.quick else 3)
    if repeat < 1:
        print(f"error: --repeat must be >= 1, got {repeat}", file=sys.stderr)
        return 2

    workloads = [w for w in default_workloads() if w.quick or not args.quick]
    if args.workload:
        workloads = [
            w for w in workloads if any(k in w.key for k in args.workload)
        ]
    if not workloads:
        print("error: no workloads selected", file=sys.stderr)
        return 2

    started = time.perf_counter()
    results: dict[str, dict] = {}
    for workload in workloads:
        metrics = _RUNNERS[workload.kind](workload, args, repeat)
        results[workload.key] = metrics
        shown = ", ".join(
            f"{name}={metrics[name]:.4g}"
            for name in GATED_METRICS
            if name in metrics
        )
        print(f"{workload.key:<44} {shown}")
    duration_s = time.perf_counter() - started

    payload = {
        "meta": {
            "date": time.strftime("%Y-%m-%d"),
            "command": "lightrw-bench perfgate"
            + (" --quick" if args.quick else ""),
            "quick": args.quick,
            "repeat": repeat,
            "tolerance": args.tolerance,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "params": {
                "rmat_scale": args.rmat_scale,
                "rmat_scale_run": args.rmat_scale_run,
                "queries": args.queries,
                "length": args.length,
                "events": args.events,
                "seed": args.seed,
            },
        },
        "workloads": results,
        "metrics": {
            "perfgate.workloads": len(results),
            "perfgate.duration_s": duration_s,
        },
    }

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if args.write_baseline:
        destination = out_dir / BASELINE_NAME
        write_json_artifact(destination, payload, kind="perf-gate")
        print(f"wrote baseline {destination} ({len(results)} workload(s), "
              f"{duration_s:.1f}s)")
        return 0

    baseline_path = Path(args.baseline) if args.baseline else Path(BASELINE_NAME)
    if not baseline_path.is_file():
        print(
            f"error: baseline {baseline_path} not found; record one with "
            f"'lightrw-bench perfgate --write-baseline'",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = _load_baseline(baseline_path)
    except (ReproError, json.JSONDecodeError, OSError) as exc:
        print(f"error: cannot read baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return 2

    compared, regressions = compare_runs(results, baseline, args.tolerance)
    payload["metrics"]["perfgate.comparisons"] = compared
    payload["metrics"]["perfgate.regressions"] = len(regressions)
    if regressions:
        payload["regressions"] = regressions

    destination = out_dir / f"BENCH_perf_{_next_sequence(out_dir)}.json"
    write_json_artifact(destination, payload, kind="perf-gate")
    print(f"wrote {destination}")

    if regressions:
        for entry in regressions:
            print(
                f"REGRESSION {entry['workload']}.{entry['metric']}: "
                f"{entry['current']:.4g} < floor {entry['floor']:.4g} "
                f"(baseline {entry['baseline']:.4g}, "
                f"tolerance {args.tolerance:.0%})",
                file=sys.stderr,
            )
        print(
            f"perfgate: {len(regressions)} of {compared} gated metric(s) "
            f"regressed beyond {args.tolerance:.0%}",
            file=sys.stderr,
        )
        return 1
    print(
        f"perfgate ok: {compared} gated metric(s) within {args.tolerance:.0%} "
        f"of baseline ({duration_s:.1f}s)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
