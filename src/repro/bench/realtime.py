"""Real-time serving study — extends Figure 15 to open-loop arrivals.

Builds queueing models of both engines from their modeled latency samples
and capacity, then charts response time versus offered load: the
quantified version of Section 6.5.2's "more suitable for real-time graph
analytic applications".
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    ExperimentResult,
    comparison_backends,
    register,
)
from repro.core.api import LightRW
from repro.core.queries import make_queries
from repro.fpga.queueing import ServerModel, response_curve
from repro.graph.datasets import load_dataset
from repro.walks.metapath import MetaPathWalk


@register("realtime")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    load_fractions: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    max_sampled_queries: int = 1024,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = load_dataset("livejournal", scale_divisor=scale_divisor, seed=seed)
    algorithm = MetaPathWalk(METAPATH_SCHEMA)
    starts = make_queries(graph, seed=seed)

    servers = {}
    for backend, label in comparison_backends():
        engine = LightRW(graph, backend=backend, hardware_scale=scale_divisor, seed=seed)
        result = engine.run(
            algorithm, METAPATH_LENGTH, starts=starts,
            max_sampled_queries=max_sampled_queries,
        )
        mean_steps = max(result.total_steps / result.num_queries, 1e-9)
        capacity = result.steps_per_second / mean_steps
        servers[label] = ServerModel.from_latency_sample(
            label, result.query_latency_s, capacity_qps=capacity
        )

    rows = []
    for label, server in servers.items():
        for point in response_curve(server, list(load_fractions)):
            rows.append(
                {
                    "system": label,
                    "load": point["load"],
                    "arrival_qps": f"{point['arrival_qps']:.3g}",
                    "mean_response_us": round(point["mean_response_s"] * 1e6, 1),
                    "p99_response_us": round(point["p99_response_s"] * 1e6, 1),
                }
            )
    light, thunder = servers["LightRW"], servers["ThunderRW"]
    return ExperimentResult(
        name="realtime",
        title="Open-loop serving: response time vs offered load (MetaPath on LJ)",
        rows=rows,
        paper_expectation=(
            "Section 6.5.2's claim, quantified: LightRW saturates at a "
            "far higher arrival rate and its response curve stays flat "
            "(low service variance) where ThunderRW's blows up"
        ),
        params={"scale_divisor": scale_divisor, "load_fractions": list(load_fractions)},
        notes=[
            f"capacities: LightRW {light.capacity_qps:.3g} qps vs "
            f"ThunderRW {thunder.capacity_qps:.3g} qps; service SCV "
            f"{light.service_scv:.2f} vs {thunder.service_scv:.2f}"
        ],
    )
