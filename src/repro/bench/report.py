"""Aggregate experiment report: results/*.json -> one markdown document.

``lightrw-bench`` saves each experiment as JSON; :func:`render_report`
collects a directory of them into a single markdown report with the tables
and (for numeric series) text bar charts — the artifact you attach to a
reproduction writeup.

Also provides :func:`text_bar_chart`, the small renderer behind the
figures.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.common import load_result_json

#: Experiment ordering in the report (paper order, then extensions).
REPORT_ORDER = [
    "table1", "table2", "fig6", "fig10a", "fig10b", "fig11", "fig12",
    "fig13", "fig14", "fig15", "fig16", "fig17", "table3", "table4",
    "table5", "fig18",
    "ablation-sampler", "ablation-cache", "ablation-k", "ablation-cache-size",
    "energy", "future-distributed", "future-hbm", "future-capacity",
]

#: Numeric column to chart per experiment (label column, value column).
CHART_COLUMNS: dict[str, tuple[str, str]] = {
    "fig6": ("burst_length", "bandwidth_gbps"),
    "fig11": ("vertices", "dac_miss_ratio"),
    "fig14": ("graph", "speedup"),
    "fig16": ("queries", "speedup"),
    "future-distributed": ("boards", "speedup"),
}


def text_bar_chart(
    labels: list[str], values: list[float], width: int = 40, unit: str = ""
) -> str:
    """Render labeled values as a fixed-width ASCII bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return "(no data)"
    peak = max(max(values), 1e-12)
    label_width = max((len(str(label)) for label in labels), default=1)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(value / peak * width)), 0)
        lines.append(f"{str(label):>{label_width}} |{bar:<{width}} {value:g}{unit}")
    return "\n".join(lines)


def _markdown_table(rows: list[dict]) -> str:
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = "\n".join(
        "| " + " | ".join(str(row.get(c, "")) for c in columns) + " |"
        for row in rows
    )
    return "\n".join([header, separator, body])


def render_experiment(payload: dict) -> str:
    """Markdown section for one saved experiment."""
    name = payload["name"]
    parts = [
        f"## {name} — {payload['title']}",
        "",
        f"*Paper expectation:* {payload['paper_expectation']}",
        "",
        _markdown_table(payload["rows"]),
    ]
    chart = CHART_COLUMNS.get(name)
    if chart:
        label_col, value_col = chart
        labels, values = [], []
        for row in payload["rows"]:
            if label_col in row and value_col in row:
                try:
                    values.append(float(row[value_col]))
                    labels.append(str(row[label_col]))
                except (TypeError, ValueError):
                    continue
        if values:
            parts += ["", "```", text_bar_chart(labels, values), "```"]
    for note in payload.get("notes", []):
        parts.append(f"\n> {note}")
    if payload.get("params"):
        parts.append(f"\n*Parameters:* `{payload['params']}`")
    return "\n".join(parts)


def render_report(results_dir: str | Path) -> str:
    """Assemble every saved experiment in ``results_dir`` into markdown."""
    directory = Path(results_dir)
    available = {path.stem: path for path in directory.glob("*.json")}
    if not available:
        raise FileNotFoundError(f"no experiment JSON files in {directory}")
    ordered = [name for name in REPORT_ORDER if name in available]
    ordered += sorted(set(available) - set(REPORT_ORDER))
    sections = [
        "# LightRW reproduction — experiment report",
        "",
        f"{len(ordered)} experiments collected from `{directory}`.",
        "",
    ]
    for name in ordered:
        payload = load_result_json(available[name])
        sections.append(render_experiment(payload))
        sections.append("")
    return "\n".join(sections)


def write_report(results_dir: str | Path, destination: str | Path) -> Path:
    """Render and write the aggregate report; returns the path written."""
    destination = Path(destination)
    destination.write_text(render_report(results_dir))
    return destination
