"""Roofline experiment: where GDRW workloads sit under the machine roofs."""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SAMPLED_QUERIES,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    NODE2VEC_P,
    NODE2VEC_Q,
    ExperimentResult,
    register,
)
from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel
from repro.fpga.roofline import ridge_point, roofline_point
from repro.graph.datasets import load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk
from repro.walks.stepper import PWRSSampler, run_walks
from repro.walks.uniform import UniformWalk


@register("roofline")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    graph = load_dataset("livejournal", scale_divisor=scale_divisor, seed=seed)
    starts = graph.nonzero_degree_vertices()[:DEFAULT_SAMPLED_QUERIES]
    config = LightRWConfig().scaled(scale_divisor)
    workloads = [
        ("uniform (len 20)", UniformWalk(), 20),
        ("metapath (len 5)", MetaPathWalk(METAPATH_SCHEMA), METAPATH_LENGTH),
        ("node2vec (len 20)", Node2VecWalk(NODE2VEC_P, NODE2VEC_Q), 20),
    ]
    rows = []
    for label, algorithm, n_steps in workloads:
        session = run_walks(
            graph, starts, n_steps, algorithm, PWRSSampler(config.k, seed)
        )
        breakdown = FPGAPerfModel(config, algorithm).evaluate(
            session, record_latency=False
        )
        items = sum(int(r.degrees.sum()) for r in session.records)
        rows.append(roofline_point(label, breakdown, items).as_row())
    return ExperimentResult(
        name="roofline",
        title="Roofline positions of GDRW workloads (LJ stand-in, U250 config)",
        rows=rows,
        paper_expectation=(
            "every GDRW sits left of the ridge point "
            f"({ridge_point(config):.3f} items/B at k=16): memory-bound by "
            "construction, which is the paper's whole premise; efficiency "
            "against the memory roof shows how much the burst engine and "
            "cache recover"
        ),
        params={"scale_divisor": scale_divisor},
        notes=[f"ridge point: {ridge_point(config):.3f} items/byte"],
    )
