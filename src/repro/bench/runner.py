"""Experiment CLI: ``lightrw-bench <experiment ...>`` or ``python -m repro.bench``.

``lightrw-bench --list`` shows every registered table/figure regenerator;
``lightrw-bench all`` runs the complete evaluation and writes JSON results
next to the printed tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import REGISTRY
from repro.bench.common import describe_backends
from repro.errors import ConfigError
from repro.obs import Observer, configure_logging, use_observer
from repro.runtime import SweepCheckpoint


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "perfgate":
        # The regression gate has its own flag surface; dispatch before
        # the experiment parser sees (and rejects) its options.
        from repro.bench.perfgate import main as perfgate_main

        return perfgate_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="lightrw-bench",
        description="Regenerate the LightRW paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (e.g. fig14 table1), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--backends",
        action="store_true",
        help="list the registered execution backends and exit",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="dataset scale divisor override (default per experiment, 512)",
    )
    parser.add_argument(
        "--save-dir",
        default=None,
        help="directory to write per-experiment JSON results",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="after running, aggregate --save-dir results into one markdown report",
    )
    parser.add_argument(
        "--verdict",
        action="store_true",
        help="after running, score the saved results against the paper's claims",
    )
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip attaching telemetry snapshots to the saved JSON results",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="abort on the first failing experiment instead of running the "
             "rest and reporting the failures at the end",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="record each completed experiment in DIR so an interrupted "
             "sweep can be resumed with --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments already recorded as completed in "
             "--checkpoint-dir and continue at the first unfinished one",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        help="enable structured logging at this level (debug/info/...)",
    )
    args = parser.parse_args(argv)
    configure_logging(args.log_level)

    if args.backends:
        for name, description in describe_backends():
            print(f"{name:<14} {description}")
        return 0

    if args.list or not args.experiments:
        for name in sorted(REGISTRY):
            print(name)
        return 0

    names = sorted(REGISTRY) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(REGISTRY))}", file=sys.stderr)
        return 2

    checkpoint = None
    completed: set[str] = set()
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.checkpoint_dir:
        try:
            checkpoint = SweepCheckpoint.open(
                args.checkpoint_dir, resume=args.resume
            )
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.resume:
            completed = set(checkpoint.completed())

    failed: list[tuple[str, Exception]] = []
    for name in names:
        if name in completed:
            print(f"skipping {name}: already completed in {args.checkpoint_dir}")
            print()
            continue
        run = REGISTRY[name]
        kwargs = {}
        if args.scale is not None and "scale_divisor" in run.__code__.co_varnames:
            kwargs["scale_divisor"] = args.scale
        started = time.perf_counter()
        # Runs inside every experiment execute through the LightRW facade,
        # which picks up the ambient observer — so each saved report
        # carries the metric series its own runs produced.
        observer = None if args.no_metrics else Observer()
        try:
            with use_observer(observer):
                result = run(**kwargs)
        except Exception as exc:  # noqa: BLE001 - experiment isolation
            # One broken experiment must not discard the rest of an
            # `all` sweep; mirror the scheduler's degraded-mode contract.
            if args.strict:
                raise
            failed.append((name, exc))
            print(
                f"experiment {name} failed: {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            print()
            continue
        if observer is not None and len(observer.metrics):
            result.metrics = observer.metrics.snapshot()
        elapsed = time.perf_counter() - started
        print(result.report())
        print(f"({elapsed:.1f}s)")
        print()
        if args.save_dir:
            path = result.save_json(args.save_dir)
            print(f"saved {path}")
        if checkpoint is not None:
            # Marked only after the result (and its JSON, when saving) is
            # durable, so a kill between experiments re-runs at most one.
            checkpoint.mark_done(name)
    if args.report:
        if not args.save_dir:
            print("--report requires --save-dir", file=sys.stderr)
            return 2
        from repro.bench.report import write_report

        destination = write_report(args.save_dir, args.report)
        print(f"wrote report to {destination}")
    if args.verdict:
        if not args.save_dir:
            print("--verdict requires --save-dir", file=sys.stderr)
            return 2
        from repro.bench.verdict import score_reproduction, summary

        verdicts = score_reproduction(args.save_dir)
        print(summary(verdicts))
        if not all(v.passed for v in verdicts):
            return 1
    if failed:
        print(
            f"{len(failed)} of {len(names)} experiment(s) failed: "
            + ", ".join(name for name, _ in failed),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
