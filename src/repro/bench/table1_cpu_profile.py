"""Table 1 — top-down profile of the ThunderRW CPU baseline.

LLC miss ratio, memory-bound fraction and retiring fraction for MetaPath
and Node2Vec on livejournal and uk2002, next to the paper's vTune
measurements.
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SAMPLED_QUERIES,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    NODE2VEC_LENGTH,
    NODE2VEC_P,
    NODE2VEC_Q,
    ExperimentResult,
    register,
)
from repro.cpu.costmodel import CPUSpec
from repro.cpu.engine import ThunderRWEngine
from repro.cpu.profiling import profile_session
from repro.graph.datasets import load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk

#: The paper's measured values: (app, graph) -> (llc_miss, mem_bound, retiring).
PAPER_VALUES = {
    ("MetaPath", "livejournal"): (0.582, 0.599, 0.082),
    ("MetaPath", "uk2002"): (0.618, 0.575, 0.137),
    ("Node2Vec", "livejournal"): (0.769, 0.312, 0.233),
    ("Node2Vec", "uk2002"): (0.611, 0.317, 0.336),
}


@register("table1")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    node2vec_length: int = NODE2VEC_LENGTH // 2,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    workloads = [
        ("MetaPath", MetaPathWalk(METAPATH_SCHEMA), METAPATH_LENGTH),
        ("Node2Vec", Node2VecWalk(NODE2VEC_P, NODE2VEC_Q), node2vec_length),
    ]
    rows = []
    for app, algorithm, n_steps in workloads:
        for name in ("livejournal", "uk2002"):
            graph = load_dataset(name, scale_divisor=scale_divisor, seed=seed)
            engine = ThunderRWEngine(
                graph, spec=CPUSpec().scaled(scale_divisor), seed=seed
            )
            starts = graph.nonzero_degree_vertices()[:DEFAULT_SAMPLED_QUERIES]
            outcome = engine.run(starts, n_steps, algorithm)
            profile = profile_session(outcome.timing, app, name)
            paper = PAPER_VALUES[(app, name)]
            rows.append(
                {
                    "app": app,
                    "graph": name,
                    "llc_miss": f"{profile.llc_miss_ratio:.1%}",
                    "paper_llc_miss": f"{paper[0]:.1%}",
                    "memory_bound": f"{profile.memory_bound:.1%}",
                    "paper_mem_bound": f"{paper[1]:.1%}",
                    "retiring": f"{profile.retiring:.1%}",
                    "paper_retiring": f"{paper[2]:.1%}",
                }
            )
    return ExperimentResult(
        name="table1",
        title="Top-down profile of the modeled ThunderRW baseline",
        rows=rows,
        paper_expectation=(
            "high LLC miss ratios (58-77%), memory bound 31-60%, retiring "
            "only 8-34%: memory accesses dominate CPU GDRW execution"
        ),
        params={"scale_divisor": scale_divisor, "node2vec_length": node2vec_length},
    )
