"""Table 2 — the graph dataset inventory and its stand-ins."""

from __future__ import annotations

from repro.bench.common import DEFAULT_SCALE, ExperimentResult, register
from repro.graph.datasets import dataset_table


@register("table2")
def run(scale_divisor: int = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Table 2, reporting original and stand-in sizes."""
    rows = dataset_table(scale_divisor=scale_divisor)
    return ExperimentResult(
        name="table2",
        title="Graph datasets (paper originals vs synthetic stand-ins)",
        rows=rows,
        paper_expectation=(
            "five real graphs from web/citation/social categories; the "
            "stand-ins preserve average degree and directedness at "
            f"1/{scale_divisor} vertex scale"
        ),
        params={"scale_divisor": scale_divisor},
    )
