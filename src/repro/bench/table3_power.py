"""Table 3 — power efficiency of LightRW vs ThunderRW.

Power draw uses the paper's measured envelopes (the one quantity taken
from the paper rather than derived — see DESIGN.md); the performance side
comes from the Figure 14 comparison, so the efficiency improvement is
``speedup x (CPU watts / FPGA watts)``.
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    NODE2VEC_LENGTH,
    NODE2VEC_P,
    NODE2VEC_Q,
    ExperimentResult,
    register,
)
from repro.core.compare import compare_engines
from repro.fpga.power import PowerModel
from repro.graph.datasets import DATASET_ORDER, load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk


@register("table3")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    node2vec_length: int = NODE2VEC_LENGTH // 2,
    max_sampled_queries: int = 1024,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    workloads = [
        ("metapath", MetaPathWalk(METAPATH_SCHEMA), METAPATH_LENGTH),
        ("node2vec", Node2VecWalk(NODE2VEC_P, NODE2VEC_Q), node2vec_length),
    ]
    rows = []
    for app, algorithm, n_steps in workloads:
        model = PowerModel(app)
        improvements = []
        for name in DATASET_ORDER:
            graph = load_dataset(name, scale_divisor=scale_divisor, seed=seed)
            report = compare_engines(
                graph,
                algorithm,
                n_steps,
                hardware_scale=scale_divisor,
                max_sampled_queries=max_sampled_queries,
                seed=seed,
            )
            improvements.append(report.power_efficiency_improvement())
        rows.append(
            {
                "app": app,
                "lightrw_watts": f"{model.fpga_watts(0):.0f}~{model.fpga_watts(1):.0f}",
                "thunderrw_watts": f"{model.cpu_watts(0):.0f}~{model.cpu_watts(1):.0f}",
                "efficiency_improvement": (
                    f"{min(improvements):.2f}x~{max(improvements):.2f}x"
                ),
            }
        )
    return ExperimentResult(
        name="table3",
        title="Power efficiency: LightRW vs ThunderRW",
        rows=rows,
        paper_expectation=(
            "MetaPath 15.05x~26.42x and Node2Vec 16.28x~24.10x better "
            "execution time per watt (41-45 W vs 103-126 W)"
        ),
        params={"scale_divisor": scale_divisor, "node2vec_length": node2vec_length},
    )
