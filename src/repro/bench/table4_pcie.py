"""Table 4 — PCIe transfer share of end-to-end execution time.

MetaPath's short queries make the graph transfer visible (15-34% in the
paper); Node2Vec's 80-step walks amortize it to under ~1%.
"""

from __future__ import annotations

from repro.bench.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    METAPATH_LENGTH,
    METAPATH_SCHEMA,
    NODE2VEC_LENGTH,
    NODE2VEC_P,
    NODE2VEC_Q,
    ExperimentResult,
    register,
)
from repro.core.api import LightRW
from repro.graph.datasets import DATASET_ORDER, load_dataset
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk

#: Paper Table 4 (youtube/MetaPath is blank in the published table).
PAPER_VALUES = {
    "MetaPath": {"youtube": None, "us-patents": 0.153, "livejournal": 0.205,
                 "orkut": 0.335, "uk2002": 0.233},
    "Node2Vec": {"youtube": 0.0007, "us-patents": 0.011, "livejournal": 0.0054,
                 "orkut": 0.0056, "uk2002": 0.0025},
}


@register("table4")
def run(
    scale_divisor: int = DEFAULT_SCALE,
    node2vec_length: int = NODE2VEC_LENGTH,
    max_sampled_queries: int = 1024,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    workloads = [
        ("MetaPath", MetaPathWalk(METAPATH_SCHEMA), METAPATH_LENGTH),
        ("Node2Vec", Node2VecWalk(NODE2VEC_P, NODE2VEC_Q), node2vec_length),
    ]
    rows = []
    for app, algorithm, n_steps in workloads:
        row: dict[str, object] = {"app": app}
        for name in DATASET_ORDER:
            graph = load_dataset(name, scale_divisor=scale_divisor, seed=seed)
            engine = LightRW(
                graph, backend="fpga-model", hardware_scale=scale_divisor, seed=seed
            )
            result = engine.run(
                algorithm,
                n_steps,
                max_sampled_queries=max_sampled_queries,
                record_latency=False,
            )
            paper = PAPER_VALUES[app][name]
            paper_txt = f" (paper {paper:.2%})" if paper is not None else ""
            row[name] = f"{result.pcie_fraction:.2%}{paper_txt}"
        rows.append(row)
    return ExperimentResult(
        name="table4",
        title="PCIe data-transfer share of end-to-end execution time",
        rows=rows,
        paper_expectation=(
            "MetaPath 15.3-33.5% (short queries, transfer visible); "
            "Node2Vec 0.07-1.1% (long walks amortize the transfer)"
        ),
        params={"scale_divisor": scale_divisor, "node2vec_length": node2vec_length},
    )
