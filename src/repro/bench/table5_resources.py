"""Table 5 — FPGA resource utilization and frequency.

The resource model's estimates for the default MetaPath and Node2Vec
builds, as percentages of the Alveo U250, next to the paper's
place-and-route results.
"""

from __future__ import annotations

from repro.bench.common import ExperimentResult, register
from repro.fpga.config import LightRWConfig
from repro.fpga.resources import ResourceModel

#: Paper Table 5: (LUTs, REGs, BRAMs, DSPs) utilization and frequency.
PAPER_VALUES = {
    "metapath": (0.3352, 0.2976, 0.1724, 0.0516, 300),
    "node2vec": (0.2084, 0.1820, 0.3612, 0.0262, 300),
}


@register("table5")
def run() -> ExperimentResult:
    model = ResourceModel()
    config = LightRWConfig()
    rows = []
    for app, paper in PAPER_VALUES.items():
        estimate = model.estimate(config, app)
        utilization = estimate.utilization()
        rows.append(
            {
                "app": app,
                "LUTs": f"{utilization['LUTs']:.2%} (paper {paper[0]:.2%})",
                "REGs": f"{utilization['REGs']:.2%} (paper {paper[1]:.2%})",
                "BRAMs": f"{utilization['BRAMs']:.2%} (paper {paper[2]:.2%})",
                "DSPs": f"{utilization['DSPs']:.2%} (paper {paper[3]:.2%})",
                "frequency_mhz": f"{estimate.frequency_mhz:.0f} (paper {paper[4]})",
            }
        )
    return ExperimentResult(
        name="table5",
        title="FPGA resource utilization on the Alveo U250",
        rows=rows,
        paper_expectation=(
            "MetaPath: 33.5% LUTs / 29.8% REGs / 17.2% BRAMs / 5.2% DSPs; "
            "Node2Vec: 20.8% / 18.2% / 36.1% / 2.6%; both close timing at "
            "300 MHz with most of the device left free"
        ),
    )
