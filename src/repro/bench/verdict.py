"""Automated reproduction verdicts.

EXPERIMENTS.md's summary table, as code: each paper table/figure has a
*verdict check* — a predicate over its saved result rows encoding the
paper's qualitative claim.  ``lightrw-bench`` results can then be scored
mechanically:

    from repro.bench.verdict import score_reproduction
    verdicts = score_reproduction("results/")

Checks express the *shape* requirements (orderings, bands, monotonicity),
exactly mirroring the assertions in ``benchmarks/`` — but runnable against
any saved results directory, including ones produced with different scales
or seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.bench.common import load_result_json


@dataclass(frozen=True)
class Verdict:
    """Outcome of one experiment's check."""

    experiment: str
    claim: str
    passed: bool
    detail: str

    def format(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        return f"[{marker}] {self.experiment}: {self.claim} — {self.detail}"


def _percent(cell: str) -> float:
    return float(str(cell).split("%")[0])


def _check_table1(rows) -> tuple[bool, str]:
    misses = [_percent(r["llc_miss"]) for r in rows]
    retiring = [_percent(r["retiring"]) for r in rows]
    ok = all(40 <= m <= 95 for m in misses) and all(r < 50 for r in retiring)
    return ok, f"LLC miss {min(misses):.0f}-{max(misses):.0f}%, retiring <= {max(retiring):.0f}%"


def _check_fig6(rows) -> tuple[bool, str]:
    bw = [r["bandwidth_gbps"] for r in rows]
    valid = [r["valid_data_ratio"] for r in rows]
    ok = bw == sorted(bw) and valid == sorted(valid, reverse=True) and abs(bw[-1] - 17.57) < 0.5
    return ok, f"bandwidth {bw[0]} -> {bw[-1]} GB/s, valid {valid[0]} -> {valid[-1]}"


def _check_fig10a(rows) -> tuple[bool, str]:
    rates = [float(r["measured_items_per_s"]) for r in rows]
    saturated = [r for row, r in zip(rows, rates) if row["k"] >= 16]
    ok = rates == sorted(rates) and max(saturated) / min(saturated) < 1.02
    return ok, f"saturates at {max(rates):.3g} items/s"


def _check_fig11(rows) -> tuple[bool, str]:
    beyond = [r for r in rows if int(str(r["vertices"]).split("^")[1]) > 12]
    ok = all(r["dac_miss_ratio"] < r["dmc_miss_ratio"] for r in beyond)
    last = rows[-1]
    ok = ok and last["dmc_miss_ratio"] > 0.9
    return ok, (
        f"at {rows[-1]['vertices']}: DAC {last['dac_miss_ratio']} vs "
        f"DMC {last['dmc_miss_ratio']}"
    )


def _check_fig12(rows) -> tuple[bool, str]:
    ok = all(r["b1+b32"] > 1.3 and r["b1+b2"] < 1.0 for r in rows)
    best = max(r["b1+b32"] for r in rows)
    return ok, f"b1+b32 up to {best}x, b1+b2 always < 1x"


def _check_fig13(rows) -> tuple[bool, str]:
    ok = all(r["w/o WRS"] < 0.7 and r["w/o DAC"] > 0.9 for r in rows)
    return ok, "WRS dominates, DAC smallest, on every workload" if ok else "ordering violated"


def _check_fig14(rows) -> tuple[bool, str]:
    speedups = {(r["graph"], r["app"]): r["speedup"] for r in rows}
    ok = all(v > 1.5 for v in speedups.values())
    for app in {a for _, a in speedups}:
        per_app = {g: v for (g, a), v in speedups.items() if a == app}
        ok = ok and min(per_app, key=per_app.get) == "youtube"
    band = (min(speedups.values()), max(speedups.values()))
    return ok, f"speedups {band[0]}-{band[1]}x, youtube smallest (paper: 5.2-9.6x)"


def _check_fig15(rows) -> tuple[bool, str]:
    by_key = {(r["graph"], r["app"], r["system"]): r for r in rows}
    ok = True
    for (graph, app, system), row in by_key.items():
        if system == "LightRW":
            thunder = by_key.get((graph, app, "ThunderRW"))
            ok = ok and thunder is not None and row["median_us"] < thunder["median_us"]
    return ok, "LightRW median latency lower on every workload" if ok else "latency ordering violated"


def _check_fig16(rows) -> tuple[bool, str]:
    ok = True
    details = []
    for app in {r["app"] for r in rows}:
        app_rows = [r for r in rows if r["app"] == app]
        speedups = [r["speedup"] for r in app_rows]
        ok = ok and speedups[0] == max(speedups) and speedups[0] > 2 * speedups[-1]
        details.append(f"{app} {speedups[0]}x -> {speedups[-1]}x")
    return ok, "; ".join(sorted(details))


def _check_fig17(rows) -> tuple[bool, str]:
    ok = True
    for app in {r["app"] for r in rows}:
        speedups = [r["speedup"] for r in rows if r["app"] == app]
        ok = ok and max(speedups) / min(speedups) < 1.8
    return ok, "speedup stable across lengths" if ok else "length sensitivity too large"


def _check_table3(rows) -> tuple[bool, str]:
    highs = []
    for row in rows:
        __, high = row["efficiency_improvement"].split("~")
        highs.append(float(high.rstrip("x")))
    ok = all(h > 10 for h in highs)
    return ok, f"efficiency up to {max(highs)}x (paper: up to 26x)"


def _check_table4(rows) -> tuple[bool, str]:
    metapath, node2vec = rows[0], rows[1]
    graphs = [k for k in metapath if k != "app"]
    ok = all(_percent(node2vec[g]) < _percent(metapath[g]) for g in graphs)
    ok = ok and all(_percent(node2vec[g]) < 12 for g in graphs)
    return ok, "Node2Vec amortizes PCIe below MetaPath everywhere" if ok else "PCIe ordering violated"


def _check_table5(rows) -> tuple[bool, str]:
    ok = True
    worst = 0.0
    for row in rows:
        for column in ("LUTs", "REGs", "BRAMs", "DSPs"):
            ours = _percent(row[column])
            paper = float(row[column].split("paper ")[1].rstrip(")%"))
            worst = max(worst, abs(ours - paper))
    ok = worst <= 1.0
    return ok, f"max deviation from paper {worst:.2f} pt"


def _check_fig18(rows) -> tuple[bool, str]:
    snap = {k: float(v) for k, v in rows[0].items() if k != "deployment"}
    accel = {k: float(v) for k, v in rows[1].items() if k != "deployment"}
    speedup = snap["total"] / accel["total"]
    ok = snap["walk"] >= max(snap["learning"], snap["scoring"]) and speedup > 1.3
    return ok, f"walk dominates SNAP; end-to-end {speedup:.2f}x (paper: ~2x)"


#: experiment id -> (claim, check over rows).
CHECKS: dict[str, tuple[str, Callable]] = {
    "table1": ("CPU GDRW is memory-bound", _check_table1),
    "fig6": ("bandwidth up, valid ratio down with burst length", _check_fig6),
    "fig10a": ("PWRS scales linearly then saturates", _check_fig10a),
    "fig11": ("DAC beats DMC beyond cache capacity", _check_fig11),
    "fig12": ("b1+b32 strong, b1+b2 worst", _check_fig12),
    "fig13": ("WRS >> DYB > DAC contribution", _check_fig13),
    "fig14": ("LightRW wins everywhere, youtube least", _check_fig14),
    "fig15": ("LightRW latency lower", _check_fig15),
    "fig16": ("small batches amplify the speedup", _check_fig16),
    "fig17": ("stable speedup across walk lengths", _check_fig17),
    "table3": ("order-of-magnitude power efficiency", _check_table3),
    "table4": ("long walks amortize PCIe", _check_table4),
    "table5": ("resource model matches the paper", _check_table5),
    "fig18": ("accelerated walks halve link prediction", _check_fig18),
}


def score_reproduction(results_dir: str | Path) -> list[Verdict]:
    """Evaluate every checkable experiment in a results directory."""
    directory = Path(results_dir)
    verdicts = []
    for name, (claim, check) in CHECKS.items():
        path = directory / f"{name}.json"
        if not path.exists():
            verdicts.append(Verdict(name, claim, False, "result file missing"))
            continue
        rows = load_result_json(path)["rows"]
        try:
            passed, detail = check(rows)
        except (KeyError, IndexError, ValueError) as error:
            passed, detail = False, f"malformed result: {error!r}"
        verdicts.append(Verdict(name, claim, passed, detail))
    return verdicts


def summary(verdicts: list[Verdict]) -> str:
    """Human-readable scoreboard."""
    lines = [v.format() for v in verdicts]
    passed = sum(v.passed for v in verdicts)
    lines.append(f"reproduced {passed}/{len(verdicts)} checked claims")
    return "\n".join(lines)
