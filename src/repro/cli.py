"""Command-line interface: ``python -m repro <command>``.

Five commands for working with the library from a shell:

* ``info <graph>``     — load a graph and print its statistics;
* ``generate <kind>``  — synthesize a graph and save it as a CSR bundle;
* ``walk <graph>``     — run GDRW queries and write the paths;
* ``rngtest``          — run the randomness battery on the lane generator;
* ``obs summarize``    — digest telemetry JSONL written by ``walk --metrics``.

Graphs are referenced either by dataset name (``livejournal``, ``yt``, ...)
or by file path (``.npz`` CSR bundles or ``src dst [weight]`` text).

``walk`` exposes the observability layer: ``--metrics out.jsonl`` appends
one run record (manifest + metric series + spans), ``--trace-out
trace.json`` writes a ``chrome://tracing`` / Perfetto file, and the
global ``--log-level`` flag wires structured :mod:`logging`.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from repro.artifacts import save_npz_checked
from repro.core.api import LightRW
from repro.core.queries import make_queries
from repro.errors import ConfigError, ReproError
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.generators import chung_lu_graph, erdos_renyi_graph, rmat_graph
from repro.graph.io import load_csr_npz, load_edge_list_text, save_csr_npz
from repro.graph.labels import assign_random_weights, assign_vertex_labels
from repro.graph.stats import degree_histogram, degree_stats
from repro.obs import (
    LOG_LEVELS,
    Observer,
    append_jsonl,
    configure_logging,
    read_jsonl,
    run_record,
    summarize_records,
    write_chrome_trace,
)
from repro.runtime import (
    EXECUTION_MODES,
    InjectedFault,
    backend_names,
    describe_backends,
)
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk
from repro.walks.static import StaticWalk
from repro.walks.uniform import UniformWalk

logger = logging.getLogger(__name__)


def _load_graph(spec: str, scale: int, seed: int) -> CSRGraph:
    if scale < 1:
        raise SystemExit(f"error: --scale must be a positive divisor, got {scale}")
    lowered = spec.lower()
    abbreviations = {s.abbreviation.lower() for s in DATASETS.values()}
    if lowered in DATASETS or lowered in abbreviations:
        return load_dataset(spec, scale_divisor=scale, seed=seed)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(f"error: {spec!r} is neither a dataset name nor a file")
    if path.suffix == ".npz":
        return load_csr_npz(path)
    return load_edge_list_text(path)


def _make_algorithm(args: argparse.Namespace):
    if args.algorithm == "node2vec":
        return Node2VecWalk(p=args.p, q=args.q)
    if args.algorithm == "metapath":
        schema = [int(x) for x in args.schema.split(",")]
        return MetaPathWalk(schema)
    if args.algorithm == "static":
        return StaticWalk()
    return UniformWalk()


def cmd_info(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.scale, args.seed)
    print(graph)
    stats = degree_stats(graph)
    for key, value in stats.as_row().items():
        print(f"  {key}: {value}")
    if args.histogram:
        print("  degree histogram:")
        for bucket, count in degree_histogram(graph):
            if count:
                print(f"    {bucket:>16}: {count}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "rmat":
        graph = rmat_graph(args.vertices_log2, edge_factor=args.edge_factor, seed=args.seed)
    elif args.kind == "chung-lu":
        graph = chung_lu_graph(
            1 << args.vertices_log2, avg_degree=float(args.edge_factor), seed=args.seed
        )
    else:
        graph = erdos_renyi_graph(
            1 << args.vertices_log2, avg_degree=float(args.edge_factor), seed=args.seed
        )
    if args.labels:
        graph = assign_vertex_labels(graph, n_labels=args.labels, seed=args.seed + 1)
    if args.weights:
        graph = assign_random_weights(graph, seed=args.seed + 2)
    save_csr_npz(graph, args.output)
    print(f"wrote {graph} to {args.output}")
    return 0


def _parse_faults(specs: list[str] | None) -> list[InjectedFault]:
    """Parse ``--inject-fault SHARD[:ATTEMPTS[:DELAY]]`` specs."""
    faults: list[InjectedFault] = []
    for spec in specs or []:
        parts = spec.split(":")
        try:
            shard = int(parts[0])
            attempts = int(parts[1]) if len(parts) > 1 and parts[1] else -1
            delay = float(parts[2]) if len(parts) > 2 and parts[2] else 0.0
        except (ValueError, IndexError):
            raise SystemExit(
                f"error: bad --inject-fault spec {spec!r} "
                f"(want SHARD[:ATTEMPTS[:DELAY]], e.g. '2:-1' or '0:1:0.5')"
            ) from None
        faults.append(
            InjectedFault(shard=shard, fail_attempts=attempts, delay_s=delay)
        )
    return faults


def cmd_walk(args: argparse.Namespace) -> int:
    if args.backend not in backend_names():
        raise SystemExit(
            f"error: unknown backend {args.backend!r} "
            f"(registered: {', '.join(backend_names())})"
        )
    if args.resume and not args.checkpoint_dir:
        raise ConfigError("--resume requires --checkpoint-dir")
    if args.resume and not Path(args.checkpoint_dir).is_dir():
        raise ConfigError(
            f"--resume: checkpoint directory {args.checkpoint_dir!r} does "
            f"not exist (start a run with --checkpoint-dir first)"
        )
    graph = _load_graph(args.graph, args.scale, args.seed)
    algorithm = _make_algorithm(args)
    faults = _parse_faults(args.inject_fault)
    observe = bool(args.metrics or args.trace_out)
    observer = Observer() if observe else None
    engine = LightRW(
        graph, backend=args.backend, hardware_scale=args.scale, seed=args.seed,
        observer=observer,
    )
    starts = make_queries(graph, n_queries=args.queries, seed=args.seed)
    result = engine.run(
        algorithm, args.length, starts=starts, max_sampled_queries=args.max_sampled,
        shards=args.shards, parallel=args.parallel,
        mode=args.mode, workers=args.workers,
        trace=bool(args.trace_out),
        strict=not args.no_strict,
        retries=args.retries,
        shard_timeout_s=args.shard_timeout,
        faults=faults or None,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    print(
        f"{result.num_queries} queries x {args.length} steps on {args.backend}: "
        f"{result.total_steps} steps, kernel {result.kernel_s * 1e3:.3f} ms, "
        f"{result.steps_per_second:.3g} steps/s"
    )
    if result.resumed_shards:
        print(
            f"resumed from {args.checkpoint_dir}: {result.resumed_shards} "
            f"shard(s) restored from checkpoint"
        )
    for failure in result.failures:
        last = failure.offset + failure.num_queries - 1
        print(
            f"shard {failure.shard} failed after {failure.attempts} attempt(s) "
            f"({failure.error_type}: {failure.message}); "
            f"queries {failure.offset}..{last} missing from the partial result"
        )
    if args.metrics:
        path = append_jsonl(args.metrics, run_record(result, observer))
        print(f"appended metrics record to {path}")
    if args.trace_out:
        path = write_chrome_trace(
            args.trace_out,
            spans=observer.spans.finished() if observer else None,
            tracer=result.tracer,
            cycle_result=(
                result.breakdown.detail
                if hasattr(result.breakdown.detail, "instances")
                else None
            ),
            frequency_hz=engine.config.frequency_hz,
        )
        print(f"wrote Chrome trace to {path}")
    if args.output:
        path = save_npz_checked(
            args.output, {"paths": result.paths, "lengths": result.lengths}
        )
        print(f"wrote paths to {path}")
    else:
        for q in range(min(args.show, result.paths.shape[0])):
            path = result.paths[q, : result.lengths[q] + 1]
            print(f"  {q}: {' '.join(map(str, path.tolist()))}")
    return 0


def cmd_obs_summarize(args: argparse.Namespace) -> int:
    path = Path(args.file)
    if not path.exists():
        raise SystemExit(f"error: no such telemetry file: {args.file!r}")
    records = read_jsonl(path)
    print(summarize_records(records))
    if args.prometheus and records:
        from repro.obs.export import prometheus_from_snapshot

        print()
        print(prometheus_from_snapshot(records[-1].get("metrics") or {}), end="")
    return 0


def cmd_rngtest(args: argparse.Namespace) -> int:
    from repro.sampling.rng import ThundeRingRNG
    from repro.sampling.stattests import run_battery

    result = run_battery(
        ThundeRingRNG(args.lanes, seed=args.seed), n_samples=args.samples
    )
    print(result.summary())
    return 0 if result.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LightRW reproduction command line"
    )
    parser.add_argument(
        "--log-level", default=None, choices=LOG_LEVELS,
        help="enable structured logging at this level",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("graph", help="dataset name or graph file")
    info.add_argument("--scale", type=int, default=512)
    info.add_argument("--seed", type=int, default=7)
    info.add_argument("--histogram", action="store_true")
    info.set_defaults(fn=cmd_info)

    gen = sub.add_parser("generate", help="synthesize a graph to a .npz bundle")
    gen.add_argument("kind", choices=["rmat", "chung-lu", "erdos-renyi"])
    gen.add_argument("output")
    gen.add_argument("--vertices-log2", type=int, default=12)
    gen.add_argument("--edge-factor", type=int, default=8)
    gen.add_argument("--labels", type=int, default=0)
    gen.add_argument("--weights", action="store_true")
    gen.add_argument("--seed", type=int, default=7)
    gen.set_defaults(fn=cmd_generate)

    backend_name_lines = "\n".join(
        f"  {name:<14} {description}" for name, description in describe_backends()
    )
    walk = sub.add_parser(
        "walk",
        help="run GDRW queries",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=f"registered backends:\n{backend_name_lines}",
    )
    walk.add_argument("graph")
    walk.add_argument("--algorithm", choices=["node2vec", "metapath", "uniform", "static"],
                      default="node2vec")
    walk.add_argument("--length", type=int, default=80)
    walk.add_argument("--queries", type=int, default=None)
    walk.add_argument("--p", type=float, default=2.0)
    walk.add_argument("--q", type=float, default=0.5)
    walk.add_argument("--schema", default="0,1,2,3")
    walk.add_argument(
        "--backend",
        default="fpga-model",
        metavar="NAME",
        help="execution backend from the runtime registry (see below)",
    )
    walk.add_argument("--scale", type=int, default=512)
    walk.add_argument("--seed", type=int, default=7)
    walk.add_argument("--max-sampled", type=int, default=2048)
    walk.add_argument(
        "--shards", type=int, default=1,
        help="split the batch across N scheduler shards (same walks)",
    )
    walk.add_argument(
        "--parallel", action="store_true",
        help="execute shards through a worker pool (thread-safe backends)",
    )
    walk.add_argument(
        "--mode", choices=list(EXECUTION_MODES), default=None,
        help="execution mode (overrides --parallel): 'process' fans shards "
             "out to worker processes on process-safe backends; walks are "
             "byte-identical in every mode",
    )
    walk.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-pool width for the thread/process modes "
             "(default: CPU count, clamped to the shard count)",
    )
    walk.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry each failed shard up to N extra times (default 0)",
    )
    walk.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard attempt budget; expiry counts as a shard failure",
    )
    walk.add_argument(
        "--no-strict", action="store_true",
        help="return partial results when shards fail instead of erroring; "
             "failures are printed and recorded in the run manifest/metrics",
    )
    walk.add_argument(
        "--inject-fault", action="append", default=None,
        metavar="SHARD[:ATTEMPTS[:DELAY]]",
        help="deterministically fail shard SHARD for its first ATTEMPTS "
             "attempts (-1 = always, the default) after DELAY seconds; "
             "repeatable testing aid for the fault-tolerance paths",
    )
    walk.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist each completed shard to DIR (atomic, checksummed) so "
             "a killed run can be resumed with --resume",
    )
    walk.add_argument(
        "--resume", action="store_true",
        help="restore completed shards from --checkpoint-dir and execute "
             "only the missing ones (walks are byte-identical to an "
             "uninterrupted run)",
    )
    walk.add_argument("--output", default=None, help="write paths to .npz")
    walk.add_argument("--show", type=int, default=5, help="paths to print")
    walk.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="append a telemetry record (manifest + metrics + spans) as JSONL",
    )
    walk.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a chrome://tracing / Perfetto trace of the run "
             "(includes pipeline events on the fpga-cycle backend)",
    )
    walk.set_defaults(fn=cmd_walk)

    rng = sub.add_parser("rngtest", help="run the randomness battery")
    rng.add_argument("--lanes", type=int, default=16)
    rng.add_argument("--samples", type=int, default=50_000)
    rng.add_argument("--seed", type=int, default=7)
    rng.set_defaults(fn=cmd_rngtest)

    obs = sub.add_parser("obs", help="inspect telemetry written by walk --metrics")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize", help="digest a telemetry JSONL file"
    )
    summarize.add_argument("file", help="JSONL file written by walk --metrics")
    summarize.add_argument(
        "--prometheus", action="store_true",
        help="also dump the last record's metrics in Prometheus text format",
    )
    summarize.set_defaults(fn=cmd_obs_summarize)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    try:
        return args.fn(args)
    except ReproError as exc:
        # Library errors (bad config, invalid query, malformed graph) are
        # user input problems at the CLI boundary: one line, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
