"""Public API of the LightRW reproduction.

:class:`~repro.core.api.LightRW` is the facade a downstream user works
with: give it a graph and a configuration, ask it to run a batch of GDRW
queries with a walk algorithm, and get back the walked paths together with
modeled kernel time, end-to-end time (PCIe included) and per-query
latencies — on either the analytic backend (fast, graph-scale) or the
cycle-accurate backend (slow, ground truth).
"""

from repro.core.api import LightRW, RunResult
from repro.core.compare import SpeedupReport, compare_engines
from repro.core.queries import make_queries, sample_queries
from repro.core.results import latency_box_stats

__all__ = [
    "LightRW",
    "RunResult",
    "SpeedupReport",
    "compare_engines",
    "latency_box_stats",
    "make_queries",
    "sample_queries",
]
