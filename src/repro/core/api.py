"""The LightRW facade — run GDRW query batches on a chosen backend.

>>> from repro.graph import load_dataset
>>> from repro.walks import Node2VecWalk
>>> from repro.core import LightRW, make_queries
>>> graph = load_dataset("youtube", scale_divisor=512)
>>> engine = LightRW(graph, hardware_scale=512)
>>> result = engine.run(Node2VecWalk(p=2, q=0.5), n_steps=20)
>>> result.paths.shape[0] == result.num_queries
True

Backends
--------
Backends live in the :mod:`repro.runtime` registry; the built-ins are

``"fpga-model"``
    The analytic performance model over functionally exact walks —
    default; handles graph-scale batches with query-sampled extrapolation.
``"fpga-cycle"``
    The cycle-accurate simulator — ground truth, small batches only.
``"cpu-baseline"``
    The modeled ThunderRW engine, for comparisons.

The two FPGA backends produce identical walks for identical seeds, and
every backend produces identical walks regardless of how the batch is
sharded.  Register additional backends with
:func:`repro.runtime.register_backend`.

This module is a thin facade: it builds a
:class:`~repro.runtime.RuntimeContext`, asks the query planner for an
:class:`~repro.runtime.ExecutionPlan`, hands it to the batch scheduler,
and repackages the merged :class:`~repro.runtime.BackendReport` as a
:class:`RunResult`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.queries import make_queries
from repro.core.results import BoxStats, latency_box_stats
from repro.cpu.costmodel import CPUSpec
from repro.errors import ConfigError
from repro.fpga.config import LightRWConfig
from repro.fpga.pcie import PCIeModel
from repro.graph.csr import CSRGraph
from repro.obs import (
    Observer,
    RunManifest,
    build_manifest,
    config_fingerprint,
    current_observer,
    record_run,
    use_observer,
)
from repro.runtime import (
    BatchOutcome,
    BatchScheduler,
    ExecutionPlan,
    FaultInjectionBackend,
    InjectedFault,
    RetryPolicy,
    RunCheckpoint,
    RuntimeContext,
    ShardFailure,
    TimingBreakdown,
    backend_names,
    create_backend,
    plan_run,
    resolve_backend,
)
from repro.walks.base import WalkAlgorithm
from repro.walks.stepper import WalkSession

logger = logging.getLogger(__name__)


def _backends_tuple() -> tuple[str, ...]:
    return backend_names()


#: Registered backend names (kept as a module attribute for backward
#: compatibility; the authoritative list is the runtime registry).
BACKENDS = _backends_tuple()


@dataclass
class RunResult:
    """Walks plus modeled timing for one query batch."""

    backend: str
    algorithm: str
    num_queries: int
    total_steps: int
    #: Walked paths of the functionally executed (possibly sampled) queries,
    #: -1 padded, one row per executed query.
    paths: np.ndarray
    lengths: np.ndarray
    kernel_s: float
    pcie_s: float
    breakdown: TimingBreakdown
    session: WalkSession | None = None
    query_latency_s: np.ndarray | None = None
    #: One-off setup cost outside the kernel: engine initialization for the
    #: CPU baseline (zero for the FPGA backends, whose setup is the PCIe
    #: transfer already counted in ``pcie_s``).
    setup_s: float = 0.0
    #: Provenance of this run (seed, backend, plan, config hash, version,
    #: host) — attached to every result, observed or not.
    manifest: RunManifest | None = None
    #: Shards that exhausted their retry budget.  Empty on a healthy run;
    #: non-empty only for ``strict=False`` runs, whose ``paths`` then
    #: cover the surviving shards only (still in global query-id order).
    failures: tuple[ShardFailure, ...] = ()
    #: Whether this run was executed in strict (raise-on-failure) mode.
    strict: bool = True
    #: Shards restored from a run checkpoint instead of re-executed
    #: (non-zero only for checkpointed runs that resumed prior work).
    resumed_shards: int = 0

    @property
    def ok(self) -> bool:
        """True when every shard executed (no recorded failures)."""
        return not self.failures

    @property
    def executed_queries(self) -> int:
        """Functionally walked queries present in ``paths`` (rows)."""
        return int(self.paths.shape[0])

    def failed_query_ids(self) -> np.ndarray:
        """Global ids of the sampled queries lost to shard failures."""
        if not self.failures:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate([f.query_ids() for f in self.failures])

    @property
    def tracer(self):
        """The cycle simulator's pipeline tracer, when the run recorded one.

        Present only for single-shard ``fpga-cycle`` runs started with
        ``trace=True``; ``None`` otherwise.
        """
        return getattr(self.breakdown.detail, "tracer", None)

    @property
    def end_to_end_s(self) -> float:
        return self.kernel_s + self.pcie_s + self.setup_s

    @property
    def steps_per_second(self) -> float:
        """Kernel-time step throughput (the paper's figure-of-merit)."""
        return self.total_steps / self.kernel_s if self.kernel_s > 0 else 0.0

    @property
    def pcie_fraction(self) -> float:
        total = self.end_to_end_s
        return self.pcie_s / total if total > 0 else 0.0

    def latency_stats(self) -> BoxStats:
        if self.query_latency_s is None:
            raise ValueError("this run did not record per-query latencies")
        return latency_box_stats(self.query_latency_s)


class LightRW:
    """User-facing engine running GDRWs on the modeled accelerator.

    Parameters
    ----------
    graph:
        The CSR graph (use :mod:`repro.graph` to build or load one).
    config:
        Accelerator configuration; defaults to the paper's deployment
        (k=16, b1+b32 bursts, 2^12-entry degree-aware cache, 4 instances).
    backend:
        A registered backend name (``"fpga-model"``, ``"fpga-cycle"``,
        ``"cpu-baseline"``, or anything added via
        :func:`repro.runtime.register_backend`).
    hardware_scale:
        Dataset scale divisor for the scaled-platform rule; applied to the
        config's cache (and the CPU spec's caches for the baseline).
    seed:
        Sampling seed; identical seeds reproduce identical walks across the
        FPGA backends (and across shard layouts).
    observer:
        A :class:`repro.obs.Observer` collecting metrics and spans for
        every run of this engine.  ``None`` (default) collects nothing
        unless a caller installed one with
        :func:`repro.obs.use_observer` or passes one to :meth:`run`.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: LightRWConfig | None = None,
        backend: str = "fpga-model",
        hardware_scale: int = 1,
        seed: int = 0,
        cpu_spec: CPUSpec | None = None,
        pcie: PCIeModel | None = None,
        observer: Observer | None = None,
    ) -> None:
        resolve_backend(backend)  # fail fast with the registered names
        self.graph = graph
        self.backend = backend
        self.seed = int(seed)
        self.observer = observer
        base_config = config or LightRWConfig()
        if hardware_scale > 1 and base_config.hardware_scale == 1:
            base_config = base_config.scaled(hardware_scale)
        self.config = base_config
        base_spec = cpu_spec or CPUSpec()
        if hardware_scale > 1 and base_spec.hardware_scale == 1:
            base_spec = base_spec.scaled(hardware_scale)
        self.cpu_spec = base_spec
        # The DMA setup latency is a fixed software cost; under the
        # scaled-platform rule it shrinks with the dataset so the PCIe
        # share of end-to-end time is preserved.
        self.pcie = pcie or PCIeModel(
            graph_copies=self.config.n_instances,
            setup_latency_s=30e-6 / max(self.config.hardware_scale, 1),
        )

    def runtime_context(self) -> RuntimeContext:
        """The immutable per-engine state the runtime backends execute with."""
        return RuntimeContext(
            graph=self.graph,
            config=self.config,
            cpu_spec=self.cpu_spec,
            seed=self.seed,
        )

    def run(
        self,
        algorithm: WalkAlgorithm,
        n_steps: int,
        starts: np.ndarray | None = None,
        max_sampled_queries: int = 4096,
        record_latency: bool = True,
        include_pcie: bool = True,
        shards: int = 1,
        parallel: bool = False,
        mode: str | None = None,
        workers: int | None = None,
        observer: Observer | None = None,
        trace: bool = False,
        strict: bool = True,
        retries: int = 0,
        shard_timeout_s: float | None = None,
        retry: RetryPolicy | None = None,
        faults: Sequence[InjectedFault] | None = None,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
    ) -> RunResult:
        """Walk a query batch and model its execution.

        Parameters
        ----------
        algorithm:
            The GDRW weight-update function (MetaPathWalk, Node2VecWalk, ...).
        n_steps:
            Steps per query (5 for MetaPath, 80 for Node2Vec in the paper).
        starts:
            Start vertices; defaults to the paper's one-query-per-walkable-
            vertex batch.
        max_sampled_queries:
            Functional-walk budget; larger batches are walked on a uniform
            sample and the timing extrapolated (exact for the throughput
            experiments, see DESIGN.md).  The cycle backend ignores this
            and always walks everything it is given.
        shards:
            Split the batch into this many scheduler shards.  Walks are
            identical for any shard count (per-query RNG is keyed by
            global query id); shard timings merge into one breakdown.
        parallel:
            Execute shards through a worker pool when the backend is
            thread safe (shorthand for ``mode="thread"``).
        mode:
            Explicit execution mode: ``"sequential"``, ``"thread"`` or
            ``"process"`` (overrides ``parallel``).  ``"process"`` fans
            shards out to worker processes and requires a backend that
            declares ``process_safe``; walks are byte-identical in every
            mode.
        workers:
            Worker-pool width for the thread/process modes (defaults to
            the CPU count, clamped to the shard count).
        observer:
            Telemetry sink for this run (overrides the engine-level
            observer).
        trace:
            Record pipeline events on the ``fpga-cycle`` backend; read
            them from ``result.tracer`` or export with
            :func:`repro.obs.write_chrome_trace`.
        strict:
            ``True`` (default) raises
            :class:`~repro.errors.ShardExecutionError` when any shard
            exhausts its retries; ``False`` returns the surviving shards
            as a partial result with the failures on
            :attr:`RunResult.failures`.
        retries:
            Extra attempts per failed shard (0 = fail fast).
        shard_timeout_s:
            Wall-clock budget per shard attempt; expiry counts as a
            failure and is retried like one.
        retry:
            Full :class:`~repro.runtime.RetryPolicy` (backoff and
            deterministic jitter included); overrides ``retries`` and
            ``shard_timeout_s``.
        faults:
            Deterministic :class:`~repro.runtime.InjectedFault` specs for
            testing the failure paths (see :mod:`repro.runtime.faults`).
        checkpoint_dir:
            Persist each completed shard's report (atomic write, content
            checksum) to this directory so a killed run can resume.
        resume:
            Restore completed shards from ``checkpoint_dir`` and execute
            only the missing ones; the resumed run's walks are
            byte-identical to an uninterrupted one.  Requires an
            existing, configuration-compatible checkpoint
            (:class:`~repro.errors.ConfigError` otherwise).
        """
        obs = self._observer_for(observer)
        with use_observer(obs), obs.span(
            "run", backend=self.backend, algorithm=algorithm.name
        ):
            plan = self._plan(
                algorithm,
                n_steps,
                starts,
                max_sampled_queries=max_sampled_queries,
                record_latency=record_latency,
                include_pcie=include_pcie,
                shards=shards,
                trace=trace,
            )
            return self._execute(
                plan,
                parallel=parallel,
                mode=mode,
                workers=workers,
                strict=strict,
                retry=retry
                or RetryPolicy(
                    max_attempts=int(retries) + 1, shard_timeout_s=shard_timeout_s
                ),
                faults=faults,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
            )

    def run_restart(
        self,
        n_steps: int,
        alpha: float = 0.15,
        starts: np.ndarray | None = None,
        max_sampled_queries: int = 4096,
        include_pcie: bool = True,
        shards: int = 1,
        parallel: bool = False,
        mode: str | None = None,
        workers: int | None = None,
        observer: Observer | None = None,
        strict: bool = True,
        retries: int = 0,
        shard_timeout_s: float | None = None,
        retry: RetryPolicy | None = None,
        faults: Sequence[InjectedFault] | None = None,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
    ) -> RunResult:
        """Random walk with restart (personalized PageRank) on the model.

        Teleports are free steps for the hardware (the Query Controller
        decides before any memory access), which the recorded trace
        reflects; only backends whose capabilities declare
        ``supports_restart`` (the ``fpga-model`` built-in) run this walk.
        """
        from repro.walks.ppr import RestartWalk

        obs = self._observer_for(observer)
        with use_observer(obs), obs.span(
            "run", backend=self.backend, algorithm="restart"
        ):
            plan = self._plan(
                RestartWalk(alpha),
                n_steps,
                starts,
                max_sampled_queries=max_sampled_queries,
                record_latency=True,
                include_pcie=include_pcie,
                shards=shards,
                restart_alpha=alpha,
            )
            return self._execute(
                plan,
                parallel=parallel,
                mode=mode,
                workers=workers,
                strict=strict,
                retry=retry
                or RetryPolicy(
                    max_attempts=int(retries) + 1, shard_timeout_s=shard_timeout_s
                ),
                faults=faults,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
            )

    # -- runtime plumbing ----------------------------------------------------

    def _observer_for(self, observer: Observer | None) -> Observer:
        """Per-run observer, falling back to engine-level then ambient."""
        return observer or self.observer or current_observer()

    def _plan(
        self,
        algorithm: WalkAlgorithm,
        n_steps: int,
        starts: np.ndarray | None,
        *,
        max_sampled_queries: int,
        record_latency: bool,
        include_pcie: bool,
        shards: int,
        restart_alpha: float | None = None,
        trace: bool = False,
    ) -> ExecutionPlan:
        if starts is None:
            starts = make_queries(self.graph, seed=self.seed)
        return plan_run(
            self.backend,
            algorithm,
            n_steps,
            np.asarray(starts, dtype=np.int64),
            max_sampled_queries=max_sampled_queries,
            record_latency=record_latency,
            include_pcie=include_pcie,
            shards=shards,
            restart_alpha=restart_alpha,
            seed=self.seed,
            trace=trace,
        )

    def _execute(
        self,
        plan: ExecutionPlan,
        parallel: bool = False,
        *,
        mode: str | None = None,
        workers: int | None = None,
        strict: bool = True,
        retry: RetryPolicy | None = None,
        faults: Sequence[InjectedFault] | None = None,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
    ) -> RunResult:
        if resume and checkpoint_dir is None:
            raise ConfigError(
                "resume=True requires a checkpoint_dir pointing at the "
                "interrupted run's checkpoint directory"
            )
        checkpoint = None
        if checkpoint_dir is not None:
            checkpoint = RunCheckpoint.open(
                checkpoint_dir,
                plan,
                seed=self.seed,
                config_hash=config_fingerprint(self.config),
                resume=resume,
            )
        backend = create_backend(self.backend, self.runtime_context())
        if faults:
            backend = FaultInjectionBackend(backend, faults)
        scheduler = BatchScheduler(
            parallel=parallel,
            mode=mode,
            max_workers=workers,
            retry=retry or RetryPolicy(),
            strict=strict,
        )
        outcome = scheduler.execute(backend, plan, checkpoint=checkpoint)
        return self._package(plan, outcome, strict=strict)

    def _package(
        self, plan: ExecutionPlan, outcome: BatchOutcome, *, strict: bool = True
    ) -> RunResult:
        report = outcome.report
        pcie_s = 0.0
        if plan.include_pcie and resolve_backend(self.backend).capabilities.uses_pcie:
            pcie_s = self.pcie.round_trip_s(
                self.graph, plan.total_queries, report.total_steps
            )
        result = RunResult(
            backend=self.backend,
            algorithm=plan.algorithm.name,
            num_queries=plan.total_queries,
            total_steps=report.total_steps,
            paths=report.paths,
            lengths=report.lengths,
            kernel_s=report.kernel_s,
            pcie_s=pcie_s,
            setup_s=report.setup_s,
            breakdown=report.breakdown,
            session=report.session,
            query_latency_s=report.query_latency_s,
            manifest=build_manifest(
                plan,
                seed=self.seed,
                config=self.config,
                graph_name=getattr(self.graph, "name", "") or "",
                failures=outcome.failures,
            ),
            failures=outcome.failures,
            strict=strict,
            resumed_shards=outcome.resumed,
        )
        obs = current_observer()
        if obs.enabled:
            record_run(obs.metrics, result)
        logger.debug(
            "%s run complete: %d queries, %d steps, kernel %.3g s",
            self.backend, result.num_queries, result.total_steps, result.kernel_s,
        )
        return result
