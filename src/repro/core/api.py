"""The LightRW facade — run GDRW query batches on a chosen backend.

>>> from repro.graph import load_dataset
>>> from repro.walks import Node2VecWalk
>>> from repro.core import LightRW, make_queries
>>> graph = load_dataset("youtube", scale_divisor=512)
>>> engine = LightRW(graph, hardware_scale=512)
>>> result = engine.run(Node2VecWalk(p=2, q=0.5), n_steps=20)
>>> result.paths.shape[0] == result.num_queries
True

Backends
--------
``"fpga-model"``
    The analytic performance model over functionally exact walks —
    default; handles graph-scale batches with query-sampled extrapolation.
``"fpga-cycle"``
    The cycle-accurate simulator — ground truth, small batches only.
``"cpu-baseline"``
    The modeled ThunderRW engine, for comparisons.

The two FPGA backends produce identical walks for identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.queries import make_queries, sample_queries
from repro.core.results import BoxStats, latency_box_stats
from repro.cpu.costmodel import CPUSpec, CPUTimeBreakdown, cpu_time_for_session
from repro.errors import ConfigError
from repro.fpga.accelerator import CycleSimResult, LightRWAcceleratorSim
from repro.fpga.config import LightRWConfig
from repro.fpga.pcie import PCIeModel
from repro.fpga.perfmodel import FPGAPerfModel, FPGATimeBreakdown
from repro.graph.csr import CSRGraph
from repro.walks.base import WalkAlgorithm
from repro.walks.stepper import InverseTransformSampler, PWRSSampler, WalkSession, run_walks

BACKENDS = ("fpga-model", "fpga-cycle", "cpu-baseline")


@dataclass
class RunResult:
    """Walks plus modeled timing for one query batch."""

    backend: str
    algorithm: str
    num_queries: int
    total_steps: int
    #: Walked paths of the functionally executed (possibly sampled) queries,
    #: -1 padded, one row per executed query.
    paths: np.ndarray
    lengths: np.ndarray
    kernel_s: float
    pcie_s: float
    breakdown: FPGATimeBreakdown | CPUTimeBreakdown | CycleSimResult
    session: WalkSession | None = None
    query_latency_s: np.ndarray | None = None
    #: One-off setup cost outside the kernel: engine initialization for the
    #: CPU baseline (zero for the FPGA backends, whose setup is the PCIe
    #: transfer already counted in ``pcie_s``).
    setup_s: float = 0.0

    @property
    def end_to_end_s(self) -> float:
        return self.kernel_s + self.pcie_s + self.setup_s

    @property
    def steps_per_second(self) -> float:
        """Kernel-time step throughput (the paper's figure-of-merit)."""
        return self.total_steps / self.kernel_s if self.kernel_s > 0 else 0.0

    @property
    def pcie_fraction(self) -> float:
        total = self.end_to_end_s
        return self.pcie_s / total if total > 0 else 0.0

    def latency_stats(self) -> BoxStats:
        if self.query_latency_s is None:
            raise ValueError("this run did not record per-query latencies")
        return latency_box_stats(self.query_latency_s)


class LightRW:
    """User-facing engine running GDRWs on the modeled accelerator.

    Parameters
    ----------
    graph:
        The CSR graph (use :mod:`repro.graph` to build or load one).
    config:
        Accelerator configuration; defaults to the paper's deployment
        (k=16, b1+b32 bursts, 2^12-entry degree-aware cache, 4 instances).
    backend:
        One of ``"fpga-model"``, ``"fpga-cycle"``, ``"cpu-baseline"``.
    hardware_scale:
        Dataset scale divisor for the scaled-platform rule; applied to the
        config's cache (and the CPU spec's caches for the baseline).
    seed:
        Sampling seed; identical seeds reproduce identical walks across the
        FPGA backends.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: LightRWConfig | None = None,
        backend: str = "fpga-model",
        hardware_scale: int = 1,
        seed: int = 0,
        cpu_spec: CPUSpec | None = None,
        pcie: PCIeModel | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ConfigError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.graph = graph
        self.backend = backend
        self.seed = int(seed)
        base_config = config or LightRWConfig()
        if hardware_scale > 1 and base_config.hardware_scale == 1:
            base_config = base_config.scaled(hardware_scale)
        self.config = base_config
        base_spec = cpu_spec or CPUSpec()
        if hardware_scale > 1 and base_spec.hardware_scale == 1:
            base_spec = base_spec.scaled(hardware_scale)
        self.cpu_spec = base_spec
        # The DMA setup latency is a fixed software cost; under the
        # scaled-platform rule it shrinks with the dataset so the PCIe
        # share of end-to-end time is preserved.
        self.pcie = pcie or PCIeModel(
            graph_copies=self.config.n_instances,
            setup_latency_s=30e-6 / max(self.config.hardware_scale, 1),
        )

    def run(
        self,
        algorithm: WalkAlgorithm,
        n_steps: int,
        starts: np.ndarray | None = None,
        max_sampled_queries: int = 4096,
        record_latency: bool = True,
        include_pcie: bool = True,
    ) -> RunResult:
        """Walk a query batch and model its execution.

        Parameters
        ----------
        algorithm:
            The GDRW weight-update function (MetaPathWalk, Node2VecWalk, ...).
        n_steps:
            Steps per query (5 for MetaPath, 80 for Node2Vec in the paper).
        starts:
            Start vertices; defaults to the paper's one-query-per-walkable-
            vertex batch.
        max_sampled_queries:
            Functional-walk budget; larger batches are walked on a uniform
            sample and the timing extrapolated (exact for the throughput
            experiments, see DESIGN.md).  The cycle backend ignores this
            and always walks everything it is given.
        """
        if starts is None:
            starts = make_queries(self.graph, seed=self.seed)
        starts = np.asarray(starts, dtype=np.int64)

        if self.backend == "fpga-cycle":
            return self._run_cycle(algorithm, starts, n_steps, include_pcie)

        sampled, total = sample_queries(starts, max_sampled_queries, seed=self.seed)
        if self.backend == "cpu-baseline":
            return self._run_cpu(algorithm, sampled, total, n_steps)
        return self._run_model(
            algorithm, sampled, total, n_steps, record_latency, include_pcie
        )

    def run_restart(
        self,
        n_steps: int,
        alpha: float = 0.15,
        starts: np.ndarray | None = None,
        max_sampled_queries: int = 4096,
        include_pcie: bool = True,
    ) -> RunResult:
        """Random walk with restart (personalized PageRank) on the model.

        Teleports are free steps for the hardware (the Query Controller
        decides before any memory access), which the recorded trace
        reflects; only the ``fpga-model`` backend supports this walk.
        """
        from repro.walks.ppr import RestartWalk, run_restart_walks

        if self.backend != "fpga-model":
            raise ConfigError("restart walks are supported on the fpga-model backend")
        if starts is None:
            starts = make_queries(self.graph, seed=self.seed)
        sampled, total = sample_queries(
            np.asarray(starts, dtype=np.int64), max_sampled_queries, seed=self.seed
        )
        session = run_restart_walks(
            self.graph, sampled, n_steps, alpha=alpha, k=self.config.k, seed=self.seed
        )
        algorithm = RestartWalk(alpha)
        model = FPGAPerfModel(self.config, algorithm)
        breakdown = model.evaluate(session, total_queries=total)
        pcie_s = (
            self.pcie.round_trip_s(self.graph, total, breakdown.total_steps)
            if include_pcie
            else 0.0
        )
        return RunResult(
            backend=self.backend,
            algorithm=algorithm.name,
            num_queries=total,
            total_steps=breakdown.total_steps,
            paths=session.paths,
            lengths=session.lengths,
            kernel_s=breakdown.kernel_s,
            pcie_s=pcie_s,
            breakdown=breakdown,
            session=session,
            query_latency_s=breakdown.query_latency_seconds(),
        )

    # -- backends ------------------------------------------------------------

    def _run_model(
        self,
        algorithm: WalkAlgorithm,
        starts: np.ndarray,
        total_queries: int,
        n_steps: int,
        record_latency: bool,
        include_pcie: bool,
    ) -> RunResult:
        sampler = PWRSSampler(k=self.config.k, seed=self.seed)
        session = run_walks(self.graph, starts, n_steps, algorithm, sampler)
        model = FPGAPerfModel(self.config, algorithm)
        breakdown = model.evaluate(
            session, total_queries=total_queries, record_latency=record_latency
        )
        pcie_s = (
            self.pcie.round_trip_s(self.graph, total_queries, breakdown.total_steps)
            if include_pcie
            else 0.0
        )
        return RunResult(
            backend=self.backend,
            algorithm=algorithm.name,
            num_queries=total_queries,
            total_steps=breakdown.total_steps,
            paths=session.paths,
            lengths=session.lengths,
            kernel_s=breakdown.kernel_s,
            pcie_s=pcie_s,
            breakdown=breakdown,
            session=session,
            query_latency_s=(
                breakdown.query_latency_seconds() if record_latency else None
            ),
        )

    def _run_cycle(
        self,
        algorithm: WalkAlgorithm,
        starts: np.ndarray,
        n_steps: int,
        include_pcie: bool,
    ) -> RunResult:
        sim = LightRWAcceleratorSim(self.graph, self.config, algorithm, seed=self.seed)
        result = sim.run(starts, n_steps)
        n_queries = starts.size
        max_len = max((len(p) for p in result.paths.values()), default=1)
        paths = np.full((n_queries, max_len), -1, dtype=np.int64)
        lengths = np.zeros(n_queries, dtype=np.int64)
        for qid, path in result.paths.items():
            paths[qid, : len(path)] = path
            lengths[qid] = len(path) - 1
        latencies = np.array(
            [result.query_latency_cycles.get(q, 0) for q in range(n_queries)],
            dtype=np.float64,
        ) / self.config.frequency_hz
        pcie_s = (
            self.pcie.round_trip_s(self.graph, n_queries, result.total_steps)
            if include_pcie
            else 0.0
        )
        return RunResult(
            backend=self.backend,
            algorithm=algorithm.name,
            num_queries=n_queries,
            total_steps=result.total_steps,
            paths=paths,
            lengths=lengths,
            kernel_s=result.kernel_s,
            pcie_s=pcie_s,
            breakdown=result,
            query_latency_s=latencies,
        )

    def _run_cpu(
        self,
        algorithm: WalkAlgorithm,
        starts: np.ndarray,
        total_queries: int,
        n_steps: int,
    ) -> RunResult:
        sampler = InverseTransformSampler(seed=self.seed)
        session = run_walks(self.graph, starts, n_steps, algorithm, sampler)
        timing = cpu_time_for_session(
            session, algorithm, self.cpu_spec, total_queries=total_queries
        )
        return RunResult(
            backend=self.backend,
            algorithm=algorithm.name,
            num_queries=total_queries,
            total_steps=timing.total_steps,
            paths=session.paths,
            lengths=session.lengths,
            kernel_s=timing.exec_s,
            pcie_s=0.0,
            setup_s=timing.init_time_s,
            breakdown=timing,
            session=session,
            query_latency_s=(
                timing.query_latency_s * self.cpu_spec.interleave_width
                if timing.query_latency_s is not None
                else None
            ),
        )
