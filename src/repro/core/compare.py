"""System comparison helper: LightRW vs the ThunderRW baseline.

Runs the same workload through both modeled engines (sharing the same
graph, query batch and scaled-platform rule) and reports the speedup —
the computation behind Figures 14, 16 and 17 and Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import LightRW, RunResult
from repro.core.queries import make_queries
from repro.cpu.costmodel import CPUSpec
from repro.fpga.config import LightRWConfig
from repro.fpga.power import PowerModel
from repro.graph.csr import CSRGraph
from repro.walks.base import WalkAlgorithm


@dataclass
class SpeedupReport:
    """One workload compared across the modeled systems."""

    graph: str
    algorithm: str
    lightrw: RunResult
    thunderrw: RunResult
    thunderrw_pwrs: RunResult | None = None

    @property
    def speedup(self) -> float:
        """LightRW end-to-end speedup over stock ThunderRW."""
        return self.thunderrw.kernel_s / self.lightrw.end_to_end_s

    @property
    def kernel_speedup(self) -> float:
        """Kernel-only speedup (excludes PCIe; Figures 16/17 use this)."""
        return self.thunderrw.kernel_s / self.lightrw.kernel_s

    @property
    def pwrs_on_cpu_speedup(self) -> float | None:
        """ThunderRW w/ PWRS relative to stock ThunderRW (Figure 14)."""
        if self.thunderrw_pwrs is None:
            return None
        return self.thunderrw.kernel_s / self.thunderrw_pwrs.kernel_s

    def power_efficiency_improvement(self) -> float:
        model = PowerModel(self.algorithm)
        return model.efficiency_improvement(
            self.lightrw.end_to_end_s, self.thunderrw.kernel_s
        )


def compare_engines(
    graph: CSRGraph,
    algorithm: WalkAlgorithm,
    n_steps: int,
    hardware_scale: int = 1,
    config: LightRWConfig | None = None,
    cpu_spec: CPUSpec | None = None,
    starts: np.ndarray | None = None,
    n_queries: int | None = None,
    max_sampled_queries: int = 2048,
    include_pwrs_variant: bool = False,
    seed: int = 0,
) -> SpeedupReport:
    """Run one workload through LightRW and ThunderRW models.

    Both engines see the same start vertices and the same scaled-platform
    rule; functional walks differ (each system samples with its own
    method), as they do on real hardware.
    """
    if starts is None:
        starts = make_queries(graph, n_queries=n_queries, seed=seed)

    fpga = LightRW(
        graph,
        config=config,
        backend="fpga-model",
        hardware_scale=hardware_scale,
        seed=seed,
        cpu_spec=cpu_spec,
    )
    cpu = LightRW(
        graph,
        config=config,
        backend="cpu-baseline",
        hardware_scale=hardware_scale,
        seed=seed,
        cpu_spec=cpu_spec,
    )
    light = fpga.run(
        algorithm, n_steps, starts=starts, max_sampled_queries=max_sampled_queries
    )
    thunder = cpu.run(
        algorithm, n_steps, starts=starts, max_sampled_queries=max_sampled_queries
    )
    pwrs_result = None
    if include_pwrs_variant:
        from repro.cpu.engine import ThunderRWEngine
        from repro.core.queries import sample_queries

        sampled, total = sample_queries(starts, max_sampled_queries, seed=seed)
        engine = ThunderRWEngine(
            graph, spec=cpu.cpu_spec, sampler="pwrs", seed=seed
        )
        outcome = engine.run(sampled, n_steps, algorithm, total_queries=total)
        pwrs_result = RunResult(
            backend="cpu-baseline",
            algorithm=algorithm.name,
            num_queries=total,
            total_steps=outcome.timing.total_steps,
            paths=outcome.session.paths,
            lengths=outcome.session.lengths,
            kernel_s=outcome.timing.exec_s,
            pcie_s=0.0,
            setup_s=outcome.timing.init_time_s,
            breakdown=outcome.timing,
            session=outcome.session,
        )
    return SpeedupReport(
        graph=graph.name,
        algorithm=algorithm.name,
        lightrw=light,
        thunderrw=thunder,
        thunderrw_pwrs=pwrs_result,
    )
