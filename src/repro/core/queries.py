"""Query-batch construction (paper Section 6.1.4).

The paper's evaluation issues one query per vertex with non-zero degree,
with unique shuffled start vertices (following ThunderRW's methodology).
:func:`make_queries` reproduces that; :func:`sample_queries` draws the
uniform subsample the performance models extrapolate from when the full
batch would be too expensive to walk functionally.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.graph.csr import CSRGraph


def make_queries(
    graph: CSRGraph, n_queries: int | None = None, seed: int = 0, shuffle: bool = True
) -> np.ndarray:
    """Start vertices for a query batch.

    Defaults to one query per non-zero-degree vertex.  When ``n_queries``
    exceeds the number of walkable vertices the starts wrap around (the
    sensitivity experiments sweep query counts past ``|V|``); when it is
    smaller, a uniform subset is used.
    """
    walkable = graph.nonzero_degree_vertices()
    if walkable.size == 0:
        raise QueryError("graph has no vertex with out-edges")
    rng = np.random.default_rng(seed)
    if shuffle:
        walkable = rng.permutation(walkable)
    if n_queries is None:
        return walkable
    if n_queries <= 0:
        raise QueryError(f"n_queries must be positive, got {n_queries}")
    if n_queries <= walkable.size:
        return walkable[:n_queries]
    repeats = -(-n_queries // walkable.size)
    return np.tile(walkable, repeats)[:n_queries]


def sample_queries(
    starts: np.ndarray, max_sampled: int, seed: int = 0
) -> tuple[np.ndarray, int]:
    """Uniform subsample of a query batch for sampled extrapolation.

    Returns ``(sampled_starts, total_queries)``; when the batch already
    fits, it is returned unchanged.
    """
    starts = np.asarray(starts, dtype=np.int64)
    if max_sampled <= 0:
        raise QueryError(f"max_sampled must be positive, got {max_sampled}")
    if starts.size <= max_sampled:
        return starts, starts.size
    rng = np.random.default_rng(seed)
    picked = rng.choice(starts.size, size=max_sampled, replace=False)
    return starts[np.sort(picked)], starts.size
