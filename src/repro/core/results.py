"""Result statistics helpers shared by the API and the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """The five numbers of a box-and-whisker plot (paper Figure 15)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    def as_row(self, unit_scale: float = 1.0) -> dict[str, float]:
        return {
            "min": self.minimum * unit_scale,
            "q1": self.q1 * unit_scale,
            "median": self.median * unit_scale,
            "q3": self.q3 * unit_scale,
            "max": self.maximum * unit_scale,
        }


def latency_box_stats(latencies: np.ndarray) -> BoxStats:
    """Quartile summary of a latency sample."""
    values = np.asarray(latencies, dtype=np.float64)
    if values.size == 0:
        raise ValueError("latency sample is empty")
    q1, median, q3 = np.percentile(values, [25.0, 50.0, 75.0])
    return BoxStats(
        minimum=float(values.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(values.max()),
    )
