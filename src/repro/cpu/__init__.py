"""CPU baseline substrate — a modeled ThunderRW (Sun et al., VLDB'21).

ThunderRW is the state-of-the-art CPU random-walk engine the paper compares
against.  This package re-implements its execution *semantics* (the staged
Algorithm 2.1 flow with inverse-transform sampling, multi-query
interleaving) and attaches an analytic cycle/cache cost model calibrated to
the paper's own profiling of ThunderRW (Table 1).  We do not have the
authors' Xeon Gold 6246R; absolute seconds come from the model, but both
sides of every speedup in this repository are computed in the same modeling
framework, so the comparisons carry (see DESIGN.md).
"""

from repro.cpu.costmodel import CPUSpec, CPUTimeBreakdown, cpu_time_for_session
from repro.cpu.engine import ThunderRWEngine, ThunderRWResult
from repro.cpu.memory_model import CacheSim, llc_hit_ratio
from repro.cpu.profiling import TopDownProfile, profile_session

__all__ = [
    "CPUSpec",
    "CPUTimeBreakdown",
    "CacheSim",
    "ThunderRWEngine",
    "ThunderRWResult",
    "TopDownProfile",
    "cpu_time_for_session",
    "llc_hit_ratio",
    "profile_session",
]
