"""Analytic time model of the ThunderRW CPU baseline.

The model consumes the *measured functional trace* of a walk session (which
vertices were visited, with what degrees — see
:class:`repro.walks.stepper.StepRecord`) and charges each step the costs the
ThunderRW execution flow (paper Algorithm 2.1) incurs on a Xeon-class
server:

* **sequential traffic** — streaming the adjacency, writing the updated
  weights, building and re-reading the sampling table (the ``2 |N(v)|``
  intermediate accesses of Inefficiency 1);
* **random accesses** — the ``row_index`` lookup and the jump to the head
  of the adjacency list (Inefficiency 2), charged with an LLC hit model;
* **instructions** — weight updates, table construction, binary search and
  (for Node2Vec) per-candidate membership tests.

Every constant is a documented field of :class:`CPUSpec`; the defaults are
calibrated so that the modeled engine reproduces the paper's own
measurements of ThunderRW — the Table 1 top-down profile and the absolute
step throughputs implied by Figures 14/16 — on the scaled stand-in graphs.
The **scaled-platform rule** applies: ``hardware_scale`` shrinks all cache
capacities by the dataset's scale divisor so capacity/footprint ratios
match the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.cpu.memory_model import CPU_LINE_BYTES, XEON_6246R_LLC_BYTES, llc_hit_ratio
from repro.walks.base import WalkAlgorithm
from repro.walks.stepper import WalkSession

#: Bytes of one adjacency record as the CPU engine streams it (vertex id +
#: static weight).
CPU_EDGE_BYTES = 8
#: Bytes per intermediate element (updated weight / CDF entry).
CPU_INTERMEDIATE_BYTES = 4
#: Bytes of one row_index (neighbor info) entry.
CPU_ROW_BYTES = 8
#: Fraction of capacity misses on streamed lines that remain *demand*
#: misses: hardware prefetchers convert the rest into hits by the time the
#: core touches the line (calibrates the Table 1 miss ratios).
SEQ_DEMAND_MISS_FRACTION = 0.65


@dataclass(frozen=True)
class CPUSpec:
    """Hardware and software constants of the modeled CPU platform."""

    #: Core clock of the Xeon Gold 6246R (Hz).
    frequency_hz: float = 3.4e9
    #: Physical cores used by ThunderRW.
    n_threads: int = 16
    #: Total cache capacity (LLC + L2 slices), paper Section 6.5 (bytes).
    llc_bytes: int = XEON_6246R_LLC_BYTES
    #: Per-core L2 capacity — bounds how much interleaved per-query
    #: intermediate state stays cheap (bytes).
    l2_bytes: int = 1 << 20
    #: Queries interleaved per thread by ThunderRW's step-centric model.
    interleave_width: int = 16
    #: Effective DRAM latency for a dependent random access (s).
    dram_latency_s: float = 90e-9
    #: Latency of an LLC hit (s).
    llc_latency_s: float = 14e-9
    #: Memory-level parallelism ThunderRW's interleaving extracts on random
    #: accesses (outstanding misses effectively overlapped).
    random_mlp: float = 4.0
    #: Per-thread effective bandwidth for DRAM-resident adjacency and
    #: intermediate streams.  Adjacency lists are short (tens to hundreds
    #: of bytes), so the hardware prefetchers barely engage and the
    #: effective rate is far below the peak streaming bandwidth — the CPU
    #: manifestation of the same short-transfer physics the FPGA's burst
    #: engine fights (Figure 6).
    dram_stream_bw: float = 0.75e9
    #: Per-thread effective bandwidth when the stream hits in cache.
    cache_stream_bw: float = 6.0e9
    #: Retired-instruction rate per core (Hz x IPC).
    instr_rate: float = 8.0e9
    #: Instructions per neighbor for weight update + table insert — the
    #: scalar C++ path: indirect weight-function call, float divide,
    #: comparison and CDF store per candidate.
    instr_per_edge: float = 35.0
    #: Extra instructions per neighbor for Node2Vec's membership test
    #: (binary search over the previous adjacency).
    membership_instr_per_edge: float = 28.0
    #: Instructions per item for on-CPU WRS random number draw + accept test
    #: (the cost that makes CPU-side WRS a poor fit: one Mersenne-Twister
    #: draw, one multiply-compare and a data-dependent branch per item).
    rng_instr_per_item: float = 70.0
    #: Fixed instructions per step: stage dispatch (three stages), query
    #: queue management, RNG draw, bounds checks — the software cost of
    #: the staged step-centric engine.
    step_overhead_instr: float = 2500.0
    #: Per-query execution cost inside the walk loop (result buffer
    #: handling, query state churn) — amortized over a query's steps (s).
    per_query_exec_s: float = 1.5e-6
    #: One-off engine start-up: thread-pool spawn, per-query result buffer
    #: allocation, sampler construction (s).  This constant cost is what
    #: craters ThunderRW's throughput on small batches (paper Figure 16).
    engine_init_s: float = 40e-3
    #: Per-query setup cost outside the walk loop (s).
    per_query_setup_s: float = 0.2e-6
    #: Dataset scale divisor; cache capacities shrink by this factor so the
    #: capacity/footprint ratio matches the unscaled platform.
    hardware_scale: int = 1

    @property
    def scaled_llc_bytes(self) -> float:
        return self.llc_bytes / self.hardware_scale

    @property
    def scaled_l2_bytes(self) -> float:
        """L2 capacity for per-query intermediate state.

        Intermediate footprints are degree-proportional, and degrees do not
        shrink linearly with the dataset: under a power-law with exponent
        alpha ~ 2.4 the degree scale shrinks as ``V^(1/(alpha-1)) ~ V^0.71``,
        so the capacity that bounds them is scaled the same way (the same
        rule as the accelerator's previous-stream buffer).
        """
        return self.l2_bytes / self.hardware_scale ** 0.714


    def scaled(self, hardware_scale: int) -> "CPUSpec":
        """Copy of this spec bound to a dataset scale divisor."""
        return replace(self, hardware_scale=hardware_scale)


@dataclass
class CPUTimeBreakdown:
    """Modeled execution time of one walk session on the CPU baseline."""

    spec: CPUSpec
    sampler: str
    total_steps: int
    num_queries: int
    #: Aggregate per-component busy time across all threads (s).
    seq_time_s: float
    rand_time_s: float
    instr_time_s: float
    init_time_s: float
    #: Modeled wall-clock (s): threaded execution + initialization.
    wall_s: float = field(init=False)
    exec_s: float = field(init=False)
    #: Per-query execution latency (s), aligned with session query ids.
    query_latency_s: np.ndarray | None = None
    #: Fraction of line accesses that missed the LLC.
    llc_miss_ratio: float = 0.0

    def __post_init__(self) -> None:
        busy = self.seq_time_s + self.rand_time_s + self.instr_time_s
        self.exec_s = busy / self.spec.n_threads
        self.wall_s = self.exec_s + self.init_time_s

    @property
    def steps_per_second(self) -> float:
        return self.total_steps / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def memory_time_s(self) -> float:
        return self.seq_time_s + self.rand_time_s


def _hit_ratios(session: WalkSession, spec: CPUSpec) -> tuple[float, float]:
    """(row hit, adjacency hit) ratios under the scaled LLC."""
    graph = session.graph
    row_fp = graph.num_vertices * CPU_ROW_BYTES
    col_fp = graph.num_edges * CPU_EDGE_BYTES
    total_fp = max(row_fp + col_fp, 1)
    capacity = spec.scaled_llc_bytes
    c_row = capacity * row_fp / total_fp
    c_col = capacity * col_fp / total_fp
    hit_row = llc_hit_ratio(graph.degrees, CPU_ROW_BYTES, max(c_row, 1.0))
    # Adjacency bytes per vertex scale with its degree, so the hot-prefix
    # value density is uniform and the hit ratio degenerates to the
    # capacity/footprint ratio.
    hit_col = min(1.0, c_col / col_fp) if col_fp else 1.0
    return hit_row, hit_col


def _intermediate_stream_bw(degrees: np.ndarray, spec: CPUSpec) -> np.ndarray:
    """Streaming bandwidth for per-query intermediate buffers.

    ThunderRW interleaves ``interleave_width`` queries per thread; their
    weight/CDF buffers compete for the (scaled) L2.  Small-degree buffers
    stay resident and stream at cache bandwidth; large ones spill to DRAM.
    """
    footprint = (
        degrees.astype(np.float64)
        * 2.0
        * CPU_INTERMEDIATE_BYTES
        * spec.interleave_width
    )
    spill = np.clip(footprint / spec.scaled_l2_bytes, 0.0, 1.0)
    # Spilled intermediates still stream better than cold adjacency reads:
    # the write-allocate + immediate-read pattern keeps lines in flight.
    spilled_bw = 2.0 * spec.dram_stream_bw
    return 1.0 / (spill / spilled_bw + (1.0 - spill) / spec.cache_stream_bw)


def cpu_time_for_session(
    session: WalkSession,
    algorithm: WalkAlgorithm,
    spec: CPUSpec,
    sampler: str = "inverse-transform",
    total_queries: int | None = None,
) -> CPUTimeBreakdown:
    """Charge the ThunderRW cost model over a recorded walk session.

    Parameters
    ----------
    session:
        A functional walk session with trace records.
    algorithm:
        The walk algorithm that produced it (drives Node2Vec's extra
        traffic and instruction terms).
    spec:
        Platform constants (use ``spec.scaled(scale_divisor)`` when the
        session's graph is a scaled stand-in).
    sampler:
        ``"inverse-transform"`` for stock ThunderRW, ``"pwrs"`` for the
        ThunderRW w/ PWRS variant of Figure 14 (no intermediate table, but
        one random number per candidate item).
    total_queries:
        When the session walked a uniform sample of a larger batch, the
        full batch size — busy times extrapolate linearly.
    """
    if not session.records:
        raise ValueError("session has no trace records; run with record_trace=True")
    if sampler not in ("inverse-transform", "alias", "pwrs"):
        raise ValueError(f"unknown sampler {sampler!r}")
    scale = 1.0
    if total_queries is not None:
        if total_queries < session.num_queries:
            raise ValueError("total_queries cannot be below the sampled count")
        scale = total_queries / session.num_queries
    hit_row, hit_col = _hit_ratios(session, spec)
    second_order = algorithm.fetches_previous_neighbors

    seq_time = 0.0
    rand_time = 0.0
    instr_time = 0.0
    line_accesses = 0.0
    line_misses = 0.0
    query_latency = np.zeros(session.num_queries, dtype=np.float64)

    t_rand_miss = spec.dram_latency_s / spec.random_mlp
    t_rand_hit = spec.llc_latency_s
    adjacency_bw = 1.0 / (
        (1.0 - hit_col) / spec.dram_stream_bw + hit_col / spec.cache_stream_bw
    )

    for record in session.records:
        d = record.degrees.astype(np.float64)
        d_prev = record.prev_degrees.astype(np.float64)
        has_prev = record.prev >= 0

        adjacency_bytes = d * CPU_EDGE_BYTES
        if second_order:
            adjacency_bytes = adjacency_bytes + np.where(has_prev, d_prev * 4.0, 0.0)
        if sampler == "inverse-transform":
            # write weights, read weights, write the 8-byte CDF entries —
            # the 2|N| intermediate traffic of Inefficiency 1 plus the
            # table store.
            intermediate_bytes = d * (2.0 * CPU_INTERMEDIATE_BYTES + 8.0)
        elif sampler == "alias":
            # Vose construction touches the scaled weights twice and
            # writes (prob, alias) pairs.
            intermediate_bytes = d * (3.0 * CPU_INTERMEDIATE_BYTES + 8.0)
        else:
            intermediate_bytes = np.zeros_like(d)

        t_seq = adjacency_bytes / adjacency_bw + intermediate_bytes / _intermediate_stream_bw(
            record.degrees, spec
        )

        # Row lookup + adjacency head jump, plus the generation phase's
        # random probe into the just-built table for the table methods.
        n_rand = np.full(d.shape, 2.0 if sampler == "pwrs" else 3.0)
        if second_order:
            n_rand = n_rand + np.where(has_prev, 2.0, 0.0)
        # Split random accesses: half hit like row_index (degree-skewed),
        # half like adjacency heads (capacity-bound).
        miss_rand = 0.5 * (1.0 - hit_row) + 0.5 * (1.0 - hit_col)
        t_rand = n_rand * (miss_rand * t_rand_miss + (1.0 - miss_rand) * t_rand_hit)

        instr = d * spec.instr_per_edge + spec.step_overhead_instr
        if sampler == "inverse-transform":
            instr = instr + np.log2(np.maximum(d, 1.0)) * 8.0  # binary search
        elif sampler == "alias":
            # Vose's worklist construction costs more per item; generation
            # is O(1).
            instr = instr + d * 9.0
        if second_order:
            instr = instr + np.where(has_prev, d * spec.membership_instr_per_edge, 0.0)
        if sampler == "pwrs":
            instr = instr + d * spec.rng_instr_per_item
        t_instr = instr / spec.instr_rate

        t_step = t_seq + t_rand + t_instr
        seq_time += float(t_seq.sum())
        rand_time += float(t_rand.sum())
        instr_time += float(t_instr.sum())
        np.add.at(query_latency, record.query_ids, t_step)

        seq_lines = (adjacency_bytes + intermediate_bytes) / CPU_LINE_BYTES
        line_accesses += float(seq_lines.sum() + n_rand.sum())
        line_misses += float(
            (seq_lines * (1.0 - hit_col) * SEQ_DEMAND_MISS_FRACTION).sum()
            + (n_rand * miss_rand).sum()
        )

    n_total = total_queries or session.num_queries
    # Per-query in-loop cost is execution work, charged to the instruction
    # component and extrapolated with the batch.
    instr_time += session.num_queries * spec.per_query_exec_s
    init = spec.engine_init_s + n_total * spec.per_query_setup_s
    return CPUTimeBreakdown(
        spec=spec,
        sampler=sampler,
        total_steps=int(round(session.total_steps * scale)),
        num_queries=n_total,
        seq_time_s=seq_time * scale,
        rand_time_s=rand_time * scale,
        instr_time_s=instr_time * scale,
        init_time_s=init,
        query_latency_s=query_latency,
        llc_miss_ratio=line_misses / line_accesses if line_accesses else 0.0,
    )
