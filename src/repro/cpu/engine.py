"""The ThunderRW-style CPU walk engine (functional + modeled timing).

:class:`ThunderRWEngine` runs the staged execution flow of Algorithm 2.1 —
weight calculation, table initialization, generation — over a batch of
queries.  Functionally it computes real walks through the shared vectorized
stepper with inverse-transform sampling (the paper configures ThunderRW with
exactly that method); its timing is produced by the analytic cost model in
:mod:`repro.cpu.costmodel`.

The ``sampler="pwrs"`` variant reproduces "ThunderRW w/ PWRS" of Figure 14:
the parallel weighted reservoir sampler dropped into the CPU engine, which
removes the intermediate table but pays for per-item random numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.costmodel import CPUSpec, CPUTimeBreakdown, cpu_time_for_session
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.walks.base import WalkAlgorithm
from repro.walks.stepper import (
    InverseTransformSampler,
    PWRSSampler,
    WalkSession,
    run_walks,
)


@dataclass
class ThunderRWResult:
    """Walks plus the modeled CPU timing for one batch execution."""

    session: WalkSession
    timing: CPUTimeBreakdown

    @property
    def wall_s(self) -> float:
        return self.timing.wall_s

    @property
    def steps_per_second(self) -> float:
        return self.timing.steps_per_second


class ThunderRWEngine:
    """Modeled ThunderRW: staged CPU GDRW execution.

    Parameters
    ----------
    graph:
        The CSR graph.
    spec:
        Platform constants; pass ``CPUSpec().scaled(divisor)`` when the
        graph is a scaled stand-in (see DESIGN.md's scaled-platform rule).
    sampler:
        ``"inverse-transform"`` (stock ThunderRW), ``"alias"`` (its other
        table method), or ``"pwrs"`` (ThunderRW w/ PWRS).
    seed:
        Randomness seed for the walk sampling.
    """

    def __init__(
        self,
        graph: CSRGraph,
        spec: CPUSpec | None = None,
        sampler: str = "inverse-transform",
        seed: int = 0,
        pwrs_k: int = 4,
    ) -> None:
        if sampler not in ("inverse-transform", "alias", "pwrs"):
            raise ConfigError(
                "sampler must be 'inverse-transform', 'alias' or 'pwrs', "
                f"got {sampler!r}"
            )
        self.graph = graph
        self.spec = spec or CPUSpec()
        self.sampler_kind = sampler
        self.seed = int(seed)
        # On a CPU the "lanes" of PWRS are SIMD lanes; 4 matches 128-bit
        # vectors of 32-bit weights.
        self.pwrs_k = int(pwrs_k)

    def run(
        self,
        starts: np.ndarray,
        n_steps: int,
        algorithm: WalkAlgorithm,
        total_queries: int | None = None,
        query_ids: np.ndarray | None = None,
    ) -> ThunderRWResult:
        """Execute one batch of queries and model its cost.

        ``total_queries`` enables query-sampled extrapolation: ``starts``
        is then treated as a uniform sample of that many queries.
        ``query_ids`` keys per-query randomness globally so sharded
        execution through the runtime scheduler walks identically.
        """
        if self.sampler_kind == "pwrs":
            strategy = PWRSSampler(k=self.pwrs_k, seed=self.seed)
        else:
            # The alias and inverse-transform methods draw from the same
            # per-step distribution; the functional walk uses the
            # inverse-transform selector for both (their difference is in
            # the cost model).
            strategy = InverseTransformSampler(seed=self.seed)
        session = run_walks(
            self.graph, starts, n_steps, algorithm, strategy, record_trace=True,
            query_ids=query_ids,
        )
        timing = cpu_time_for_session(
            session, algorithm, self.spec, sampler=self.sampler_kind,
            total_queries=total_queries,
        )
        return ThunderRWResult(session=session, timing=timing)
