"""CPU cache behaviour: a trace-driven LLC simulator and an analytic model.

Two tools with one purpose — estimating how often the CPU baseline's memory
accesses miss the last-level cache:

* :class:`CacheSim` — an exact set-associative LRU cache simulator.  Used by
  unit tests and the Table 1 profiler on sampled traces (it is a Python
  loop, so it is fed thousands, not billions, of accesses).
* :func:`llc_hit_ratio` — a closed-form approximation used by the fast cost
  model: random accesses into a graph's arrays hit the LLC either because
  the *whole* working set fits, or because the access distribution is
  degree-skewed and the hot head fits.  Validated against :class:`CacheSim`
  in the test suite.

Both honor the **scaled-platform rule** (DESIGN.md): when experiments run on
a graph scaled down by ``s``, the 35.75 MB LLC is scaled by ``s`` too so the
capacity-to-footprint ratio — the quantity that drives every result — is
preserved.
"""

from __future__ import annotations

import numpy as np

#: Intel Xeon Gold 6246R total cache capacity reported by the paper (bytes).
XEON_6246R_LLC_BYTES = int(35.75 * (1 << 20))

#: Cache line size (bytes) of the modeled CPU.
CPU_LINE_BYTES = 64


class CacheSim:
    """Exact set-associative LRU cache over 64-byte lines.

    ``access`` takes byte addresses; the simulator records hits and misses.
    Intended for traces up to a few hundred thousand accesses (pure Python
    per-access loop).
    """

    def __init__(self, capacity_bytes: int, ways: int = 16, line_bytes: int = CPU_LINE_BYTES):
        if capacity_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("capacity, ways and line size must be positive")
        n_lines = max(capacity_bytes // line_bytes, ways)
        self.n_sets = max(n_lines // ways, 1)
        self.ways = ways
        self.line_bytes = line_bytes
        # per-set dict: tag -> last-use tick (LRU bookkeeping)
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.line_bytes
        set_index = line % self.n_sets
        tag = line // self.n_sets
        entries = self._sets[set_index]
        self._tick += 1
        if tag in entries:
            entries[tag] = self._tick
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self.ways:
            victim = min(entries, key=entries.get)
            del entries[victim]
        entries[tag] = self._tick
        return False

    def access_many(self, addresses: np.ndarray) -> int:
        """Touch a sequence of byte addresses; returns the number of hits."""
        before = self.hits
        for address in np.asarray(addresses, dtype=np.int64).tolist():
            self.access(address)
        return self.hits - before

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


def llc_hit_ratio(
    degrees: np.ndarray,
    bytes_per_vertex: float,
    capacity_bytes: float,
) -> float:
    """Analytic LLC hit ratio for degree-proportional random vertex accesses.

    Random walks touch vertex ``v``'s data with probability proportional to
    ``deg(v)`` (the stationary-distribution argument of Section 5.1).  Under
    LRU, the cache effectively retains the hottest vertices; the hit ratio
    is then the visit-probability mass of the largest-degree prefix whose
    footprint fits in the cache.

    Parameters
    ----------
    degrees:
        Out-degree of every vertex.
    bytes_per_vertex:
        Footprint charged per vertex (its neighbor-info entry plus the
        average adjacency bytes, depending on which array is modeled).
    capacity_bytes:
        Effective (scaled) cache capacity.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    if degrees.size == 0 or degrees.sum() <= 0:
        return 1.0
    if bytes_per_vertex <= 0 or capacity_bytes <= 0:
        raise ValueError("bytes_per_vertex and capacity_bytes must be positive")
    n_cacheable = int(capacity_bytes // bytes_per_vertex)
    if n_cacheable >= degrees.size:
        return 1.0
    if n_cacheable == 0:
        return 0.0
    hottest = np.partition(degrees, -n_cacheable)[-n_cacheable:]
    return float(hottest.sum() / degrees.sum())
