"""Top-down profiling emulation (paper Table 1).

The paper profiles ThunderRW with Intel vTune and reports three top-down
quantities per workload: the LLC miss ratio, the fraction of pipeline slots
stalled on memory ("Memory Bound"), and the fraction doing useful work
("Retiring").  We reproduce the same quantities from the cost model's
component times:

* **LLC miss** comes straight from the modeled line-access accounting;
* **Memory Bound** is the memory component of execution time expressed as a
  fraction of total time, discounted by the share of memory time the
  out-of-order core overlaps with work (vTune only counts *stalled* slots);
* **Retiring** is the issued-instruction time over total time, scaled by
  the pipeline width utilization.

The discount factors are fixed, documented constants — not per-workload
knobs — so the *differences between workloads* (MetaPath vs Node2Vec,
livejournal vs uk2002) emerge from the traces, as they do in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.costmodel import CPUTimeBreakdown

#: Share of memory time that shows up as stalled (non-overlapped) slots.
MEMORY_STALL_VISIBILITY = 0.82
#: Effective retiring-slot utilization of the issued instruction stream
#: (4-wide issue, imperfect ILP).
RETIRING_SLOT_UTILIZATION = 0.75


@dataclass
class TopDownProfile:
    """One row of Table 1."""

    application: str
    graph: str
    llc_miss_ratio: float
    memory_bound: float
    retiring: float

    def as_row(self) -> dict[str, str]:
        return {
            "Application": self.application,
            "Graph": self.graph,
            "LLC Miss": f"{self.llc_miss_ratio:.1%}",
            "Memory Bound": f"{self.memory_bound:.1%}",
            "Retiring": f"{self.retiring:.1%}",
        }


def profile_session(
    timing: CPUTimeBreakdown, application: str, graph_name: str
) -> TopDownProfile:
    """Derive the Table 1 quantities from a modeled execution."""
    busy = timing.seq_time_s + timing.rand_time_s + timing.instr_time_s
    if busy <= 0:
        raise ValueError("timing breakdown has no busy time")
    memory_fraction = timing.memory_time_s / busy
    instr_fraction = timing.instr_time_s / busy
    return TopDownProfile(
        application=application,
        graph=graph_name,
        llc_miss_ratio=timing.llc_miss_ratio,
        memory_bound=memory_fraction * MEMORY_STALL_VISIBILITY,
        retiring=instr_fraction * RETIRING_SLOT_UTILIZATION,
    )
