"""Exception hierarchy for the LightRW reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still getting
precise types for programmatic handling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphFormatError(ReproError):
    """Raised when graph input data is malformed or internally inconsistent.

    Examples: a ``row_index`` that is not monotonically non-decreasing, a
    ``col_index`` entry referencing a vertex outside ``[0, num_vertices)``,
    or mismatched array lengths between edges and edge weights.
    """


class QueryError(ReproError):
    """Raised for invalid random-walk queries.

    Examples: a start vertex outside the graph, a non-positive walk length,
    or a MetaPath schema whose length does not cover the requested walk.
    """


class ConfigError(ReproError):
    """Raised when an accelerator or engine configuration is invalid.

    Examples: a sampler parallelism ``k`` that is not a power of two, a burst
    strategy whose short-burst length exceeds the long-burst length, or a
    cache capacity that is not a power of two.
    """


class SimulationError(ReproError):
    """Raised when the cycle-level simulator reaches an inconsistent state.

    This indicates a bug in a hardware-module model (for instance a FIFO
    pushed while full), never a user input problem, and is therefore a
    condition tests treat as fatal.
    """


class SimulationStallError(SimulationError):
    """Raised by the simulator watchdog when the pipeline stops progressing.

    The watchdog monitors FIFO commit traffic and module activity; when
    neither advances for its cycle budget the run is livelocked or
    deadlocked, and this error carries a diagnostic dump of per-FIFO
    occupancy and per-stage state instead of letting the simulation spin
    to its (much larger) cycle cap.
    """


class ArtifactCorruptionError(ReproError):
    """Raised when a stored artifact fails its integrity verification.

    Covers zero-byte and truncated files, unparseable payloads and
    checksum mismatches for every checked artifact format (NPZ bundles,
    JSONL telemetry records, bench result JSON, run checkpoints).  The
    offending file is moved aside so it is never silently re-read; the
    ``quarantine_path`` attribute names where it went (``None`` when the
    file could not be moved).
    """

    def __init__(
        self,
        message: str,
        path: object = None,
        quarantine_path: object = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.quarantine_path = quarantine_path


class ShardTimeoutError(ReproError):
    """Raised when one scheduler shard exceeds its per-shard time budget.

    The batch scheduler treats a timed-out attempt like any other shard
    failure: it is retried under the run's :class:`~repro.runtime.RetryPolicy`
    and, if the budget keeps being exceeded, surfaces as a
    :class:`~repro.runtime.ShardFailure` with ``timed_out=True``.
    """


class ShardExecutionError(ReproError):
    """Raised when shard failures cannot be absorbed by the scheduler.

    In strict mode (the default) any failed shard raises this; in degraded
    mode it is raised only when *every* shard failed and there is no
    partial result to return.  The ``failures`` attribute carries the
    per-shard :class:`~repro.runtime.ShardFailure` records.
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        super().__init__(message)
        self.failures = tuple(failures)
