"""FPGA accelerator substrate: LightRW as a cycle-level simulator.

The physical LightRW runs on a Xilinx Alveo U250; this package reproduces
its architecture in software at two fidelity levels that produce the *same
walks* (per-query decorrelated RNG — see :mod:`repro.walks.stepper`):

* :mod:`repro.fpga.accelerator` — the clocked simulator: FIFOs, pipeline
  module models and a DRAM channel ticked cycle by cycle.
* :mod:`repro.fpga.perfmodel` — the analytic model: the identical module
  cost equations evaluated over a recorded walk trace without per-cycle
  ticking; validated against the clocked simulator and used at graph scale.

Host-side concerns — PCIe transfer, power, resource utilization — have
their own parametric models matching the paper's Tables 3–5.
"""

from repro.fpga.burst import BurstStrategy, FIXED_LONG, SHORT_ONLY, plan_bursts
from repro.fpga.cache import (
    DegreeAwareCache,
    DirectMappedCache,
    FIFOCache,
    LRUCache,
    simulate_degree_aware,
    simulate_direct_mapped,
)
from repro.fpga.config import LightRWConfig
from repro.fpga.distributed import DistributedLightRW, NetworkSpec
from repro.fpga.dram import DRAMTimings, burst_bandwidth_gbps
from repro.fpga.platforms import U280, u250_config, u280_hbm_config
from repro.fpga.queueing import ServerModel, response_curve
from repro.fpga.roofline import RooflinePoint, ridge_point, roofline_point
from repro.fpga.sweep import DesignSpaceExplorer, sweep_design_space
from repro.fpga.pcie import PCIeModel
from repro.fpga.perfmodel import FPGAPerfModel, FPGATimeBreakdown
from repro.fpga.power import PowerModel
from repro.fpga.resources import ResourceModel, U250
from repro.fpga.wrs_sampler import WRSSamplerModel

__all__ = [
    "BurstStrategy",
    "DegreeAwareCache",
    "DirectMappedCache",
    "DRAMTimings",
    "DistributedLightRW",
    "NetworkSpec",
    "FIFOCache",
    "FIXED_LONG",
    "FPGAPerfModel",
    "FPGATimeBreakdown",
    "LRUCache",
    "LightRWConfig",
    "PCIeModel",
    "PowerModel",
    "ResourceModel",
    "ServerModel",
    "DesignSpaceExplorer",
    "SHORT_ONLY",
    "U250",
    "U280",
    "WRSSamplerModel",
    "burst_bandwidth_gbps",
    "u250_config",
    "u280_hbm_config",
    "response_curve",
    "RooflinePoint",
    "ridge_point",
    "roofline_point",
    "sweep_design_space",
    "plan_bursts",
    "simulate_degree_aware",
    "simulate_direct_mapped",
]
