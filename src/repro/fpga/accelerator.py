"""Cycle-accurate LightRW accelerator assembly (paper Figures 3 and 9).

Wires the pipeline modules of :mod:`repro.fpga.modules` into complete
LightRW instances — one per DRAM channel, each with a private graph copy —
distributes queries round-robin across instances, and ticks everything to
completion.

This backend is the ground truth for timing questions; it is slow (Python,
one call per module per cycle) and intended for tests and module-level
experiments.  Use :class:`repro.fpga.perfmodel.FPGAPerfModel` (validated
against this simulator) for graph-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.fpga.config import LightRWConfig
from repro.fpga.modules import (
    BurstCmdGenerator,
    DRAMChannelSim,
    IntraBurstMerge,
    NeighborInfoLoader,
    QueryController,
    WeightUpdater,
    WRSSamplerModule,
)
from repro.fpga.sim.clock import DEFAULT_WATCHDOG_CYCLES, Simulator
from repro.fpga.sim.fifo import FIFO
from repro.fpga.sim.trace import PipelineTracer
from repro.graph.csr import CSRGraph
from repro.walks.base import WalkAlgorithm


@dataclass
class InstanceStats:
    """Per-instance counters after a run.

    Every counter defaults to zero so an idle instance is
    ``InstanceStats()`` — construct by keyword, so adding a counter can
    never silently shift the meaning of positional zeros.
    """

    cycles: int = 0
    dram_busy_cycles: int = 0
    dram_bytes: int = 0
    dram_requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    bytes_valid: int = 0
    bytes_loaded: int = 0
    #: Busy cycles per pipeline module (module name -> cycles doing work).
    module_busy: dict[str, int] = field(default_factory=dict)
    #: Backpressure per FIFO (name -> cycles it ended full with no pop).
    fifo_stalls: dict[str, int] = field(default_factory=dict)

    def utilization(self) -> dict[str, float]:
        """Per-module busy fraction of the instance's run time."""
        if not self.cycles:
            return {}
        report = {"dram": self.dram_busy_cycles / self.cycles}
        for name, busy in self.module_busy.items():
            report[name] = busy / self.cycles
        return report

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def valid_ratio(self) -> float:
        return self.bytes_valid / self.bytes_loaded if self.bytes_loaded else 1.0


@dataclass
class CycleSimResult:
    """Outcome of a cycle-accurate run."""

    config: LightRWConfig
    cycles: int
    paths: dict[int, list[int]]
    instances: list[InstanceStats]
    query_latency_cycles: dict[int, int]
    #: Event trace (present when the run was started with ``trace=True``).
    tracer: PipelineTracer | None = None

    @property
    def kernel_s(self) -> float:
        return self.cycles / self.config.frequency_hz

    @property
    def total_steps(self) -> int:
        return sum(len(path) - 1 for path in self.paths.values())

    @property
    def steps_per_second(self) -> float:
        return self.total_steps / self.kernel_s if self.kernel_s > 0 else 0.0

    def path(self, qid: int) -> np.ndarray:
        return np.asarray(self.paths[qid], dtype=np.int64)

    def utilization_report(self) -> dict[str, float]:
        """Mean per-module busy fraction across the active instances."""
        active = [s for s in self.instances if s.cycles]
        if not active:
            return {}
        keys = active[0].utilization().keys()
        return {
            key: sum(s.utilization()[key] for s in active) / len(active)
            for key in keys
        }


class _Instance:
    """One LightRW instance: modules + FIFOs + its simulator."""

    def __init__(
        self,
        graph: CSRGraph,
        starts: np.ndarray,
        query_ids: np.ndarray,
        n_steps: int,
        algorithm: WalkAlgorithm,
        config: LightRWConfig,
        seed: int,
        label: str,
    ) -> None:
        depth = config.fifo_depth
        self.task_fifo = FIFO(f"{label}.tasks", depth)
        self.info_fifo = FIFO(f"{label}.info", depth)
        self.manifest_fifo = FIFO(f"{label}.manifests", depth)
        self.edge_fifo = FIFO(f"{label}.edges", depth)
        self.weighted_fifo = FIFO(f"{label}.weighted", depth)
        self.result_fifo = FIFO(f"{label}.results", depth)

        self.dram = DRAMChannelSim(config, name=f"{label}.dram")
        self.controller = QueryController(
            graph, starts, n_steps, config, self.task_fifo, self.result_fifo,
            query_ids=query_ids, name=f"{label}.controller",
        )
        self.info_loader = NeighborInfoLoader(
            graph, config, self.dram, self.task_fifo, self.info_fifo,
            second_order=algorithm.fetches_previous_neighbors,
            name=f"{label}.info-loader",
        )
        self.cmd_gen = BurstCmdGenerator(
            config, self.dram, self.info_fifo, self.manifest_fifo,
            name=f"{label}.burst-cmd-gen",
        )
        self.merge = IntraBurstMerge(
            self.dram, self.manifest_fifo, self.edge_fifo, name=f"{label}.merge"
        )
        self.updater = WeightUpdater(
            graph, algorithm, config, self.edge_fifo, self.weighted_fifo,
            name=f"{label}.weight-updater",
        )
        self.sampler = WRSSamplerModule(
            config, self.weighted_fifo, self.result_fifo, seed=seed,
            name=f"{label}.wrs-sampler",
        )
        modules = [
            self.controller,
            self.info_loader,
            self.cmd_gen,
            self.merge,
            self.updater,
            self.sampler,
            self.dram,
        ]
        fifos = [
            self.task_fifo,
            self.info_fifo,
            self.manifest_fifo,
            self.edge_fifo,
            self.weighted_fifo,
            self.result_fifo,
        ]
        self.sim = Simulator(modules, fifos)

    def attach_tracer(self, tracer: PipelineTracer) -> None:
        for module in self.sim.modules:
            module.tracer = tracer

    def run(self, max_cycles: int, watchdog_cycles: int | None) -> int:
        return self.sim.run_until(
            self.controller.done,
            max_cycles=max_cycles,
            watchdog_cycles=watchdog_cycles,
        )

    def stats(self) -> InstanceStats:
        return InstanceStats(
            cycles=self.sim.cycle,
            dram_busy_cycles=self.dram.interface_busy_cycles,
            dram_bytes=self.dram.bytes_served,
            dram_requests=self.dram.requests_served,
            cache_hits=self.info_loader.hits,
            cache_misses=self.info_loader.misses,
            bytes_valid=self.cmd_gen.bytes_valid,
            bytes_loaded=self.cmd_gen.bytes_loaded,
            module_busy={
                "controller": self.controller.busy_cycles,
                "info-loader": self.info_loader.busy_cycles,
                "burst-cmd-gen": self.cmd_gen.busy_cycles,
                "merge": self.merge.busy_cycles,
                "weight-updater": self.updater.busy_cycles,
                "wrs-sampler": self.sampler.busy_cycles,
            },
            fifo_stalls={
                fifo.name.split(".", 1)[-1]: fifo.stalled_cycles
                for fifo in self.sim.fifos
            },
        )


class LightRWAcceleratorSim:
    """Multi-instance cycle-accurate LightRW deployment."""

    def __init__(
        self, graph: CSRGraph, config: LightRWConfig, algorithm: WalkAlgorithm, seed: int = 0
    ) -> None:
        algorithm.validate_graph(graph)
        if not config.use_wrs:
            raise ConfigError(
                "the cycle simulator models the streaming WRS pipeline only; "
                "evaluate the table-based ablation (use_wrs=False) with "
                "FPGAPerfModel instead"
            )
        self.graph = graph
        self.config = config
        self.algorithm = algorithm
        self.seed = int(seed)

    def run(
        self,
        starts: np.ndarray,
        n_steps: int,
        max_cycles: int = 50_000_000,
        trace: bool = False,
        query_ids: np.ndarray | None = None,
        watchdog_cycles: int | None = DEFAULT_WATCHDOG_CYCLES,
    ) -> CycleSimResult:
        """Simulate the full deployment; queries are spread round-robin.

        Instances run independently (they own private DRAM channels), so
        they are simulated one after another and the kernel time is the
        maximum instance time — exactly the hardware's completion
        semantics.  With ``trace=True`` every instance records pipeline
        events into a shared :class:`PipelineTracer` (returned on the
        result).

        ``query_ids`` assigns global ids to the queries (default
        ``arange``); per-query sampler seeds derive from these, so a
        sharded batch replayed with its global ids walks identically to
        the unsharded run.  The result's ``paths``/``query_latency_cycles``
        are keyed by these ids.

        ``watchdog_cycles`` is the no-progress budget before a
        livelocked/deadlocked pipeline aborts with
        :class:`~repro.errors.SimulationStallError` (``None`` disables
        the watchdog, leaving only the ``max_cycles`` backstop).
        """
        starts = np.asarray(starts, dtype=np.int64)
        tracer = PipelineTracer() if trace else None
        if query_ids is None:
            query_ids = np.arange(starts.size, dtype=np.int64)
        else:
            query_ids = np.asarray(query_ids, dtype=np.int64)
            if query_ids.shape != starts.shape:
                raise ConfigError("query_ids must align with starts")
        paths: dict[int, list[int]] = {}
        latencies: dict[int, int] = {}
        stats: list[InstanceStats] = []
        total_cycles = 0
        for inst in range(self.config.n_instances):
            mask = query_ids % self.config.n_instances == inst
            if not np.any(mask):
                stats.append(InstanceStats())
                continue
            instance = _Instance(
                self.graph,
                starts[mask],
                query_ids[mask],
                n_steps,
                self.algorithm,
                self.config,
                seed=self.seed,
                label=f"inst{inst}",
            )
            if tracer is not None:
                instance.attach_tracer(tracer)
            cycles = instance.run(max_cycles, watchdog_cycles)
            total_cycles = max(total_cycles, cycles)
            paths.update(instance.controller.paths)
            for qid, finish in instance.controller.finish_cycle.items():
                latencies[qid] = finish - instance.controller.first_issue_cycle[qid]
            stats.append(instance.stats())
        return CycleSimResult(
            config=self.config,
            cycles=total_cycles,
            paths=paths,
            instances=stats,
            query_latency_cycles=latencies,
            tracer=tracer,
        )
