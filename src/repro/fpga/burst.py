"""Dynamic burst engine planning (paper Section 5.2).

Neighbor lists have wildly varying lengths; a fixed long burst wastes
bandwidth on short lists (low valid-data ratio) while short bursts waste it
on request overhead.  LightRW's dynamic burst engine splits each
``c``-byte fetch into

    n_long  = floor(c / S1)           long bursts of S1 bytes,
    n_short = ceil((c - n_long*S1) / S2)   short bursts of S2 bytes,

bounding loaded-but-unused data by ``S2`` per request (the paper proves
total loaded bytes equal ``ceil(c / S2) * S2``).

:func:`plan_bursts` is the vectorized planner used by both the cycle
simulator's Burst cmd Generator and the analytic model; a
:class:`BurstStrategy` names the ``b{short}+b{long}`` configurations of
Figure 12, including the degenerate fixed-length strategies used as the
baseline and the DYB-off ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.fpga.dram import DRAMTimings


@dataclass(frozen=True)
class BurstStrategy:
    """A ``b{short}+b{long}`` burst configuration (lengths in bus beats).

    ``long_beats = 0`` means short-only (the paper's ``b1+b0`` baseline);
    ``short_beats = 0`` with a long length means fixed-long-only (the
    DYB-off ablation, which over-fetches list tails).
    """

    short_beats: int = 1
    long_beats: int = 32

    def __post_init__(self) -> None:
        if self.short_beats < 0 or self.long_beats < 0:
            raise ConfigError("burst lengths must be non-negative")
        if self.short_beats == 0 and self.long_beats == 0:
            raise ConfigError("at least one burst pipeline must be enabled")
        if self.short_beats and self.long_beats and self.short_beats > self.long_beats:
            raise ConfigError(
                f"short burst ({self.short_beats}) must not exceed "
                f"long burst ({self.long_beats})"
            )

    @property
    def label(self) -> str:
        return f"b{self.short_beats}+b{self.long_beats}"

    @property
    def is_dynamic(self) -> bool:
        return self.short_beats > 0 and self.long_beats > 0


#: The paper's baseline: burst length one only.
SHORT_ONLY = BurstStrategy(short_beats=1, long_beats=0)

#: DYB-off ablation: every fetch uses fixed 32-beat bursts.
FIXED_LONG = BurstStrategy(short_beats=0, long_beats=32)

#: The winning configuration of Figure 12, used by default.
DEFAULT_STRATEGY = BurstStrategy(short_beats=1, long_beats=32)


@dataclass
class BurstPlan:
    """Vectorized planning result for an array of fetch sizes."""

    n_long: np.ndarray
    n_short: np.ndarray
    loaded_bytes: np.ndarray
    valid_bytes: np.ndarray
    interface_cycles: np.ndarray

    @property
    def total_requests(self) -> int:
        return int(self.n_long.sum() + self.n_short.sum())

    @property
    def valid_ratio(self) -> float:
        loaded = float(self.loaded_bytes.sum())
        return float(self.valid_bytes.sum()) / loaded if loaded else 1.0


def plan_bursts(
    request_bytes: np.ndarray,
    strategy: BurstStrategy,
    timings: DRAMTimings | None = None,
) -> BurstPlan:
    """Plan burst accesses for an array of fetch sizes (bytes).

    Returns per-request burst counts, loaded/valid byte totals and the
    DRAM interface cycles each fetch occupies.  Zero-byte fetches cost
    nothing.
    """
    timings = timings or DRAMTimings()
    c = np.asarray(request_bytes, dtype=np.int64)
    if c.size and c.min() < 0:
        raise ConfigError("request sizes must be non-negative")
    s1 = strategy.long_beats * timings.bus_bytes
    s2 = strategy.short_beats * timings.bus_bytes

    if strategy.short_beats == 0:
        # Fixed-long only: every fetch rounds up to whole long bursts.
        n_long = np.where(c > 0, -(-c // max(s1, 1)), 0)
        n_short = np.zeros_like(c)
        loaded = n_long * s1
    elif strategy.long_beats == 0:
        n_long = np.zeros_like(c)
        n_short = np.where(c > 0, -(-c // s2), 0)
        loaded = n_short * s2
    else:
        n_long = c // s1
        remainder = c - n_long * s1
        n_short = -(-remainder // s2)
        loaded = n_long * s1 + n_short * s2

    overhead = timings.request_overhead_cycles
    long_overhead = overhead + timings.long_pipe_extra_cycles
    cycles = (
        n_long * (strategy.long_beats + long_overhead)
        + n_short * (strategy.short_beats + overhead)
    )
    # Device bandwidth cap: beats cannot stream faster than the DDR4 core.
    # ``min_cycles_per_beat`` is fractional, but interface occupancy is a
    # whole number of cycles — round the floor up so every ``BurstPlan``
    # field stays int64 instead of silently drifting to float64.
    min_beat_cycles = np.ceil(
        (loaded // timings.bus_bytes) * timings.min_cycles_per_beat
    ).astype(np.int64)
    cycles = np.maximum(cycles, min_beat_cycles)
    return BurstPlan(
        n_long=n_long,
        n_short=n_short,
        loaded_bytes=loaded,
        valid_bytes=c,
        interface_cycles=cycles,
    )
