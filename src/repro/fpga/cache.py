"""On-chip vertex caches for the Neighbor Info Loader (paper Section 5.1).

The accelerator caches ``row_index`` entries — the ``(address, degree)``
neighbor-info tuple of a vertex — in on-chip URAM.  Random-walk accesses
have enormous reuse distances, so recency-based policies fail; LightRW's
**degree-aware cache** (DAC) instead evicts by comparing degrees: on a
miss, the fetched vertex replaces the cached line only if its degree is
strictly higher.  Because visit probability grows with degree
(Section 5.1's stationary-distribution analysis), the cache converges to
holding the hottest vertices with zero preprocessing.

This module provides:

* stateful single-access caches (:class:`DegreeAwareCache`,
  :class:`DirectMappedCache`, :class:`LRUCache`, :class:`FIFOCache`) used
  by the cycle simulator and the policy-ablation benchmarks, and
* **exact vectorized trace simulations**
  (:func:`simulate_degree_aware`, :func:`simulate_direct_mapped`) used by
  the fast model.  These are not approximations: a direct-mapped DAC line
  always holds the highest-degree vertex accessed so far in its set
  (earliest-first on ties), so the hit/miss outcome of every access is a
  running-argmax query, computable with one segmented max-scan.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


def _check_capacity(capacity: int) -> None:
    if capacity <= 0 or capacity & (capacity - 1):
        raise ConfigError(f"cache capacity must be a power of two, got {capacity}")


class CacheStatsMixin:
    """Shared hit/miss accounting for every cache policy.

    Subclasses call :meth:`record_hit` / :meth:`record_miss` from their
    ``access`` method; the derived ratios and the metrics-registry bridge
    (:meth:`publish`) then come for free and stay consistent across
    policies.
    """

    name = "cache"

    def _init_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self._published_hits = 0
        self._published_misses = 0

    def record_hit(self) -> bool:
        self.hits += 1
        return True

    def record_miss(self) -> bool:
        self.misses += 1
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def publish(self, metrics: "MetricsRegistry", **labels: object) -> None:
        """Feed this cache's counters into a metrics registry.

        Series use the DAC slot's documented names (``dac.*``) with a
        ``policy`` label distinguishing the ablation policies.

        Publishing is snapshot-idempotent: only events recorded since the
        previous ``publish`` call are added, so calling it repeatedly
        (e.g. once per shard merge plus once at run end) never
        double-counts into the cumulative ``dac.*`` counters.
        """
        labels = dict(labels, policy=self.name)
        delta_hits = self.hits - self._published_hits
        delta_misses = self.misses - self._published_misses
        metrics.counter("dac.accesses", **labels).inc(delta_hits + delta_misses)
        metrics.counter("dac.hits", **labels).inc(delta_hits)
        metrics.counter("dac.misses", **labels).inc(delta_misses)
        metrics.gauge("dac.hit_ratio", **labels).set(self.hit_ratio)
        self._published_hits = self.hits
        self._published_misses = self.misses


class DegreeAwareCache(CacheStatsMixin):
    """Stateful direct-mapped degree-aware cache (paper Figure 5)."""

    name = "degree-aware"

    def __init__(self, capacity: int) -> None:
        _check_capacity(capacity)
        self.capacity = capacity
        self._mask = capacity - 1
        self._vertex = np.full(capacity, -1, dtype=np.int64)
        self._degree = np.full(capacity, -1, dtype=np.int64)
        self._init_stats()

    def access(self, vertex: int, degree: int) -> bool:
        """Look up ``vertex``; on miss, replace only if ``degree`` is higher."""
        line = vertex & self._mask
        if self._vertex[line] == vertex:
            return self.record_hit()
        if degree > self._degree[line]:
            self._vertex[line] = vertex
            self._degree[line] = degree
        return self.record_miss()


class DirectMappedCache(CacheStatsMixin):
    """Stateful direct-mapped always-replace cache (the DMC baseline)."""

    name = "direct-mapped"

    def __init__(self, capacity: int) -> None:
        _check_capacity(capacity)
        self.capacity = capacity
        self._mask = capacity - 1
        self._vertex = np.full(capacity, -1, dtype=np.int64)
        self._init_stats()

    def access(self, vertex: int, degree: int = 0) -> bool:
        line = vertex & self._mask
        if self._vertex[line] == vertex:
            return self.record_hit()
        self._vertex[line] = vertex
        return self.record_miss()


class _SetAssociativeCache(CacheStatsMixin):
    """Shared machinery for the recency-policy ablation caches."""

    def __init__(self, capacity: int, ways: int) -> None:
        _check_capacity(capacity)
        if ways <= 0 or capacity % ways:
            raise ConfigError(f"ways ({ways}) must divide capacity ({capacity})")
        self.capacity = capacity
        self.ways = ways
        self.n_sets = capacity // ways
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self._init_stats()

    _promote_on_hit = True

    def access(self, vertex: int, degree: int = 0) -> bool:
        entries = self._sets[vertex % self.n_sets]
        if vertex in entries:
            if self._promote_on_hit:
                entries.move_to_end(vertex)
            return self.record_hit()
        if len(entries) >= self.ways:
            entries.popitem(last=False)
        entries[vertex] = None
        return self.record_miss()


class LRUCache(_SetAssociativeCache):
    """Set-associative LRU — a recency policy the paper argues is futile."""

    name = "lru"
    _promote_on_hit = True

    def __init__(self, capacity: int, ways: int = 4) -> None:
        super().__init__(capacity, ways)


class FIFOCache(_SetAssociativeCache):
    """Set-associative FIFO — the other classic recency policy."""

    name = "fifo"
    _promote_on_hit = False

    def __init__(self, capacity: int, ways: int = 4) -> None:
        super().__init__(capacity, ways)


def simulate_degree_aware(
    trace: np.ndarray, degrees: np.ndarray, capacity: int
) -> np.ndarray:
    """Exact vectorized hit mask of a degree-aware cache over a trace.

    Parameters
    ----------
    trace:
        Vertex ids in access order.
    degrees:
        Degree of every vertex in the graph (indexed by vertex id).
    capacity:
        Cache entries (power of two, direct-mapped).

    Returns
    -------
    bool ndarray aligned with ``trace`` — True where the access hit.

    Notes
    -----
    A DAC line holds the maximum-degree vertex accessed so far in its set,
    with ties kept by the earliest accessor (strict-inequality replacement).
    Encoding each vertex as ``degree * 2^26 + (2^26 - first_access_rank)``
    makes "the currently cached vertex" an exclusive running maximum of
    that key within the set's access sequence, and a hit is simply "my key
    equals the running max".  The encoding is unique per vertex, so key
    equality implies vertex equality.
    """
    _check_capacity(capacity)
    trace = np.asarray(trace, dtype=np.int64)
    if trace.size == 0:
        return np.zeros(0, dtype=bool)
    if trace.size >= (1 << 26):
        raise ConfigError("trace too long for the vectorized DAC encoding (2^26)")
    degrees = np.asarray(degrees, dtype=np.int64)

    # Rank of each vertex's first appearance in the trace.
    _, first_pos, inverse = np.unique(trace, return_index=True, return_inverse=True)
    rank_of_vertex = first_pos  # per unique vertex
    key = (degrees[trace] << np.int64(26)) + (np.int64(1 << 26) - 1 - rank_of_vertex[inverse])

    sets = trace & np.int64(capacity - 1)
    order = np.argsort(sets, kind="stable")  # time order preserved within a set
    sorted_keys = key[order]
    sorted_sets = sets[order]

    boundaries = np.nonzero(np.diff(sorted_sets))[0] + 1
    seg_starts = np.concatenate([[0], boundaries])
    seg_ends = np.concatenate([boundaries, [sorted_sets.size]])

    hits_sorted = np.zeros(trace.size, dtype=bool)
    for start, end in zip(seg_starts.tolist(), seg_ends.tolist()):
        segment = sorted_keys[start:end]
        running = np.maximum.accumulate(segment)
        # Exclusive prefix max: state of the line *before* each access.
        exclusive = np.empty_like(running)
        exclusive[0] = -1
        exclusive[1:] = running[:-1]
        hits_sorted[start:end] = segment == exclusive

    hits = np.zeros(trace.size, dtype=bool)
    hits[order] = hits_sorted
    return hits


def simulate_direct_mapped(trace: np.ndarray, capacity: int) -> np.ndarray:
    """Exact vectorized hit mask of a direct-mapped always-replace cache.

    An access hits iff the immediately preceding access to the same set was
    the same vertex.
    """
    _check_capacity(capacity)
    trace = np.asarray(trace, dtype=np.int64)
    if trace.size == 0:
        return np.zeros(0, dtype=bool)
    sets = trace & np.int64(capacity - 1)
    order = np.argsort(sets, kind="stable")
    sorted_trace = trace[order]
    sorted_sets = sets[order]
    hits_sorted = np.zeros(trace.size, dtype=bool)
    same_vertex = sorted_trace[1:] == sorted_trace[:-1]
    same_set = sorted_sets[1:] == sorted_sets[:-1]
    hits_sorted[1:] = same_vertex & same_set
    hits = np.zeros(trace.size, dtype=bool)
    hits[order] = hits_sorted
    return hits
