"""On-chip vertex caches for the Neighbor Info Loader (paper Section 5.1).

The accelerator caches ``row_index`` entries — the ``(address, degree)``
neighbor-info tuple of a vertex — in on-chip URAM.  Random-walk accesses
have enormous reuse distances, so recency-based policies fail; LightRW's
**degree-aware cache** (DAC) instead evicts by comparing degrees: on a
miss, the fetched vertex replaces the cached line only if its degree is
strictly higher.  Because visit probability grows with degree
(Section 5.1's stationary-distribution analysis), the cache converges to
holding the hottest vertices with zero preprocessing.

This module provides:

* stateful single-access caches (:class:`DegreeAwareCache`,
  :class:`DirectMappedCache`, :class:`LRUCache`, :class:`FIFOCache`) used
  by the cycle simulator and the policy-ablation benchmarks, and
* **exact vectorized trace simulations**
  (:func:`simulate_degree_aware`, :func:`simulate_direct_mapped`,
  :func:`simulate_lru`, :func:`simulate_fifo`) used by the fast model.
  These are not approximations: a direct-mapped DAC line always holds the
  highest-degree vertex accessed so far in its set (earliest-first on
  ties), so the hit/miss outcome of every access is a running-argmax
  query, computable with one segmented max-scan; LRU hits are stack-depth
  queries answered by offline dominance counting; FIFO residency is a
  fixpoint over the insertion (miss) labeling that converges in at most
  one pass per access.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


def _check_capacity(capacity: int) -> None:
    if capacity <= 0 or capacity & (capacity - 1):
        raise ConfigError(f"cache capacity must be a power of two, got {capacity}")


class CacheStatsMixin:
    """Shared hit/miss accounting for every cache policy.

    Subclasses call :meth:`record_hit` / :meth:`record_miss` from their
    ``access`` method; the derived ratios and the metrics-registry bridge
    (:meth:`publish`) then come for free and stay consistent across
    policies.
    """

    name = "cache"

    def _init_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self._published_hits = 0
        self._published_misses = 0

    def record_hit(self) -> bool:
        self.hits += 1
        return True

    def record_miss(self) -> bool:
        self.misses += 1
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def publish(self, metrics: "MetricsRegistry", **labels: object) -> None:
        """Feed this cache's counters into a metrics registry.

        Series use the DAC slot's documented names (``dac.*``) with a
        ``policy`` label distinguishing the ablation policies.

        Publishing is snapshot-idempotent: only events recorded since the
        previous ``publish`` call are added, so calling it repeatedly
        (e.g. once per shard merge plus once at run end) never
        double-counts into the cumulative ``dac.*`` counters.
        """
        labels = dict(labels, policy=self.name)
        delta_hits = self.hits - self._published_hits
        delta_misses = self.misses - self._published_misses
        metrics.counter("dac.accesses", **labels).inc(delta_hits + delta_misses)
        metrics.counter("dac.hits", **labels).inc(delta_hits)
        metrics.counter("dac.misses", **labels).inc(delta_misses)
        metrics.gauge("dac.hit_ratio", **labels).set(self.hit_ratio)
        self._published_hits = self.hits
        self._published_misses = self.misses


class DegreeAwareCache(CacheStatsMixin):
    """Stateful direct-mapped degree-aware cache (paper Figure 5)."""

    name = "degree-aware"

    def __init__(self, capacity: int) -> None:
        _check_capacity(capacity)
        self.capacity = capacity
        self._mask = capacity - 1
        self._vertex = np.full(capacity, -1, dtype=np.int64)
        self._degree = np.full(capacity, -1, dtype=np.int64)
        self._init_stats()

    def access(self, vertex: int, degree: int) -> bool:
        """Look up ``vertex``; on miss, replace only if ``degree`` is higher."""
        line = vertex & self._mask
        if self._vertex[line] == vertex:
            return self.record_hit()
        if degree > self._degree[line]:
            self._vertex[line] = vertex
            self._degree[line] = degree
        return self.record_miss()


class DirectMappedCache(CacheStatsMixin):
    """Stateful direct-mapped always-replace cache (the DMC baseline)."""

    name = "direct-mapped"

    def __init__(self, capacity: int) -> None:
        _check_capacity(capacity)
        self.capacity = capacity
        self._mask = capacity - 1
        self._vertex = np.full(capacity, -1, dtype=np.int64)
        self._init_stats()

    def access(self, vertex: int, degree: int = 0) -> bool:
        line = vertex & self._mask
        if self._vertex[line] == vertex:
            return self.record_hit()
        self._vertex[line] = vertex
        return self.record_miss()


class _SetAssociativeCache(CacheStatsMixin):
    """Shared machinery for the recency-policy ablation caches."""

    def __init__(self, capacity: int, ways: int) -> None:
        _check_capacity(capacity)
        if ways <= 0 or capacity % ways:
            raise ConfigError(f"ways ({ways}) must divide capacity ({capacity})")
        self.capacity = capacity
        self.ways = ways
        self.n_sets = capacity // ways
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self._init_stats()

    _promote_on_hit = True

    def access(self, vertex: int, degree: int = 0) -> bool:
        entries = self._sets[vertex % self.n_sets]
        if vertex in entries:
            if self._promote_on_hit:
                entries.move_to_end(vertex)
            return self.record_hit()
        if len(entries) >= self.ways:
            entries.popitem(last=False)
        entries[vertex] = None
        return self.record_miss()


class LRUCache(_SetAssociativeCache):
    """Set-associative LRU — a recency policy the paper argues is futile."""

    name = "lru"
    _promote_on_hit = True

    def __init__(self, capacity: int, ways: int = 4) -> None:
        super().__init__(capacity, ways)


class FIFOCache(_SetAssociativeCache):
    """Set-associative FIFO — the other classic recency policy."""

    name = "fifo"
    _promote_on_hit = False

    def __init__(self, capacity: int, ways: int = 4) -> None:
        super().__init__(capacity, ways)


def simulate_degree_aware(
    trace: np.ndarray, degrees: np.ndarray, capacity: int
) -> np.ndarray:
    """Exact vectorized hit mask of a degree-aware cache over a trace.

    Parameters
    ----------
    trace:
        Vertex ids in access order.
    degrees:
        Degree of every vertex in the graph (indexed by vertex id).
    capacity:
        Cache entries (power of two, direct-mapped).

    Returns
    -------
    bool ndarray aligned with ``trace`` — True where the access hit.

    Notes
    -----
    A DAC line holds the maximum-degree vertex accessed so far in its set,
    with ties kept by the earliest accessor (strict-inequality replacement).
    Encoding each vertex as ``degree * 2^26 + (2^26 - 1 - first_access_rank)``
    makes "the currently cached vertex" an exclusive running maximum of
    that key within the set's access sequence, and a hit is simply "my key
    equals the running max".  The encoding is unique per vertex, so key
    equality implies vertex equality.
    """
    _check_capacity(capacity)
    trace = np.asarray(trace, dtype=np.int64)
    if trace.size == 0:
        return np.zeros(0, dtype=bool)
    if trace.size >= (1 << 26):
        raise ConfigError("trace too long for the vectorized DAC encoding (2^26)")
    degrees = np.asarray(degrees, dtype=np.int64)

    # Rank of each vertex's first appearance in the trace.
    _, first_pos, inverse = np.unique(trace, return_index=True, return_inverse=True)
    rank_of_vertex = first_pos  # per unique vertex
    key = (degrees[trace] << np.int64(26)) + (np.int64(1 << 26) - 1 - rank_of_vertex[inverse])

    sets = trace & np.int64(capacity - 1)
    order = np.argsort(sets, kind="stable")  # time order preserved within a set
    sorted_keys = key[order]
    sorted_sets = sets[order]

    boundaries = np.nonzero(np.diff(sorted_sets))[0] + 1
    seg_starts = np.concatenate([[0], boundaries])
    seg_ends = np.concatenate([boundaries, [sorted_sets.size]])

    hits_sorted = np.zeros(trace.size, dtype=bool)
    for start, end in zip(seg_starts.tolist(), seg_ends.tolist()):
        segment = sorted_keys[start:end]
        running = np.maximum.accumulate(segment)
        # Exclusive prefix max: state of the line *before* each access.
        exclusive = np.empty_like(running)
        exclusive[0] = -1
        exclusive[1:] = running[:-1]
        hits_sorted[start:end] = segment == exclusive

    hits = np.zeros(trace.size, dtype=bool)
    hits[order] = hits_sorted
    return hits


def _stable_order(keys: np.ndarray) -> np.ndarray:
    """Stable ascending order of non-negative integer ``keys``.

    NumPy's ``kind="stable"`` argsort is several times slower than the
    default sort here, so when the range allows we make keys unique by
    mixing in the position (``key * n + i``) and use the default sort —
    bitwise identical to a stable sort, minus the cost.
    """
    n = keys.size
    top = int(keys.max(initial=0))
    if top < (1 << 62) // max(n, 1):
        return np.argsort(keys * np.int64(n) + np.arange(n, dtype=np.int64))
    return np.argsort(keys, kind="stable")


def _set_segments(trace: np.ndarray, n_sets: int):
    """Group a trace by cache set, preserving time order within each set.

    Returns ``(order, sv, seg_id, local)`` where ``order`` sorts the trace
    set-major (stable, so time order survives inside a set), ``sv`` is the
    sorted vertex stream, ``seg_id`` numbers the set segments 0..S-1 along
    the sorted array and ``local`` is each access's position within its
    segment.  Sets use ``vertex % n_sets`` to mirror
    :class:`_SetAssociativeCache` exactly.
    """
    sets = trace % np.int64(n_sets)
    order = _stable_order(sets)
    sv = trace[order]
    ss = sets[order]
    n = trace.size
    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = ss[1:] != ss[:-1]
    seg_id = np.cumsum(seg_start) - 1
    seg_first = np.nonzero(seg_start)[0]
    local = np.arange(n, dtype=np.int64) - seg_first[seg_id]
    return order, sv, seg_id, local


def _previous_occurrence(sv: np.ndarray, values: np.ndarray) -> np.ndarray:
    """For each access, ``values`` at the previous access of the same vertex.

    ``sv`` is the set-sorted vertex stream (time order within each vertex's
    run); returns -1 where the vertex has no earlier occurrence.  Same-vertex
    accesses land in the same set, so no segment bookkeeping is needed.
    """
    n = sv.size
    vorder = _stable_order(sv)
    pv = sv[vorder]
    prev_sorted = np.full(n, -1, dtype=np.int64)
    same = pv[1:] == pv[:-1]
    prev_sorted[1:][same] = values[vorder[:-1]][same]
    prev = np.empty(n, dtype=np.int64)
    prev[vorder] = prev_sorted
    return prev


#: Tile width for the dominance counter's brute-force terms.
_COUNT_TILE = 48


def _count_earlier_less(keys: np.ndarray) -> np.ndarray:
    """For each position ``i``: ``#{p < i : keys[p] < keys[i]}``.

    ``keys`` must be pairwise distinct.  Offline dominance counting with a
    two-level decomposition: positions are tiled into blocks of ``m`` and
    key ranks into buckets of ``m``.  A pair (p < i, key_p < key_i) falls
    into exactly one of

    * *earlier block, smaller bucket* — read off a cumulative
      block × bucket histogram (the bucket being smaller already implies
      the key is);
    * *earlier block, same bucket* — one triangular broadcast comparison
      per bucket tile (elements of a bucket are contiguous in rank order);
    * *same block* — one triangular broadcast comparison per block tile.

    Everything is C-level array work: O(n·m) comparisons plus an
    (n/m)² histogram, with m grown past :data:`_COUNT_TILE` for huge
    traces to keep the histogram small.
    """
    n = keys.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    g = np.argsort(keys)  # unique keys: default sort is already stable
    rank = np.empty(n, dtype=np.int64)
    rank[g] = np.arange(n, dtype=np.int64)

    m = _COUNT_TILE
    while (n // m) ** 2 > 32 * n * m:
        m *= 2
    nrows = -(-n // m)
    pad = nrows * m - n
    block = np.arange(n, dtype=np.int64) // m
    bucket = rank // m
    tri = np.tri(m, k=-1, dtype=bool)

    hist = np.bincount(block * nrows + bucket, minlength=nrows * nrows)
    coarse = hist.reshape(nrows, nrows).astype(np.int32)
    coarse.cumsum(axis=0, out=coarse)
    coarse.cumsum(axis=1, out=coarse)
    t1 = np.zeros(n, dtype=np.int64)
    inner = (block > 0) & (bucket > 0)
    t1[inner] = coarse[block[inner] - 1, bucket[inner] - 1]

    # Same bucket, earlier block: bucket tiles are g reshaped row-wise
    # (rank order within a row); padding gets block id n so it never
    # counts as an earlier element.  int32 tiles halve the broadcast
    # traffic (tile ids and ranks are far below 2^31).
    gp = np.concatenate([g, np.full(pad, -1, dtype=np.int64)]).reshape(nrows, m)
    blk = block[np.maximum(gp, 0)].astype(np.int32)
    blk[gp < 0] = n
    t2a_tile = ((blk[:, None, :] < blk[:, :, None]) & tri).sum(axis=2)
    t2a = np.zeros(n, dtype=np.int64)
    valid = gp >= 0
    t2a[gp[valid]] = t2a_tile[valid]

    # Same block, earlier position: block tiles are positions reshaped
    # row-wise; padding gets rank n so it never counts.
    rp = np.concatenate(
        [rank.astype(np.int32), np.full(pad, n, dtype=np.int32)]
    ).reshape(nrows, m)
    t2b = ((rp[:, None, :] < rp[:, :, None]) & tri).sum(axis=2).reshape(-1)[:n]
    return t1 + t2a + t2b


def _check_ways(capacity: int, ways: int) -> None:
    _check_capacity(capacity)
    if ways <= 0 or capacity % ways:
        raise ConfigError(f"ways ({ways}) must divide capacity ({capacity})")


def simulate_lru(trace: np.ndarray, capacity: int, ways: int = 4) -> np.ndarray:
    """Exact vectorized hit mask of a set-associative LRU cache.

    Matches :class:`LRUCache` access for access.  A set-associative LRU
    access hits iff the stack distance — the number of *distinct* vertices
    touched in its set since the previous access to the same vertex — is
    below the associativity.  With ``j`` the (set-local) position of that
    previous access and ``C(i) = #{p < i in the set : prev(p) <= j}``, the
    distinct count equals ``C(i) - (j + 1)``: an earlier access contributes
    a distinct vertex in the window iff it is the *first* occurrence after
    ``j``, i.e. its own previous occurrence is at or before ``j``.  So a
    hit is simply ``C(i) <= j + ways``, and because prev-occurrence
    positions are unique, one :func:`_count_earlier_less` pass over
    segment-scoped keys answers every access at once.
    """
    _check_ways(capacity, ways)
    trace = np.asarray(trace, dtype=np.int64)
    n = trace.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    n_sets = capacity // ways
    order, sv, seg_id, local = _set_segments(trace, n_sets)
    idx = np.arange(n, dtype=np.int64)
    prev_pos = _previous_occurrence(sv, idx)  # global set-sorted position
    prev_local = np.where(prev_pos >= 0, local[np.maximum(prev_pos, 0)], -1)
    # A first occurrence trivially satisfies "prev <= j", so C(i) splits
    # into (first occurrences earlier in the segment) + (candidates
    # earlier in the segment whose previous access is older than mine).
    # Only the second term needs the dominance counter, and only over the
    # repeat accesses — typically a fraction of the trace.
    candidate = prev_pos >= 0
    first = (~candidate).astype(np.int64)
    ecum = np.cumsum(first) - first  # first occurrences strictly before i
    counts = ecum - ecum[idx - local]  # ... within my own segment
    # Segment-scoped unique keys for the candidate subproblem: earlier
    # segments get strictly larger bases, so a cross-set pair never
    # compares; prev positions are globally unique, so keys are too.
    base = (np.int64(seg_id[-1] + 1) - seg_id) * np.int64(n + 1)
    counts[candidate] += _count_earlier_less(base[candidate] + prev_pos[candidate])
    hits_sorted = candidate & (counts <= prev_local + ways)
    hits = np.zeros(n, dtype=bool)
    hits[order] = hits_sorted
    return hits


def simulate_fifo(trace: np.ndarray, capacity: int, ways: int = 4) -> np.ndarray:
    """Exact vectorized hit mask of a set-associative FIFO cache.

    Matches :class:`FIFOCache` access for access.  FIFO hits do not touch
    the queue, so an access hits iff fewer than ``ways`` *insertions*
    (misses) happened in its set since the vertex's most recent miss.  That
    makes the hit mask a fixpoint of the miss labeling; iterating from
    all-miss converges because each access's label depends only on earlier
    labels, so the correct prefix grows by at least one access per round
    (worst case n rounds, in practice a handful).
    """
    _check_ways(capacity, ways)
    trace = np.asarray(trace, dtype=np.int64)
    n = trace.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    n_sets = capacity // ways
    order, sv, _, _ = _set_segments(trace, n_sets)
    idx = np.arange(n, dtype=np.int64)
    vorder = _stable_order(sv)
    chain_start = np.empty(n, dtype=bool)
    chain_start[0] = True
    chain_start[1:] = sv[vorder[1:]] != sv[vorder[:-1]]
    chain_id = np.cumsum(chain_start) - 1
    chain_span = np.int64(n + 1)

    miss = np.ones(n, dtype=bool)
    for _ in range(n + 1):
        # Most recent same-vertex access currently labeled a miss, as a
        # running max of "index if miss else -1" along each vertex chain
        # (chain offsets keep the scan from leaking across vertices).
        enc = np.where(miss[vorder], vorder, np.int64(-1))
        shifted = np.empty(n, dtype=np.int64)
        shifted[0] = -1
        shifted[1:] = enc[:-1]
        shifted[chain_start] = -1
        run = np.maximum.accumulate(shifted + chain_id * chain_span)
        prev_miss = np.empty(n, dtype=np.int64)
        prev_miss[vorder] = run - chain_id * chain_span
        # Insertions strictly between the previous miss q and this access:
        # both live in the same contiguous set segment, so a global
        # inclusive cumsum suffices.
        cm = np.cumsum(miss)
        has_prev = prev_miss >= 0
        between = np.where(
            has_prev, cm[np.maximum(idx - 1, 0)] - cm[np.maximum(prev_miss, 0)], 0
        )
        new_miss = ~(has_prev & (between < ways))
        if np.array_equal(new_miss, miss):
            break
        miss = new_miss
    hits = np.zeros(n, dtype=bool)
    hits[order] = ~miss
    return hits


def simulate_direct_mapped(trace: np.ndarray, capacity: int) -> np.ndarray:
    """Exact vectorized hit mask of a direct-mapped always-replace cache.

    An access hits iff the immediately preceding access to the same set was
    the same vertex.
    """
    _check_capacity(capacity)
    trace = np.asarray(trace, dtype=np.int64)
    if trace.size == 0:
        return np.zeros(0, dtype=bool)
    sets = trace & np.int64(capacity - 1)
    order = np.argsort(sets, kind="stable")
    sorted_trace = trace[order]
    sorted_sets = sets[order]
    hits_sorted = np.zeros(trace.size, dtype=bool)
    same_vertex = sorted_trace[1:] == sorted_trace[:-1]
    same_set = sorted_sets[1:] == sorted_sets[:-1]
    hits_sorted[1:] = same_vertex & same_set
    hits = np.zeros(trace.size, dtype=bool)
    hits[order] = hits_sorted
    return hits
