"""Accelerator configuration (one LightRW deployment).

Collects every architectural knob of the paper in one validated dataclass:
sampler parallelism ``k``, burst strategy, degree-aware cache capacity,
clock frequency, and the number of per-DRAM-channel instances (Figure 9
deploys one independent LightRW instance per channel with queries spread
evenly).

The three ablation switches of Figure 13 live here too:

* ``use_wrs = False`` — fall back to a table-based sampler on the FPGA:
  the updated weights must round-trip through DRAM and the
  initialization/generation phases serialize.
* ``strategy = FIXED_LONG`` (or any fixed strategy) — disable the dynamic
  burst engine.
* ``cache_policy = "none"`` — disable the degree-aware cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.fpga.burst import DEFAULT_STRATEGY, BurstStrategy
from repro.fpga.dram import DRAMTimings

#: Cache capacity used throughout the paper's evaluation (2^12 vertices).
PAPER_CACHE_ENTRIES = 1 << 12

_CACHE_POLICIES = ("degree", "direct", "lru", "fifo", "none")


@dataclass(frozen=True)
class LightRWConfig:
    """Configuration of a LightRW deployment."""

    #: WRS sampler parallelism — neighbors consumed per cycle.
    k: int = 16
    #: Kernel clock (the paper closes timing at 300 MHz).
    frequency_hz: float = 300e6
    #: Independent instances, one per DRAM channel (U250 has four).
    n_instances: int = 4
    #: Burst strategy of the dynamic burst engine.
    strategy: BurstStrategy = field(default_factory=lambda: DEFAULT_STRATEGY)
    #: Degree-aware cache capacity in vertices (power of two).
    cache_entries: int = PAPER_CACHE_ENTRIES
    #: Cache replacement policy ("degree" is LightRW's; others for ablation).
    cache_policy: str = "degree"
    #: Enable the streaming WRS sampler (False = table-based ablation).
    use_wrs: bool = True
    #: On-chip buffer (edges) holding the *previous* step's candidate
    #: stream for second-order walks.  When the previous vertex's adjacency
    #: fits, Node2Vec's membership test reads it from BRAM instead of
    #: re-fetching from DRAM — this buffer is why the Node2Vec build is
    #: BRAM-heavy in the paper's Table 5.
    prev_buffer_edges: int = 4096
    #: Queries kept in flight per instance to hide step turnaround.
    max_inflight: int = 64
    #: FIFO depth between pipeline stages (cycle simulator).
    fifo_depth: int = 64
    #: DRAM channel timings.
    dram: DRAMTimings = field(default_factory=DRAMTimings)
    #: Dataset scale divisor; the cache shrinks with the graph so the
    #: coverage ratio matches the paper's platform (see DESIGN.md).
    hardware_scale: int = 1

    def __post_init__(self) -> None:
        if self.k <= 0 or self.k & (self.k - 1):
            raise ConfigError(f"k must be a positive power of two, got {self.k}")
        if self.frequency_hz <= 0:
            raise ConfigError(f"frequency must be positive, got {self.frequency_hz}")
        if self.n_instances <= 0:
            raise ConfigError(f"n_instances must be positive, got {self.n_instances}")
        if self.cache_entries <= 0 or self.cache_entries & (self.cache_entries - 1):
            raise ConfigError(
                f"cache_entries must be a power of two, got {self.cache_entries}"
            )
        if self.cache_policy not in _CACHE_POLICIES:
            raise ConfigError(
                f"cache_policy must be one of {_CACHE_POLICIES}, got {self.cache_policy!r}"
            )
        if self.max_inflight <= 0 or self.fifo_depth <= 0:
            raise ConfigError("max_inflight and fifo_depth must be positive")
        if self.hardware_scale <= 0:
            raise ConfigError(f"hardware_scale must be positive, got {self.hardware_scale}")

    @property
    def scaled_prev_buffer_edges(self) -> int:
        """Previous-stream buffer threshold under the scaled-platform rule.

        Unlike byte-capacity caches, this threshold is a *degree* cut-off;
        to preserve the share of walk steps it covers, it scales with the
        maximum degree of the graph, which for a power-law graph with
        exponent alpha ~ 2.4 shrinks as ``V^(1/(alpha-1)) ~ V^0.71``.
        """
        if self.hardware_scale == 1:
            return self.prev_buffer_edges
        return max(int(self.prev_buffer_edges / self.hardware_scale ** 0.714), 8)

    @property
    def scaled_cache_entries(self) -> int:
        """Cache capacity after the scaled-platform rule (power of two, >= 1)."""
        entries = max(self.cache_entries // self.hardware_scale, 1)
        # Round down to a power of two to keep direct-mapped indexing valid.
        return 1 << (entries.bit_length() - 1)

    def scaled(self, hardware_scale: int) -> "LightRWConfig":
        """Copy of this config bound to a dataset scale divisor."""
        return replace(self, hardware_scale=hardware_scale)

    def with_ablation(
        self,
        wrs: bool = True,
        dynamic_burst: bool = True,
        cache: bool = True,
    ) -> "LightRWConfig":
        """Derive the Figure 13 ablation variants from this config."""
        from repro.fpga.burst import FIXED_LONG

        changes: dict[str, object] = {}
        if not wrs:
            changes["use_wrs"] = False
        if not dynamic_burst:
            changes["strategy"] = FIXED_LONG
        if not cache:
            changes["cache_policy"] = "none"
        return replace(self, **changes) if changes else self
