"""Distributed LightRW — the paper's stated future work, modeled.

Section 8 of the paper: "we plan to develop a distributed version of
LightRW to leverage high-speed network interfaces (e.g., InfiniBand and
100G Ethernet) and open-source network frameworks on FPGAs (OpenNIC,
Corundum)."

This module models that system so its scaling behaviour can be studied
before anyone writes RTL:

* the graph is **hash-partitioned by vertex** across ``n_boards``; each
  board holds the adjacency of its vertices (unlike the single-board
  deployment, the graph is *partitioned*, not replicated);
* a walk step whose current vertex lives on another board forwards the
  walker state over the network (a small fixed-size message) — the
  classic walker-migration design of distributed walk engines
  (KnightKing);
* each board runs the ordinary LightRW pipeline on its local steps, so
  per-board kernel time comes from the existing performance model, and
  the network adds a bandwidth term plus a per-message overhead.

The model answers the question future work asks: at what partition count
does the network, rather than DRAM, become the bottleneck?
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel
from repro.walks.base import WalkAlgorithm
from repro.walks.stepper import WalkSession


@dataclass(frozen=True)
class NetworkSpec:
    """The inter-board fabric (100G Ethernet by default)."""

    bandwidth_bytes_per_s: float = 12.5e9  # 100 Gb/s
    #: Cycles of NIC/protocol overhead per migrated walker at 300 MHz.
    per_message_cycles: float = 30.0
    #: Bytes per walker-migration message (query state: id, step, vertex,
    #: prev, reservoir state, RNG counter).
    message_bytes: int = 48


@dataclass
class DistributedBreakdown:
    """Modeled distributed execution of one walk session."""

    n_boards: int
    local_steps: int
    migrated_steps: int
    kernel_s: float
    network_s: float
    per_board_kernel_s: np.ndarray = field(repr=False, default=None)

    @property
    def total_steps(self) -> int:
        return self.local_steps + self.migrated_steps

    @property
    def migration_fraction(self) -> float:
        return self.migrated_steps / self.total_steps if self.total_steps else 0.0

    @property
    def wall_s(self) -> float:
        # Network transfers overlap compute only partially: the walker
        # cannot take its next step until it has arrived.
        return max(self.kernel_s, self.network_s) + 0.25 * min(
            self.kernel_s, self.network_s
        )

    @property
    def steps_per_second(self) -> float:
        return self.total_steps / self.wall_s if self.wall_s > 0 else 0.0


class DistributedLightRW:
    """Performance model of a multi-board LightRW deployment."""

    def __init__(
        self,
        config: LightRWConfig,
        algorithm: WalkAlgorithm,
        n_boards: int,
        network: NetworkSpec | None = None,
        assignment: np.ndarray | None = None,
    ) -> None:
        if n_boards <= 0:
            raise ConfigError(f"n_boards must be positive, got {n_boards}")
        self.config = config
        self.algorithm = algorithm
        self.n_boards = n_boards
        self.network = network or NetworkSpec()
        if assignment is not None:
            assignment = np.asarray(assignment)
            if assignment.size and int(assignment.max()) >= n_boards:
                raise ConfigError("assignment references a board beyond n_boards")
        #: Vertex -> board map; defaults to hash partitioning (see
        #: :mod:`repro.graph.partition` for alternatives).
        self.assignment = assignment

    def _board_of(self, vertices: np.ndarray) -> np.ndarray:
        if self.assignment is not None:
            return self.assignment[vertices]
        return vertices % self.n_boards

    def evaluate(self, session: WalkSession) -> DistributedBreakdown:
        """Model the distributed execution of a recorded walk session.

        Every step executes on the board owning its *current* vertex; a
        step whose successor lives elsewhere emits one migration message.
        Per-board pipeline time reuses the single-board model over that
        board's slice of the trace.
        """
        if not session.records:
            raise ConfigError("session has no trace records")

        curr = np.concatenate([r.curr for r in session.records])
        nxt = np.concatenate([r.next_vertex for r in session.records])
        boards = self._board_of(curr)
        moved = nxt >= 0
        migrations = int((self._board_of(nxt[moved]) != boards[moved]).sum())

        # Per-board kernel time: evaluate the single-board model on each
        # board's share of the steps.  Queries are already spread across
        # instances inside a board; across boards the walker location
        # decides.
        model = FPGAPerfModel(self.config, self.algorithm)
        full = model.evaluate(session, record_latency=False)
        board_share = np.bincount(boards, minlength=self.n_boards) / max(curr.size, 1)
        per_instance = np.maximum(
            np.maximum(full.mem_cycles, full.sampler_cycles), full.controller_cycles
        )
        single_board_cycles = float(per_instance.max(initial=0.0))
        # Each board processes its share of the steps with a full pipeline;
        # the busiest board (hash imbalance) sets the pace.
        per_board_cycles = single_board_cycles * board_share
        kernel_s = (
            per_board_cycles.max(initial=0.0) + full.fill_cycles
        ) / self.config.frequency_hz

        freq = self.config.frequency_hz
        network_s = migrations * (
            self.network.message_bytes / self.network.bandwidth_bytes_per_s
            + self.network.per_message_cycles / freq
        ) / self.n_boards  # links are per-board, transfers parallelize

        return DistributedBreakdown(
            n_boards=self.n_boards,
            local_steps=int(curr.size - migrations),
            migrated_steps=migrations,
            kernel_s=kernel_s,
            network_s=network_s,
            per_board_kernel_s=per_board_cycles / freq,
        )

    def scaling_curve(
        self, session: WalkSession, board_counts: list[int]
    ) -> list[DistributedBreakdown]:
        """Evaluate a sweep of board counts over the same workload."""
        results = []
        for boards in board_counts:
            model = DistributedLightRW(
                self.config, self.algorithm, boards, self.network
            )
            results.append(model.evaluate(session))
        return results
