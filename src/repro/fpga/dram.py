"""DRAM channel timing model of the Alveo U250 board.

The accelerator sees one DDR4 channel per LightRW instance through a
512-bit (64-byte) AXI interface at the 300 MHz kernel clock.  Two
parameters govern everything the paper measures about it:

* ``request_overhead_cycles`` — fixed interface cycles a read request
  occupies besides its data beats (command, row activation, turnaround);
* ``latency_cycles`` — cycles from issuing a request until its first data
  beat arrives (what a *dependent* random access pays).

With ``overhead = 5`` the achievable bandwidth

    BW(S) = 64 B x S / (S + overhead) x 300 MHz

reproduces the paper's Figure 6 curve: ~3.2 GB/s at burst length 1 rising
to the measured 17.57 GB/s peak at burst length 64.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import GIGA

#: AXI data width of one channel (bytes per beat).
BUS_BYTES = 64

#: Measured peak sequential bandwidth of one channel (paper Figure 6).
PEAK_BANDWIDTH_GBPS = 17.57


@dataclass(frozen=True)
class DRAMTimings:
    """Timing constants of one DRAM channel at the kernel clock."""

    bus_bytes: int = BUS_BYTES
    #: Interface cycles per request beyond the data beats.
    request_overhead_cycles: int = 5
    #: Extra per-request cycles paid by the dynamic burst engine's *long*
    #: pipeline: reorder-buffer fill and crossbar arbitration.  This is the
    #: cost that makes tiny long bursts (b1+b2) lose to the short-only
    #: baseline in the paper's Figure 12 while b1+b32 amortizes it away.
    long_pipe_extra_cycles: int = 8
    #: Cycles from request issue to first data beat (random-access latency,
    #: ~200 ns at 300 MHz).
    latency_cycles: int = 60
    #: Kernel clock the interface runs at (Hz).
    frequency_hz: float = 300e6
    #: Hard ceiling on sustainable bandwidth (GB/s) — the DDR4 device
    #: limit, below the raw interface rate.
    peak_bandwidth_gbps: float = PEAK_BANDWIDTH_GBPS

    def __post_init__(self) -> None:
        if self.bus_bytes <= 0 or self.request_overhead_cycles < 0:
            raise ConfigError("invalid DRAM timing parameters")
        if self.latency_cycles < 0 or self.frequency_hz <= 0:
            raise ConfigError("invalid DRAM timing parameters")

    def request_cycles(self, beats) -> "int | object":
        """Interface cycles one request of ``beats`` data beats occupies.

        Accepts scalars or numpy arrays (vectorized use by the fast model).
        """
        return beats + self.request_overhead_cycles

    @property
    def min_cycles_per_beat(self) -> float:
        """Interface cycles per beat imposed by the device bandwidth cap."""
        raw = self.bus_bytes * self.frequency_hz / GIGA  # GB/s at 1 beat/cycle
        return max(raw / self.peak_bandwidth_gbps, 1.0)


def burst_bandwidth_gbps(timings: DRAMTimings, burst_beats: int) -> float:
    """Sustained bandwidth of back-to-back bursts of ``burst_beats`` beats.

    This is the blue curve of the paper's Figure 6.
    """
    if burst_beats <= 0:
        raise ConfigError(f"burst length must be positive, got {burst_beats}")
    cycles = timings.request_cycles(burst_beats)
    # The device cap also binds: each beat cannot stream faster than the
    # DDR4 core sustains.
    cycles = max(cycles, burst_beats * timings.min_cycles_per_beat)
    bytes_per_request = burst_beats * timings.bus_bytes
    return bytes_per_request * timings.frequency_hz / cycles / GIGA
