"""Energy accounting — Table 3 extended to joules per step.

The paper reports power efficiency as execution-time-per-watt ratios; for
system builders the more actionable quantities are energy per sampled walk
step and the energy-delay product (EDP).  This module derives both from
the same power envelopes and modeled times, for any pair of runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.power import PowerModel


@dataclass(frozen=True)
class EnergyReport:
    """Energy figures of one execution."""

    platform: str
    time_s: float
    watts: float

    @property
    def joules(self) -> float:
        return self.time_s * self.watts

    def joules_per_step(self, total_steps: int) -> float:
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        return self.joules / total_steps

    @property
    def energy_delay_product(self) -> float:
        """EDP in joule-seconds (lower is better)."""
        return self.joules * self.time_s


def energy_comparison(
    application: str,
    fpga_time_s: float,
    cpu_time_s: float,
    total_steps: int,
    fpga_utilization: float = 0.8,
    cpu_utilization: float = 0.8,
) -> dict[str, float]:
    """Side-by-side energy figures for one workload on both platforms.

    Returns a flat dict suitable for an experiment row: per-platform
    joules, nJ/step, EDP, and the improvement ratios (the Table 3 metric
    plus the stricter EDP ratio, which squares the speedup advantage).
    """
    if fpga_time_s <= 0 or cpu_time_s <= 0:
        raise ValueError("execution times must be positive")
    power = PowerModel(application)
    fpga = EnergyReport("lightrw", fpga_time_s, power.fpga_watts(fpga_utilization))
    cpu = EnergyReport("thunderrw", cpu_time_s, power.cpu_watts(cpu_utilization))
    return {
        "lightrw_joules": fpga.joules,
        "thunderrw_joules": cpu.joules,
        "lightrw_nj_per_step": fpga.joules_per_step(total_steps) * 1e9,
        "thunderrw_nj_per_step": cpu.joules_per_step(total_steps) * 1e9,
        "energy_improvement": cpu.joules / fpga.joules,
        "edp_improvement": cpu.energy_delay_product / fpga.energy_delay_product,
    }
