"""Cycle-level models of the LightRW pipeline modules (paper Figure 3).

One LightRW instance is a linear pipeline of six stages connected by
registered FIFOs:

    QueryController -> NeighborInfoLoader(+ degree-aware cache)
                    -> BurstCmdGenerator -> {Long, Short} burst ports
                    -> IntraBurstMerge -> WeightUpdater -> WRSSampler
                    -> (result back to the QueryController)

plus a shared :class:`DRAMChannelSim` arbitrating the instance's memory
channel.  Stages are *functionally exact* — the WRS sampler is the real
:class:`repro.sampling.ParallelWRS` with the per-query ThundeRiNG lanes —
and *timing honest*: every DRAM request occupies the interface for
``overhead + beats`` cycles and returns data ``latency`` cycles later,
matching the accounting of the analytic model in
:mod:`repro.fpga.perfmodel`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.fpga.cache import DegreeAwareCache, DirectMappedCache, FIFOCache, LRUCache
from repro.fpga.config import LightRWConfig
from repro.fpga.sim.fifo import FIFO
from repro.fpga.sim.module import Module
from repro.graph.csr import CSRGraph, EDGE_RECORD_BYTES
from repro.sampling.parallel_wrs import ParallelWRS
from repro.sampling.rng import ThundeRingRNG, derive_seed
from repro.walks.base import StepContext, WalkAlgorithm, quantize_weights

#: Edges delivered per cycle by the 512-bit bus.
BUS_EDGES_PER_CYCLE = 16


@dataclass
class StepTask:
    """One walk step in flight: query ``qid`` standing on ``vertex``."""

    qid: int
    step: int
    vertex: int
    prev: int


@dataclass
class NeighborInfo:
    """Output of the Neighbor Info Loader: the (address, degree) tuple."""

    task: StepTask
    address: int
    degree: int
    prev_address: int
    prev_degree: int
    cache_hit: bool


@dataclass
class BurstManifest:
    """Ordered fetch plan of one step: (port, beats, n_edges) chunks."""

    task: StepTask
    chunks: list[tuple[str, int, int]]
    membership_chunks: list[tuple[str, int, int]] = field(default_factory=list)


@dataclass
class EdgeBatch:
    """Up to k edges of one step's candidate stream (one cycle's worth)."""

    task: StepTask
    offset: int
    count: int
    last: bool


@dataclass
class StepResult:
    """Sampler verdict for one step: the chosen vertex or -1 (dead end)."""

    task: StepTask
    selected: int


class DRAMChannelSim(Module):
    """One DRAM channel: request arbitration, bandwidth and latency.

    Ports are registered by name; each port's requests are served FIFO and
    its responses arrive in order.  The interface serves one request at a
    time for ``overhead + beats`` cycles (the bandwidth constraint); data
    becomes available ``latency + beats`` cycles after acceptance.
    """

    def __init__(self, config: LightRWConfig, name: str = "dram") -> None:
        super().__init__(name)
        self.timings = config.dram
        self._ports: dict[str, deque] = {}
        self._responses: dict[str, deque] = {}
        self._order: list[str] = []
        self._rr = 0
        self._busy_until = 0
        self.interface_busy_cycles = 0
        self.bytes_served = 0
        self.requests_served = 0

    def register_port(self, port: str) -> None:
        if port in self._ports:
            raise SimulationError(f"duplicate DRAM port {port!r}")
        self._ports[port] = deque()
        self._responses[port] = deque()
        self._order.append(port)

    def request(self, port: str, beats: int, extra_cycles: int = 0) -> None:
        """Queue a read of ``beats`` bus beats on ``port``.

        ``extra_cycles`` models per-request machinery outside the DRAM
        device itself (the long pipeline's reorder/crossbar cost).
        """
        if beats <= 0:
            raise SimulationError(f"DRAM request must have positive beats, got {beats}")
        self._ports[port].append((beats, extra_cycles))

    def has_response(self, port: str, cycle: int) -> bool:
        responses = self._responses[port]
        return bool(responses) and responses[0] <= cycle

    def pop_response(self, port: str, cycle: int) -> None:
        if not self.has_response(port, cycle):
            raise SimulationError(f"no ready response on DRAM port {port!r}")
        self._responses[port].popleft()

    def tick(self, cycle: int) -> None:
        if cycle < self._busy_until:
            return
        # Round-robin arbitration over ports with pending requests and
        # room for the response.
        n = len(self._order)
        for i in range(n):
            port = self._order[(self._rr + i) % n]
            queue = self._ports[port]
            if queue and len(self._responses[port]) < 32:
                beats, extra = queue.popleft()
                service = self.timings.request_overhead_cycles + beats + extra
                self._busy_until = cycle + service
                ready = cycle + self.timings.latency_cycles + beats
                self._responses[port].append(ready)
                self.interface_busy_cycles += service
                self.bytes_served += beats * self.timings.bus_bytes
                self.requests_served += 1
                self.emit(cycle, "dram-grant", port=port, beats=beats,
                          ready=ready)
                self._rr = (self._rr + i + 1) % n
                return

    def is_idle(self) -> bool:
        pending = any(self._ports[p] for p in self._order)
        outstanding = any(self._responses[p] for p in self._order)
        return not pending and not outstanding


def _make_cache(config: LightRWConfig):
    policy = config.cache_policy
    capacity = config.scaled_cache_entries
    if policy == "none":
        return None
    if policy == "degree":
        return DegreeAwareCache(capacity)
    if policy == "direct":
        return DirectMappedCache(capacity)
    if policy == "lru":
        return LRUCache(capacity)
    return FIFOCache(capacity)


class NeighborInfoLoader(Module):
    """Resolves (address, degree) of the step's vertices, cache first.

    On a hit the info is forwarded in one cycle; on a miss a one-beat DRAM
    read is issued (non-blocking — several misses may be outstanding).
    For second-order walks the previous vertex's info is resolved through
    the same path, as an extra access in the same step.
    """

    PORT = "info"
    MAX_OUTSTANDING = 8

    def __init__(
        self,
        graph: CSRGraph,
        config: LightRWConfig,
        dram: DRAMChannelSim,
        in_fifo: FIFO,
        out_fifo: FIFO,
        second_order: bool,
        name: str = "info-loader",
    ) -> None:
        super().__init__(name)
        self.graph = graph
        self.dram = dram
        self.dram.register_port(self.PORT)
        self.in_fifo = in_fifo
        self.out_fifo = out_fifo
        self.second_order = second_order
        self.prev_buffer_edges = config.scaled_prev_buffer_edges
        self.cache = _make_cache(config)
        # Waiters in arrival order; each entry is [info, misses_remaining].
        self._waiting: deque[list] = deque()
        # Waiters with outstanding misses, in DRAM request order.
        self._miss_order: deque[list] = deque()
        self.hits = 0
        self.misses = 0

    def _lookup(self, vertex: int) -> tuple[int, int, bool]:
        begin, end = self.graph.neighbor_slice(vertex)
        degree = end - begin
        hit = self.cache.access(vertex, degree) if self.cache is not None else False
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return begin, degree, hit

    def tick(self, cycle: int) -> None:
        # Drain DRAM responses: they arrive in request order, so each one
        # satisfies the oldest waiter that still has misses outstanding.
        while self._miss_order and self.dram.has_response(self.PORT, cycle):
            self.dram.pop_response(self.PORT, cycle)
            waiter = self._miss_order[0]
            waiter[1] -= 1
            if waiter[1] == 0:
                self._miss_order.popleft()

        # Release the head waiter once its info is complete.
        if self._waiting and self._waiting[0][1] == 0 and self.out_fifo.can_push():
            self.out_fifo.push(self._waiting.popleft()[0])
            self.busy_cycles += 1

        # Accept one new task per cycle.
        if self.in_fifo.can_pop() and len(self._waiting) < self.MAX_OUTSTANDING:
            task: StepTask = self.in_fifo.pop()
            address, degree, hit = self._lookup(task.vertex)
            self.emit(cycle, "cache-hit" if hit else "cache-miss",
                      qid=task.qid, vertex=task.vertex, degree=degree)
            n_miss = 0 if hit else 1
            prev_address, prev_degree = -1, -1
            if self.second_order and task.prev >= 0:
                # The previous stream is served from the on-chip buffer
                # unless it overflowed; only the overflow case re-fetches.
                if self.graph.degree(task.prev) > self.prev_buffer_edges:
                    prev_address, prev_degree, prev_hit = self._lookup(task.prev)
                    n_miss += 0 if prev_hit else 1
            info = NeighborInfo(
                task=task,
                address=address,
                degree=degree,
                prev_address=prev_address,
                prev_degree=prev_degree,
                cache_hit=n_miss == 0,
            )
            waiter = [info, n_miss]
            self._waiting.append(waiter)
            if n_miss:
                self._miss_order.append(waiter)
                for _ in range(n_miss):
                    self.dram.request(self.PORT, 1)

    def is_idle(self) -> bool:
        return not self._waiting


class BurstCmdGenerator(Module):
    """Plans each step's adjacency fetch into long + short burst commands.

    Follows the Section 5.2 schedule: ``floor(c/S1)`` long bursts then
    ``ceil(rem/S2)`` short bursts (degenerating to fixed-length plans for
    the ablation strategies).  For second-order walks the previous
    vertex's adjacency is planned first — the weight updater needs the
    membership set before it can weight candidates.
    """

    MAX_QUEUED_REQUESTS = 64

    def __init__(
        self,
        config: LightRWConfig,
        dram: DRAMChannelSim,
        in_fifo: FIFO,
        manifest_fifo: FIFO,
        name: str = "burst-cmd-gen",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.dram = dram
        self.dram.register_port("long")
        self.dram.register_port("short")
        self.in_fifo = in_fifo
        self.manifest_fifo = manifest_fifo
        self.bytes_valid = 0
        self.bytes_loaded = 0

    def _plan(self, degree: int) -> list[tuple[str, int, int]]:
        """Chunks of (port, beats, edges) covering ``degree`` edge records."""
        strategy = self.config.strategy
        bus = self.config.dram.bus_bytes
        total_bytes = degree * EDGE_RECORD_BYTES
        if total_bytes == 0:
            return []
        chunks: list[tuple[str, int, int]] = []
        edges_left = degree
        if strategy.short_beats == 0:
            per_burst_edges = strategy.long_beats * bus // EDGE_RECORD_BYTES
            while edges_left > 0:
                take = min(per_burst_edges, edges_left)
                chunks.append(("long", strategy.long_beats, take))
                edges_left -= take
        elif strategy.long_beats == 0:
            per_burst_edges = strategy.short_beats * bus // EDGE_RECORD_BYTES
            while edges_left > 0:
                take = min(per_burst_edges, edges_left)
                chunks.append(("short", strategy.short_beats, take))
                edges_left -= take
        else:
            s1_bytes = strategy.long_beats * bus
            s1_edges = s1_bytes // EDGE_RECORD_BYTES
            n_long = total_bytes // s1_bytes
            for _ in range(n_long):
                chunks.append(("long", strategy.long_beats, s1_edges))
                edges_left -= s1_edges
            s2_edges = strategy.short_beats * bus // EDGE_RECORD_BYTES
            while edges_left > 0:
                take = min(s2_edges, edges_left)
                chunks.append(("short", strategy.short_beats, take))
                edges_left -= take
        return chunks

    def _queued(self) -> int:
        return len(self.dram._ports["long"]) + len(self.dram._ports["short"])

    def tick(self, cycle: int) -> None:
        if not self.in_fifo.can_pop() or not self.manifest_fifo.can_push():
            return
        if self._queued() >= self.MAX_QUEUED_REQUESTS:
            return
        info: NeighborInfo = self.in_fifo.pop()
        self.busy_cycles += 1
        membership: list[tuple[str, int, int]] = []
        if info.prev_degree > 0:
            membership = self._plan(info.prev_degree)
        chunks = self._plan(info.degree)
        long_extra = self.config.dram.long_pipe_extra_cycles
        for port, beats, edges in membership + chunks:
            self.dram.request(port, beats, long_extra if port == "long" else 0)
            self.bytes_loaded += beats * self.config.dram.bus_bytes
            self.bytes_valid += edges * EDGE_RECORD_BYTES
        self.manifest_fifo.push(
            BurstManifest(task=info.task, chunks=chunks, membership_chunks=membership)
        )


class IntraBurstMerge(Module):
    """Reassembles burst responses into the in-order candidate stream.

    Long and short responses return on separate ports; the merge walks the
    manifest's chunk list in order, waiting for each chunk's response, and
    emits up to 16 edges (one bus beat's worth of records) per cycle.
    """

    def __init__(
        self,
        dram: DRAMChannelSim,
        manifest_fifo: FIFO,
        edge_fifo: FIFO,
        name: str = "intra-burst-merge",
    ) -> None:
        super().__init__(name)
        self.dram = dram
        self.manifest_fifo = manifest_fifo
        self.edge_fifo = edge_fifo
        self._manifest: BurstManifest | None = None
        self._chunk_list: list[tuple[str, int, int]] = []
        self._chunk_index = 0
        self._membership_count = 0
        self._chunk_received = False
        self._edges_left = 0
        self._offset = 0

    def _load_manifest(self) -> None:
        manifest = self.manifest_fifo.pop()
        self._manifest = manifest
        self._chunk_list = manifest.membership_chunks + manifest.chunks
        self._membership_count = len(manifest.membership_chunks)
        self._chunk_index = 0
        self._chunk_received = False
        self._edges_left = 0
        self._offset = 0

    def tick(self, cycle: int) -> None:
        if self._manifest is None:
            if self.manifest_fifo.can_pop():
                self._load_manifest()
            else:
                return
        assert self._manifest is not None
        # Zero-degree step: emit one empty terminal batch.
        if not self._chunk_list:
            if self.edge_fifo.can_push():
                self.edge_fifo.push(
                    EdgeBatch(task=self._manifest.task, offset=0, count=0, last=True)
                )
                self._manifest = None
            return
        if self._chunk_index >= len(self._chunk_list):
            self._manifest = None
            return
        port, beats, edges = self._chunk_list[self._chunk_index]
        if not self._chunk_received:
            if self.dram.has_response(port, cycle):
                self.dram.pop_response(port, cycle)
                self._chunk_received = True
                self._edges_left = edges
            else:
                return
        if not self.edge_fifo.can_push():
            return
        emit = min(BUS_EDGES_PER_CYCLE, self._edges_left)
        self._edges_left -= emit
        self.busy_cycles += 1
        is_membership = self._chunk_index < self._membership_count
        chunk_done = self._edges_left == 0
        last_chunk = self._chunk_index == len(self._chunk_list) - 1
        self.edge_fifo.push(
            EdgeBatch(
                task=self._manifest.task,
                offset=self._offset if not is_membership else -1,
                count=emit,
                last=chunk_done and last_chunk,
            )
        )
        if not is_membership:
            self._offset += emit
        if chunk_done:
            self._chunk_index += 1
            self._chunk_received = False
            if last_chunk:
                self._manifest = None

    def is_idle(self) -> bool:
        return self._manifest is None


class WeightUpdater(Module):
    """Applies the application weight-update function F to the stream.

    Functionally exact: when a step's stream starts, the full dynamic
    weight vector is computed from the graph arrays with the same code the
    vectorized engine uses; timing-wise the stage forwards at most ``k``
    weighted candidates per cycle, re-chunking the bus-rate input to the
    sampler's lane width.  Membership batches (Node2Vec's previous
    adjacency) are consumed for timing only — their effect is inside F.
    """

    def __init__(
        self,
        graph: CSRGraph,
        algorithm: WalkAlgorithm,
        config: LightRWConfig,
        edge_fifo: FIFO,
        weighted_fifo: FIFO,
        name: str = "weight-updater",
    ) -> None:
        super().__init__(name)
        self.graph = graph
        self.algorithm = algorithm
        self.k = config.k
        self.edge_fifo = edge_fifo
        self.weighted_fifo = weighted_fifo
        self._edge_keys = graph.edge_keys() if algorithm.needs_edge_keys() else None
        self._task: StepTask | None = None
        self._items: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        self._available = 0
        self._emitted = 0
        self._stream_complete = False

    def _compute_weights(self, task: StepTask) -> None:
        begin, end = self.graph.neighbor_slice(task.vertex)
        degree = end - begin
        dst = self.graph.col_index[begin:end].astype(np.int64)
        static_w = (
            self.graph.edge_weights[begin:end].astype(np.float64)
            if self.graph.edge_weights is not None
            else np.ones(degree, dtype=np.float64)
        )
        ctx = StepContext(
            graph=self.graph,
            step=task.step,
            curr=np.array([task.vertex]),
            prev=np.array([task.prev]),
            degrees=np.array([degree]),
            seg_starts=np.array([0]),
            edge_query=np.zeros(degree, dtype=np.int64),
            dst=dst,
            static_weights=static_w,
            edge_positions=np.arange(begin, end, dtype=np.int64),
            edge_keys_sorted=self._edge_keys,
        )
        self._items = dst
        self._weights = quantize_weights(self.algorithm.dynamic_weights(ctx))

    def tick(self, cycle: int) -> None:
        # Emit one k-wide weighted batch per cycle when possible.
        if self._task is not None and self.weighted_fifo.can_push():
            ready = self._available - self._emitted
            if ready >= self.k or (self._stream_complete and (ready > 0 or self._emitted == 0)):
                take = min(self.k, ready)
                start = self._emitted
                self.weighted_fifo.push(
                    (
                        self._task,
                        self._items[start : start + take],
                        self._weights[start : start + take],
                        start == 0,
                        self._stream_complete and start + take == self._available,
                    )
                )
                self._emitted += take
                self.busy_cycles += 1
                if self._stream_complete and self._emitted == self._available:
                    self._task = None
                return

        # Absorb one input batch per cycle.
        if self.edge_fifo.can_pop():
            batch: EdgeBatch = self.edge_fifo.peek()
            if self._task is None:
                self.edge_fifo.pop()
                self._task = batch.task
                self._compute_weights(batch.task)
                self._available = 0
                self._emitted = 0
                self._stream_complete = False
            elif batch.task.qid != self._task.qid or batch.task.step != self._task.step:
                return  # next step's data waits until this stream drains
            else:
                self.edge_fifo.pop()
            if batch.offset >= 0:
                self._available += batch.count
            if batch.last:
                self._stream_complete = True
                if self._available == 0 and self.weighted_fifo.can_push():
                    # Dead-end step (no candidates at all).
                    self.weighted_fifo.push((self._task, None, None, True, True))
                    self._task = None

    def is_idle(self) -> bool:
        return self._task is None


class WRSSamplerModule(Module):
    """The hardware WRS Sampler: the real ParallelWRS fed k items/cycle.

    Each query owns a persistent ThundeRiNG lane family (seeded by query
    id), so the sampled walks are bit-identical to the vectorized engine
    and the analytic model.  After a stream's last batch the selection
    drains through the fill pipeline before the result is emitted.
    """

    def __init__(
        self,
        config: LightRWConfig,
        weighted_fifo: FIFO,
        result_fifo: FIFO,
        seed: int,
        name: str = "wrs-sampler",
    ) -> None:
        super().__init__(name)
        from repro.fpga.wrs_sampler import WRSSamplerModel

        self.k = config.k
        self.seed = seed
        self.weighted_fifo = weighted_fifo
        self.result_fifo = result_fifo
        self.fill_cycles = WRSSamplerModel(
            k=config.k, frequency_hz=config.frequency_hz
        ).fill_cycles
        self._samplers: dict[int, ParallelWRS] = {}
        self._draining: deque[tuple[int, StepResult]] = deque()
        self.batches_consumed = 0

    def _sampler_for(self, qid: int) -> ParallelWRS:
        sampler = self._samplers.get(qid)
        if sampler is None:
            rng = ThundeRingRNG(self.k, derive_seed(self.seed, qid))
            sampler = ParallelWRS(self.k, rng)
            self._samplers[qid] = sampler
        return sampler

    def tick(self, cycle: int) -> None:
        # Retire drained results.
        if self._draining and self._draining[0][0] <= cycle and self.result_fifo.can_push():
            self.result_fifo.push(self._draining.popleft()[1])

        if not self.weighted_fifo.can_pop() or len(self._draining) >= 4:
            return
        task, items, weights, first, last = self.weighted_fifo.pop()
        self.batches_consumed += 1
        self.busy_cycles += 1
        sampler = self._sampler_for(task.qid)
        if first:
            sampler.reset()
        if items is not None and items.size:
            sampler.consume(items, weights)
        if last:
            selected = sampler.result()
            result = StepResult(task=task, selected=-1 if selected is None else selected)
            self.emit(cycle, "sample", qid=task.qid, step=task.step,
                      selected=result.selected)
            self._draining.append((cycle + self.fill_cycles, result))

    def is_idle(self) -> bool:
        return not self._draining


class QueryController(Module):
    """Loads queries, keeps them in flight, collects sampled steps.

    Issues one step task per cycle (round-robin between newly admitted
    queries and queries whose previous step just completed) and retires
    one result per cycle.  A query completes when it reaches its target
    length, samples a dead end, or stands on a sink vertex.
    """

    def __init__(
        self,
        graph: CSRGraph,
        starts: np.ndarray,
        n_steps: int,
        config: LightRWConfig,
        task_fifo: FIFO,
        result_fifo: FIFO,
        query_ids: np.ndarray | None = None,
        name: str = "query-controller",
    ) -> None:
        super().__init__(name)
        self.graph = graph
        self.n_steps = n_steps
        self.max_inflight = config.max_inflight
        self.task_fifo = task_fifo
        self.result_fifo = result_fifo
        starts = np.asarray(starts, dtype=np.int64)
        ids = (
            np.asarray(query_ids, dtype=np.int64)
            if query_ids is not None
            else np.arange(starts.size, dtype=np.int64)
        )
        if ids.size != starts.size:
            raise SimulationError("query_ids must align with starts")
        self._pending: deque[tuple[int, int]] = deque(
            (int(q), int(s)) for q, s in zip(ids, starts)
        )
        self._ready: deque[StepTask] = deque()
        self.paths: dict[int, list[int]] = {int(q): [int(s)] for q, s in zip(ids, starts)}
        self._prev: dict[int, int] = {}
        self.inflight = 0
        self.completed = 0
        self.total = starts.size
        self.first_issue_cycle: dict[int, int] = {}
        self.finish_cycle: dict[int, int] = {}

    def done(self) -> bool:
        return self.completed == self.total

    def _finish(self, qid: int, cycle: int) -> None:
        self.inflight -= 1
        self.completed += 1
        self.finish_cycle[qid] = cycle
        self.emit(cycle, "query-finished", qid=qid)

    def tick(self, cycle: int) -> None:
        # Retire one result per cycle.
        if self.result_fifo.can_pop():
            result: StepResult = self.result_fifo.pop()
            task = result.task
            qid = task.qid
            self.emit(cycle, "step-retired", qid=qid, step=task.step,
                      selected=result.selected)
            if result.selected < 0:
                self._finish(qid, cycle)
            else:
                self.paths[qid].append(result.selected)
                self._prev[qid] = task.vertex
                next_step = task.step + 1
                if next_step >= self.n_steps or self.graph.degree(result.selected) == 0:
                    self._finish(qid, cycle)
                else:
                    self._ready.append(
                        StepTask(
                            qid=qid,
                            step=next_step,
                            vertex=result.selected,
                            prev=task.vertex,
                        )
                    )

        # Issue one task per cycle: continuing queries first.
        if not self.task_fifo.can_push():
            return
        if self._ready:
            self.task_fifo.push(self._ready.popleft())
            self.busy_cycles += 1
            return
        if self._pending and self.inflight < self.max_inflight:
            qid, start = self._pending.popleft()
            self.inflight += 1
            self.first_issue_cycle[qid] = cycle
            if self.graph.degree(start) == 0:
                self._finish(qid, cycle)
                return
            self.emit(cycle, "query-admitted", qid=qid, start=start)
            self.task_fifo.push(StepTask(qid=qid, step=0, vertex=start, prev=-1))

    def is_idle(self) -> bool:
        return not self._ready
