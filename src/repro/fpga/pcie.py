"""PCIe host-to-board transfer model (paper Table 4 and Figure 9).

LightRW is deployed as a PCIe-attached accelerator: the host DMA-transfers
the CSR graph (replicated per instance/channel) and the query batch to the
board's DRAM, launches the kernel, and reads the result paths back.  This
model charges each direction an effective Gen3 x16 bandwidth plus a fixed
per-invocation latency, producing the "PCIe share of end-to-end time"
percentages the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import CSRGraph

#: Bytes per query descriptor (start vertex, length, metadata).
QUERY_BYTES = 16
#: Bytes per result path entry.
RESULT_BYTES = 4


@dataclass(frozen=True)
class PCIeModel:
    """Effective host<->FPGA DMA characteristics."""

    #: Sustained DMA bandwidth of PCIe Gen3 x16 with the XDMA engine (B/s).
    bandwidth_bytes_per_s: float = 12.0e9
    #: Fixed software + DMA setup latency per transfer batch (s).
    setup_latency_s: float = 30e-6
    #: Graph copies shipped (one private copy per instance, Figure 9).
    graph_copies: int = 4

    def transfer_s(self, n_bytes: float) -> float:
        """Time to move ``n_bytes`` in one DMA batch."""
        if n_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        return self.setup_latency_s + n_bytes / self.bandwidth_bytes_per_s

    def host_to_board_s(self, graph: CSRGraph, n_queries: int) -> float:
        """Ship the graph (replicated) plus the query batch."""
        graph_bytes = graph.total_bytes() * self.graph_copies
        return self.transfer_s(graph_bytes + n_queries * QUERY_BYTES)

    def board_to_host_s(self, total_steps: int) -> float:
        """Read back every sampled vertex of every walk."""
        return self.transfer_s(total_steps * RESULT_BYTES)

    def round_trip_s(self, graph: CSRGraph, n_queries: int, total_steps: int) -> float:
        return self.host_to_board_s(graph, n_queries) + self.board_to_host_s(total_steps)

    def overhead_fraction(
        self, graph: CSRGraph, n_queries: int, total_steps: int, kernel_s: float
    ) -> float:
        """PCIe share of end-to-end time (the Table 4 percentages)."""
        pcie = self.round_trip_s(graph, n_queries, total_steps)
        total = pcie + kernel_s
        return pcie / total if total > 0 else 0.0
