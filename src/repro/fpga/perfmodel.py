"""Analytic performance model of the LightRW accelerator.

This is the fast twin of the cycle simulator
(:mod:`repro.fpga.accelerator`): it replays a recorded walk trace
(:class:`repro.walks.stepper.StepRecord`) through the *same* module cost
models — burst plans, exact cache simulation, sampler occupancy — and
combines them analytically instead of ticking every cycle:

* **Throughput** is resource-bound: with enough queries in flight, the
  kernel time of an instance is the maximum of its DRAM-interface busy
  cycles, sampler busy cycles and controller issue cycles, plus a pipeline
  fill term.  (With the table-based WRS-off ablation the stages serialize
  and the resources add instead.)
* **Latency** of one query is the sum of its steps' service latencies
  (row lookup, burst fetch, sampler drain, controller turnaround) plus a
  contention wait that grows with the number of co-resident queries.

Walks are shared with the cycle simulator bit-for-bit (per-query RNG), and
the per-module cost equations are identical, so the two backends agree on
all counted events; tests check the cycle totals agree within the fill
tolerance.

Query-sampled extrapolation: experiments at paper-scale query counts pass
``total_queries`` larger than the session's query count; resource totals
scale linearly (queries are i.i.d. samples), while latency statistics come
from the sampled queries unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.fpga.burst import plan_bursts
from repro.fpga.cache import (
    simulate_degree_aware,
    simulate_direct_mapped,
    simulate_fifo,
    simulate_lru,
)
from repro.fpga.config import LightRWConfig
from repro.fpga.wrs_sampler import WRSSamplerModel
from repro.graph.csr import EDGE_RECORD_BYTES
from repro.units import GIGA
from repro.walks.base import WalkAlgorithm
from repro.walks.stepper import WalkSession

#: Controller issue interval per step (cycles).
CONTROLLER_II = 2
#: Fixed controller turnaround per step when computing latency (cycles).
CONTROLLER_TURNAROUND = 8


@dataclass
class FPGATimeBreakdown:
    """Modeled execution of one walk session on the accelerator."""

    config: LightRWConfig
    algorithm: str
    total_steps: int
    num_queries: int
    #: Busy cycles per instance for each resource.
    mem_cycles: np.ndarray
    sampler_cycles: np.ndarray
    controller_cycles: np.ndarray
    #: Pipeline fill / drain cycles added once per instance.
    fill_cycles: float
    #: Whether stages overlap (WRS streaming) or serialize (table ablation).
    overlapped: bool
    #: Degree-aware cache statistics over row_index accesses.
    cache_accesses: int
    cache_hits: int
    #: Burst engine byte accounting over col_index traffic.
    bytes_valid: int
    bytes_loaded: int
    #: Per-query latency in cycles (sampled queries only).
    query_latency_cycles: np.ndarray | None = None
    kernel_cycles: float = field(init=False)
    kernel_s: float = field(init=False)

    def __post_init__(self) -> None:
        if self.overlapped:
            per_instance = np.maximum(
                np.maximum(self.mem_cycles, self.sampler_cycles), self.controller_cycles
            )
        else:
            per_instance = self.mem_cycles + self.sampler_cycles + self.controller_cycles
        self.kernel_cycles = float(per_instance.max(initial=0.0)) + self.fill_cycles
        self.kernel_s = self.kernel_cycles / self.config.frequency_hz

    @property
    def steps_per_second(self) -> float:
        return self.total_steps / self.kernel_s if self.kernel_s > 0 else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        return self.cache_hits / self.cache_accesses if self.cache_accesses else 0.0

    @property
    def valid_ratio(self) -> float:
        return self.bytes_valid / self.bytes_loaded if self.bytes_loaded else 1.0

    @property
    def bottleneck(self) -> str:
        """The resource binding the critical (kernel-setting) instance.

        ``kernel_cycles`` is a per-instance max, so the batch is gated by
        whichever resource dominates *that* instance — under skewed
        instance loads the largest cross-instance sum can name a resource
        that isn't on the critical path at all.
        """
        stacks = {
            "memory": self.mem_cycles,
            "sampler": self.sampler_cycles,
            "controller": self.controller_cycles,
        }
        if self.mem_cycles.size == 0:
            return "memory"
        if self.overlapped:
            per_instance = np.maximum(
                np.maximum(self.mem_cycles, self.sampler_cycles), self.controller_cycles
            )
        else:
            per_instance = self.mem_cycles + self.sampler_cycles + self.controller_cycles
        critical = int(np.argmax(per_instance))
        return max(stacks, key=lambda name: float(stacks[name][critical]))

    @property
    def achieved_bandwidth_gbps(self) -> float:
        if self.kernel_s <= 0:
            return 0.0
        return self.bytes_loaded / self.kernel_s / GIGA

    def query_latency_seconds(self) -> np.ndarray:
        if self.query_latency_cycles is None:
            raise ValueError("latency was not recorded for this evaluation")
        return self.query_latency_cycles / self.config.frequency_hz


class FPGAPerfModel:
    """Evaluate LightRW timing over recorded walk sessions."""

    def __init__(self, config: LightRWConfig, algorithm: WalkAlgorithm) -> None:
        self.config = config
        self.algorithm = algorithm
        self.sampler_model = WRSSamplerModel(k=config.k, frequency_hz=config.frequency_hz)

    # -- trace flattening ----------------------------------------------------

    def _flatten(self, session: WalkSession):
        """Concatenate the per-step records into flat per-step-event arrays."""
        qids = np.concatenate([r.query_ids for r in session.records])
        curr = np.concatenate([r.curr for r in session.records])
        deg = np.concatenate([r.degrees for r in session.records])
        prev = np.concatenate([r.prev for r in session.records])
        dprev = np.concatenate([r.prev_degrees for r in session.records])
        return qids, curr, deg, prev, dprev

    def _row_trace(self, curr, prev, needs_prev):
        """row_index access stream of one instance's steps, in issue order.

        When a second-order walk must re-fetch the previous adjacency
        (its stream overflowed the on-chip buffer), the previous vertex's
        info lookup is adjacent to the current one in the stream.
        """
        if not self.algorithm.fetches_previous_neighbors or not np.any(needs_prev):
            return curr, np.ones(curr.size, dtype=bool)
        n = curr.size + int(needs_prev.sum())
        trace = np.empty(n, dtype=np.int64)
        is_primary = np.zeros(n, dtype=bool)
        # Interleave: curr first, then (where needed) prev.
        widths = np.where(needs_prev, 2, 1)
        offsets = np.cumsum(widths) - widths
        trace[offsets] = curr
        is_primary[offsets] = True
        trace[offsets[needs_prev] + 1] = prev[needs_prev]
        return trace, is_primary

    def _cache_hits(self, trace: np.ndarray, degrees: np.ndarray) -> np.ndarray:
        policy = self.config.cache_policy
        capacity = self.config.scaled_cache_entries
        if policy == "none":
            return np.zeros(trace.size, dtype=bool)
        if policy == "degree":
            return simulate_degree_aware(trace, degrees, capacity)
        if policy == "direct":
            return simulate_direct_mapped(trace, capacity)
        if policy == "lru":
            return simulate_lru(trace, capacity, ways=4)
        return simulate_fifo(trace, capacity, ways=4)

    # -- evaluation ----------------------------------------------------------

    def evaluate(
        self,
        session: WalkSession,
        total_queries: int | None = None,
        record_latency: bool = True,
    ) -> FPGATimeBreakdown:
        """Model the accelerator's execution of ``session``.

        Parameters
        ----------
        session:
            Functional walk session with trace records.
        total_queries:
            When the session walked a uniform *sample* of a larger query
            batch, the full batch size — resource totals extrapolate
            linearly.
        record_latency:
            Compute per-query latency (needed by the latency experiments).
        """
        if not session.records:
            raise ConfigError("session has no trace records; run with record_trace=True")
        cfg = self.config
        dram = cfg.dram
        n_inst = cfg.n_instances
        scale = 1.0
        if total_queries is not None:
            if total_queries < session.num_queries:
                raise ConfigError("total_queries cannot be below the sampled count")
            scale = total_queries / session.num_queries

        qids, curr, deg, prev, dprev = self._flatten(session)
        instance = qids % n_inst
        graph_degrees = session.graph.degrees

        mem_cycles = np.zeros(n_inst, dtype=np.float64)
        sampler_cycles = np.zeros(n_inst, dtype=np.float64)
        controller_cycles = np.zeros(n_inst, dtype=np.float64)
        cache_accesses = 0
        cache_hits = 0
        bytes_valid = 0
        bytes_loaded = 0

        row_miss_cycles = dram.request_cycles(1)
        per_event_mem = np.zeros(qids.size, dtype=np.float64)

        prev_buffer = cfg.scaled_prev_buffer_edges
        for inst in range(n_inst):
            mask = instance == inst
            if not np.any(mask):
                continue
            i_curr, i_deg = curr[mask], deg[mask]
            i_prev, i_dprev = prev[mask], dprev[mask]
            # Second-order membership data is served from the on-chip
            # previous-stream buffer unless the list overflowed it.
            i_needs_prev = (i_prev >= 0) & (i_dprev > prev_buffer)

            trace, _ = self._row_trace(i_curr, i_prev, i_needs_prev)
            hits = self._cache_hits(trace, graph_degrees)
            misses_total = int((~hits).sum())
            cache_accesses += trace.size
            cache_hits += int(hits.sum())
            row_cycles = misses_total * row_miss_cycles

            fetch_bytes = i_deg * EDGE_RECORD_BYTES
            plan = plan_bursts(fetch_bytes, cfg.strategy, dram)
            burst = plan.interface_cycles.copy()
            bytes_valid += int(plan.valid_bytes.sum())
            bytes_loaded += int(plan.loaded_bytes.sum())
            if self.algorithm.fetches_previous_neighbors:
                prev_bytes = np.where(i_needs_prev, i_dprev * EDGE_RECORD_BYTES, 0)
                prev_plan = plan_bursts(prev_bytes, cfg.strategy, dram)
                burst = burst + prev_plan.interface_cycles
                bytes_valid += int(prev_plan.valid_bytes.sum())
                bytes_loaded += int(prev_plan.loaded_bytes.sum())
            if not cfg.use_wrs:
                # Table ablation: updated weights round-trip through DRAM
                # (write + read of 4 B per candidate, streamed).
                table_bytes = i_deg * 8
                table_plan = plan_bursts(table_bytes, cfg.strategy, dram)
                burst = burst + table_plan.interface_cycles
                bytes_valid += int(table_plan.valid_bytes.sum())
                bytes_loaded += int(table_plan.loaded_bytes.sum())

            samp = self.sampler_model.occupancy_cycles(i_deg).astype(np.float64)
            if self.algorithm.fetches_previous_neighbors:
                # Re-fetched membership streams pass through the weight
                # updater's filter at k per cycle; buffered ones are free
                # (the filter structure was built while they streamed by
                # during the previous step).
                samp = samp + self.sampler_model.occupancy_cycles(
                    np.where(i_needs_prev, i_dprev, 0)
                )

            mem_cycles[inst] = row_cycles + float(burst.sum())
            sampler_cycles[inst] = float(samp.sum())
            controller_cycles[inst] = i_deg.size * CONTROLLER_II
            # Per-event memory time (for latency): average row cost folded in.
            miss_ratio = misses_total / trace.size if trace.size else 0.0
            lookups_per_step = trace.size / i_deg.size if i_deg.size else 0.0
            per_event_mem[mask] = burst + miss_ratio * row_miss_cycles * lookups_per_step

        fill = dram.latency_cycles + self.sampler_model.fill_cycles + CONTROLLER_TURNAROUND

        query_latency = None
        if record_latency:
            step_latency = (
                dram.latency_cycles  # row lookup + first burst data return
                + per_event_mem
                + self.sampler_model.stream_cycles(deg).astype(np.float64)
                + CONTROLLER_TURNAROUND
            )
            if session.num_queries:
                queries_per_inst = np.bincount(
                    np.arange(session.num_queries) % n_inst, minlength=n_inst
                )
            else:
                queries_per_inst = np.zeros(n_inst, dtype=np.int64)
            inflight = np.minimum(cfg.max_inflight, np.maximum(queries_per_inst, 1))
            busy_mean = (
                float(mem_cycles.sum()) / max(qids.size, 1)
            )
            wait = busy_mean * (inflight[instance] - 1) / 2.0
            query_latency = np.zeros(session.num_queries, dtype=np.float64)
            np.add.at(query_latency, qids, step_latency + wait)

        return FPGATimeBreakdown(
            config=cfg,
            algorithm=self.algorithm.name,
            total_steps=int(round(session.total_steps * scale)),
            num_queries=total_queries or session.num_queries,
            mem_cycles=mem_cycles * scale,
            sampler_cycles=sampler_cycles * scale,
            controller_cycles=controller_cycles * scale,
            fill_cycles=float(fill),
            overlapped=cfg.use_wrs,
            cache_accesses=int(round(cache_accesses * scale)),
            cache_hits=int(round(cache_hits * scale)),
            bytes_valid=int(round(bytes_valid * scale)),
            bytes_loaded=int(round(bytes_loaded * scale)),
            query_latency_cycles=query_latency,
        )
