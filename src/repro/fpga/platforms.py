"""Named FPGA platform presets.

The paper deploys on an Alveo U250 (four DDR4 channels); its related-work
section contrasts with HBM boards (Su et al.'s sampler on HBM), and its
future work points at multi-board scaling.  These presets make those
deployments one-liners:

>>> from repro.fpga.platforms import u250_config, u280_hbm_config
>>> config = u280_hbm_config()          # 32 HBM pseudo-channels
"""

from __future__ import annotations

from dataclasses import replace

from repro.fpga.config import LightRWConfig
from repro.fpga.dram import DRAMTimings
from repro.fpga.resources import FPGADevice

#: Alveo U280: smaller fabric, 32 HBM2 pseudo-channels.
U280 = FPGADevice(name="Alveo U280", luts=1_304_000, regs=2_607_000, brams=2_016, dsps=9_024)

#: One HBM2 pseudo-channel: 256-bit bus, ~14.4 GB/s sustained, lower
#: per-request overhead than DDR4 but also lower per-channel bandwidth.
HBM_PSEUDO_CHANNEL = DRAMTimings(
    bus_bytes=32,
    request_overhead_cycles=4,
    latency_cycles=75,
    frequency_hz=300e6,
    peak_bandwidth_gbps=13.8,
    long_pipe_extra_cycles=6,
)


def u250_config(**overrides) -> LightRWConfig:
    """The paper's deployment: 4 DDR4 channels, k = 16, b1+b32."""
    return replace(LightRWConfig(), **overrides) if overrides else LightRWConfig()


def u280_hbm_config(n_channels: int = 16, **overrides) -> LightRWConfig:
    """An HBM deployment: many narrow channels, one instance per channel.

    The bus is half as wide, so a k = 8 sampler already saturates one
    pseudo-channel; throughput comes from channel count instead.
    """
    base = LightRWConfig(
        k=8,
        n_instances=n_channels,
        dram=HBM_PSEUDO_CHANNEL,
    )
    return replace(base, **overrides) if overrides else base
