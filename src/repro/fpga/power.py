"""Power and power-efficiency model (paper Table 3).

Power draw is the one quantity this reproduction takes directly from the
paper's measurements rather than deriving: the authors measured 39–45 W
for the FPGA board (xbutil) and 103–126 W for the CPU package (CPU Energy
Meter) across the workloads.  We model each platform's draw as a base plus
a small load-dependent span within those measured envelopes, and compute

    power-efficiency improvement = speedup x (CPU watts / FPGA watts),

the paper's definition (execution time per watt, ratioed).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Measured power envelopes from Table 3 (watts).
FPGA_POWER_RANGE = {"metapath": (41.0, 45.0), "node2vec": (39.0, 42.0)}
CPU_POWER_RANGE = {"metapath": (103.0, 124.0), "node2vec": (110.0, 126.0)}


def _interpolate(power_range: tuple[float, float], load: float) -> float:
    low, high = power_range
    return low + (high - low) * min(max(load, 0.0), 1.0)


@dataclass(frozen=True)
class PowerModel:
    """Per-application power draw and efficiency computation."""

    application: str  # "metapath" or "node2vec"

    def __post_init__(self) -> None:
        if self.application not in FPGA_POWER_RANGE:
            raise ValueError(
                f"application must be one of {sorted(FPGA_POWER_RANGE)}, "
                f"got {self.application!r}"
            )

    def fpga_watts(self, utilization: float = 0.8) -> float:
        """Board draw at the given pipeline utilization (0..1)."""
        return _interpolate(FPGA_POWER_RANGE[self.application], utilization)

    def cpu_watts(self, utilization: float = 0.8) -> float:
        """Package draw at the given core utilization (0..1)."""
        return _interpolate(CPU_POWER_RANGE[self.application], utilization)

    def efficiency_improvement(
        self,
        fpga_time_s: float,
        cpu_time_s: float,
        fpga_utilization: float = 0.8,
        cpu_utilization: float = 0.8,
    ) -> float:
        """Ratio of (time x watts): how much less energy LightRW spends."""
        if fpga_time_s <= 0 or cpu_time_s <= 0:
            raise ValueError("execution times must be positive")
        fpga_energy = fpga_time_s * self.fpga_watts(fpga_utilization)
        cpu_energy = cpu_time_s * self.cpu_watts(cpu_utilization)
        return cpu_energy / fpga_energy
