"""Capacity projection for terabyte-scale graphs (paper Section 8).

The paper closes with: "processing large graphs (e.g., in Terabyte scale)
may require multiple FPGA boards with sufficient computation power and
DRAM."  This module turns that remark into numbers: given a target graph's
size, how many boards does a distributed LightRW need, and what throughput
should the deployment expect?

Memory sizing follows the deployment model of Figure 9 — within one board
every instance holds a private graph copy, so a board's usable capacity is
``board_dram / instances_per_channel-sharing`` — while across boards the
graph is partitioned (the distributed design of
:mod:`repro.fpga.distributed`), so aggregate capacity scales with board
count.

Throughput projection uses the measured per-channel step rates of the
scaled experiments, degraded by the walker-migration network factor of the
distributed model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.fpga.distributed import NetworkSpec
from repro.graph.csr import EDGE_RECORD_BYTES, NEIGHBOR_INFO_BYTES


@dataclass(frozen=True)
class BoardSpec:
    """Memory and channel envelope of one accelerator board."""

    name: str = "Alveo U250"
    dram_bytes: int = 64 << 30
    n_channels: int = 4
    #: Steps/s one channel sustains (from the paper's Figure 16 numbers:
    #: 4.8e7 aggregate over 4 channels for MetaPath).
    steps_per_second_per_channel: float = 1.2e7


@dataclass
class CapacityPlan:
    """The projected deployment for one target graph."""

    graph_bytes_per_copy: int
    boards_for_capacity: int
    boards_planned: int
    replicated_within_board: bool
    projected_steps_per_second: float
    network_bound_fraction: float

    def as_row(self) -> dict[str, object]:
        return {
            "graph_size": self.graph_bytes_per_copy,
            "boards": self.boards_planned,
            "replication": "per-channel" if self.replicated_within_board else "partitioned",
            "steps_per_s": f"{self.projected_steps_per_second:.3g}",
            "network_bound": f"{self.network_bound_fraction:.0%}",
        }


def graph_footprint_bytes(num_vertices: int, num_edges: int, weighted: bool = True) -> int:
    """DRAM bytes of one CSR copy at the accelerator's layout."""
    edge_bytes = EDGE_RECORD_BYTES + (4 if weighted else 0)
    return num_vertices * NEIGHBOR_INFO_BYTES + num_edges * edge_bytes


def plan_capacity(
    num_vertices: int,
    num_edges: int,
    board: BoardSpec | None = None,
    network: NetworkSpec | None = None,
    weighted: bool = True,
    target_boards: int | None = None,
) -> CapacityPlan:
    """Project the deployment for a graph of the given size.

    If the graph fits a single channel's share of a board, the paper's
    replicated single-board deployment applies.  Otherwise boards are added
    until the *partitioned* graph fits (each channel of each board holds
    its partition), and throughput is the aggregate channel rate degraded
    by walker migration (fraction ``(B-1)/B`` of steps cross the network
    under hash partitioning).
    """
    if num_vertices <= 0 or num_edges < 0:
        raise ConfigError("graph size must be positive")
    board = board or BoardSpec()
    network = network or NetworkSpec()
    footprint = graph_footprint_bytes(num_vertices, num_edges, weighted)

    per_channel_budget = board.dram_bytes // board.n_channels
    replicated = footprint <= per_channel_budget
    if replicated:
        boards_needed = 1
    else:
        # Partitioned: the whole deployment's DRAM must hold one copy,
        # with a 2x headroom factor for partition imbalance and buffers.
        boards_needed = max(int(np.ceil(2 * footprint / board.dram_bytes)), 2)
    boards = target_boards or boards_needed
    if boards < boards_needed:
        raise ConfigError(
            f"{boards} boards cannot hold the graph; need >= {boards_needed}"
        )

    raw_rate = board.steps_per_second_per_channel * board.n_channels * boards
    if boards == 1:
        migration = 0.0
        projected = raw_rate
        network_bound = 0.0
    else:
        migration = (boards - 1) / boards
        # Each migrated step costs a message; the per-board link supports
        # bandwidth / message_bytes migrations per second.
        link_rate = network.bandwidth_bytes_per_s / network.message_bytes * boards
        network_cap = link_rate / max(migration, 1e-9)
        projected = min(raw_rate, network_cap)
        # How close the deployment runs to its network ceiling (1.0 =
        # fully network-bound).
        network_bound = min(raw_rate / network_cap, 1.0)
    return CapacityPlan(
        graph_bytes_per_copy=footprint,
        boards_for_capacity=boards_needed,
        boards_planned=boards,
        replicated_within_board=replicated,
        projected_steps_per_second=projected,
        network_bound_fraction=network_bound,
    )
