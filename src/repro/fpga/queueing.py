"""Open-loop query arrival model — the "real-time analytics" claim.

Section 6.5.2 argues LightRW's low, deterministic latency suits real-time
graph analytics.  The paper measures closed batches; this model asks the
open-system question: queries arrive continuously at rate λ — what
response time does each system deliver, and where does it saturate?

Each engine is modeled as an M/G/1-style server pool:

* **service rate** μ = modeled sustained steps/s ÷ steps per query;
* **service variability** from the measured per-query latency sample
  (degree variance makes service times heavy-tailed);
* mean response time via Pollaczek–Khinchine on the pooled server, plus
  the base service latency.

The qualitative outcome the claim predicts: LightRW's higher μ and lower
service variance give it both a later saturation point and a flatter
response-time curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ServerModel:
    """One engine as a queueing server."""

    name: str
    #: Mean service time of one query (s).
    mean_service_s: float
    #: Squared coefficient of variation of service time (Var/Mean^2).
    service_scv: float
    #: Sustained query completion rate when fully loaded (1/s).
    capacity_qps: float

    def __post_init__(self) -> None:
        if self.mean_service_s <= 0 or self.capacity_qps <= 0:
            raise ConfigError("service time and capacity must be positive")
        if self.service_scv < 0:
            raise ConfigError("squared coefficient of variation must be >= 0")

    @classmethod
    def from_latency_sample(
        cls, name: str, latencies_s: np.ndarray, capacity_qps: float
    ) -> "ServerModel":
        """Build the model from a per-query latency sample (Figure 15's)."""
        latencies_s = np.asarray(latencies_s, dtype=np.float64)
        if latencies_s.size == 0:
            raise ConfigError("latency sample is empty")
        mean = float(latencies_s.mean())
        variance = float(latencies_s.var())
        return cls(
            name=name,
            mean_service_s=mean,
            service_scv=variance / (mean**2) if mean > 0 else 0.0,
            capacity_qps=capacity_qps,
        )

    def utilization(self, arrival_qps: float) -> float:
        return arrival_qps / self.capacity_qps

    def mean_response_s(self, arrival_qps: float) -> float:
        """Mean response time under Poisson arrivals (P-K formula).

        Returns ``inf`` at or beyond saturation.
        """
        if arrival_qps < 0:
            raise ConfigError("arrival rate must be non-negative")
        rho = self.utilization(arrival_qps)
        if rho >= 1.0:
            return float("inf")
        # Waiting time of an M/G/1 queue with the pooled effective service
        # time 1/capacity (the pool's bottleneck), scaled by the service
        # variability.
        effective_service = 1.0 / self.capacity_qps
        wait = (
            rho
            * effective_service
            * (1.0 + self.service_scv)
            / (2.0 * (1.0 - rho))
        )
        return self.mean_service_s + wait

    def p99_response_s(self, arrival_qps: float) -> float:
        """Approximate 99th percentile (exponential-tail approximation)."""
        mean = self.mean_response_s(arrival_qps)
        if not np.isfinite(mean):
            return mean
        wait = mean - self.mean_service_s
        # ln(100) ~ 4.6 tail factor on the waiting component.
        return self.mean_service_s * (1.0 + 0.5 * np.sqrt(self.service_scv)) + 4.6 * wait


def response_curve(
    server: ServerModel, load_fractions: list[float]
) -> list[dict[str, float]]:
    """Mean/p99 response times across utilization levels."""
    rows = []
    for fraction in load_fractions:
        if not 0.0 <= fraction < 1.0:
            raise ConfigError(f"load fraction must be in [0, 1), got {fraction}")
        arrival = fraction * server.capacity_qps
        rows.append(
            {
                "load": fraction,
                "arrival_qps": arrival,
                "mean_response_s": server.mean_response_s(arrival),
                "p99_response_s": server.p99_response_s(arrival),
            }
        )
    return rows
