"""FPGA resource-utilization model (paper Table 5).

Estimates LUT/REG/BRAM/DSP consumption of a LightRW build from its
configuration, using per-module costs that scale the way HLS-generated
hardware does:

* the WRS sampler grows linearly in ``k`` (k selector lanes, k DSP
  multiply-adds, a log-k prefix/comparator tree);
* the burst engine pays per pipeline (long + short) plus reorder buffers
  proportional to the long burst length;
* the degree-aware cache consumes URAM/BRAM proportional to its entries;
* Node2Vec's weight updater adds the previous-neighbor buffer (the big
  BRAM consumer that makes its build memory-heavier than MetaPath's, as
  Table 5 shows) while MetaPath's label-matching datapath is wider in
  LUTs.

Per-module constants were calibrated so the four default-configuration
totals land on the paper's reported percentages; the *scaling* with k,
cache size and burst length is structural and exercised by the ablation
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.config import LightRWConfig


@dataclass(frozen=True)
class FPGADevice:
    """Available resources of the target device."""

    name: str
    luts: int
    regs: int
    brams: int
    dsps: int


#: Alveo U250 capacities as the paper states them (Section 6.1.1).
U250 = FPGADevice(name="Alveo U250", luts=1_341_000, regs=2_682_000, brams=2_000, dsps=11_508)


@dataclass
class ResourceEstimate:
    """Absolute and relative resource consumption of one build."""

    luts: float
    regs: float
    brams: float
    dsps: float
    device: FPGADevice
    frequency_mhz: float = 300.0

    def utilization(self) -> dict[str, float]:
        return {
            "LUTs": self.luts / self.device.luts,
            "REGs": self.regs / self.device.regs,
            "BRAMs": self.brams / self.device.brams,
            "DSPs": self.dsps / self.device.dsps,
        }


class ResourceModel:
    """Estimate resources for a LightRW configuration and application."""

    # Platform shell (XDMA, memory controllers, per channel).
    SHELL_LUTS = 28_000.0
    SHELL_REGS = 52_000.0
    SHELL_BRAMS = 28.0
    # Per-instance fixed logic: controller, info loader, merge network.
    BASE_LUTS = 23_600.0
    BASE_REGS = 67_800.0
    BASE_BRAMS = 10.0
    # WRS sampler per lane (selector + accumulator slice + PRNG instance).
    LANE_LUTS = 520.0
    LANE_REGS = 980.0
    LANE_DSPS = 2.2
    # Burst pipelines.
    BURST_PIPE_LUTS = 3_200.0
    BURST_PIPE_REGS = 6_500.0
    BURST_REORDER_BRAM_PER_BEAT = 0.55
    # Cache storage: one URAM-equivalent BRAM per 512 entries plus tag logic.
    CACHE_BRAM_PER_ENTRY = 1.0 / 512.0
    CACHE_LUT_PER_ENTRY = 1.1
    # FIFO storage per stage pair.
    FIFO_BRAM = 0.5
    N_FIFOS = 8.0
    # Application-specific weight updater datapaths.  MetaPath's is
    # LUT/DSP-wide (label compare + weight select per lane); Node2Vec's is
    # BRAM-heavy (the previous-neighbor membership buffer).
    APP_LUTS = {"metapath": 62_600.0, "node2vec": 20_000.0, "uniform": 2_000.0, "static": 3_000.0}
    APP_REGS = {"metapath": 90_000.0, "node2vec": 12_500.0, "uniform": 1_500.0, "static": 2_500.0}
    APP_BRAMS = {"metapath": 22.0, "node2vec": 116.3, "uniform": 0.0, "static": 0.0}
    APP_DSPS = {"metapath": 113.3, "node2vec": 40.3, "uniform": 0.0, "static": 4.0}

    def __init__(self, device: FPGADevice = U250) -> None:
        self.device = device

    def estimate(self, config: LightRWConfig, application: str) -> ResourceEstimate:
        """Resource estimate for one build (application in lowercase)."""
        app = application.lower()
        app_luts = self.APP_LUTS.get(app, 8_000.0)
        app_regs = self.APP_REGS.get(app, 6_000.0)
        app_brams = self.APP_BRAMS.get(app, 0.0)
        app_dsps = self.APP_DSPS.get(app, 8.0)

        n_pipes = int(config.strategy.short_beats > 0) + int(config.strategy.long_beats > 0)
        reorder_beats = max(config.strategy.long_beats, config.strategy.short_beats)

        luts_inst = (
            self.BASE_LUTS
            + config.k * self.LANE_LUTS
            + n_pipes * self.BURST_PIPE_LUTS
            + config.cache_entries * self.CACHE_LUT_PER_ENTRY
            + app_luts
        )
        regs_inst = (
            self.BASE_REGS
            + config.k * self.LANE_REGS
            + n_pipes * self.BURST_PIPE_REGS
            + app_regs
        )
        brams_inst = (
            self.BASE_BRAMS
            + self.N_FIFOS * self.FIFO_BRAM
            + reorder_beats * self.BURST_REORDER_BRAM_PER_BEAT * n_pipes
            + config.cache_entries * self.CACHE_BRAM_PER_ENTRY
            + app_brams
        )
        dsps_inst = config.k * self.LANE_DSPS + app_dsps

        n = config.n_instances
        return ResourceEstimate(
            luts=self.SHELL_LUTS + n * luts_inst,
            regs=self.SHELL_REGS + n * regs_inst,
            brams=self.SHELL_BRAMS + n * brams_inst,
            dsps=n * dsps_inst,
            device=self.device,
            frequency_mhz=config.frequency_hz / 1e6,
        )
