"""Roofline analysis of GDRW workloads on the accelerator.

The paper's core argument — GDRWs are memory-bound and a custom memory
system is where the performance lives — in the standard roofline frame:

* the **compute roof** is the sampler fabric: ``k`` items per cycle;
* the **memory roof** is the channel bandwidth over the achieved
  valid-data ratio (wasted bytes lower the *effective* roof);
* a workload's **operational intensity** is items sampled per DRAM byte
  actually moved.

GDRW intensity is fixed by the data layout (one 4-byte record must move
per candidate item, plus row lookups and second-order refetches), so every
GDRW sits far left of the ridge point — the roofline way of saying what
Table 1 measures on the CPU and why Figure 10a saturates at k = 16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGATimeBreakdown
from repro.units import GIGA


@dataclass(frozen=True)
class RooflinePoint:
    """One workload positioned under the machine's roofs."""

    label: str
    #: Items sampled per byte moved from DRAM (operational intensity).
    intensity_items_per_byte: float
    #: Achieved sampling rate (items/s).
    achieved_items_per_s: float
    #: The two roofs (items/s).
    compute_roof: float
    memory_roof_at_intensity: float

    @property
    def bound(self) -> str:
        return (
            "memory"
            if self.memory_roof_at_intensity < self.compute_roof
            else "compute"
        )

    @property
    def roof_at_intensity(self) -> float:
        return min(self.compute_roof, self.memory_roof_at_intensity)

    @property
    def efficiency(self) -> float:
        """Achieved rate as a fraction of the binding roof."""
        roof = self.roof_at_intensity
        return self.achieved_items_per_s / roof if roof > 0 else 0.0

    def as_row(self) -> dict[str, object]:
        return {
            "workload": self.label,
            "intensity_items_per_B": round(self.intensity_items_per_byte, 4),
            "achieved_items_per_s": f"{self.achieved_items_per_s:.3g}",
            "roof_items_per_s": f"{self.roof_at_intensity:.3g}",
            "bound": self.bound,
            "efficiency": f"{self.efficiency:.0%}",
        }


def ridge_point(config: LightRWConfig) -> float:
    """Intensity (items/byte) where the compute and memory roofs meet."""
    compute = config.k * config.frequency_hz * config.n_instances
    memory_bytes = config.dram.peak_bandwidth_gbps * GIGA * config.n_instances
    return compute / memory_bytes


def roofline_point(
    label: str, breakdown: FPGATimeBreakdown, items_sampled: int
) -> RooflinePoint:
    """Position a modeled execution under its configuration's roofs.

    ``items_sampled`` is the candidate count the sampler consumed (the
    roofline's work unit); the bytes come from the breakdown's loaded-byte
    accounting, so wasted burst data lowers the intensity exactly as it
    does on hardware.
    """
    config = breakdown.config
    if items_sampled <= 0:
        raise ValueError(f"items_sampled must be positive, got {items_sampled}")
    if breakdown.bytes_loaded <= 0:
        raise ValueError("breakdown moved no bytes; nothing to position")
    intensity = items_sampled / breakdown.bytes_loaded
    compute_roof = config.k * config.frequency_hz * config.n_instances
    memory_bw = config.dram.peak_bandwidth_gbps * GIGA * config.n_instances
    return RooflinePoint(
        label=label,
        intensity_items_per_byte=intensity,
        achieved_items_per_s=items_sampled / breakdown.kernel_s,
        compute_roof=compute_roof,
        memory_roof_at_intensity=intensity * memory_bw,
    )
