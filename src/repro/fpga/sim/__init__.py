"""Cycle-level simulation kernel.

A deliberately small discrete-clock framework: :class:`~repro.fpga.sim.fifo.FIFO`
channels with two-phase commit (a push becomes visible to the consumer on
the *next* cycle, like a registered hardware FIFO), :class:`~repro.fpga.sim.module.Module`
stages with a per-cycle ``tick``, and a :class:`~repro.fpga.sim.clock.Simulator`
that drives them.  The LightRW pipeline models in
:mod:`repro.fpga.modules` are built on these pieces.
"""

from repro.fpga.sim.clock import Simulator
from repro.fpga.sim.fifo import FIFO
from repro.fpga.sim.module import Module

__all__ = ["FIFO", "Module", "Simulator"]
