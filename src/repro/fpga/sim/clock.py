"""The cycle driver.

Ticks every module once per cycle and then commits every FIFO, until a
completion predicate holds (typically "all queries finished and the
pipeline drained") or a cycle budget is exhausted — the latter raising
:class:`~repro.errors.SimulationError` so a deadlocked pipeline model fails
loudly in tests instead of spinning.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.fpga.sim.fifo import FIFO
from repro.fpga.sim.module import Module


class Simulator:
    """Drives a set of modules and FIFOs through clock cycles."""

    def __init__(self, modules: list[Module], fifos: list[FIFO]) -> None:
        if not modules:
            raise SimulationError("simulator needs at least one module")
        self.modules = modules
        self.fifos = fifos
        self.cycle = 0

    def step(self) -> None:
        """Advance one cycle."""
        for module in self.modules:
            module.tick(self.cycle)
        for fifo in self.fifos:
            fifo.commit()
        self.cycle += 1

    def run_until(
        self, done: Callable[[], bool], max_cycles: int = 10_000_000
    ) -> int:
        """Run until ``done()`` holds; returns the cycle count."""
        while not done():
            if self.cycle >= max_cycles:
                state = ", ".join(
                    f"{f.name}={len(f)}" for f in self.fifos if len(f)
                )
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"(likely deadlock; non-empty FIFOs: {state or 'none'})"
                )
            self.step()
        return self.cycle
