"""The cycle driver.

Ticks every module once per cycle and then commits every FIFO, until a
completion predicate holds (typically "all queries finished and the
pipeline drained") or a cycle budget is exhausted — the latter raising
:class:`~repro.errors.SimulationError` so a deadlocked pipeline model fails
loudly in tests instead of spinning.

A **watchdog** catches livelock/deadlock long before the cycle budget:
every committed FIFO transfer and every module busy-cycle advances a
progress signal, and when the signal stops moving for
``watchdog_cycles`` the run aborts with a
:class:`~repro.errors.SimulationStallError` carrying a diagnostic dump of
per-FIFO occupancy (with push/pop/backpressure counters) and per-module
state — the information needed to see *which* stage wedged.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError, SimulationStallError
from repro.fpga.sim.fifo import FIFO
from repro.fpga.sim.module import Module

#: Default no-progress budget before the watchdog aborts.  Large enough
#: that no healthy pipeline phase (a full DRAM burst train is hundreds of
#: cycles) comes near it, small next to any real cycle budget.
DEFAULT_WATCHDOG_CYCLES = 100_000


class Simulator:
    """Drives a set of modules and FIFOs through clock cycles."""

    def __init__(self, modules: list[Module], fifos: list[FIFO]) -> None:
        if not modules:
            raise SimulationError("simulator needs at least one module")
        self.modules = modules
        self.fifos = fifos
        self.cycle = 0

    def step(self) -> None:
        """Advance one cycle."""
        for module in self.modules:
            module.tick(self.cycle)
        for fifo in self.fifos:
            fifo.commit()
        self.cycle += 1

    # -- watchdog -------------------------------------------------------------

    def _progress_signal(self) -> int:
        """Monotone counter that advances iff the pipeline is doing work."""
        total = 0
        for fifo in self.fifos:
            total += fifo.total_pushed + fifo.total_popped
        for module in self.modules:
            total += module.busy_cycles
        return total

    def _stall_dump(self) -> str:
        fifo_lines = ", ".join(
            f"{f.name}[occ {len(f)}/{f.depth}, pushed {f.total_pushed}, "
            f"popped {f.total_popped}, stalled {f.stalled_cycles}]"
            for f in self.fifos
        )
        module_lines = ", ".join(
            f"{m.name}[{'idle' if m.is_idle() else 'busy'}, "
            f"busy_cycles {m.busy_cycles}]"
            for m in self.modules
        )
        return f"FIFOs: {fifo_lines or 'none'}; modules: {module_lines}"

    def run_until(
        self,
        done: Callable[[], bool],
        max_cycles: int = 10_000_000,
        watchdog_cycles: int | None = DEFAULT_WATCHDOG_CYCLES,
    ) -> int:
        """Run until ``done()`` holds; returns the cycle count.

        ``watchdog_cycles`` bounds how long the pipeline may go without
        any FIFO transfer or module busy-cycle before the run is declared
        livelocked/deadlocked (``None`` disables the watchdog and leaves
        only the ``max_cycles`` backstop).
        """
        if watchdog_cycles is not None and watchdog_cycles <= 0:
            raise SimulationError(
                f"watchdog_cycles must be positive or None, got {watchdog_cycles}"
            )
        check_interval = (
            max(1, min(1024, watchdog_cycles // 8 or 1))
            if watchdog_cycles is not None
            else 0
        )
        last_progress = self._progress_signal() if watchdog_cycles else 0
        progress_cycle = self.cycle
        next_check = self.cycle + check_interval
        # The loop body below is :meth:`step` inlined with the module/FIFO
        # hooks pre-bound: at millions of cycles the attribute lookups and
        # the extra frame per cycle dominate, so the driver pays them once.
        ticks = [module.tick for module in self.modules]
        commits = [fifo.commit for fifo in self.fifos]
        while not done():
            cycle = self.cycle
            if cycle >= max_cycles:
                state = ", ".join(
                    f"{f.name}={len(f)}" for f in self.fifos if len(f)
                )
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"(likely deadlock; non-empty FIFOs: {state or 'none'})"
                )
            if watchdog_cycles is not None and cycle >= next_check:
                progress = self._progress_signal()
                if progress != last_progress:
                    last_progress = progress
                    progress_cycle = cycle
                elif cycle - progress_cycle >= watchdog_cycles:
                    self._abort_stalled(watchdog_cycles)
                next_check = cycle + check_interval
            for tick in ticks:
                tick(cycle)
            for commit in commits:
                commit()
            self.cycle = cycle + 1
        return self.cycle

    def _abort_stalled(self, watchdog_cycles: int) -> None:
        from repro.obs import current_observer, record_watchdog_abort

        obs = current_observer()
        if obs.enabled:
            record_watchdog_abort(obs.metrics, cycle=self.cycle)
        raise SimulationStallError(
            f"watchdog: no pipeline progress for {watchdog_cycles} cycles "
            f"(stalled at cycle {self.cycle}); {self._stall_dump()}"
        )
