"""Registered FIFO channel for the cycle simulator.

Semantics match a hardware FIFO with registered output: a value pushed in
cycle ``t`` becomes poppable in cycle ``t+1`` (the simulator calls
:meth:`commit` between cycles).  ``can_push`` accounts for in-flight
pushes so a stage can never overfill within a cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError


class FIFO:
    """Bounded FIFO with two-phase (push-then-commit) semantics."""

    def __init__(self, name: str, depth: int = 64) -> None:
        if depth <= 0:
            raise SimulationError(f"FIFO {name!r} depth must be positive, got {depth}")
        self.name = name
        self.depth = depth
        self._queue: deque[Any] = deque()
        self._pending: list[Any] = []
        self.total_pushed = 0
        self.total_popped = 0
        self.max_occupancy = 0
        #: Cycles this FIFO spent full with no pop — the backpressure it
        #: exerted on its producer (watchdog and ``pipeline.*`` metrics).
        self.stalled_cycles = 0
        self._popped_this_cycle = False

    # -- producer side -------------------------------------------------------

    def can_push(self, count: int = 1) -> bool:
        return len(self._queue) + len(self._pending) + count <= self.depth

    def push(self, item: Any) -> None:
        if not self.can_push():
            raise SimulationError(f"push to full FIFO {self.name!r}")
        self._pending.append(item)
        self.total_pushed += 1

    # -- consumer side -------------------------------------------------------

    def can_pop(self) -> bool:
        return bool(self._queue)

    def peek(self) -> Any:
        if not self._queue:
            raise SimulationError(f"peek on empty FIFO {self.name!r}")
        return self._queue[0]

    def pop(self) -> Any:
        if not self._queue:
            raise SimulationError(f"pop from empty FIFO {self.name!r}")
        self.total_popped += 1
        self._popped_this_cycle = True
        return self._queue.popleft()

    # -- simulator hooks -------------------------------------------------------

    def commit(self) -> None:
        """Make this cycle's pushes visible; called once per cycle."""
        if self._pending:
            # A successful push implies the queue was not full this
            # cycle, so no backpressure to account for.
            self._queue.extend(self._pending)
            self._pending.clear()
            self._popped_this_cycle = False
            if len(self._queue) > self.max_occupancy:
                self.max_occupancy = len(self._queue)
            return
        # No push this cycle: occupancy cannot grow, so only the
        # backpressure counter and the popped flag can change.  Full for
        # the whole cycle (producer blocked) with no pop to relieve it is
        # one cycle of backpressure.  The cycle that *fills* the FIFO
        # doesn't count — its push succeeded.
        if len(self._queue) >= self.depth and not self._popped_this_cycle:
            self.stalled_cycles += 1
        self._popped_this_cycle = False

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FIFO({self.name!r}, {len(self._queue)}/{self.depth})"
