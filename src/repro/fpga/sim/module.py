"""Pipeline-stage base class for the cycle simulator."""

from __future__ import annotations


class Module:
    """One hardware stage: override :meth:`tick` with per-cycle behaviour.

    ``tick`` is called exactly once per cycle, before FIFO commits; a stage
    therefore sees its inputs as of the previous cycle and its outputs land
    in the next — the registered-pipeline timing discipline.

    A :class:`~repro.fpga.sim.trace.PipelineTracer` may be attached via the
    ``tracer`` attribute; :meth:`emit` is then a cheap no-op otherwise.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy_cycles = 0
        self.tracer = None

    def emit(self, cycle: int, event: str, **info) -> None:
        """Record a trace event if a tracer is attached."""
        if self.tracer is not None:
            self.tracer.record(cycle, self.name, event, **info)

    def tick(self, cycle: int) -> None:
        raise NotImplementedError

    def is_idle(self) -> bool:
        """True when the stage holds no in-flight state (for quiescence)."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"
