"""Event tracing for the cycle simulator.

A :class:`PipelineTracer` collects timestamped events from the pipeline
modules — task issues, cache hits and misses, DRAM request grants, sampler
selections, query retirements — into a bounded ring buffer.  It is the
waveform-viewer substitute: enough to reconstruct what the pipeline did
around any cycle without storing gigabytes.

Enable it via ``LightRWAcceleratorSim.run(..., trace=True)`` and read the
result's ``tracer``:

>>> result = sim.run(starts, 5, trace=True)          # doctest: +SKIP
>>> result.tracer.filter(event="cache-miss")[:3]     # doctest: +SKIP
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TraceEvent:
    """One pipeline event."""

    cycle: int
    module: str
    event: str
    info: dict = field(default_factory=dict)

    def format(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.info.items())
        return f"[{self.cycle:>8}] {self.module:<24} {self.event:<14} {details}"


class PipelineTracer:
    """Bounded ring buffer of :class:`TraceEvent`.

    ``max_events`` bounds memory; the oldest events fall off first, so the
    buffer always holds the *latest* window of activity (what you want when
    diagnosing the end of a run or a deadlock).
    """

    def __init__(self, max_events: int = 100_000) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.max_events = max_events
        self._events: deque[TraceEvent] = deque(maxlen=max_events)
        self.total_recorded = 0

    def record(self, cycle: int, module: str, event: str, **info: Any) -> None:
        self._events.append(TraceEvent(cycle=cycle, module=module, event=event, info=info))
        self.total_recorded += 1

    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def filter(
        self,
        module: str | None = None,
        event: str | None = None,
        qid: int | None = None,
    ) -> list[TraceEvent]:
        """Events matching all given criteria."""
        out = []
        for entry in self._events:
            if module is not None and entry.module != module:
                continue
            if event is not None and entry.event != event:
                continue
            if qid is not None and entry.info.get("qid") != qid:
                continue
            out.append(entry)
        return out

    def query_timeline(self, qid: int) -> list[TraceEvent]:
        """Everything that happened to one query, in cycle order."""
        return self.filter(qid=qid)

    def counts(self) -> dict[str, int]:
        """Event-name histogram over the retained window."""
        histogram: dict[str, int] = {}
        for entry in self._events:
            histogram[entry.event] = histogram.get(entry.event, 0) + 1
        return histogram

    def to_text(self, last: int | None = None) -> str:
        """Human-readable dump of the last ``last`` events (all if None)."""
        events = self.events()
        if last is not None:
            events = events[-last:]
        return "\n".join(entry.format() for entry in events)

    def __len__(self) -> int:
        return len(self._events)
