"""Design-space exploration over accelerator configurations.

The paper picks one configuration (k = 16, b1+b32, 2^12-entry cache, one
instance per channel) from its component experiments.  This module
automates that choice for arbitrary workloads: enumerate a configuration
grid, evaluate each point with the performance model *and* the resource
model, and report the Pareto frontier of throughput versus device
utilization — the architect's view the paper's Section 6.2/6.3 sweeps
build up to.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product

from repro.errors import ConfigError
from repro.fpga.burst import SHORT_ONLY, BurstStrategy
from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel
from repro.fpga.resources import FPGADevice, ResourceModel, U250
from repro.walks.base import WalkAlgorithm
from repro.walks.stepper import WalkSession


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    config: LightRWConfig
    steps_per_second: float
    bottleneck: str
    #: Worst resource utilization across LUT/REG/BRAM/DSP (0..1).
    peak_utilization: float
    fits: bool

    @property
    def label(self) -> str:
        return (
            f"k={self.config.k} {self.config.strategy.label} "
            f"cache=2^{self.config.cache_entries.bit_length() - 1} "
            f"x{self.config.n_instances}"
        )

    def as_row(self) -> dict[str, object]:
        return {
            "config": self.label,
            "steps_per_s": f"{self.steps_per_second:.3g}",
            "bottleneck": self.bottleneck,
            "peak_utilization": f"{self.peak_utilization:.1%}",
            "fits": self.fits,
        }


def default_grid() -> dict[str, list]:
    """The grid the paper's component experiments span."""
    return {
        "k": [4, 8, 16, 32],
        "long_beats": [0, 8, 16, 32],
        "cache_bits": [10, 12, 14],
        "n_instances": [2, 4],
    }


class DesignSpaceExplorer:
    """Evaluate a configuration grid over one recorded workload."""

    def __init__(
        self,
        algorithm: WalkAlgorithm,
        application: str,
        device: FPGADevice = U250,
        base_config: LightRWConfig | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.application = application
        self.device = device
        self.base_config = base_config or LightRWConfig()
        self.resources = ResourceModel(device)

    def _configs(self, grid: dict[str, list]) -> list[LightRWConfig]:
        configs = []
        for k, long_beats, cache_bits, n_instances in product(
            grid["k"], grid["long_beats"], grid["cache_bits"], grid["n_instances"]
        ):
            strategy = (
                SHORT_ONLY
                if long_beats == 0
                else BurstStrategy(short_beats=1, long_beats=long_beats)
            )
            configs.append(
                replace(
                    self.base_config,
                    k=k,
                    strategy=strategy,
                    cache_entries=1 << cache_bits,
                    n_instances=n_instances,
                )
            )
        return configs

    def evaluate(
        self,
        sessions: dict[int, WalkSession],
        grid: dict[str, list] | None = None,
    ) -> list[DesignPoint]:
        """Evaluate every grid point.

        ``sessions`` maps sampler parallelism ``k`` to a walk session
        sampled with that ``k`` (walks depend on k, so the caller provides
        one functional session per k value — see
        :func:`sweep_design_space` for the convenience wrapper).
        """
        grid = grid or default_grid()
        missing = [k for k in grid["k"] if k not in sessions]
        if missing:
            raise ConfigError(f"no walk session provided for k in {missing}")
        points = []
        for config in self._configs(grid):
            breakdown = FPGAPerfModel(config, self.algorithm).evaluate(
                sessions[config.k], record_latency=False
            )
            estimate = self.resources.estimate(config, self.application)
            utilization = estimate.utilization()
            peak = max(utilization.values())
            points.append(
                DesignPoint(
                    config=config,
                    steps_per_second=breakdown.steps_per_second,
                    bottleneck=breakdown.bottleneck,
                    peak_utilization=peak,
                    fits=peak <= 1.0,
                )
            )
        return points

    @staticmethod
    def pareto_frontier(points: list[DesignPoint]) -> list[DesignPoint]:
        """Fitting points not dominated in (throughput, utilization).

        A point dominates another if it is at least as fast *and* uses no
        more of the device, strictly better in one of the two.
        """
        fitting = [p for p in points if p.fits]
        frontier = []
        for candidate in fitting:
            dominated = any(
                other.steps_per_second >= candidate.steps_per_second
                and other.peak_utilization <= candidate.peak_utilization
                and (
                    other.steps_per_second > candidate.steps_per_second
                    or other.peak_utilization < candidate.peak_utilization
                )
                for other in fitting
            )
            if not dominated:
                frontier.append(candidate)
        return sorted(frontier, key=lambda p: p.peak_utilization)


def sweep_design_space(
    graph,
    algorithm: WalkAlgorithm,
    application: str,
    n_steps: int,
    starts,
    grid: dict[str, list] | None = None,
    hardware_scale: int = 1,
    seed: int = 0,
) -> tuple[list[DesignPoint], list[DesignPoint]]:
    """Convenience wrapper: walk once per k, evaluate the grid.

    Returns ``(all_points, pareto_frontier)``.
    """
    from repro.walks.stepper import PWRSSampler, run_walks

    grid = grid or default_grid()
    sessions = {
        k: run_walks(graph, starts, n_steps, algorithm, PWRSSampler(k=k, seed=seed))
        for k in grid["k"]
    }
    explorer = DesignSpaceExplorer(
        algorithm,
        application,
        base_config=LightRWConfig().scaled(hardware_scale),
    )
    points = explorer.evaluate(sessions, grid)
    return points, explorer.pareto_frontier(points)
