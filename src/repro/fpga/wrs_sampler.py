"""Throughput model of the hardware WRS Sampler (paper Section 4.2).

The WRS Sampler consumes ``k`` (item, weight) pairs per cycle through four
pipelined stages — prefix-sum weight accumulator, per-lane selector (the
Equation 8 DSP compare), tree comparator, output — with a fill latency of
``O(log k)`` plus the fixed stage depth.  Its *functional* behaviour is
:class:`repro.sampling.ParallelWRS`; this module models its *timing*,
which is what Figures 10a/10b measure:

* throughput scales linearly with ``k`` until the DRAM feed rate binds
  (16 items x 4 B x 300 MHz = 19.2 GB/s raw, capped by the channel's
  17.57 GB/s sustainable bandwidth), and
* short streams lose a little throughput to pipeline fill.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.fpga.dram import DRAMTimings
from repro.graph.csr import EDGE_RECORD_BYTES
from repro.units import GIGA


@dataclass(frozen=True)
class WRSSamplerModel:
    """Cycle cost model of one WRS Sampler instance."""

    k: int = 16
    frequency_hz: float = 300e6
    #: Fixed pipeline stages before the first selection can retire
    #: (accumulator, selector, comparator tree, output).
    base_fill_cycles: int = 6

    def __post_init__(self) -> None:
        if self.k <= 0 or self.k & (self.k - 1):
            raise ConfigError(f"k must be a positive power of two, got {self.k}")

    @property
    def fill_cycles(self) -> int:
        """Pipeline fill: fixed stages plus the log-depth reduction trees."""
        return self.base_fill_cycles + int(np.log2(self.k))

    def stream_cycles(self, n_items) -> np.ndarray:
        """Cycles to fully process (and drain) streams of ``n_items`` items.

        Vectorized over arrays.  Matches the paper's O(n/k + log k)
        complexity statement.
        """
        n = np.asarray(n_items, dtype=np.int64)
        return np.where(n > 0, -(-n // self.k) + self.fill_cycles, 0)

    #: Pipeline bubble between back-to-back streams (reservoir reset +
    #: result hand-off); the fill itself overlaps the next stream.
    STREAM_BUBBLE_CYCLES = 2

    def occupancy_cycles(self, n_items) -> np.ndarray:
        """Cycles the sampler is *busy* per stream (fill overlaps streams).

        Back-to-back streams keep the pipeline full, so sustained occupancy
        is the consume cycles plus a small reset bubble — this is what
        bounds accelerator throughput.
        """
        n = np.asarray(n_items, dtype=np.int64)
        return np.where(n > 0, -(-n // self.k) + self.STREAM_BUBBLE_CYCLES, 0)

    def sustained_items_per_second(self, dram: DRAMTimings | None = None) -> float:
        """Peak sustained sampling rate (Figure 10a's plateau).

        The raw fabric rate is ``k`` items per cycle; the memory system can
        feed at most ``peak_bandwidth / EDGE_RECORD_BYTES`` items per
        second, whichever is lower.
        """
        fabric = self.k * self.frequency_hz
        if dram is None:
            return fabric
        feed = dram.peak_bandwidth_gbps * GIGA / EDGE_RECORD_BYTES
        return min(fabric, feed)

    def measured_throughput(self, stream_items: int, dram: DRAMTimings | None = None) -> float:
        """Sustained items/s for back-to-back streams of the given length.

        This is Figure 10b's measurement: streams of one size fed
        continuously, so the fill overlaps and only the per-stream bubble
        remains visible for short streams.
        """
        if stream_items <= 0:
            return 0.0
        cycles = float(self.occupancy_cycles(stream_items))
        rate = stream_items / cycles * self.frequency_hz
        cap = self.sustained_items_per_second(dram)
        return min(rate, cap)
