"""Graph substrate: CSR storage, builders, generators and named datasets.

LightRW stores graphs in compressed sparse row (CSR) form — a ``row_index``
array of per-vertex offsets and a ``col_index`` array of adjacent edges —
because that is the layout the accelerator's memory engines stream
(Section 3.3 of the paper).  Everything in this package exists to produce,
validate, transform and persist that layout.
"""

from repro.graph.builders import from_edge_list, symmetrize_edges
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASET_ORDER, DATASETS, DatasetSpec, dataset_table, load_dataset
from repro.graph.generators import (
    chung_lu_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    rmat_graph,
    star_graph,
)
from repro.graph.io import load_csr_npz, load_edge_list_text, save_csr_npz, save_edge_list_text
from repro.graph.labels import (
    assign_edge_labels,
    assign_random_weights,
    assign_vertex_labels,
)
from repro.graph.heterogeneous import (
    HeterogeneousSchema,
    bibliographic_schema,
    heterogeneous_graph,
)
from repro.graph.partition import (
    greedy_grow_partition,
    hash_partition,
    partition_quality,
    range_partition,
)
from repro.graph.reorder import ReorderedGraph, degree_sort_reorder
from repro.graph.stats import DegreeStats, degree_histogram, degree_stats
from repro.graph.subgraph import (
    SubgraphResult,
    induced_subgraph,
    largest_component_subgraph,
)

__all__ = [
    "CSRGraph",
    "DATASETS",
    "DATASET_ORDER",
    "dataset_table",
    "DatasetSpec",
    "assign_edge_labels",
    "bibliographic_schema",
    "heterogeneous_graph",
    "assign_random_weights",
    "assign_vertex_labels",
    "DegreeStats",
    "HeterogeneousSchema",
    "ReorderedGraph",
    "SubgraphResult",
    "chung_lu_graph",
    "degree_histogram",
    "degree_sort_reorder",
    "degree_stats",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi_graph",
    "from_edge_list",
    "greedy_grow_partition",
    "hash_partition",
    "induced_subgraph",
    "largest_component_subgraph",
    "partition_quality",
    "range_partition",
    "load_csr_npz",
    "load_dataset",
    "load_edge_list_text",
    "path_graph",
    "rmat_graph",
    "save_csr_npz",
    "save_edge_list_text",
    "star_graph",
    "symmetrize_edges",
]
