"""Builders that turn edge lists into validated :class:`CSRGraph` objects."""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph


def symmetrize_edges(edges: np.ndarray) -> np.ndarray:
    """Represent an undirected edge list as two directed arcs per edge.

    Self-loops are kept single (one arc); duplicates introduced by the
    mirroring are *not* removed here — pass ``deduplicate=True`` to
    :func:`from_edge_list` if the input may already contain both directions.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphFormatError(f"edges must have shape (m, 2), got {edges.shape}")
    non_loops = edges[edges[:, 0] != edges[:, 1]]
    mirrored = non_loops[:, ::-1]
    return np.concatenate([edges, mirrored], axis=0)


def from_edge_list(
    edges: np.ndarray,
    num_vertices: int | None = None,
    weights: np.ndarray | None = None,
    edge_labels: np.ndarray | None = None,
    vertex_labels: np.ndarray | None = None,
    directed: bool = True,
    deduplicate: bool = False,
    name: str = "graph",
) -> CSRGraph:
    """Build a CSR graph from an ``(m, 2)`` array of ``(src, dst)`` pairs.

    Parameters
    ----------
    edges:
        Integer array of shape ``(m, 2)``.
    num_vertices:
        Vertex count; inferred as ``max(edges) + 1`` when omitted.
    weights, edge_labels:
        Optional per-edge attributes aligned with ``edges`` (they are
        permuted together with the edges into CSR order).
    directed:
        When ``False`` the edge list is symmetrized first (attributes are
        mirrored with their edge).
    deduplicate:
        Drop repeated ``(src, dst)`` pairs, keeping the first occurrence.

    The resulting ``col_index`` is sorted within each row, which downstream
    components (binary-search membership tests, burst planning) require.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphFormatError(f"edges must have shape (m, 2), got {edges.shape}")
    if edges.size and edges.min() < 0:
        raise GraphFormatError("vertex ids must be non-negative")

    if weights is not None:
        weights = np.asarray(weights, dtype=np.float32)
        if weights.shape != (edges.shape[0],):
            raise GraphFormatError(
                f"weights must align with edges: {weights.shape} vs {edges.shape[0]} edges"
            )
    if edge_labels is not None:
        edge_labels = np.asarray(edge_labels, dtype=np.int16)
        if edge_labels.shape != (edges.shape[0],):
            raise GraphFormatError(
                f"edge_labels must align with edges: {edge_labels.shape} "
                f"vs {edges.shape[0]} edges"
            )

    if not directed:
        n_orig = edges.shape[0]
        edges = symmetrize_edges(edges)
        n_mirrored = edges.shape[0] - n_orig
        if weights is not None:
            # symmetrize_edges mirrors only non-self-loop edges, in order.
            original = np.asarray(weights)
            non_loop = original[_non_loop_mask(edges[:n_orig])]
            weights = np.concatenate([original, non_loop[:n_mirrored]])
        if edge_labels is not None:
            original = np.asarray(edge_labels)
            non_loop = original[_non_loop_mask(edges[:n_orig])]
            edge_labels = np.concatenate([original, non_loop[:n_mirrored]])

    if num_vertices is None:
        num_vertices = int(edges.max()) + 1 if edges.size else 0
    elif edges.size and int(edges.max()) >= num_vertices:
        raise GraphFormatError(
            f"edge references vertex {int(edges.max())} but num_vertices={num_vertices}"
        )

    order = np.lexsort((edges[:, 1], edges[:, 0]))
    edges = edges[order]
    if weights is not None:
        weights = weights[order]
    if edge_labels is not None:
        edge_labels = edge_labels[order]

    if deduplicate and edges.shape[0]:
        keep = np.ones(edges.shape[0], dtype=bool)
        keep[1:] = np.any(edges[1:] != edges[:-1], axis=1)
        edges = edges[keep]
        if weights is not None:
            weights = weights[keep]
        if edge_labels is not None:
            edge_labels = edge_labels[keep]

    counts = np.bincount(edges[:, 0], minlength=num_vertices)
    row_index = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=row_index[1:])
    return CSRGraph(
        row_index=row_index,
        col_index=edges[:, 1].astype(np.uint32),
        edge_weights=weights,
        vertex_labels=vertex_labels,
        edge_labels=edge_labels,
        directed=directed,
        name=name,
    )


def _non_loop_mask(edges: np.ndarray) -> np.ndarray:
    return edges[:, 0] != edges[:, 1]
