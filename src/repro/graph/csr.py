"""Compressed sparse row (CSR) graph container.

The layout mirrors what LightRW keeps in FPGA DRAM (Section 3.3):

* ``row_index`` — int64 array of length ``num_vertices + 1``; the adjacency
  list of vertex ``v`` occupies ``col_index[row_index[v]:row_index[v+1]]``.
  The *neighbor info* tuple the accelerator's Neighbor Info Loader fetches is
  ``(address, degree) = (row_index[v], row_index[v+1] - row_index[v])``.
* ``col_index`` — uint32 array of destination vertices, sorted within each
  row (the paper sorts adjacent edges by destination; sortedness is what
  makes Node2Vec's ``(a_{t-1}, b) in E`` test a binary search).
* ``edge_weights`` — float32 static weights ``w*`` (all ones when absent).
* ``vertex_labels`` / ``edge_labels`` — small-int labels used by MetaPath.

Instances are cheap views over numpy arrays; nothing here copies per-vertex
data on access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphFormatError

#: Bytes per ``col_index`` entry in the simulated DRAM layout.  One edge
#: record is a 32-bit packed word (vertex id plus label bits), which is what
#: makes a 512-bit memory bus deliver 16 edges per cycle — the paper's
#: saturation point for the WRS sampler at k = 16.
EDGE_RECORD_BYTES = 4

#: Bytes per ``row_index`` entry: the (address, degree) neighbor-info tuple.
NEIGHBOR_INFO_BYTES = 8


@dataclass
class CSRGraph:
    """A directed graph in CSR form (undirected graphs store both arcs)."""

    row_index: np.ndarray
    col_index: np.ndarray
    edge_weights: np.ndarray | None = None
    vertex_labels: np.ndarray | None = None
    edge_labels: np.ndarray | None = None
    directed: bool = True
    name: str = "graph"
    _degrees: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self.row_index = np.ascontiguousarray(self.row_index, dtype=np.int64)
        self.col_index = np.ascontiguousarray(self.col_index, dtype=np.uint32)
        if self.edge_weights is not None:
            self.edge_weights = np.ascontiguousarray(self.edge_weights, dtype=np.float32)
        if self.vertex_labels is not None:
            self.vertex_labels = np.ascontiguousarray(self.vertex_labels, dtype=np.int16)
        if self.edge_labels is not None:
            self.edge_labels = np.ascontiguousarray(self.edge_labels, dtype=np.int16)
        self.validate()
        self._degrees = np.diff(self.row_index)

    # -- shape -------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.row_index.size - 1

    @property
    def num_edges(self) -> int:
        return self.col_index.size

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (int64 array of length num_vertices)."""
        return self._degrees

    @property
    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    @property
    def max_degree(self) -> int:
        return int(self._degrees.max()) if self.num_vertices else 0

    def degree(self, v: int) -> int:
        return int(self.row_index[v + 1] - self.row_index[v])

    # -- adjacency ---------------------------------------------------------

    def neighbor_slice(self, v: int) -> tuple[int, int]:
        """``(address, address + degree)`` of v's adjacency in col_index."""
        return int(self.row_index[v]), int(self.row_index[v + 1])

    def neighbors(self, v: int) -> np.ndarray:
        """View of v's neighbor vertex ids (sorted ascending)."""
        start, end = self.neighbor_slice(v)
        return self.col_index[start:end]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """View of the static edge weights of v's adjacency (ones if absent)."""
        start, end = self.neighbor_slice(v)
        if self.edge_weights is None:
            return np.ones(end - start, dtype=np.float32)
        return self.edge_weights[start:end]

    def neighbor_edge_labels(self, v: int) -> np.ndarray | None:
        """View of v's adjacency edge labels (None if the graph has none)."""
        if self.edge_labels is None:
            return None
        start, end = self.neighbor_slice(v)
        return self.edge_labels[start:end]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search in u's sorted adjacency."""
        start, end = self.neighbor_slice(u)
        pos = int(np.searchsorted(self.col_index[start:end], np.uint32(v)))
        return pos < end - start and int(self.col_index[start + pos]) == v

    def edge_keys(self) -> np.ndarray:
        """All edges encoded as ``u * num_vertices + v``, globally sorted.

        Because ``col_index`` is sorted within each row and rows are laid out
        in vertex order, this array is fully sorted, which enables the
        vectorized membership test the Node2Vec weight updater relies on.
        """
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self._degrees
        )
        return sources * np.int64(self.num_vertices) + self.col_index.astype(np.int64)

    # -- bookkeeping ---------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`GraphFormatError` on any structural inconsistency."""
        if self.row_index.ndim != 1 or self.row_index.size < 1:
            raise GraphFormatError("row_index must be a 1-D array of length >= 1")
        if self.row_index[0] != 0:
            raise GraphFormatError(f"row_index[0] must be 0, got {self.row_index[0]}")
        if np.any(np.diff(self.row_index) < 0):
            raise GraphFormatError("row_index must be monotonically non-decreasing")
        if self.row_index[-1] != self.col_index.size:
            raise GraphFormatError(
                f"row_index[-1]={self.row_index[-1]} must equal "
                f"num_edges={self.col_index.size}"
            )
        n = self.row_index.size - 1
        if self.col_index.size and int(self.col_index.max()) >= n:
            raise GraphFormatError(
                f"col_index references vertex {int(self.col_index.max())} "
                f"but the graph has only {n} vertices"
            )
        for attr in ("edge_weights", "edge_labels"):
            arr = getattr(self, attr)
            if arr is not None and arr.size != self.col_index.size:
                raise GraphFormatError(
                    f"{attr} has {arr.size} entries for {self.col_index.size} edges"
                )
        if self.vertex_labels is not None and self.vertex_labels.size != n:
            raise GraphFormatError(
                f"vertex_labels has {self.vertex_labels.size} entries "
                f"for {n} vertices"
            )
        if self.edge_weights is not None and self.edge_weights.size:
            if float(self.edge_weights.min()) < 0:
                raise GraphFormatError("edge weights must be non-negative")

    def neighbors_sorted(self) -> bool:
        """True when every row of col_index is ascending (required layout)."""
        if self.num_edges == 0:
            return True
        if self.num_edges == 1:
            return True
        diffs = np.diff(self.col_index.astype(np.int64))
        boundary = np.zeros(self.num_edges - 1, dtype=bool)
        row_starts = self.row_index[1:-1]
        inner = row_starts[(row_starts > 0) & (row_starts < self.num_edges)]
        boundary[inner - 1] = True
        return bool(np.all(diffs[~boundary] >= 0))

    def memory_bytes(self) -> dict[str, int]:
        """Simulated DRAM footprint of each array (what PCIe must transfer)."""
        footprint = {
            "row_index": self.num_vertices * NEIGHBOR_INFO_BYTES,
            "col_index": self.num_edges * EDGE_RECORD_BYTES,
        }
        if self.edge_weights is not None:
            footprint["edge_weights"] = self.num_edges * 4
        if self.vertex_labels is not None:
            footprint["vertex_labels"] = self.num_vertices * 2
        if self.edge_labels is not None:
            footprint["edge_labels"] = self.num_edges * 2
        return footprint

    def total_bytes(self) -> int:
        return sum(self.memory_bytes().values())

    def nonzero_degree_vertices(self) -> np.ndarray:
        """Vertices with at least one out-edge (the paper's query set)."""
        return np.nonzero(self._degrees > 0)[0].astype(np.int64)

    def to_networkx(self):
        """Export to a networkx DiGraph (small graphs / analysis only)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_vertices))
        sources = np.repeat(np.arange(self.num_vertices), self._degrees)
        weights = (
            self.edge_weights
            if self.edge_weights is not None
            else np.ones(self.num_edges, dtype=np.float32)
        )
        graph.add_weighted_edges_from(
            zip(sources.tolist(), self.col_index.tolist(), weights.tolist())
        )
        return graph

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, {kind})"
        )
