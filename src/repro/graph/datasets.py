"""Named dataset stand-ins for the paper's Table 2.

The evaluation uses five real-world SNAP/WebGraph datasets plus the RMAT
series.  We cannot ship the real datasets, so each named graph is a
**synthetic stand-in** generated to match the original's directedness,
average degree, and heavy-tailed degree skew, scaled down by a configurable
factor (default 1/256 in vertices).  The experiments the paper runs on these
graphs are driven by exactly those structural properties, not by edge
identities — see DESIGN.md's substitution table.

>>> graph = load_dataset("livejournal", scale_divisor=512)
>>> graph.average_degree            # ~14, like the original   # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import CSRGraph
from repro.graph.generators import chung_lu_graph
from repro.graph.labels import assign_random_weights, assign_vertex_labels


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata of one original dataset (paper Table 2)."""

    name: str
    abbreviation: str
    num_vertices: int
    num_edges: int
    avg_degree: int
    directed: bool
    category: str

    def scaled_vertices(self, scale_divisor: int) -> int:
        return max(self.num_vertices // scale_divisor, 64)


#: Paper Table 2, verbatim.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("youtube", "YT", 1_140_000, 2_990_000, 5, False, "Web"),
        DatasetSpec("us-patents", "UP", 3_780_000, 16_520_000, 9, True, "Citation"),
        DatasetSpec("livejournal", "LJ", 4_800_000, 68_900_000, 14, False, "Social"),
        DatasetSpec("orkut", "OR", 3_100_000, 117_200_000, 38, False, "Social"),
        DatasetSpec("uk2002", "UK", 18_520_000, 298_110_000, 32, True, "Social"),
    ]
}

#: Order in which the paper's figures list the real graphs.
DATASET_ORDER = ["youtube", "us-patents", "livejournal", "orkut", "uk2002"]

#: Default scale-down in vertex count for the stand-ins.
DEFAULT_SCALE_DIVISOR = 256


def load_dataset(
    name: str,
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
    seed: int = 7,
    n_labels: int = 4,
    with_weights: bool = True,
) -> CSRGraph:
    """Generate the stand-in for a named Table 2 dataset.

    Parameters
    ----------
    name:
        One of ``youtube``, ``us-patents``, ``livejournal``, ``orkut``,
        ``uk2002`` (or the two-letter abbreviation).
    scale_divisor:
        Vertex-count scale-down relative to the original.  Edges scale with
        vertices so the average degree is preserved.
    seed:
        Generation seed; the same (name, scale, seed) triple always yields
        the same graph.
    n_labels:
        Vertex label alphabet size for MetaPath (paper uses random labels).
    with_weights:
        Attach random static edge weights in ``[1, 4)``.

    Notes
    -----
    The stand-in is a Chung-Lu power-law graph: it reproduces the original's
    average degree and a realistic skew (power-law exponent ~2.1), which are
    the properties the paper's cache, burst, and sampler experiments sense.
    """
    spec = _resolve(name)
    if scale_divisor <= 0:
        raise ValueError(f"scale_divisor must be positive, got {scale_divisor}")
    n = spec.scaled_vertices(scale_divisor)
    graph = chung_lu_graph(
        num_vertices=n,
        avg_degree=float(spec.avg_degree),
        exponent=2.4,
        seed=seed,
        directed=spec.directed,
        name=spec.name,
    )
    graph = assign_vertex_labels(graph, n_labels=n_labels, seed=seed + 1)
    if with_weights:
        graph = assign_random_weights(graph, low=1.0, high=4.0, seed=seed + 2)
    return graph


def dataset_table(scale_divisor: int = DEFAULT_SCALE_DIVISOR) -> list[dict[str, object]]:
    """Rows of Table 2, original sizes next to the stand-in sizes."""
    rows = []
    for key in DATASET_ORDER:
        spec = DATASETS[key]
        stand_in = load_dataset(key, scale_divisor=scale_divisor)
        rows.append(
            {
                "name": spec.name,
                "abbrev": spec.abbreviation,
                "paper_V": spec.num_vertices,
                "paper_E": spec.num_edges,
                "paper_D": spec.avg_degree,
                "type": "Directed" if spec.directed else "Undirected",
                "category": spec.category,
                "standin_V": stand_in.num_vertices,
                "standin_E": stand_in.num_edges,
                "standin_D": round(stand_in.average_degree, 1),
            }
        )
    return rows


def _resolve(name: str) -> DatasetSpec:
    lowered = name.lower()
    if lowered in DATASETS:
        return DATASETS[lowered]
    by_abbrev = {spec.abbreviation.lower(): spec for spec in DATASETS.values()}
    if lowered in by_abbrev:
        return by_abbrev[lowered]
    known = ", ".join(sorted(DATASETS))
    raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
