"""Synthetic graph generators.

Two families matter for the paper's evaluation:

* :func:`rmat_graph` — the R-MAT recursive generator (Chakrabarti et al.,
  SDM'04), the paper's ``rmat-12..22`` series (Table 2): power-law degrees
  with tunable skew.  Our implementation is fully vectorized (one uniform
  per recursion level per edge).
* :func:`chung_lu_graph` — an expected-degree-sequence generator used to
  build stand-ins for the real-world datasets: it matches a target average
  degree and Zipf-like skew without R-MAT's quadrant artifacts.

Plus the usual deterministic micro-graphs (path, cycle, star, complete) that
unit tests lean on.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_edge_list
from repro.graph.csr import CSRGraph


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    directed: bool = True,
    deduplicate: bool = False,
    name: str | None = None,
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters follow the Graph500 convention: quadrant probabilities
    ``(a, b, c, d)`` with ``d = 1 - a - b - c``, and ``edge_factor`` edges
    per vertex.  Multi-edges are kept by default (as R-MAT naturally
    produces them) — pass ``deduplicate=True`` for a simple graph.
    """
    if scale < 0:
        raise ValueError(f"scale must be non-negative, got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError(f"quadrant probabilities must be a distribution, got d={d:.3f}")
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Thresholds of the four quadrants in CDF form.
    t_a, t_ab, t_abc = a, a + b, a + b + c
    for level in range(scale):
        draw = rng.random(m)
        right = (draw >= t_a) & (draw < t_ab) | (draw >= t_abc)
        down = draw >= t_ab
        src = (src << 1) | down.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    edges = np.stack([src, dst], axis=1)
    return from_edge_list(
        edges,
        num_vertices=n,
        directed=directed,
        deduplicate=deduplicate,
        name=name or f"rmat-{scale}",
    )


def chung_lu_graph(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 2.1,
    seed: int = 0,
    directed: bool = True,
    name: str = "chung-lu",
) -> CSRGraph:
    """Power-law graph with the given expected average degree.

    Endpoints of each edge are drawn independently with probability
    proportional to a Zipf(``exponent``) weight sequence, giving the heavy
    degree skew of real web/social graphs.  For undirected output the drawn
    edges are symmetrized (so the realized average degree doubles relative
    to the number of drawn pairs — accounted for here).
    """
    if num_vertices <= 0:
        raise ValueError(f"num_vertices must be positive, got {num_vertices}")
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    rng.shuffle(weights)
    probabilities = weights / weights.sum()
    target_arcs = int(round(avg_degree * num_vertices))

    def draw(n_pairs: int) -> CSRGraph:
        src = rng.choice(num_vertices, size=n_pairs, p=probabilities)
        dst = rng.choice(num_vertices, size=n_pairs, p=probabilities)
        keep = src != dst
        edges = np.stack([src[keep], dst[keep]], axis=1)
        return from_edge_list(
            edges,
            num_vertices=num_vertices,
            directed=directed,
            deduplicate=True,
            name=name,
        )

    # Duplicate pairs (heavy-tailed endpoints collide often) are removed by
    # deduplication, which deflates the realized degree below the target;
    # one corrective redraw with an inflated pair count recovers it.
    n_draws = target_arcs if directed else max(target_arcs // 2, 1)
    graph = draw(n_draws)
    realized = graph.num_edges
    if realized and realized < 0.97 * target_arcs:
        inflation = min(target_arcs / realized, 3.0)
        graph = draw(int(n_draws * inflation * 1.05))
    return graph


def erdos_renyi_graph(
    num_vertices: int,
    avg_degree: float,
    seed: int = 0,
    directed: bool = True,
    name: str = "erdos-renyi",
) -> CSRGraph:
    """G(n, m) uniform random graph with the given expected average degree."""
    if num_vertices <= 0:
        raise ValueError(f"num_vertices must be positive, got {num_vertices}")
    rng = np.random.default_rng(seed)
    target_arcs = int(round(avg_degree * num_vertices))
    n_draws = target_arcs if directed else max(target_arcs // 2, 1)
    src = rng.integers(0, num_vertices, size=n_draws)
    dst = rng.integers(0, num_vertices, size=n_draws)
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    return from_edge_list(
        edges,
        num_vertices=num_vertices,
        directed=directed,
        deduplicate=True,
        name=name,
    )


def path_graph(num_vertices: int, directed: bool = True) -> CSRGraph:
    """0 -> 1 -> ... -> n-1."""
    src = np.arange(num_vertices - 1, dtype=np.int64)
    edges = np.stack([src, src + 1], axis=1)
    return from_edge_list(edges, num_vertices=num_vertices, directed=directed, name="path")


def cycle_graph(num_vertices: int, directed: bool = True) -> CSRGraph:
    """0 -> 1 -> ... -> n-1 -> 0."""
    src = np.arange(num_vertices, dtype=np.int64)
    edges = np.stack([src, (src + 1) % num_vertices], axis=1)
    return from_edge_list(edges, num_vertices=num_vertices, directed=directed, name="cycle")


def star_graph(num_leaves: int, directed: bool = True) -> CSRGraph:
    """Hub vertex 0 connected to ``num_leaves`` leaves (1..n)."""
    hubs = np.zeros(num_leaves, dtype=np.int64)
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    edges = np.stack([hubs, leaves], axis=1)
    return from_edge_list(edges, num_vertices=num_leaves + 1, directed=directed, name="star")


def complete_graph(num_vertices: int) -> CSRGraph:
    """All ordered pairs (u, v), u != v."""
    grid = np.indices((num_vertices, num_vertices)).reshape(2, -1).T
    edges = grid[grid[:, 0] != grid[:, 1]]
    return from_edge_list(edges, num_vertices=num_vertices, directed=True, name="complete")
