"""Heterogeneous (typed) graph generation for MetaPath workloads.

MetaPath's home turf is heterogeneous information networks — vertices with
types and edges that only connect particular type pairs (author-paper,
paper-venue, ...).  The evaluation's random vertex labels approximate
this; this generator builds the real thing so MetaPath examples and tests
can assert schema semantics structurally:

>>> schema = HeterogeneousSchema(
...     layers={"author": 300, "paper": 600, "venue": 20},
...     relations=[("author", "paper", 3.0), ("paper", "venue", 1.0)],
... )
>>> graph = heterogeneous_graph(schema, seed=1)        # doctest: +SKIP

Vertices are laid out layer by layer; ``graph.vertex_labels`` holds the
layer index, and :meth:`HeterogeneousSchema.label_of` / ``metapath_schema``
translate layer names into the label sequences
:class:`~repro.walks.metapath.MetaPathWalk` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builders import from_edge_list
from repro.graph.csr import CSRGraph


@dataclass
class HeterogeneousSchema:
    """Typed-graph description: layer sizes and allowed relations.

    ``relations`` entries are ``(source_layer, target_layer, avg_degree)``:
    every source-layer vertex gets on average that many undirected edges
    into the target layer (heavy-tailed via preferential attachment on the
    target side).
    """

    layers: dict[str, int]
    relations: list[tuple[str, str, float]]

    def __post_init__(self) -> None:
        if not self.layers:
            raise GraphFormatError("schema needs at least one layer")
        for name, size in self.layers.items():
            if size <= 0:
                raise GraphFormatError(f"layer {name!r} must be non-empty")
        for src, dst, degree in self.relations:
            if src not in self.layers or dst not in self.layers:
                raise GraphFormatError(f"relation ({src}, {dst}) references unknown layer")
            if degree <= 0:
                raise GraphFormatError(f"relation ({src}, {dst}) needs positive degree")
        self._order = list(self.layers)

    @property
    def num_vertices(self) -> int:
        return sum(self.layers.values())

    def label_of(self, layer: str) -> int:
        """Integer label of a layer (its index in declaration order)."""
        try:
            return self._order.index(layer)
        except ValueError as exc:
            raise GraphFormatError(f"unknown layer {layer!r}") from exc

    def layer_slice(self, layer: str) -> tuple[int, int]:
        """Vertex-id range ``[start, end)`` of a layer."""
        start = 0
        for name in self._order:
            size = self.layers[name]
            if name == layer:
                return start, start + size
            start += size
        raise GraphFormatError(f"unknown layer {layer!r}")

    def metapath_schema(self, path: list[str]) -> list[int]:
        """Translate layer names into MetaPathWalk's label sequence."""
        return [self.label_of(layer) for layer in path]


def heterogeneous_graph(
    schema: HeterogeneousSchema,
    seed: int = 0,
    skew: float = 0.8,
    name: str = "heterogeneous",
) -> CSRGraph:
    """Generate an undirected typed graph following ``schema``.

    ``skew`` in [0, 1] controls target-side preferential attachment: 0 is
    uniform target choice, 1 draws targets from a Zipf-like popularity
    (real heterogeneous networks are closer to 1 — venues and popular
    papers dominate).
    """
    if not 0.0 <= skew <= 1.0:
        raise GraphFormatError(f"skew must be in [0, 1], got {skew}")
    rng = np.random.default_rng(seed)
    edges = []
    labels = np.zeros(schema.num_vertices, dtype=np.int16)
    for layer in schema.layers:
        start, end = schema.layer_slice(layer)
        labels[start:end] = schema.label_of(layer)

    for src_layer, dst_layer, avg_degree in schema.relations:
        s_start, s_end = schema.layer_slice(src_layer)
        d_start, d_end = schema.layer_slice(dst_layer)
        n_src = s_end - s_start
        n_dst = d_end - d_start
        n_edges = max(int(round(avg_degree * n_src)), 1)
        sources = rng.integers(s_start, s_end, size=n_edges)
        popularity = np.arange(1, n_dst + 1, dtype=np.float64) ** (
            -1.0 / max(1e-9, 1.0 - 0.55 * skew)
        )
        rng.shuffle(popularity)
        probabilities = popularity / popularity.sum()
        uniform = np.full(n_dst, 1.0 / n_dst)
        mixed = skew * probabilities + (1.0 - skew) * uniform
        targets = d_start + rng.choice(n_dst, size=n_edges, p=mixed)
        keep = sources != targets
        edges.append(np.stack([sources[keep], targets[keep]], axis=1))

    all_edges = (
        np.concatenate(edges, axis=0) if edges else np.zeros((0, 2), dtype=np.int64)
    )
    graph = from_edge_list(
        all_edges,
        num_vertices=schema.num_vertices,
        directed=False,
        deduplicate=True,
        name=name,
    )
    graph.vertex_labels = labels
    return graph


def bibliographic_schema(
    n_authors: int = 1000, n_papers: int = 2000, n_venues: int = 40
) -> HeterogeneousSchema:
    """The classic author/paper/venue network (A-P-V-P-A meta-paths)."""
    return HeterogeneousSchema(
        layers={"author": n_authors, "paper": n_papers, "venue": n_venues},
        relations=[("paper", "author", 2.5), ("paper", "venue", 1.0)],
    )
