"""Graph persistence: text edge lists and binary CSR bundles.

Two formats:

* **Text edge lists** — one ``src dst [weight [label]]`` line per edge; the
  interchange format of SNAP and most graph tools.  Comment lines starting
  with ``#`` are skipped.
* **NPZ CSR bundles** — the library's native format: the validated CSR
  arrays written atomically with an embedded content checksum
  (:mod:`repro.artifacts`), round-tripping every attribute bit-exactly.
  Zero-byte, truncated or checksum-failing bundles are quarantined and
  raised as :class:`~repro.errors.ArtifactCorruptionError`; bundles from
  a newer format version are rejected with a clear
  :class:`~repro.errors.GraphFormatError`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.artifacts import load_npz_checked, save_npz_checked
from repro.errors import GraphFormatError
from repro.graph.builders import from_edge_list
from repro.graph.csr import CSRGraph

#: Version 1 wrote plain ``np.savez_compressed`` bundles; version 2 adds
#: the embedded content checksum and atomic writes.  Both load; anything
#: newer is rejected (forward compatibility is explicit, never silent).
_FORMAT_VERSION = 2
_OLDEST_READABLE_VERSION = 1


def save_csr_npz(graph: CSRGraph, path: str | Path) -> None:
    """Write a CSR bundle; extension ``.npz`` is appended if missing.

    The write is atomic (tmp file + fsync + rename) and the bundle embeds
    a content checksum that :func:`load_csr_npz` verifies.
    """
    payload: dict[str, np.ndarray] = {
        "format_version": np.int64(_FORMAT_VERSION),
        "row_index": graph.row_index,
        "col_index": graph.col_index,
        "directed": np.bool_(graph.directed),
        "name": np.str_(graph.name),
    }
    for attr in ("edge_weights", "vertex_labels", "edge_labels"):
        value = getattr(graph, attr)
        if value is not None:
            payload[attr] = value
    save_npz_checked(path, payload)


def load_csr_npz(path: str | Path) -> CSRGraph:
    """Read a CSR bundle written by :func:`save_csr_npz` (validates on load).

    Raises :class:`~repro.errors.ArtifactCorruptionError` (after
    quarantining the file) for zero-byte, truncated or checksum-failing
    bundles, and :class:`~repro.errors.GraphFormatError` for bundles that
    are readable but not a supported CSR format version.
    """
    bundle = load_npz_checked(path)
    if "format_version" not in bundle:
        raise GraphFormatError(
            f"{path}: not a CSR bundle (no format_version entry)"
        )
    version = int(bundle["format_version"])
    if version > _FORMAT_VERSION:
        raise GraphFormatError(
            f"{path}: CSR bundle version {version} is newer than this "
            f"library supports (up to {_FORMAT_VERSION}); upgrade the library"
        )
    if version < _OLDEST_READABLE_VERSION:
        raise GraphFormatError(
            f"{path}: unsupported CSR bundle version {version} "
            f"(supported: {_OLDEST_READABLE_VERSION}..{_FORMAT_VERSION})"
        )
    return CSRGraph(
        row_index=bundle["row_index"],
        col_index=bundle["col_index"],
        edge_weights=bundle.get("edge_weights"),
        vertex_labels=bundle.get("vertex_labels"),
        edge_labels=bundle.get("edge_labels"),
        directed=bool(bundle["directed"]),
        name=str(bundle["name"]),
    )


def save_edge_list_text(graph: CSRGraph, path: str | Path) -> None:
    """Write ``src dst weight`` lines (weight column only when present)."""
    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        if graph.edge_weights is not None:
            for src, dst, weight in zip(
                sources.tolist(), graph.col_index.tolist(), graph.edge_weights.tolist()
            ):
                handle.write(f"{src} {dst} {weight:.6g}\n")
        else:
            for src, dst in zip(sources.tolist(), graph.col_index.tolist()):
                handle.write(f"{src} {dst}\n")


def load_edge_list_text(
    path: str | Path,
    directed: bool = True,
    num_vertices: int | None = None,
    name: str | None = None,
) -> CSRGraph:
    """Parse a ``src dst [weight]`` text file into a CSR graph.

    Raises :class:`GraphFormatError` on malformed lines, with the offending
    line number in the message.
    """
    sources: list[int] = []
    targets: list[int] = []
    weights: list[float] = []
    saw_weights = False
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            fields = stripped.split()
            if len(fields) < 2:
                raise GraphFormatError(
                    f"{path}:{line_number}: expected 'src dst [weight]', got {stripped!r}"
                )
            try:
                sources.append(int(fields[0]))
                targets.append(int(fields[1]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{line_number}: non-integer vertex id in {stripped!r}"
                ) from exc
            if len(fields) >= 3:
                saw_weights = True
                try:
                    weights.append(float(fields[2]))
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{line_number}: non-numeric weight in {stripped!r}"
                    ) from exc
            elif saw_weights:
                raise GraphFormatError(
                    f"{path}:{line_number}: missing weight column (earlier lines had one)"
                )
    edges = np.stack(
        [np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)], axis=1
    ) if sources else np.zeros((0, 2), dtype=np.int64)
    weight_array = np.asarray(weights, dtype=np.float32) if saw_weights else None
    inferred_name = name or Path(path).stem
    return from_edge_list(
        edges,
        num_vertices=num_vertices,
        weights=weight_array,
        directed=directed,
        name=inferred_name,
    )
