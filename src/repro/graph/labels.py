"""Random attribute initialization (Section 6.1.4 of the paper).

The evaluation initializes graphs "with random edge weights and vertex
labels"; these helpers do exactly that, deterministically from a seed.
They return **new** CSRGraph instances sharing the untouched arrays, never
mutating their input.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def assign_random_weights(
    graph: CSRGraph, low: float = 1.0, high: float = 4.0, seed: int = 0
) -> CSRGraph:
    """Attach uniform random static edge weights ``w*`` in ``[low, high)``.

    For undirected graphs the two arcs of one edge receive *the same*
    weight, as an undirected weighted edge requires: the weight is keyed on
    the unordered vertex pair.
    """
    if high <= low or low < 0:
        raise ValueError(f"need 0 <= low < high, got [{low}, {high})")
    n = graph.num_vertices
    sources = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    targets = graph.col_index.astype(np.int64)
    lo = np.minimum(sources, targets)
    hi = np.maximum(sources, targets)
    keys = lo * np.int64(n) + hi
    # Hash the unordered pair into a deterministic uniform.
    from repro.sampling.rng import splitmix64

    mixed = splitmix64(keys.astype(np.uint64) ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF))
    uniforms = (mixed >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    weights = (low + uniforms * (high - low)).astype(np.float32)
    return CSRGraph(
        row_index=graph.row_index,
        col_index=graph.col_index,
        edge_weights=weights,
        vertex_labels=graph.vertex_labels,
        edge_labels=graph.edge_labels,
        directed=graph.directed,
        name=graph.name,
    )


def assign_vertex_labels(graph: CSRGraph, n_labels: int, seed: int = 0) -> CSRGraph:
    """Attach uniform random vertex labels in ``[0, n_labels)``.

    MetaPath schemas are sequences of these labels.
    """
    if n_labels <= 0:
        raise ValueError(f"n_labels must be positive, got {n_labels}")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_labels, size=graph.num_vertices, dtype=np.int16)
    return CSRGraph(
        row_index=graph.row_index,
        col_index=graph.col_index,
        edge_weights=graph.edge_weights,
        vertex_labels=labels,
        edge_labels=graph.edge_labels,
        directed=graph.directed,
        name=graph.name,
    )


def assign_edge_labels(graph: CSRGraph, n_labels: int, seed: int = 0) -> CSRGraph:
    """Attach random relation labels in ``[0, n_labels)`` to every edge.

    As with weights, the two arcs of an undirected edge share one label.
    Used by MetaPath schemas expressed over edge relations rather than
    vertex labels.
    """
    if n_labels <= 0:
        raise ValueError(f"n_labels must be positive, got {n_labels}")
    n = graph.num_vertices
    sources = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    targets = graph.col_index.astype(np.int64)
    lo = np.minimum(sources, targets)
    hi = np.maximum(sources, targets)
    keys = lo * np.int64(n) + hi
    from repro.sampling.rng import splitmix64

    mixed = splitmix64(keys.astype(np.uint64) ^ np.uint64((seed * 0x9E3779B9 + 1) & 0xFFFFFFFFFFFFFFFF))
    labels = (mixed % np.uint64(n_labels)).astype(np.int16)
    return CSRGraph(
        row_index=graph.row_index,
        col_index=graph.col_index,
        edge_weights=graph.edge_weights,
        vertex_labels=graph.vertex_labels,
        edge_labels=labels,
        directed=graph.directed,
        name=graph.name,
    )
