"""Graph partitioning for the distributed deployment model.

The distributed LightRW model (paper future work) assigns each vertex to a
board; a walk step migrates whenever its successor lives elsewhere, so the
partitioner directly sets the network load.  Three strategies spanning the
classic trade-off:

* :func:`hash_partition` — stateless modulo assignment: perfect balance,
  worst locality (the KnightKing default and our distributed model's).
* :func:`range_partition` — contiguous id ranges: preserves whatever
  locality the vertex ordering has (strong after
  :func:`repro.graph.reorder.degree_sort_reorder` — hubs co-located).
* :func:`greedy_grow_partition` — BFS region growing with balance caps:
  a lightweight METIS stand-in that actively minimizes the edge cut.

:func:`partition_quality` reports the two numbers that matter — edge-cut
fraction (≈ walker-migration probability) and balance — so the
``future-distributed`` study can quantify how much a smarter partitioner
buys back from the network.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph


def _check(graph: CSRGraph, n_parts: int) -> None:
    if n_parts <= 0:
        raise ConfigError(f"n_parts must be positive, got {n_parts}")
    if graph.num_vertices == 0:
        raise ConfigError("cannot partition an empty graph")


def hash_partition(graph: CSRGraph, n_parts: int) -> np.ndarray:
    """Vertex id modulo ``n_parts`` (stateless, perfectly balanced)."""
    _check(graph, n_parts)
    return (np.arange(graph.num_vertices, dtype=np.int64) % n_parts).astype(np.int32)


def range_partition(graph: CSRGraph, n_parts: int) -> np.ndarray:
    """Contiguous, edge-balanced id ranges.

    Boundaries are placed so each part holds roughly ``|E| / n_parts``
    edges (vertex-count ranges would overload hub-dense prefixes).
    """
    _check(graph, n_parts)
    edge_cdf = graph.row_index[1:].astype(np.float64)
    total = max(edge_cdf[-1], 1.0)
    targets = total * (np.arange(1, n_parts) / n_parts)
    boundaries = np.searchsorted(edge_cdf, targets)
    assignment = np.zeros(graph.num_vertices, dtype=np.int32)
    previous = 0
    for part, boundary in enumerate(boundaries.tolist()):
        assignment[previous : boundary + 1] = part
        previous = boundary + 1
    assignment[previous:] = n_parts - 1
    return assignment


def greedy_grow_partition(graph: CSRGraph, n_parts: int, seed: int = 0) -> np.ndarray:
    """BFS region growing with an edge-budget cap per part.

    Seeds one frontier per part at a random unassigned vertex and grows it
    breadth-first until the part reaches its edge budget, then moves on —
    a cheap approximation of multilevel partitioners that keeps most
    neighborhoods on one part.
    """
    _check(graph, n_parts)
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    assignment = np.full(n, -1, dtype=np.int32)
    degrees = graph.degrees
    budget = max(float(graph.num_edges) / n_parts, 1.0)
    order = rng.permutation(n)
    cursor = 0

    for part in range(n_parts):
        # Find an unassigned seed.
        while cursor < n and assignment[order[cursor]] >= 0:
            cursor += 1
        if cursor >= n:
            break
        frontier: deque[int] = deque([int(order[cursor])])
        load = 0.0
        while frontier and load < budget:
            vertex = frontier.popleft()
            if assignment[vertex] >= 0:
                continue
            assignment[vertex] = part
            load += float(degrees[vertex])
            for neighbor in graph.neighbors(vertex).tolist():
                if assignment[neighbor] < 0:
                    frontier.append(int(neighbor))
    # Any leftovers (disconnected tails) round-robin across parts.
    leftovers = np.nonzero(assignment < 0)[0]
    assignment[leftovers] = (np.arange(leftovers.size) % n_parts).astype(np.int32)
    return assignment


@dataclass(frozen=True)
class PartitionQuality:
    """Edge cut and balance of one assignment."""

    n_parts: int
    edge_cut_fraction: float
    #: Largest part's edge share relative to the ideal 1/n (1.0 = perfect).
    balance: float

    def as_row(self) -> dict[str, float]:
        return {
            "parts": self.n_parts,
            "edge_cut": round(self.edge_cut_fraction, 3),
            "balance": round(self.balance, 2),
        }


def partition_quality(graph: CSRGraph, assignment: np.ndarray) -> PartitionQuality:
    """Edge-cut fraction and load balance of an assignment."""
    assignment = np.asarray(assignment)
    if assignment.shape != (graph.num_vertices,):
        raise ConfigError("assignment must have one entry per vertex")
    n_parts = int(assignment.max()) + 1 if assignment.size else 0
    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    src_part = assignment[sources]
    dst_part = assignment[graph.col_index.astype(np.int64)]
    cut = float((src_part != dst_part).mean()) if sources.size else 0.0
    edge_load = np.bincount(src_part, minlength=n_parts).astype(np.float64)
    ideal = max(edge_load.sum() / max(n_parts, 1), 1.0)
    balance = float(edge_load.max() / ideal) if n_parts else 1.0
    return PartitionQuality(
        n_parts=n_parts, edge_cut_fraction=cut, balance=balance
    )
