"""Degree-based graph reordering — the preprocessing alternative to DAC.

Section 5.1 of the paper contrasts the degree-aware cache with prior work
that *reorders* the graph offline (Balaji & Lucia sort vertices by degree
and reindex, so hot vertices share cache lines/sets).  The paper's
argument is that reordering pays an initialization cost and is
graph-processing-specific, while DAC adapts at runtime for free.

This module implements the alternative faithfully so the ablation
benchmark can quantify that trade-off: :func:`degree_sort_reorder`
produces the reindexed graph plus the vertex permutation, and
:func:`reordering_cost_model` charges the preprocessing the way the cited
work does (a sort plus two full passes over the edges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.builders import from_edge_list
from repro.graph.csr import CSRGraph


@dataclass
class ReorderedGraph:
    """A reindexed graph plus the maps between old and new vertex ids."""

    graph: CSRGraph
    old_to_new: np.ndarray
    new_to_old: np.ndarray

    def translate_starts(self, starts: np.ndarray) -> np.ndarray:
        """Map a query batch expressed in original ids."""
        return self.old_to_new[np.asarray(starts, dtype=np.int64)]

    def translate_paths_back(self, paths: np.ndarray) -> np.ndarray:
        """Map walked paths back to original ids (-1 padding preserved)."""
        out = paths.copy()
        valid = out >= 0
        out[valid] = self.new_to_old[out[valid]]
        return out


def degree_sort_reorder(graph: CSRGraph) -> ReorderedGraph:
    """Reindex vertices by descending degree (stable).

    After reordering, vertex 0 is the highest-degree hub; a direct-mapped
    cache over the *low* index range then holds exactly the hot set — the
    effect Balaji & Lucia's preprocessing buys.
    """
    order = np.argsort(-graph.degrees, kind="stable")
    new_to_old = order.astype(np.int64)
    old_to_new = np.empty_like(new_to_old)
    old_to_new[new_to_old] = np.arange(graph.num_vertices, dtype=np.int64)

    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    edges = np.stack(
        [old_to_new[sources], old_to_new[graph.col_index.astype(np.int64)]], axis=1
    )
    weights = graph.edge_weights
    labels = graph.edge_labels
    # The CSR already materializes both arcs of undirected edges, so the
    # rebuild must not symmetrize again; the directedness flag is restored
    # on the result.
    reordered = from_edge_list(
        edges,
        num_vertices=graph.num_vertices,
        weights=weights.copy() if weights is not None else None,
        edge_labels=labels.copy() if labels is not None else None,
        directed=True,
        name=f"{graph.name}-degsorted",
    )
    reordered.directed = graph.directed
    if graph.vertex_labels is not None:
        reordered.vertex_labels = graph.vertex_labels[new_to_old]
    return ReorderedGraph(graph=reordered, old_to_new=old_to_new, new_to_old=new_to_old)


def reordering_cost_model(
    graph: CSRGraph,
    sort_rate_keys_per_s: float = 120e6,
    edge_pass_bytes_per_s: float = 4.0e9,
) -> float:
    """Preprocessing seconds the reordering pays before the first query.

    A multi-threaded degree sort over V keys plus two passes over the edge
    array (remap + rebuild), at memory-bound rates typical of a server
    (the cited reordering works report seconds for billion-edge graphs,
    consistent with these constants).
    """
    sort_s = graph.num_vertices / sort_rate_keys_per_s
    passes_s = 2 * graph.num_edges * 8 / edge_pass_bytes_per_s
    return sort_s + passes_s


def hot_prefix_hit_ratio(graph: CSRGraph, cache_entries: int) -> float:
    """Hit ratio a reordered graph gets from caching the index prefix.

    With degree-sorted ids, pinning the first ``cache_entries`` vertices
    captures their full visit share (visits ~ degree).  This is the
    *upper bound* the preprocessing approach achieves, against which the
    runtime DAC is compared.
    """
    degrees = np.sort(graph.degrees.astype(np.float64))[::-1]
    total = degrees.sum()
    if total <= 0:
        return 1.0
    return float(degrees[: max(cache_entries, 0)].sum() / total)
