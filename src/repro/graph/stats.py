"""Graph statistics used by the evaluation and the analysis notebooks.

Mostly degree-distribution quantities: the paper's techniques (degree-aware
caching, dynamic bursts) are driven entirely by how skewed the degree
distribution is, so the harness reports these numbers alongside every
dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's out-degree distribution."""

    mean: float
    median: float
    maximum: int
    gini: float
    #: Expected degree of the vertex a stationary random walk stands on
    #: (sum d^2 / sum d) — the quantity that drives per-step cost.
    stationary_mean_degree: float
    #: Share of edges owned by the top 1% of vertices.
    top_percent_edge_share: float

    def as_row(self) -> dict[str, float]:
        return {
            "mean_degree": round(self.mean, 2),
            "median_degree": self.median,
            "max_degree": self.maximum,
            "gini": round(self.gini, 3),
            "stationary_mean_degree": round(self.stationary_mean_degree, 1),
            "top1pct_edge_share": round(self.top_percent_edge_share, 3),
        }


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute the degree summary (O(V log V))."""
    degrees = graph.degrees.astype(np.float64)
    if degrees.size == 0:
        return DegreeStats(0.0, 0.0, 0, 0.0, 0.0, 0.0)
    total = degrees.sum()
    sorted_degrees = np.sort(degrees)
    n = degrees.size
    if total > 0:
        # Gini coefficient of the degree distribution.
        cumulative = np.cumsum(sorted_degrees)
        gini = float((n + 1 - 2 * (cumulative / total).sum()) / n)
        stationary = float((degrees**2).sum() / total)
        top = max(n // 100, 1)
        top_share = float(sorted_degrees[-top:].sum() / total)
    else:
        gini = 0.0
        stationary = 0.0
        top_share = 0.0
    return DegreeStats(
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        maximum=int(degrees.max()),
        gini=gini,
        stationary_mean_degree=stationary,
        top_percent_edge_share=top_share,
    )


def degree_histogram(graph: CSRGraph, log_base: float = 2.0) -> list[tuple[str, int]]:
    """Log-bucketed degree histogram, ``[(bucket_label, count), ...]``."""
    degrees = graph.degrees
    rows: list[tuple[str, int]] = [("0", int((degrees == 0).sum()))]
    upper = 1
    while upper <= max(int(degrees.max()), 1):
        lower = upper
        upper = int(lower * log_base) if lower * log_base > lower else lower + 1
        count = int(((degrees >= lower) & (degrees < upper)).sum())
        rows.append((f"[{lower}, {upper})", count))
    return rows


def largest_component_fraction(graph: CSRGraph) -> float:
    """Share of vertices in the largest weakly connected component."""
    import networkx as nx

    if graph.num_vertices == 0:
        return 0.0
    nx_graph = graph.to_networkx().to_undirected()
    largest = max(nx.connected_components(nx_graph), key=len)
    return len(largest) / graph.num_vertices


def reuse_distance_profile(trace: np.ndarray, max_distance: int = 1 << 20) -> np.ndarray:
    """Reuse distances of a vertex access trace (for cache analysis).

    Returns, for each access after the first occurrence of its vertex, the
    number of *distinct* vertices accessed since the previous access to the
    same vertex (the classic LRU stack distance, capped at
    ``max_distance``).  Cold accesses are excluded.  O(T log T) via a
    Fenwick tree.
    """
    trace = np.asarray(trace, dtype=np.int64)
    last_position: dict[int, int] = {}
    size = trace.size + 1
    fenwick = np.zeros(size + 1, dtype=np.int64)

    def update(i: int, delta: int) -> None:
        i += 1
        while i <= size:
            fenwick[i] += delta
            i += i & (-i)

    def query(i: int) -> int:
        i += 1
        s = 0
        while i > 0:
            s += fenwick[i]
            i -= i & (-i)
        return int(s)

    distances: list[int] = []
    for position, vertex in enumerate(trace.tolist()):
        previous = last_position.get(vertex)
        if previous is not None:
            distinct = query(position - 1) - query(previous)
            distances.append(min(distinct, max_distance))
            update(previous, -1)
        update(position, 1)
        last_position[vertex] = position
    return np.asarray(distances, dtype=np.int64)
