"""Subgraph extraction.

Random-walk experiments frequently need a connected, reindexed subgraph
(walks strand on the fringes of disconnected synthetic graphs).  These
helpers extract induced subgraphs while carrying every per-vertex and
per-edge attribute along, and return the id mapping so results can be
translated back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph


@dataclass
class SubgraphResult:
    """An induced subgraph plus the mapping back to original ids."""

    graph: CSRGraph
    new_to_old: np.ndarray
    old_to_new: np.ndarray  # -1 for vertices not in the subgraph

    def translate_back(self, vertices: np.ndarray) -> np.ndarray:
        """Map subgraph vertex ids (possibly -1 padded) to original ids."""
        vertices = np.asarray(vertices)
        out = np.full(vertices.shape, -1, dtype=np.int64)
        valid = vertices >= 0
        out[valid] = self.new_to_old[vertices[valid]]
        return out


def induced_subgraph(graph: CSRGraph, vertices: np.ndarray) -> SubgraphResult:
    """The subgraph induced by ``vertices`` (attributes preserved).

    Vertices are reindexed in ascending original-id order; edges between
    kept vertices survive with their weights and labels.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size == 0:
        raise GraphFormatError("cannot induce a subgraph on zero vertices")
    if vertices.min() < 0 or vertices.max() >= graph.num_vertices:
        raise GraphFormatError("subgraph vertices out of range")

    old_to_new = np.full(graph.num_vertices, -1, dtype=np.int64)
    old_to_new[vertices] = np.arange(vertices.size, dtype=np.int64)

    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    targets = graph.col_index.astype(np.int64)
    keep = (old_to_new[sources] >= 0) & (old_to_new[targets] >= 0)

    # The original adjacency is sorted by (source, target); relabeling with
    # a monotone map keeps it sorted, so the CSR can be rebuilt directly.
    new_sources = old_to_new[sources[keep]]
    new_targets = old_to_new[targets[keep]]
    counts = np.bincount(new_sources, minlength=vertices.size)
    row_index = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(counts, out=row_index[1:])
    sub = CSRGraph(
        row_index=row_index,
        col_index=new_targets.astype(np.uint32),
        edge_weights=(
            graph.edge_weights[keep] if graph.edge_weights is not None else None
        ),
        vertex_labels=(
            graph.vertex_labels[vertices] if graph.vertex_labels is not None else None
        ),
        edge_labels=(
            graph.edge_labels[keep] if graph.edge_labels is not None else None
        ),
        directed=graph.directed,
        name=f"{graph.name}-sub{vertices.size}",
    )
    return SubgraphResult(graph=sub, new_to_old=vertices, old_to_new=old_to_new)


def largest_component_subgraph(graph: CSRGraph) -> SubgraphResult:
    """The induced subgraph of the largest weakly connected component.

    Uses a numpy BFS over the symmetrized adjacency (no networkx needed).
    """
    if graph.num_vertices == 0:
        raise GraphFormatError("empty graph has no components")
    n = graph.num_vertices
    # Build symmetric adjacency for weak connectivity.
    sources = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    targets = graph.col_index.astype(np.int64)
    sym_src = np.concatenate([sources, targets])
    sym_dst = np.concatenate([targets, sources])
    order = np.argsort(sym_src, kind="stable")
    sym_src, sym_dst = sym_src[order], sym_dst[order]
    starts = np.searchsorted(sym_src, np.arange(n))
    ends = np.searchsorted(sym_src, np.arange(n) + 1)

    component = np.full(n, -1, dtype=np.int64)
    current = 0
    best_root, best_size = 0, 0
    for root in range(n):
        if component[root] >= 0:
            continue
        frontier = [root]
        component[root] = current
        size = 0
        while frontier:
            next_frontier: list[int] = []
            for vertex in frontier:
                size += 1
                for position in range(starts[vertex], ends[vertex]):
                    neighbor = int(sym_dst[position])
                    if component[neighbor] < 0:
                        component[neighbor] = current
                        next_frontier.append(neighbor)
            frontier = next_frontier
        if size > best_size:
            best_root, best_size = current, size
        current += 1
    members = np.nonzero(component == best_root)[0]
    return induced_subgraph(graph, members)
