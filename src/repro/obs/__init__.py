"""Backend-agnostic observability: metrics, spans, manifests, exporters.

The runtime spine (planner -> batch scheduler -> backends) is
instrumented with this package:

* :class:`MetricsRegistry` — labeled counters, gauges and histograms
  (``dac.hits{backend=fpga-model,shard=2}``); the adapters translate each
  backend's native stats objects into the stable schema documented in
  ``docs/observability.md``.
* :func:`span` / :class:`Observer` — wall-clock span tracing with
  parent/child nesting around planning, per-shard execution and backend
  kernel phases.
* :mod:`repro.obs.export` — JSONL run records, Prometheus text and a
  Chrome trace-event (``chrome://tracing`` / Perfetto) converter that
  also serializes the cycle simulator's pipeline events.
* :class:`RunManifest` — provenance (seed, backend, plan, config hash,
  version, host) attached to every :class:`~repro.core.api.RunResult`.

Collection is opt-in and the disabled path is a no-op::

    from repro import LightRW, Node2VecWalk
    from repro.obs import Observer

    obs = Observer()
    result = engine.run(Node2VecWalk(p=2, q=0.5), 80, observer=obs)
    obs.metrics.get("dac.hit_ratio", backend="fpga-model")
"""

from repro.obs.adapters import (
    record_checkpoint,
    record_resumed_shard,
    record_retry,
    record_run,
    record_shard,
    record_shard_failure,
    record_watchdog_abort,
)
from repro.obs.export import (
    append_jsonl,
    chrome_trace,
    prometheus_text,
    read_jsonl,
    run_record,
    summarize_records,
    write_chrome_trace,
)
from repro.obs.logsetup import LOG_LEVELS, configure_logging
from repro.obs.manifest import RunManifest, build_manifest, config_fingerprint
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
    series_key,
)
from repro.obs.spans import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    SpanRecord,
    SpanRecorder,
    current_observer,
    span,
    use_observer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LOG_LEVELS",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NULL_REGISTRY",
    "NullMetricsRegistry",
    "NullObserver",
    "Observer",
    "RunManifest",
    "SpanRecord",
    "SpanRecorder",
    "append_jsonl",
    "build_manifest",
    "chrome_trace",
    "config_fingerprint",
    "configure_logging",
    "current_observer",
    "prometheus_text",
    "read_jsonl",
    "record_checkpoint",
    "record_resumed_shard",
    "record_retry",
    "record_run",
    "record_shard",
    "record_shard_failure",
    "record_watchdog_abort",
    "run_record",
    "series_key",
    "span",
    "summarize_records",
    "use_observer",
    "write_chrome_trace",
]
