"""Adapters: backend-native stats objects -> the shared metrics registry.

Each backend family already measures the paper's architectural
quantities in its own native breakdown object (the analytic model's
``FPGATimeBreakdown``, the cycle simulator's ``CycleSimResult`` /
``InstanceStats``, the CPU baseline's ``CPUTimeBreakdown``).  These
functions translate them into the registry under the **stable metric
names** documented in ``docs/observability.md``, so one schema covers
every backend:

================================  =============================================
series                            source (paper reference)
================================  =============================================
``dac.accesses/hits/misses``      degree-aware cache (Figure 11)
``dyb.bytes_valid/bytes_loaded``  dynamic burst engine (Figures 6/12)
``dram.bytes_read/requests``      DRAM channel traffic (Figure 6)
``pipeline.busy_cycles``          per-module activity (Figure 13)
``time.component_seconds``        :meth:`TimingBreakdown.components`
``cpu.llc_miss_ratio`` etc.       top-down profile (Table 1)
``run.*`` / ``query.*``           end-to-end figures (Figures 14/15)
================================  =============================================

Dispatch is duck-typed on the native object's attributes, so this module
depends on no backend package and custom backends participate by
exposing the same attribute names (or by writing to the registry
directly).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.api import RunResult
    from repro.runtime.scheduler import ShardFailure
    from repro.runtime.timing import TimingBreakdown

__all__ = [
    "record_checkpoint",
    "record_resumed_shard",
    "record_retry",
    "record_run",
    "record_shard",
    "record_shard_failure",
    "record_watchdog_abort",
]


def _family(native: Any) -> str:
    """Classify a backend-native stats object by its attribute surface."""
    if native is None:
        return "unknown"
    if hasattr(native, "instances"):
        return "fpga-cycle"
    if hasattr(native, "cache_accesses") and hasattr(native, "mem_cycles"):
        return "fpga-model"
    if hasattr(native, "llc_miss_ratio") and hasattr(native, "seq_time_s"):
        return "cpu"
    return "unknown"


# -- per-shard counters -------------------------------------------------------


def record_shard(
    metrics: MetricsRegistry,
    breakdown: "TimingBreakdown",
    *,
    backend: str,
    shard: int,
) -> None:
    """Record one shard's counters, labeled ``{backend=..., shard=...}``."""
    for component, seconds in breakdown.components().items():
        metrics.counter(
            "time.component_seconds", backend=backend, shard=shard,
            component=component,
        ).inc(seconds)
    native = breakdown.detail
    family = _family(native)
    if family == "fpga-model":
        _record_model_shard(metrics, native, backend, shard)
    elif family == "fpga-cycle":
        _record_cycle_shard(metrics, native, backend, shard)
    elif family == "cpu":
        _record_cpu_shard(metrics, native, backend, shard)


def _record_model_shard(
    metrics: MetricsRegistry, native: Any, backend: str, shard: int
) -> None:
    labels = {"backend": backend, "shard": shard}
    metrics.counter("dac.accesses", **labels).inc(native.cache_accesses)
    metrics.counter("dac.hits", **labels).inc(native.cache_hits)
    metrics.counter("dac.misses", **labels).inc(
        native.cache_accesses - native.cache_hits
    )
    metrics.counter("dyb.bytes_valid", **labels).inc(native.bytes_valid)
    metrics.counter("dyb.bytes_loaded", **labels).inc(native.bytes_loaded)
    metrics.counter("dram.bytes_read", **labels).inc(native.bytes_loaded)


def _record_cycle_shard(
    metrics: MetricsRegistry, native: Any, backend: str, shard: int
) -> None:
    for index, stats in enumerate(native.instances):
        labels = {"backend": backend, "shard": shard, "instance": index}
        metrics.counter("dac.accesses", **labels).inc(
            stats.cache_hits + stats.cache_misses
        )
        metrics.counter("dac.hits", **labels).inc(stats.cache_hits)
        metrics.counter("dac.misses", **labels).inc(stats.cache_misses)
        metrics.counter("dyb.bytes_valid", **labels).inc(stats.bytes_valid)
        metrics.counter("dyb.bytes_loaded", **labels).inc(stats.bytes_loaded)
        metrics.counter("dram.bytes_read", **labels).inc(stats.dram_bytes)
        metrics.counter("dram.requests", **labels).inc(stats.dram_requests)
        metrics.counter("dram.busy_cycles", **labels).inc(stats.dram_busy_cycles)
        for module, busy in stats.module_busy.items():
            metrics.counter(
                "pipeline.busy_cycles", module=module, **labels
            ).inc(busy)
        for fifo, stalled in getattr(stats, "fifo_stalls", {}).items():
            metrics.counter(
                "pipeline.fifo_stall_cycles", fifo=fifo, **labels
            ).inc(stalled)


def _record_cpu_shard(
    metrics: MetricsRegistry, native: Any, backend: str, shard: int
) -> None:
    labels = {"backend": backend, "shard": shard}
    metrics.counter("cpu.memory_seconds", **labels).inc(native.memory_time_s)
    metrics.counter("cpu.instr_seconds", **labels).inc(native.instr_time_s)


# -- fault-tolerance events ---------------------------------------------------


def record_retry(metrics: MetricsRegistry, *, backend: str, shard: int) -> None:
    """Count one shard retry attempt (``run.retries``)."""
    metrics.counter("run.retries", backend=backend, shard=shard).inc()


def record_shard_failure(
    metrics: MetricsRegistry, failure: "ShardFailure", *, backend: str
) -> None:
    """Count one shard that exhausted its attempts (``run.shard_failures``)."""
    metrics.counter(
        "run.shard_failures", backend=backend, shard=failure.shard,
        error=failure.error_type,
    ).inc()
    metrics.counter(
        "run.failed_queries", backend=backend, shard=failure.shard
    ).inc(failure.num_queries)


# -- durability events --------------------------------------------------------


def record_checkpoint(
    metrics: MetricsRegistry, *, backend: str, shard: int
) -> None:
    """Count one shard report persisted to disk (``run.checkpoints``)."""
    metrics.counter("run.checkpoints", backend=backend, shard=shard).inc()


def record_resumed_shard(
    metrics: MetricsRegistry, *, backend: str, shard: int
) -> None:
    """Count one shard restored from a checkpoint (``run.resumed_shards``)."""
    metrics.counter("run.resumed_shards", backend=backend, shard=shard).inc()


def record_watchdog_abort(metrics: MetricsRegistry, *, cycle: int) -> None:
    """Count one simulator watchdog trip (``sim.watchdog_aborts``)."""
    metrics.counter("sim.watchdog_aborts").inc()
    metrics.gauge("sim.watchdog_abort_cycle").set(cycle)


# -- batch-level gauges and distributions -------------------------------------


def record_run(metrics: MetricsRegistry, result: "RunResult") -> None:
    """Record the merged run's ratio/throughput gauges and latency histogram.

    Per-shard event *counts* are recorded by :func:`record_shard`; this
    records the derived quantities that only make sense over the whole
    batch, labeled ``{backend=...}``.
    """
    backend = result.backend
    metrics.gauge("run.kernel_seconds", backend=backend).set(result.kernel_s)
    metrics.gauge("run.setup_seconds", backend=backend).set(result.setup_s)
    metrics.gauge("run.pcie_seconds", backend=backend).set(result.pcie_s)
    metrics.gauge("run.steps_per_second", backend=backend).set(
        result.steps_per_second
    )
    metrics.counter("run.total_steps", backend=backend).inc(result.total_steps)
    metrics.counter("run.queries", backend=backend).inc(result.num_queries)
    metrics.gauge("run.failed_shards", backend=backend).set(len(result.failures))
    if result.query_latency_s is not None:
        metrics.histogram(
            "query.latency_seconds", backend=backend
        ).observe_many(result.query_latency_s.tolist())

    native = result.breakdown.detail
    family = _family(native)
    if family == "fpga-model":
        metrics.gauge("dac.hit_ratio", backend=backend).set(native.cache_hit_ratio)
        metrics.gauge("dyb.valid_ratio", backend=backend).set(native.valid_ratio)
        metrics.gauge("dram.bandwidth_gbps", backend=backend).set(
            native.achieved_bandwidth_gbps
        )
        kernel = max(native.kernel_cycles, 1.0)
        denom = kernel * max(len(native.mem_cycles), 1)
        for module, cycles in (
            ("memory", float(native.mem_cycles.sum())),
            ("sampler", float(native.sampler_cycles.sum())),
            ("controller", float(native.controller_cycles.sum())),
        ):
            metrics.gauge(
                "pipeline.busy_fraction", backend=backend, module=module
            ).set(cycles / denom)
    elif family == "fpga-cycle":
        hits = sum(s.cache_hits for s in native.instances)
        misses = sum(s.cache_misses for s in native.instances)
        valid = sum(s.bytes_valid for s in native.instances)
        loaded = sum(s.bytes_loaded for s in native.instances)
        metrics.gauge("dac.hit_ratio", backend=backend).set(
            hits / (hits + misses) if hits + misses else 0.0
        )
        metrics.gauge("dyb.valid_ratio", backend=backend).set(
            valid / loaded if loaded else 1.0
        )
        for module, fraction in native.utilization_report().items():
            metrics.gauge(
                "pipeline.busy_fraction", backend=backend, module=module
            ).set(fraction)
    elif family == "cpu":
        from repro.cpu.profiling import profile_session

        profile = profile_session(native, application=result.algorithm, graph_name="")
        metrics.gauge("cpu.llc_miss_ratio", backend=backend).set(
            profile.llc_miss_ratio
        )
        metrics.gauge("cpu.memory_bound", backend=backend).set(profile.memory_bound)
        metrics.gauge("cpu.retiring", backend=backend).set(profile.retiring)
