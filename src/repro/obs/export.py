"""Telemetry exporters: JSONL run records, Prometheus text, Chrome traces.

Three output formats cover the common consumers:

* :func:`run_record` / :func:`append_jsonl` — one self-contained JSON
  object per run (manifest + metrics snapshot + spans), appended to a
  ``.jsonl`` file.  ``repro obs summarize`` reads these back.
* :func:`prometheus_text` — the registry in Prometheus exposition format
  (metric names have dots rewritten to underscores), for scraping or
  diffing with standard tooling.
* :func:`chrome_trace` — a ``chrome://tracing`` / Perfetto trace-event
  JSON combining runtime spans (wall-clock) and the cycle simulator's
  :class:`~repro.fpga.sim.trace.PipelineTracer` events (cycles converted
  to microseconds at the configured kernel frequency), so one file shows
  the planner, every scheduler shard and the pipeline's internal activity
  on a shared timeline.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.artifacts import (
    atomic_write_text,
    checked_record,
    quarantine,
    record_checksum_ok,
)
from repro.errors import ArtifactCorruptionError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import Observer, SpanRecord

logger = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.api import RunResult
    from repro.fpga.accelerator import CycleSimResult
    from repro.fpga.sim.trace import PipelineTracer

__all__ = [
    "append_jsonl",
    "chrome_trace",
    "prometheus_from_snapshot",
    "prometheus_text",
    "read_jsonl",
    "run_record",
    "summarize_records",
    "write_chrome_trace",
]


# -- JSONL run records --------------------------------------------------------


def run_record(result: "RunResult", observer: Observer | None = None) -> dict:
    """One JSON-ready record describing a finished run."""
    record: dict[str, Any] = {
        "manifest": result.manifest.as_dict() if result.manifest else None,
        "summary": {
            "backend": result.backend,
            "algorithm": result.algorithm,
            "num_queries": result.num_queries,
            "executed_queries": result.executed_queries,
            "total_steps": result.total_steps,
            "kernel_s": result.kernel_s,
            "pcie_s": result.pcie_s,
            "setup_s": result.setup_s,
            "steps_per_second": result.steps_per_second,
            "strict": result.strict,
            "failures": [f.as_dict() for f in result.failures],
        },
    }
    if observer is not None and observer.enabled:
        record["metrics"] = observer.metrics.snapshot()
        record["spans"] = [s.as_dict() for s in observer.spans.finished()]
    return record


def append_jsonl(path: str | Path, record: dict) -> Path:
    """Append one record as a single checksummed line of JSON.

    JSONL appends cannot be made atomic by rename, so integrity is per
    record: each line embeds the digest of its own body and the append is
    fsynced.  A crash can therefore only ever tear the *final* line —
    which :func:`read_jsonl` detects and skips.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(checked_record(record), default=str) + "\n"
    with path.open("a") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
    return path


def _corrupt_jsonl(path: Path, reason: str) -> None:
    moved = quarantine(path)
    where = f" (quarantined to {moved})" if moved else ""
    raise ArtifactCorruptionError(
        f"{path}: {reason}{where}", path=path, quarantine_path=moved
    )


def read_jsonl(path: str | Path) -> list[dict]:
    """Read and verify JSONL records (``checksum`` keys stripped).

    An unparseable *final* line is the expected signature of a crash
    mid-append and is skipped with a warning; an unparseable line or a
    checksum mismatch anywhere else means the file was damaged after
    writing, so it is quarantined and raised as
    :class:`~repro.errors.ArtifactCorruptionError`.  Records written
    before checksums existed load unverified.
    """
    path = Path(path)
    lines = path.read_text().splitlines()
    records: list[dict] = []
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines):
                logger.warning(
                    "%s:%d: skipping torn final record (interrupted append)",
                    path, number,
                )
                continue
            _corrupt_jsonl(path, f"line {number}: unparseable JSON mid-file")
        if not isinstance(record, dict):
            _corrupt_jsonl(path, f"line {number}: record is not a JSON object")
        if record_checksum_ok(record) is False:
            _corrupt_jsonl(path, f"line {number}: record checksum mismatch")
        records.append({k: v for k, v in record.items() if k != "checksum"})
    return records


def summarize_records(records: Iterable[dict]) -> str:
    """Human-readable digest of JSONL run records (``repro obs summarize``)."""
    lines: list[str] = []
    for index, record in enumerate(records):
        manifest = record.get("manifest") or {}
        summary = record.get("summary") or {}
        header = (
            f"run {index}: {manifest.get('backend', summary.get('backend', '?'))}"
            f" {manifest.get('algorithm', summary.get('algorithm', '?'))}"
            f" n_steps={manifest.get('n_steps', '?')}"
            f" queries={summary.get('num_queries', '?')}"
            f" seed={manifest.get('seed', '?')}"
        )
        lines.append(header)
        if manifest:
            lines.append(
                f"  config={manifest.get('config_hash')}"
                f" version={manifest.get('package_version')}"
                f" host={manifest.get('host')}"
            )
        if summary:
            lines.append(
                f"  kernel={summary.get('kernel_s', 0.0):.6g}s"
                f" steps/s={summary.get('steps_per_second', 0.0):.4g}"
                f" pcie={summary.get('pcie_s', 0.0):.6g}s"
            )
        failed = (summary.get("failures") if summary else None) or []
        if failed:
            lines.append(
                "  failures: "
                + ", ".join(
                    f"shard {f.get('shard')} ({f.get('error_type')}, "
                    f"{f.get('attempts')} attempt(s))"
                    for f in failed
                )
            )
        metrics = record.get("metrics") or {}
        interesting = [
            key for key in sorted(metrics)
            if key.split("{")[0] in (
                "dac.hit_ratio", "dyb.valid_ratio", "dram.bandwidth_gbps",
                "cpu.llc_miss_ratio", "cpu.memory_bound", "cpu.retiring",
            )
        ]
        for key in interesting:
            lines.append(f"  {key} = {metrics[key]:.4g}")
        spans = record.get("spans") or []
        if spans:
            lines.append(f"  spans: {len(spans)} recorded")
    return "\n".join(lines) if lines else "(no records)"


# -- Prometheus text ----------------------------------------------------------


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_prom_name(str(k))}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus exposition format."""
    by_name: dict[str, list] = {}
    for instrument in registry.series():
        by_name.setdefault(instrument.name, []).append(instrument)
    lines: list[str] = []
    for name in sorted(by_name):
        series = by_name[name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} {series[0].kind}")
        for instrument in series:
            if isinstance(instrument, Histogram):
                cumulative = 0
                for bound, count in zip(instrument.buckets, instrument.counts):
                    cumulative += count
                    labels = dict(instrument.labels, le=repr(bound))
                    lines.append(f"{prom}_bucket{_prom_labels(labels)} {cumulative}")
                labels = dict(instrument.labels, le="+Inf")
                lines.append(
                    f"{prom}_bucket{_prom_labels(labels)} {instrument.count}"
                )
                base = _prom_labels(instrument.labels)
                lines.append(f"{prom}_sum{base} {instrument.sum}")
                lines.append(f"{prom}_count{base} {instrument.count}")
            else:
                lines.append(
                    f"{prom}{_prom_labels(instrument.labels)} {instrument.value}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def _parse_series_key(key: str) -> tuple[str, dict]:
    """Invert :func:`repro.obs.metrics.series_key`."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels = {}
    for pair in rest.rstrip("}").split(","):
        if pair:
            k, _, v = pair.partition("=")
            labels[k] = v
    return name, labels


def prometheus_from_snapshot(snapshot: dict) -> str:
    """Prometheus text from a JSONL record's ``metrics`` snapshot.

    Instrument kinds are not preserved in snapshots, so scalar series are
    emitted untyped and histograms keep their bucket structure.
    """
    lines: list[str] = []
    for key in sorted(snapshot):
        name, labels = _parse_series_key(key)
        prom = _prom_name(name)
        value = snapshot[key]
        if isinstance(value, dict) and value.get("kind") == "histogram":
            cumulative = 0
            for bound, count in zip(value["buckets"], value["counts"]):
                cumulative += count
                lines.append(
                    f"{prom}_bucket{_prom_labels(dict(labels, le=repr(bound)))}"
                    f" {cumulative}"
                )
            lines.append(
                f"{prom}_bucket{_prom_labels(dict(labels, le='+Inf'))}"
                f" {value['count']}"
            )
            lines.append(f"{prom}_sum{_prom_labels(labels)} {value['sum']}")
            lines.append(f"{prom}_count{_prom_labels(labels)} {value['count']}")
        else:
            lines.append(f"{prom}{_prom_labels(labels)} {value}")
    return "\n".join(lines) + "\n" if lines else ""


# -- Chrome trace events ------------------------------------------------------

#: Synthetic process ids for the two timelines in the combined trace.
_PID_RUNTIME = 1
_PID_PIPELINE = 2


def _span_events(spans: Sequence[SpanRecord]) -> list[dict]:
    threads = {}
    events: list[dict] = []
    for record in spans:
        tid = threads.setdefault(record.thread, len(threads) + 1)
        events.append(
            {
                "name": record.name,
                "cat": "runtime",
                "ph": "X",
                "ts": record.start_s * 1e6,
                "dur": record.duration_s * 1e6,
                "pid": _PID_RUNTIME,
                "tid": tid,
                "args": record.attrs,
            }
        )
    for thread, tid in threads.items():
        events.append(
            {
                "ph": "M", "name": "thread_name", "pid": _PID_RUNTIME,
                "tid": tid, "args": {"name": thread},
            }
        )
    return events


def _tracer_events(
    tracer: "PipelineTracer", frequency_hz: float, tids: dict[str, int]
) -> list[dict]:
    events: list[dict] = []
    for entry in tracer.events():
        tid = tids.setdefault(entry.module, len(tids) + 1)
        events.append(
            {
                "name": entry.event,
                "cat": "pipeline",
                "ph": "i",
                "s": "t",
                "ts": entry.cycle / frequency_hz * 1e6,
                "pid": _PID_PIPELINE,
                "tid": tid,
                "args": dict(entry.info),
            }
        )
    return events


def _module_summary_events(
    result: "CycleSimResult", frequency_hz: float, tids: dict[str, int]
) -> list[dict]:
    """One ``X`` span per pipeline module per instance: its busy share.

    Only some modules emit discrete tracer events; the summary spans
    guarantee every module of every active instance appears on the
    timeline with its busy-cycle count and utilization.
    """
    events: list[dict] = []
    for index, stats in enumerate(result.instances):
        if not stats.cycles:
            continue
        utilization = stats.utilization()
        for module, busy in stats.module_busy.items():
            name = f"inst{index}.{module}"
            tid = tids.setdefault(name, len(tids) + 1)
            events.append(
                {
                    "name": f"{module} busy",
                    "cat": "pipeline-summary",
                    "ph": "X",
                    "ts": 0.0,
                    "dur": stats.cycles / frequency_hz * 1e6,
                    "pid": _PID_PIPELINE,
                    "tid": tid,
                    "args": {
                        "busy_cycles": busy,
                        "busy_fraction": utilization.get(module, 0.0),
                        "instance": index,
                    },
                }
            )
    return events


def chrome_trace(
    spans: Sequence[SpanRecord] | None = None,
    tracer: "PipelineTracer | None" = None,
    cycle_result: "CycleSimResult | None" = None,
    frequency_hz: float = 300e6,
) -> dict:
    """Build a Chrome trace-event JSON object from any telemetry sources.

    Runtime spans land on process 1 (one track per thread); pipeline
    tracer events and per-module busy summaries on process 2 (one track
    per module).  Events are sorted by timestamp so the file also reads
    sensibly as a log.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}
    if spans:
        events.extend(_span_events(spans))
    if cycle_result is not None:
        events.extend(_module_summary_events(cycle_result, frequency_hz, tids))
    if tracer is not None:
        events.extend(_tracer_events(tracer, frequency_hz, tids))
    for module, tid in tids.items():
        events.append(
            {
                "ph": "M", "name": "thread_name", "pid": _PID_PIPELINE,
                "tid": tid, "args": {"name": module},
            }
        )
    metadata = [e for e in events if e["ph"] == "M"]
    timed = sorted(
        (e for e in events if e["ph"] != "M"), key=lambda e: e["ts"]
    )
    names = {}
    names[_PID_RUNTIME] = "runtime (wall clock)"
    names[_PID_PIPELINE] = f"pipeline (cycles @ {frequency_hz / 1e6:g} MHz)"
    process_meta = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": label}}
        for pid, label in names.items()
    ]
    return {
        "traceEvents": process_meta + metadata + timed,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    path: str | Path,
    spans: Sequence[SpanRecord] | None = None,
    tracer: "PipelineTracer | None" = None,
    cycle_result: "CycleSimResult | None" = None,
    frequency_hz: float = 300e6,
) -> Path:
    """Serialize :func:`chrome_trace` to ``path`` (atomic write)."""
    trace = chrome_trace(
        spans=spans, tracer=tracer, cycle_result=cycle_result,
        frequency_hz=frequency_hz,
    )
    return atomic_write_text(path, json.dumps(trace, default=str))
