"""Structured logging wiring for the CLI entry points.

The library modules log through standard per-module loggers
(``logging.getLogger(__name__)``) and never configure handlers —
embedding applications keep full control.  The CLIs call
:func:`configure_logging` once, driven by their ``--log-level`` flag.
"""

from __future__ import annotations

import logging

__all__ = ["configure_logging", "LOG_LEVELS"]

LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def configure_logging(level: str | None) -> None:
    """Install a root handler at ``level`` (no-op when ``level`` is None)."""
    if level is None:
        return
    if level.lower() not in LOG_LEVELS:
        raise ValueError(f"log level must be one of {LOG_LEVELS}, got {level!r}")
    logging.basicConfig(
        level=getattr(logging, level.upper()), format=_FORMAT, force=True
    )
