"""Run manifests: provenance for every :class:`~repro.core.api.RunResult`.

A manifest answers "what exactly produced these numbers?" — the seed,
backend, plan shape, a stable fingerprint of the accelerator
configuration, the package version and the host — so a metrics record
written today can be compared against one written on another machine six
months from now.  Manifests are cheap (a handful of scalars) and are
attached to every result, observed or not.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.plan import ExecutionPlan
    from repro.runtime.scheduler import ShardFailure

__all__ = ["RunManifest", "build_manifest", "config_fingerprint"]


def _jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_fingerprint(config: Any) -> str:
    """Short stable hash of a configuration dataclass.

    Two runs share a fingerprint iff every config field (including nested
    dataclasses such as the burst strategy and DRAM timings) is equal.
    """
    payload = json.dumps(_jsonable(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one executed query batch."""

    backend: str
    algorithm: str
    n_steps: int
    num_queries: int
    sampled_queries: int
    shards: int
    seed: int
    graph: str
    config_hash: str
    package_version: str
    host: str
    python_version: str
    created_unix: float = field(default_factory=time.time)
    #: Shard failures of a degraded run, as JSON-ready dicts (shard index,
    #: query-id range, error type, attempts); empty for healthy runs.
    failures: tuple = ()

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def build_manifest(
    plan: "ExecutionPlan",
    *,
    seed: int,
    config: Any,
    graph_name: str,
    failures: "Sequence[ShardFailure]" = (),
) -> RunManifest:
    """Assemble the manifest for one planned run."""
    from repro import __version__

    return RunManifest(
        backend=plan.backend,
        algorithm=plan.algorithm.name,
        n_steps=plan.n_steps,
        num_queries=plan.total_queries,
        sampled_queries=plan.num_sampled,
        shards=plan.shard_count,
        seed=int(seed),
        graph=graph_name,
        config_hash=config_fingerprint(config),
        package_version=__version__,
        host=platform.node(),
        python_version=platform.python_version(),
        failures=tuple(f.as_dict() for f in failures),
    )
