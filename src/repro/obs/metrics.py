"""Labeled metrics registry: counters, gauges and histograms.

Every backend family produces the paper's architectural quantities — DAC
hit ratios (Figure 11), DYB valid-data ratios (Figures 6/12), per-module
pipeline occupancy (Figure 13), DRAM traffic, ThunderRW's top-down
profile (Table 1) — but historically kept them in backend-native objects
with no common schema.  A :class:`MetricsRegistry` is the shared sink:
series are identified by a metric name plus a label set
(``dac.hits{backend=fpga-model,shard=2}``), and the adapters in
:mod:`repro.obs.adapters` translate the native stats objects into it
under the stable names documented in ``docs/observability.md``.

Collection is opt-in.  When observability is off the runtime uses
:data:`NULL_REGISTRY`, whose instruments are shared do-nothing objects —
the guarded no-op path adds no measurable overhead to a run.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullMetricsRegistry",
    "series_key",
    "DEFAULT_LATENCY_BUCKETS_S",
]

#: Histogram buckets (upper bounds, seconds) sized for modeled per-query
#: walk latencies: sub-microsecond cache hits up to multi-second batches.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0
)


def series_key(name: str, labels: Mapping[str, object] | None = None) -> str:
    """Canonical series id: ``name`` or ``name{k=v,...}`` with sorted keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Instrument:
    """Common identity of one labeled series."""

    kind = "instrument"
    __slots__ = ("name", "labels", "_lock")

    def __init__(self, name: str, labels: Mapping[str, object]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)


class Counter(_Instrument):
    """Monotonically increasing count (events, bytes, cycles)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: Mapping[str, object]) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        with self._lock:
            self.value += amount


class Gauge(_Instrument):
    """Last-written value (ratios, fractions, throughput)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: Mapping[str, object]) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram(_Instrument):
    """Bucketed distribution with total sum and count.

    ``buckets`` are inclusive upper bounds; an implicit ``+inf`` bucket
    catches the tail, so ``counts`` has ``len(buckets) + 1`` entries.
    """

    kind = "histogram"
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, object],
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        super().__init__(name, labels)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram buckets must be sorted, got {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(float(value))


class MetricsRegistry:
    """Get-or-create store of labeled instruments.

    Instruments are created on first use and are stable objects — hot
    paths can hold a reference instead of re-resolving the label set.
    The registry is safe to populate from the batch scheduler's worker
    threads.
    """

    def __init__(self) -> None:
        self._series: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    # -- instrument accessors ------------------------------------------------

    def _get(self, cls: type, name: str, labels: Mapping[str, object], **kwargs):
        key = series_key(name, labels)
        with self._lock:
            found = self._series.get(key)
            if found is None:
                found = cls(name, labels, **kwargs)
                self._series[key] = found
            elif not isinstance(found, cls):
                raise ValueError(
                    f"series {key!r} is a {found.kind}, not a {cls.kind}"
                )
            return found

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        **labels: object,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- read side -----------------------------------------------------------

    def series(self) -> list[_Instrument]:
        with self._lock:
            return list(self._series.values())

    def get(self, name: str, **labels: object) -> float | None:
        """Value of one counter/gauge series, or None if absent."""
        found = self._series.get(series_key(name, labels))
        if found is None or isinstance(found, Histogram):
            return None
        return found.value

    def total(self, name: str) -> float:
        """Sum of every counter series sharing ``name`` across label sets."""
        return sum(
            s.value
            for s in self.series()
            if s.name == name and isinstance(s, Counter)
        )

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self) -> dict:
        """JSON-ready view: ``{series_key: value-or-histogram-dict}``."""
        out: dict[str, object] = {}
        for instrument in self.series():
            if isinstance(instrument, Histogram):
                out[instrument.key] = {
                    "kind": "histogram",
                    "buckets": list(instrument.buckets),
                    "counts": list(instrument.counts),
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
            else:
                out[instrument.key] = instrument.value
        return out

    # -- cross-process transfer ----------------------------------------------

    def export_state(self) -> list[dict]:
        """Structured dump of every series for :meth:`merge_state`.

        The batch scheduler's process mode runs each shard under a fresh
        worker-side registry; this is the picklable wire format the
        worker sends back for the parent registry to fold in.
        """
        out: list[dict] = []
        for instrument in self.series():
            entry: dict[str, object] = {
                "kind": instrument.kind,
                "name": instrument.name,
                "labels": dict(instrument.labels),
            }
            if isinstance(instrument, Histogram):
                entry.update(
                    buckets=list(instrument.buckets),
                    counts=list(instrument.counts),
                    sum=instrument.sum,
                    count=instrument.count,
                )
            else:
                entry["value"] = instrument.value
            out.append(entry)
        return out

    def merge_state(self, entries: Iterable[dict]) -> None:
        """Fold an :meth:`export_state` dump into this registry.

        Counters accumulate, gauges take the incoming value (a worker's
        gauge is the freshest write for its label set) and histograms
        merge bucket-wise — mismatched bucket layouts are a
        :class:`ValueError`, not a silent mis-merge.
        """
        for entry in entries:
            kind = entry["kind"]
            name = entry["name"]
            labels = entry["labels"]
            if kind == "counter":
                self.counter(name, **labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(name, **labels).set(entry["value"])
            elif kind == "histogram":
                buckets = tuple(float(b) for b in entry["buckets"])
                hist = self.histogram(name, buckets=buckets, **labels)
                if not isinstance(hist, Histogram):  # null registry
                    continue
                with hist._lock:
                    if hist.buckets != buckets:
                        raise ValueError(
                            f"histogram {hist.key!r} bucket mismatch: "
                            f"{hist.buckets} vs {buckets}"
                        )
                    hist.counts = [
                        a + b for a, b in zip(hist.counts, entry["counts"])
                    ]
                    hist.sum += entry["sum"]
                    hist.count += entry["count"]
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry(MetricsRegistry):
    """Allocation-free registry used when observability is disabled."""

    def counter(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_GAUGE

    def histogram(self, name, buckets=DEFAULT_LATENCY_BUCKETS_S, **labels):  # type: ignore[override]
        return _NULL_HISTOGRAM


#: Shared disabled registry (the observer default).
NULL_REGISTRY = NullMetricsRegistry()
