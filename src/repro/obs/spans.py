"""Span tracing for the runtime spine.

A *span* is one named phase of a run — planning, a scheduler shard, a
backend's kernel — with a wall-clock duration, arbitrary attributes and
parent/child nesting::

    with span("plan", backend="fpga-model"):
        ...
    with span("shard", shard=2):
        with span("kernel"):
            ...

Spans nest per thread (the batch scheduler executes shards on worker
threads, and each worker's spans form their own chain), and every span
records its thread name so the Chrome-trace exporter can lay shards out
on separate tracks.

The module-level :func:`span` helper records into the *current observer*
(:func:`current_observer`), a context-variable the facade sets for the
duration of a run via :func:`use_observer`.  With no observer installed
it returns a shared ``nullcontext`` — tracing off is a dictionary lookup
and nothing else.
"""

from __future__ import annotations

import contextlib
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

__all__ = [
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "SpanRecord",
    "SpanRecorder",
    "current_observer",
    "span",
    "use_observer",
]


@dataclass
class SpanRecord:
    """One finished span."""

    span_id: int
    name: str
    #: Seconds since the recorder's epoch (monotonic clock).
    start_s: float
    duration_s: float
    parent_id: int | None
    thread: str
    attrs: dict = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "attrs": self.attrs,
        }


class SpanRecorder:
    """Collects finished :class:`SpanRecord`\\ s with per-thread nesting."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._finished: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self._stack = threading.local()

    def _current_stack(self) -> list[int]:
        stack = getattr(self._stack, "ids", None)
        if stack is None:
            stack = self._stack.ids = []
        return stack

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._current_stack()
        parent_id = stack[-1] if stack else None
        record = SpanRecord(
            span_id=span_id,
            name=name,
            start_s=time.perf_counter() - self._epoch,
            duration_s=0.0,
            parent_id=parent_id,
            thread=threading.current_thread().name,
            attrs=dict(attrs),
        )
        stack.append(span_id)
        try:
            yield record
        finally:
            stack.pop()
            record.duration_s = (time.perf_counter() - self._epoch) - record.start_s
            with self._lock:
                self._finished.append(record)

    def finished(self) -> list[SpanRecord]:
        """Finished spans in completion order (children before parents)."""
        with self._lock:
            return list(self._finished)

    def adopt(
        self,
        records: list[SpanRecord],
        *,
        parent_id: int | None = None,
        offset_s: float = 0.0,
        thread: str | None = None,
    ) -> None:
        """Graft spans recorded by another recorder into this one.

        The batch scheduler's process mode collects each worker's
        finished spans and re-parents them here: every record gets a
        fresh id from this recorder's sequence, roots hang under
        ``parent_id`` (the parent-side shard span), and ``offset_s``
        shifts the worker's epoch-relative starts onto this recorder's
        timeline.  Internal parent/child links are preserved, and the
        appended records stay in the worker's completion order so
        :meth:`finished` keeps its children-before-parents invariant.
        """
        with self._lock:
            idmap: dict[int, int] = {}
            # Ids were handed out at span *creation* (parents before
            # children), so mapping in old-id order keeps the new ids in
            # the same creation order.
            for record in sorted(records, key=lambda r: r.span_id):
                idmap[record.span_id] = self._next_id
                self._next_id += 1
            for record in records:
                self._finished.append(
                    SpanRecord(
                        span_id=idmap[record.span_id],
                        name=record.name,
                        start_s=record.start_s + offset_s,
                        duration_s=record.duration_s,
                        parent_id=idmap.get(record.parent_id, parent_id),
                        thread=thread if thread is not None else record.thread,
                        attrs=dict(record.attrs),
                    )
                )

    def find(self, name: str) -> list[SpanRecord]:
        return [s for s in self.finished() if s.name == name]

    def children(self, parent: SpanRecord) -> list[SpanRecord]:
        return [s for s in self.finished() if s.parent_id == parent.span_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


class Observer:
    """One run's telemetry sinks: a metrics registry plus a span recorder.

    Pass an ``Observer`` to :class:`repro.core.api.LightRW` (or install one
    with :func:`use_observer`) to collect; the default
    :data:`NULL_OBSERVER` collects nothing at effectively zero cost.
    """

    enabled = True

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        spans: SpanRecorder | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanRecorder()

    def span(self, name: str, **attrs: Any):
        return self.spans.span(name, **attrs)


_NULL_CONTEXT = contextlib.nullcontext()


class NullObserver(Observer):
    """Disabled observer — every operation is a shared no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(metrics=NULL_REGISTRY, spans=SpanRecorder())

    def span(self, name: str, **attrs: Any):
        return _NULL_CONTEXT


#: The default observer: collects nothing.
NULL_OBSERVER = NullObserver()

_CURRENT: ContextVar[Observer] = ContextVar("repro_observer", default=NULL_OBSERVER)


def current_observer() -> Observer:
    """The observer in effect for this thread/context."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_observer(observer: Observer | None) -> Iterator[Observer]:
    """Install ``observer`` as current for the duration of the block.

    ``None`` keeps whatever is already installed (so callers can thread an
    optional observer without branching).
    """
    if observer is None:
        yield _CURRENT.get()
        return
    token = _CURRENT.set(observer)
    try:
        yield observer
    finally:
        _CURRENT.reset(token)


def span(name: str, **attrs: Any):
    """Open a span on the current observer (no-op when observability is off)."""
    return _CURRENT.get().span(name, **attrs)
