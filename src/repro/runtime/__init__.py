"""The pluggable runtime layer: registry, planner, scheduler.

Every caller — the :class:`repro.core.api.LightRW` facade, the CLI and
the bench runner — executes query batches through this package:

1. the **backend registry** (:mod:`repro.runtime.backends`) maps backend
   names to :class:`Backend` classes; new engines plug in with the
   :func:`register_backend` decorator;
2. the **query planner** (:mod:`repro.runtime.plan`) validates a request
   against the backend's declared capabilities and lays out the sharded
   :class:`ExecutionPlan`;
3. the **batch scheduler** (:mod:`repro.runtime.scheduler`) executes the
   shards (sequentially or via a worker pool) and merges the per-shard
   :class:`BackendReport`\\ s — paths, latencies and the unified
   :class:`TimingBreakdown` hierarchy.  Shards are fault-isolated: a
   failed shard becomes a structured :class:`ShardFailure` under the
   scheduler's :class:`RetryPolicy` (attempts, deterministic backoff,
   per-shard timeout), and the ``strict`` flag chooses between
   raise-on-any-failure and a partial :class:`BatchOutcome` merged over
   the survivors;
4. the **fault-injection wrapper** (:mod:`repro.runtime.faults`) makes
   every failure path deterministically testable by failing or delaying
   chosen shards for chosen attempts.

Identical seeds produce identical walks across backends and shard
layouts, because per-query randomness is keyed by global query id —
which is also why a retried shard reproduces byte-identical walks.
"""

from repro.runtime.backends import (
    Backend,
    BackendCapabilities,
    BackendReport,
    CPUBaselineBackend,
    FPGACycleBackend,
    FPGAModelBackend,
    RuntimeContext,
    backend_capabilities,
    backend_names,
    comparison_backends,
    create_backend,
    describe_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.runtime.durability import (
    RunCheckpoint,
    SweepCheckpoint,
    plan_fingerprint,
    resume_run,
)
from repro.runtime.faults import (
    FaultInjectionBackend,
    InjectedFault,
    InjectedFaultError,
)
from repro.runtime.plan import ExecutionPlan, QueryShard, plan_run
from repro.runtime.scheduler import (
    EXECUTION_MODES,
    BatchOutcome,
    BatchScheduler,
    RetryPolicy,
    ShardFailure,
    run_plan,
)
from repro.runtime.timing import (
    CPUBaselineBreakdown,
    FPGACycleBreakdown,
    FPGAModelBreakdown,
    TimingBreakdown,
)

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendReport",
    "BatchOutcome",
    "BatchScheduler",
    "CPUBaselineBackend",
    "CPUBaselineBreakdown",
    "EXECUTION_MODES",
    "ExecutionPlan",
    "FPGACycleBackend",
    "FPGACycleBreakdown",
    "FPGAModelBackend",
    "FPGAModelBreakdown",
    "FaultInjectionBackend",
    "InjectedFault",
    "InjectedFaultError",
    "QueryShard",
    "RetryPolicy",
    "RunCheckpoint",
    "RuntimeContext",
    "ShardFailure",
    "SweepCheckpoint",
    "TimingBreakdown",
    "backend_capabilities",
    "backend_names",
    "comparison_backends",
    "create_backend",
    "describe_backends",
    "plan_fingerprint",
    "plan_run",
    "register_backend",
    "resolve_backend",
    "resume_run",
    "run_plan",
    "unregister_backend",
]
