"""Backend registry and the built-in execution backends.

A *backend* is one way of executing (and costing) a planned query batch:
the analytic FPGA model, the cycle-accurate simulator, or the modeled
ThunderRW CPU baseline.  Each is a class with

* a ``name`` (the string users pass to :class:`repro.core.api.LightRW`),
* declared :class:`BackendCapabilities` the query planner validates
  against, and
* an ``execute(plan, shard) -> BackendReport`` method the batch scheduler
  calls once per shard.

New backends register with the :func:`register_backend` decorator and are
immediately visible to the facade, the CLI (``--backend``) and the bench
runner — no ``if/elif`` chain to extend::

    from repro.runtime import Backend, BackendCapabilities, register_backend

    @register_backend
    class MyBackend(Backend):
        name = "my-backend"
        capabilities = BackendCapabilities(description="...", system_label="Mine")

        def execute(self, plan, shard):
            ...

All built-in backends share the same per-query RNG derivation keyed by
*global* query id, so identical seeds produce identical walks regardless
of backend or shard layout — the repo's core invariant.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.cpu.costmodel import CPUSpec
from repro.errors import ConfigError
from repro.fpga.config import LightRWConfig
from repro.obs import span
from repro.graph.csr import CSRGraph
from repro.runtime.timing import (
    CPUBaselineBreakdown,
    FPGACycleBreakdown,
    FPGAModelBreakdown,
    TimingBreakdown,
)
from repro.walks.stepper import WalkSession

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.plan import ExecutionPlan, QueryShard


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do; the query planner enforces these limits."""

    #: One-line human description (shown by the CLI and the bench runner).
    description: str = ""
    #: System name used when benchmarks compare engines ("LightRW", ...).
    system_label: str = ""
    #: May the planner run a uniform query subsample and extrapolate?
    supports_query_sampling: bool = True
    #: Does the backend execute random walks with restart (PPR)?
    supports_restart: bool = False
    #: Can the backend report per-query latencies?
    supports_latency: bool = True
    #: Identical walks regardless of how the batch is sharded?
    deterministic_across_shards: bool = True
    #: Safe to execute shards concurrently from a thread pool?
    thread_safe: bool = True
    #: Safe to execute shards in worker *processes*?  Requires the
    #: backend, the plan and the shard reports to round-trip through
    #: pickle; opt-in because custom backends may hold live handles.
    process_safe: bool = False
    #: Does this backend pay the host<->device PCIe transfer?
    uses_pcie: bool = True
    #: Appear in engine-comparison benchmarks (fig14/15/16/17 style)?
    compare_in_benchmarks: bool = False
    #: Hard cap on the functional batch size (None = unlimited).
    max_batch_queries: int | None = None


@dataclass(frozen=True)
class RuntimeContext:
    """Immutable per-engine state shared by every backend instance."""

    graph: CSRGraph
    config: LightRWConfig
    cpu_spec: CPUSpec
    seed: int = 0


@dataclass
class BackendReport:
    """One backend execution (a shard, or a merged batch)."""

    backend: str
    paths: np.ndarray
    lengths: np.ndarray
    total_steps: int
    kernel_s: float
    breakdown: TimingBreakdown
    setup_s: float = 0.0
    query_latency_s: np.ndarray | None = None
    session: WalkSession | None = None
    notes: dict = field(default_factory=dict)


class Backend(abc.ABC):
    """Protocol every execution backend implements."""

    #: Registry key; also the ``backend=`` string of the public API.
    name: str = ""
    capabilities: BackendCapabilities = BackendCapabilities()

    def __init__(self, context: RuntimeContext) -> None:
        self.context = context

    @abc.abstractmethod
    def execute(self, plan: "ExecutionPlan", shard: "QueryShard") -> BackendReport:
        """Walk and cost one shard of the planned batch."""

    def merge(
        self, plan: "ExecutionPlan", reports: Sequence[BackendReport]
    ) -> BackendReport:
        """Combine per-shard reports into the batch-level report.

        Paths and latencies concatenate in shard order (= global query-id
        order); timing merges through the :class:`TimingBreakdown`
        hierarchy.  Single-shard plans pass through untouched.
        """
        if len(reports) == 1:
            return reports[0]
        width = max(r.paths.shape[1] for r in reports)
        paths = np.full(
            (sum(r.paths.shape[0] for r in reports), width), -1, dtype=np.int64
        )
        row = 0
        for report in reports:
            n, w = report.paths.shape
            paths[row : row + n, :w] = report.paths
            row += n
        latencies = [r.query_latency_s for r in reports]
        breakdown = type(reports[0].breakdown).merged([r.breakdown for r in reports])
        return BackendReport(
            backend=self.name,
            paths=paths,
            lengths=np.concatenate([r.lengths for r in reports]),
            total_steps=sum(r.total_steps for r in reports),
            kernel_s=sum(r.kernel_s for r in reports),
            setup_s=sum(r.setup_s for r in reports),
            breakdown=breakdown,
            query_latency_s=(
                np.concatenate(latencies)
                if all(x is not None for x in latencies)
                else None
            ),
            session=_merge_sessions([r.session for r in reports]),
        )


def _merge_sessions(sessions: Sequence[WalkSession | None]) -> WalkSession | None:
    """Concatenate shard sessions, re-basing record query ids globally."""
    if any(s is None for s in sessions):
        return None
    parts = [s for s in sessions if s is not None]
    if len(parts) == 1:
        return parts[0]
    width = max(s.paths.shape[1] for s in parts)
    paths = np.full((sum(s.num_queries for s in parts), width), -1, dtype=np.int64)
    records = []
    row = 0
    for session in parts:
        n, w = session.paths.shape
        paths[row : row + n, :w] = session.paths
        for record in session.records:
            from dataclasses import replace

            records.append(replace(record, query_ids=record.query_ids + row))
        row += n
    return WalkSession(
        graph=parts[0].graph,
        algorithm=parts[0].algorithm,
        sampler=parts[0].sampler,
        starts=np.concatenate([s.starts for s in parts]),
        paths=paths,
        lengths=np.concatenate([s.lengths for s in parts]),
        records=records,
    )


# -- registry ----------------------------------------------------------------

_REGISTRY: dict[str, type[Backend]] = {}


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Class decorator adding a backend to the global registry."""
    if not cls.name:
        raise ConfigError(f"backend class {cls.__name__} must set a name")
    if cls.name in _REGISTRY:
        raise ConfigError(f"backend {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def unregister_backend(name: str) -> None:
    """Remove a backend (primarily for tests of custom registrations)."""
    _REGISTRY.pop(name, None)


def backend_names() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def resolve_backend(name: str) -> type[Backend]:
    """Look up a backend class; unknown names get an actionable error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"backend must be one of {backend_names()}, got {name!r}"
        ) from None


def backend_capabilities(name: str) -> BackendCapabilities:
    return resolve_backend(name).capabilities


def create_backend(name: str, context: RuntimeContext) -> Backend:
    return resolve_backend(name)(context)


def describe_backends() -> list[tuple[str, str]]:
    """(name, one-line description) rows for help text and ``--list``."""
    return [(name, cls.capabilities.description) for name, cls in _REGISTRY.items()]


def comparison_backends() -> list[tuple[str, str]]:
    """(backend, system label) pairs for engine-comparison experiments."""
    return [
        (name, cls.capabilities.system_label or name)
        for name, cls in _REGISTRY.items()
        if cls.capabilities.compare_in_benchmarks
    ]


# -- built-in backends -------------------------------------------------------


@register_backend
class FPGAModelBackend(Backend):
    """Analytic performance model over functionally exact walks."""

    name = "fpga-model"
    capabilities = BackendCapabilities(
        description=(
            "analytic FPGA performance model over exact walks; "
            "graph-scale batches with query-sampled extrapolation (default)"
        ),
        system_label="LightRW",
        supports_query_sampling=True,
        supports_restart=True,
        supports_latency=True,
        deterministic_across_shards=True,
        thread_safe=True,
        process_safe=True,
        uses_pcie=True,
        compare_in_benchmarks=True,
    )

    def execute(self, plan: "ExecutionPlan", shard: "QueryShard") -> BackendReport:
        from repro.fpga.perfmodel import FPGAPerfModel
        from repro.walks.stepper import PWRSSampler, run_walks

        ctx = self.context
        with span("walk", backend=self.name):
            if plan.restart_alpha is not None:
                from repro.walks.ppr import run_restart_walks

                session = run_restart_walks(
                    ctx.graph,
                    shard.starts,
                    plan.n_steps,
                    alpha=plan.restart_alpha,
                    k=ctx.config.k,
                    seed=ctx.seed,
                    query_ids=shard.query_ids(),
                )
            else:
                sampler = PWRSSampler(k=ctx.config.k, seed=ctx.seed)
                session = run_walks(
                    ctx.graph,
                    shard.starts,
                    plan.n_steps,
                    plan.algorithm,
                    sampler,
                    query_ids=shard.query_ids(),
                )
        with span("perf-model", backend=self.name):
            model = FPGAPerfModel(ctx.config, plan.algorithm)
            native = model.evaluate(
                session,
                total_queries=shard.total_queries,
                record_latency=plan.record_latency,
            )
        return BackendReport(
            backend=self.name,
            paths=session.paths,
            lengths=session.lengths,
            total_steps=native.total_steps,
            kernel_s=native.kernel_s,
            breakdown=FPGAModelBreakdown(
                backend=self.name,
                kernel_s=native.kernel_s,
                total_steps=native.total_steps,
                num_queries=native.num_queries,
                detail=native,
            ),
            query_latency_s=(
                native.query_latency_seconds() if plan.record_latency else None
            ),
            session=session,
        )


@register_backend
class FPGACycleBackend(Backend):
    """Cycle-accurate simulator of the full accelerator pipeline."""

    name = "fpga-cycle"
    capabilities = BackendCapabilities(
        description=(
            "cycle-accurate pipeline simulator; ground truth, walks every "
            "query it is given (small batches only)"
        ),
        system_label="LightRW (cycle)",
        supports_query_sampling=False,
        supports_restart=False,
        supports_latency=True,
        deterministic_across_shards=True,
        # Fresh module/FIFO objects per run, but keep shard execution
        # sequential: simulated shards share no wall-clock benefit anyway.
        thread_safe=False,
        uses_pcie=True,
        max_batch_queries=4096,
    )

    def execute(self, plan: "ExecutionPlan", shard: "QueryShard") -> BackendReport:
        from repro.fpga.accelerator import LightRWAcceleratorSim

        ctx = self.context
        with span("cycle-sim", backend=self.name):
            sim = LightRWAcceleratorSim(
                ctx.graph, ctx.config, plan.algorithm, seed=ctx.seed
            )
            result = sim.run(
                shard.starts,
                plan.n_steps,
                max_cycles=plan.max_cycles,
                trace=plan.trace,
                query_ids=shard.query_ids(),
            )
        n_queries = shard.num_queries
        max_len = max((len(p) for p in result.paths.values()), default=1)
        paths = np.full((n_queries, max_len), -1, dtype=np.int64)
        lengths = np.zeros(n_queries, dtype=np.int64)
        for qid, path in result.paths.items():
            row = qid - shard.offset
            paths[row, : len(path)] = path
            lengths[row] = len(path) - 1
        latencies = np.array(
            [
                result.query_latency_cycles.get(shard.offset + row, 0)
                for row in range(n_queries)
            ],
            dtype=np.float64,
        ) / ctx.config.frequency_hz
        return BackendReport(
            backend=self.name,
            paths=paths,
            lengths=lengths,
            total_steps=result.total_steps,
            kernel_s=result.kernel_s,
            breakdown=FPGACycleBreakdown(
                backend=self.name,
                kernel_s=result.kernel_s,
                total_steps=result.total_steps,
                num_queries=n_queries,
                detail=result,
            ),
            query_latency_s=latencies,
        )


@register_backend
class CPUBaselineBackend(Backend):
    """Modeled ThunderRW staged-execution engine (the paper's baseline)."""

    name = "cpu-baseline"
    capabilities = BackendCapabilities(
        description=(
            "modeled ThunderRW CPU engine (staged execution, "
            "inverse-transform sampling); for comparisons"
        ),
        system_label="ThunderRW",
        supports_query_sampling=True,
        supports_restart=False,
        supports_latency=True,
        # The inverse-transform sampler also derives per-query lanes from
        # global ids, so CPU walks are shard-invariant too.
        deterministic_across_shards=True,
        thread_safe=True,
        process_safe=True,
        uses_pcie=False,
        compare_in_benchmarks=True,
    )

    def execute(self, plan: "ExecutionPlan", shard: "QueryShard") -> BackendReport:
        from repro.cpu.engine import ThunderRWEngine

        ctx = self.context
        with span("cpu-engine", backend=self.name):
            engine = ThunderRWEngine(ctx.graph, spec=ctx.cpu_spec, seed=ctx.seed)
            result = engine.run(
                shard.starts,
                plan.n_steps,
                plan.algorithm,
                total_queries=shard.total_queries,
                query_ids=shard.query_ids(),
            )
        timing = result.timing
        session = result.session
        return BackendReport(
            backend=self.name,
            paths=session.paths,
            lengths=session.lengths,
            total_steps=timing.total_steps,
            kernel_s=timing.exec_s,
            setup_s=timing.init_time_s,
            breakdown=CPUBaselineBreakdown(
                backend=self.name,
                kernel_s=timing.exec_s,
                total_steps=timing.total_steps,
                num_queries=timing.num_queries,
                setup_s=timing.init_time_s,
                detail=timing,
            ),
            query_latency_s=(
                timing.query_latency_s * ctx.cpu_spec.interleave_width
                if timing.query_latency_s is not None
                else None
            ),
            session=session,
        )
