"""Durable runs: checkpoint/resume across process boundaries.

PR 3 made a single process survive shard failures; this module makes the
*run* survive the process.  Two checkpoint granularities:

* :class:`RunCheckpoint` — one scheduler batch.  Every completed shard's
  :class:`~repro.runtime.backends.BackendReport` is persisted (atomic
  write, content checksum) the moment it finishes, keyed by shard index,
  together with a ``run.json`` carrying a fingerprint of the planned run
  (backend, algorithm, steps, the exact sampled starts, shard layout,
  seed, config hash).  A resumed run loads the completed shards, executes
  only the missing ones, and — because per-query RNG lanes are keyed by
  *global* query id — merges to byte-identical walks versus an
  uninterrupted run.
* :class:`SweepCheckpoint` — one bench sweep.  ``lightrw-bench`` records
  each experiment name as it completes, so an interrupted ``all`` sweep
  resumes at the first unfinished experiment.

Corruption is handled, not trusted: every checkpoint file is verified on
load, and a file that fails verification is quarantined and its shard
simply re-executed — a damaged checkpoint costs time, never correctness.

Fingerprints make resumption safe: resuming with a different seed, batch,
shard layout or accelerator config is a
:class:`~repro.errors.ConfigError` at plan time, before any walk starts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import pickle
import re
from pathlib import Path
from typing import TYPE_CHECKING

from repro.artifacts import (
    read_binary_artifact,
    read_json_artifact,
    write_binary_artifact,
    write_json_artifact,
)
from repro.errors import ArtifactCorruptionError, ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.api import RunResult
    from repro.runtime.backends import BackendReport
    from repro.runtime.plan import ExecutionPlan

logger = logging.getLogger(__name__)

__all__ = [
    "RunCheckpoint",
    "SweepCheckpoint",
    "plan_fingerprint",
    "resume_run",
]

#: Metadata file identifying a run-checkpoint directory.
RUN_FILE = "run.json"
#: Metadata file identifying a bench-sweep checkpoint directory.
SWEEP_FILE = "sweep.json"

_SHARD_PATTERN = re.compile(r"^shard-(\d{4,})\.ckpt$")


def plan_fingerprint(plan: "ExecutionPlan", seed: int, config_hash: str = "") -> str:
    """Stable identity of one planned run, for checkpoint compatibility.

    Two runs share a fingerprint iff they would execute the same walks:
    same backend, algorithm (name and parameters), step count, sampled
    starts (byte-exact), extrapolation target, shard layout, seed and
    accelerator config.  Timing-only knobs (latency recording, PCIe
    accounting, tracing) are deliberately excluded.
    """
    algorithm_params = {
        k: v
        for k, v in sorted(vars(plan.algorithm).items())
        if not k.startswith("_")
    }
    identity = {
        "backend": plan.backend,
        "algorithm": plan.algorithm.name,
        "algorithm_params": algorithm_params,
        "n_steps": plan.n_steps,
        "total_queries": plan.total_queries,
        "shards": [(s.index, s.offset, s.num_queries) for s in plan.shards],
        "restart_alpha": plan.restart_alpha,
        "seed": int(seed),
        "config_hash": config_hash,
    }
    digest = hashlib.sha256(
        json.dumps(identity, sort_keys=True, default=str).encode()
    )
    digest.update(plan.starts.tobytes())
    return digest.hexdigest()[:16]


def _strip_report(report: "BackendReport") -> "BackendReport":
    """Drop the non-essential heavyweights before serializing a report.

    The walk session holds a graph reference (re-derivable, large) and a
    cycle run may hold a pipeline tracer; neither affects the merged
    paths, lengths, latencies or timing totals a resumed run needs.
    """
    report = dataclasses.replace(report, session=None)
    breakdown = report.breakdown
    detail = getattr(breakdown, "detail", None)
    if detail is not None and getattr(detail, "tracer", None) is not None:
        breakdown = dataclasses.replace(
            breakdown, detail=dataclasses.replace(detail, tracer=None)
        )
        report = dataclasses.replace(report, breakdown=breakdown)
    return report


class RunCheckpoint:
    """Shard-granular persistence of one scheduler batch.

    Use :meth:`open` (validates or creates the directory), then hand the
    instance to :meth:`BatchScheduler.execute
    <repro.runtime.scheduler.BatchScheduler.execute>`; the scheduler
    records each shard as it completes and skips the shards
    :meth:`load_completed` returns.
    """

    def __init__(self, directory: Path, fingerprint: str) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str | Path,
        plan: "ExecutionPlan",
        *,
        seed: int,
        config_hash: str = "",
        resume: bool = False,
    ) -> "RunCheckpoint":
        """Create or attach to a checkpoint directory for ``plan``.

        ``resume=True`` requires an existing, fingerprint-compatible
        checkpoint (anything else is a :class:`ConfigError` before any
        shard executes); ``resume=False`` starts clean, discarding shard
        files left by a previous run of the same directory.
        """
        directory = Path(directory)
        fingerprint = plan_fingerprint(plan, seed, config_hash)
        checkpoint = cls(directory, fingerprint)
        run_file = directory / RUN_FILE
        existing = None
        if run_file.exists():
            try:
                existing = read_json_artifact(run_file, kind="run-checkpoint")
            except ArtifactCorruptionError as exc:
                # The metadata is quarantined; the shard files cannot be
                # trusted to belong to this plan, so start over.
                logger.warning("checkpoint metadata unusable: %s", exc)
                existing = None
        if resume:
            if existing is None:
                raise ConfigError(
                    f"cannot resume: {run_file} does not exist or is not a "
                    f"readable run checkpoint (start a run with this "
                    f"checkpoint directory first)"
                )
            if existing.get("fingerprint") != fingerprint:
                raise ConfigError(
                    f"cannot resume from {directory}: the checkpoint was "
                    f"created by a different run configuration (fingerprint "
                    f"{existing.get('fingerprint')}, this run {fingerprint}); "
                    f"re-issue the original backend/algorithm/seed/shard "
                    f"arguments or start a fresh checkpoint directory"
                )
            return checkpoint
        if existing is None or existing.get("fingerprint") != fingerprint:
            checkpoint._discard_shards()
        from repro import __version__

        write_json_artifact(
            run_file,
            {
                "fingerprint": fingerprint,
                "backend": plan.backend,
                "algorithm": plan.algorithm.name,
                "n_steps": plan.n_steps,
                "total_queries": plan.total_queries,
                "sampled_queries": plan.num_sampled,
                "shards": plan.shard_count,
                "seed": int(seed),
                "config_hash": config_hash,
                "package_version": __version__,
            },
            kind="run-checkpoint",
        )
        return checkpoint

    def _discard_shards(self) -> None:
        if not self.directory.exists():
            return
        for path in self.directory.iterdir():
            if _SHARD_PATTERN.match(path.name):
                path.unlink(missing_ok=True)

    # -- shard records -------------------------------------------------------

    def shard_path(self, index: int) -> Path:
        return self.directory / f"shard-{index:04d}.ckpt"

    def _shard_kind(self) -> str:
        # Binding the plan fingerprint into the artifact kind means a
        # shard file from a different run fails verification instead of
        # being merged into the wrong batch.
        return f"shard-report:{self.fingerprint}"

    def record_shard(self, index: int, report: "BackendReport") -> Path:
        """Persist one completed shard's report (atomic, checksummed)."""
        payload = pickle.dumps(
            _strip_report(report), protocol=pickle.HIGHEST_PROTOCOL
        )
        return write_binary_artifact(
            self.shard_path(index), payload, kind=self._shard_kind()
        )

    def load_completed(self) -> dict[int, "BackendReport"]:
        """Verified shard reports on disk, keyed by shard index.

        A shard file that fails verification (truncated write, checksum
        mismatch, different run) is quarantined and simply omitted — the
        scheduler re-executes that shard, reproducing identical walks.
        """
        restored: dict[int, "BackendReport"] = {}
        if not self.directory.exists():
            return restored
        for path in sorted(self.directory.iterdir()):
            match = _SHARD_PATTERN.match(path.name)
            if not match:
                continue
            index = int(match.group(1))
            try:
                payload = read_binary_artifact(path, kind=self._shard_kind())
                restored[index] = pickle.loads(payload)
            except ArtifactCorruptionError as exc:
                logger.warning(
                    "shard %d checkpoint unusable, will re-execute: %s",
                    index, exc,
                )
            except Exception as exc:  # noqa: BLE001 - unpickle garbage
                logger.warning(
                    "shard %d checkpoint failed to deserialize (%s: %s), "
                    "will re-execute", index, type(exc).__name__, exc,
                )
        return restored

    def completed_indices(self) -> tuple[int, ...]:
        """Shard indices with a verifiable checkpoint on disk."""
        return tuple(sorted(self.load_completed()))


class SweepCheckpoint:
    """Experiment-granular persistence of one bench sweep."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / SWEEP_FILE

    @classmethod
    def open(
        cls, directory: str | Path, *, resume: bool = False
    ) -> "SweepCheckpoint":
        """Attach to a sweep checkpoint; ``resume`` requires it to exist.

        ``resume=False`` starts the sweep clean (a leftover completion
        list from a previous sweep of the same directory is discarded).
        """
        checkpoint = cls(directory)
        if resume and not checkpoint.path.exists():
            raise ConfigError(
                f"cannot resume: {checkpoint.path} does not exist (start a "
                f"sweep with this checkpoint directory first)"
            )
        if not resume:
            write_json_artifact(checkpoint.path, {"completed": []}, kind="bench-sweep")
        return checkpoint

    def completed(self) -> list[str]:
        """Experiment names recorded as finished (order preserved)."""
        if not self.path.exists():
            return []
        try:
            payload = read_json_artifact(self.path, kind="bench-sweep")
        except ArtifactCorruptionError as exc:
            logger.warning("sweep checkpoint unusable, starting over: %s", exc)
            return []
        done = payload.get("completed", [])
        return [str(name) for name in done] if isinstance(done, list) else []

    def mark_done(self, name: str) -> None:
        """Record one finished experiment (read-modify-write, atomic)."""
        done = self.completed()
        if name not in done:
            done.append(name)
        write_json_artifact(
            self.path, {"completed": done}, kind="bench-sweep"
        )


def resume_run(
    engine,
    algorithm,
    n_steps: int,
    checkpoint_dir: str | Path,
    **kwargs,
) -> "RunResult":
    """Resume an interrupted :meth:`LightRW.run` from its checkpoint.

    Thin convenience over ``engine.run(..., checkpoint_dir=...,
    resume=True)``; validates up front that a checkpoint actually exists
    so a typo'd directory is a :class:`ConfigError`, not a fresh run.
    """
    run_file = Path(checkpoint_dir) / RUN_FILE
    if not run_file.exists():
        raise ConfigError(
            f"cannot resume: no run checkpoint at {run_file} (start a run "
            f"with checkpoint_dir={str(checkpoint_dir)!r} first)"
        )
    return engine.run(
        algorithm, n_steps, checkpoint_dir=checkpoint_dir, resume=True, **kwargs
    )
