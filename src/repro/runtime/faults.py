"""Deterministic fault injection for exercising the scheduler's policies.

The fault-tolerance paths of :class:`~repro.runtime.BatchScheduler` —
retry-then-succeed, permanent failure, timeout expiry, degraded partial
merges — are unreachable with healthy backends.  This module makes every
one of them testable without ambient randomness:
:class:`FaultInjectionBackend` wraps any registered backend and raises
(or delays) on configured shards for a configured number of attempts, so
a "transient" fault is simply ``fail_attempts=1`` and a "permanent" one
``fail_attempts=-1``.

Because per-query randomness is keyed by global query id, a shard that
fails and is retried reproduces *byte-identical* walks on the attempt
that succeeds — the invariant ``tests/test_faults.py`` pins down.

Injected faults are observable: each one increments
``run.injected_faults{backend=...,shard=...}`` and records an
``injected-fault`` span, alongside the scheduler's own ``run.retries``
and ``run.shard_failures`` series.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigError
from repro.obs import current_observer
from repro.runtime.backends import Backend, BackendCapabilities, BackendReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.plan import ExecutionPlan, QueryShard

__all__ = ["FaultInjectionBackend", "InjectedFault", "InjectedFaultError"]


class InjectedFaultError(RuntimeError):
    """The exception a configured fault raises.

    Deliberately *not* a :class:`~repro.errors.ReproError`: an injected
    fault stands in for an unexpected backend crash, so it must exercise
    the scheduler's generic isolation path, not the library-error one.
    """


@dataclass(frozen=True)
class InjectedFault:
    """Failure schedule of one shard.

    ``fail_attempts`` is the number of execution attempts that raise
    before the shard is allowed to succeed: ``1`` models a transient
    fault absorbed by a single retry, ``-1`` a permanent fault that
    never recovers, and ``0`` a healthy shard that only pays ``delay_s``
    (the knob that drives timeout tests).
    """

    shard: int
    fail_attempts: int = 1
    delay_s: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ConfigError(f"fault shard must be >= 0, got {self.shard}")
        if self.fail_attempts < -1:
            raise ConfigError(
                f"fail_attempts must be >= -1 (-1 = always), got {self.fail_attempts}"
            )
        if self.delay_s < 0:
            raise ConfigError(f"delay_s must be >= 0, got {self.delay_s}")

    @property
    def permanent(self) -> bool:
        return self.fail_attempts < 0

    def fails_attempt(self, attempt: int) -> bool:
        return self.permanent or attempt <= self.fail_attempts


class FaultInjectionBackend(Backend):
    """Wrap a backend, failing configured shards for configured attempts.

    Attempt numbers are counted per shard inside the wrapper (the
    scheduler retries a shard by calling ``execute`` again), so the
    injection schedule is deterministic whether shards run sequentially
    or on pool threads.
    """

    def __init__(self, inner: Backend, faults: Sequence[InjectedFault]) -> None:
        self.inner = inner
        self.context = inner.context
        self._faults = {}
        for fault in faults:
            if fault.shard in self._faults:
                raise ConfigError(
                    f"duplicate injected fault for shard {fault.shard}"
                )
            self._faults[fault.shard] = fault
        self._attempts: dict[int, int] = {}
        self._lock = threading.Lock()

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    @property
    def capabilities(self) -> BackendCapabilities:  # type: ignore[override]
        return self.inner.capabilities

    def attempts(self, shard: int) -> int:
        """Execution attempts observed so far for ``shard``."""
        with self._lock:
            return self._attempts.get(shard, 0)

    def prime_attempt(self, shard: int, attempt: int) -> None:
        """Fast-forward the per-shard attempt count to ``attempt - 1``.

        In the scheduler's process mode a retry may land on a worker
        process whose copy of this wrapper never saw the earlier
        attempts; the scheduler primes the count so the injection
        schedule stays identical to sequential execution.
        """
        with self._lock:
            self._attempts[shard] = max(
                self._attempts.get(shard, 0), attempt - 1
            )

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]  # locks don't pickle; workers recreate their own
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def execute(self, plan: "ExecutionPlan", shard: "QueryShard") -> BackendReport:
        fault = self._faults.get(shard.index)
        if fault is None:
            return self.inner.execute(plan, shard)
        with self._lock:
            attempt = self._attempts.get(shard.index, 0) + 1
            self._attempts[shard.index] = attempt
        if fault.delay_s > 0:
            time.sleep(fault.delay_s)
        if fault.fails_attempt(attempt):
            obs = current_observer()
            if obs.enabled:
                obs.metrics.counter(
                    "run.injected_faults", backend=self.name, shard=shard.index
                ).inc()
            with obs.span("injected-fault", shard=shard.index, attempt=attempt):
                pass
            raise InjectedFaultError(
                f"{fault.message} (shard {shard.index}, attempt {attempt})"
            )
        return self.inner.execute(plan, shard)

    def merge(
        self, plan: "ExecutionPlan", reports: Sequence[BackendReport]
    ) -> BackendReport:
        return self.inner.merge(plan, reports)
