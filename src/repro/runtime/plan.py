"""The query planner: turn a run request into a validated execution plan.

:func:`plan_run` is the single place where a (graph, algorithm, query
batch, backend) combination is checked against the chosen backend's
declared capabilities and turned into an :class:`ExecutionPlan` — the
sampled functional batch plus the shard layout the scheduler executes.
Limit violations (unknown backend, cycle-simulator batch caps, restart on
a backend without restart support, bad shard counts) surface here as
actionable :class:`~repro.errors.ConfigError`\\ s instead of deep failures
inside a cost model.

Sharding preserves the repo's core invariant — identical seeds produce
identical walks — because every shard carries the **global** query ids of
its slice: per-query RNG lanes are derived from ``(seed, global id)``, so
a query's walk does not depend on which shard executed it.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.queries import sample_queries
from repro.errors import ConfigError
from repro.obs import span
from repro.runtime.backends import resolve_backend
from repro.walks.base import WalkAlgorithm

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class QueryShard:
    """One contiguous slice of the functional query batch.

    ``offset`` is the global query id of the slice's first query;
    ``total_queries`` is this shard's share of the extrapolation target
    (shares always sum exactly to the plan's ``total_queries``).
    """

    index: int
    offset: int
    starts: np.ndarray
    total_queries: int

    @property
    def num_queries(self) -> int:
        return int(self.starts.size)

    def query_ids(self) -> np.ndarray:
        """Global ids of this shard's queries (seed-derivation keys)."""
        return self.offset + np.arange(self.starts.size, dtype=np.int64)


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything a backend needs to execute one query batch."""

    backend: str
    algorithm: WalkAlgorithm
    n_steps: int
    #: The functional batch (after query sampling), in global-id order.
    starts: np.ndarray
    #: Extrapolation target: the size of the original batch.
    total_queries: int
    shards: tuple[QueryShard, ...] = field(default=())
    record_latency: bool = True
    include_pcie: bool = True
    #: Restart probability for PPR-style walks (None for plain walks).
    restart_alpha: float | None = None
    #: Cycle budget forwarded to the cycle-accurate simulator.
    max_cycles: int = 50_000_000
    #: Record pipeline events on backends that support it (``fpga-cycle``);
    #: the Chrome-trace exporter serializes them alongside runtime spans.
    trace: bool = False

    @property
    def num_sampled(self) -> int:
        return int(self.starts.size)

    @property
    def shard_count(self) -> int:
        return len(self.shards)


def _partition(starts: np.ndarray, total_queries: int, shards: int) -> tuple[QueryShard, ...]:
    """Contiguous shards with exact integer shares of the extrapolation total."""
    if starts.size == 0:
        return (QueryShard(index=0, offset=0, starts=starts, total_queries=total_queries),)
    chunks = np.array_split(starts, shards)
    out: list[QueryShard] = []
    offset = 0
    for index, chunk in enumerate(chunks):
        if chunk.size == 0:
            continue
        begin = (total_queries * offset) // starts.size
        end = (total_queries * (offset + chunk.size)) // starts.size
        out.append(
            QueryShard(
                index=index, offset=offset, starts=chunk, total_queries=end - begin
            )
        )
        offset += chunk.size
    return tuple(out)


def plan_run(
    backend: str,
    algorithm: WalkAlgorithm,
    n_steps: int,
    starts: np.ndarray,
    *,
    max_sampled_queries: int = 4096,
    record_latency: bool = True,
    include_pcie: bool = True,
    shards: int = 1,
    restart_alpha: float | None = None,
    max_cycles: int = 50_000_000,
    seed: int = 0,
    trace: bool = False,
) -> ExecutionPlan:
    """Validate a run request and lay out its execution.

    Raises :class:`ConfigError` early — before any walk or simulation
    starts — when the request exceeds what the backend declares it can do.
    """
    with span("plan", backend=backend, algorithm=algorithm.name):
        backend_cls = resolve_backend(backend)
        caps = backend_cls.capabilities
        starts = np.asarray(starts, dtype=np.int64)

        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if restart_alpha is not None and not caps.supports_restart:
            raise ConfigError(
                f"restart walks are supported on the fpga-model backend, "
                f"not {backend!r}"
            )

        if caps.supports_query_sampling:
            sampled, total = sample_queries(starts, max_sampled_queries, seed=seed)
        else:
            sampled, total = starts, int(starts.size)

        if caps.max_batch_queries is not None and sampled.size > caps.max_batch_queries:
            raise ConfigError(
                f"backend {backend!r} walks every query it is given and is "
                f"capped at {caps.max_batch_queries} queries per batch; got "
                f"{sampled.size}. Subsample the batch (max_sampled_queries) or "
                f"use the 'fpga-model' backend, which extrapolates from a sample."
            )

        shard_count = min(shards, max(sampled.size, 1))
        plan = ExecutionPlan(
            backend=backend,
            algorithm=algorithm,
            n_steps=n_steps,
            starts=sampled,
            total_queries=total,
            shards=_partition(sampled, total, shard_count),
            record_latency=record_latency,
            include_pcie=include_pcie,
            restart_alpha=restart_alpha,
            max_cycles=max_cycles,
            trace=trace,
        )
        logger.debug(
            "planned %s run: %d queries (%d sampled) x %d steps in %d shard(s)",
            backend, total, plan.num_sampled, n_steps, plan.shard_count,
        )
        return plan
