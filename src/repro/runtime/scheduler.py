"""Sharded batch scheduler: execute a plan's shards and merge the reports.

Large query batches are split into shards by the planner; the scheduler
drives a backend over them — sequentially by default, or through a worker
pool for backends whose execution is thread safe (the functional stepper
releases the GIL inside its numpy kernels, so shards genuinely overlap).
Shard reports always merge in shard order, so the merged paths/latencies
are in global query-id order and the result is independent of worker
scheduling.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.runtime.backends import Backend, BackendReport
from repro.runtime.plan import ExecutionPlan


@dataclass
class BatchScheduler:
    """Execution policy for a planned batch.

    Parameters
    ----------
    parallel:
        Execute shards through a thread pool when the backend declares
        ``thread_safe``.  Walks are identical either way (per-query RNG);
        only wall-clock changes.
    max_workers:
        Pool width; defaults to ``min(shards, cpu_count)``.
    """

    parallel: bool = False
    max_workers: int | None = None

    def execute(self, backend: Backend, plan: ExecutionPlan) -> BackendReport:
        """Run every shard of ``plan`` on ``backend`` and merge the reports."""
        shards = plan.shards
        if not shards:
            raise ValueError("plan has no shards to execute")
        use_pool = (
            self.parallel and len(shards) > 1 and backend.capabilities.thread_safe
        )
        if use_pool:
            workers = self.max_workers or min(len(shards), os.cpu_count() or 1)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                reports = list(
                    pool.map(lambda shard: backend.execute(plan, shard), shards)
                )
        else:
            reports = [backend.execute(plan, shard) for shard in shards]
        return backend.merge(plan, reports)


def run_plan(
    backend: Backend,
    plan: ExecutionPlan,
    scheduler: BatchScheduler | None = None,
) -> BackendReport:
    """Convenience wrapper: execute ``plan`` with a default scheduler."""
    return (scheduler or BatchScheduler()).execute(backend, plan)
