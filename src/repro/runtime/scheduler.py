"""Sharded batch scheduler: execute a plan's shards and merge the reports.

Large query batches are split into shards by the planner; the scheduler
drives a backend over them — sequentially by default, or through a worker
pool for backends whose execution is thread safe (the functional stepper
releases the GIL inside its numpy kernels, so shards genuinely overlap).
Shard reports always merge in shard order, so the merged paths/latencies
are in global query-id order and the result is independent of worker
scheduling.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.obs import current_observer, record_shard, use_observer
from repro.runtime.backends import Backend, BackendReport
from repro.runtime.plan import ExecutionPlan, QueryShard

logger = logging.getLogger(__name__)


@dataclass
class BatchScheduler:
    """Execution policy for a planned batch.

    Parameters
    ----------
    parallel:
        Execute shards through a thread pool when the backend declares
        ``thread_safe``.  Walks are identical either way (per-query RNG);
        only wall-clock changes.
    max_workers:
        Pool width; defaults to ``min(shards, cpu_count)``.
    """

    parallel: bool = False
    max_workers: int | None = None

    def execute(self, backend: Backend, plan: ExecutionPlan) -> BackendReport:
        """Run every shard of ``plan`` on ``backend`` and merge the reports."""
        shards = plan.shards
        if not shards:
            raise ValueError("plan has no shards to execute")
        obs = current_observer()

        def run_shard(shard: QueryShard) -> BackendReport:
            # Worker threads start with a fresh context, so re-install the
            # observer; spans opened by the backend then nest under the
            # shard span on this thread's own track.
            with use_observer(obs), obs.span(
                "shard", backend=backend.name, shard=shard.index,
                queries=shard.num_queries,
            ):
                report = backend.execute(plan, shard)
            if obs.enabled:
                record_shard(
                    obs.metrics, report.breakdown,
                    backend=backend.name, shard=shard.index,
                )
            return report

        use_pool = (
            self.parallel and len(shards) > 1 and backend.capabilities.thread_safe
        )
        if use_pool:
            workers = self.max_workers or min(len(shards), os.cpu_count() or 1)
            logger.debug(
                "executing %d shard(s) on %s via %d worker(s)",
                len(shards), backend.name, workers,
            )
            with ThreadPoolExecutor(max_workers=workers) as pool:
                reports = list(pool.map(run_shard, shards))
        else:
            logger.debug(
                "executing %d shard(s) on %s sequentially", len(shards), backend.name
            )
            reports = [run_shard(shard) for shard in shards]
        with obs.span("merge", backend=backend.name, shards=len(reports)):
            return backend.merge(plan, reports)


def run_plan(
    backend: Backend,
    plan: ExecutionPlan,
    scheduler: BatchScheduler | None = None,
) -> BackendReport:
    """Convenience wrapper: execute ``plan`` with a default scheduler."""
    return (scheduler or BatchScheduler()).execute(backend, plan)
