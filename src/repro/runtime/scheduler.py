"""Sharded batch scheduler: fault-isolated execution of a plan's shards.

Large query batches are split into shards by the planner; the scheduler
drives a backend over them in one of three execution modes — sequentially
by default, through a thread pool for backends whose execution is thread
safe (the functional stepper releases the GIL inside its numpy kernels,
so shards genuinely overlap), or through a *process pool* for backends
that declare ``process_safe``: each worker process materializes the
pickled (backend, plan) payload once, executes shard attempts under its
own observer, and ships the report plus exported metrics/spans back for
the parent to merge.  Shard reports always merge in shard order, so the
merged paths/latencies are in global query-id order and the result is
independent of worker scheduling — and because per-query RNG is keyed by
global query id, walks are byte-identical across all three modes.

A failed shard never aborts its siblings.  Each shard runs under the
scheduler's :class:`RetryPolicy` (attempt budget, exponential backoff
with deterministic jitter, optional per-attempt timeout) and a shard that
exhausts its attempts becomes a structured :class:`ShardFailure` instead
of an exception tearing down the pool.  What happens next is the
``strict`` flag's choice:

* ``strict=True`` (default) — any failure raises
  :class:`~repro.errors.ShardExecutionError` carrying every
  :class:`ShardFailure`;
* ``strict=False`` — surviving shards merge into a partial result (still
  in global query-id order) and the failures ride along on the
  :class:`BatchOutcome`.

Retries and failures are recorded through the metrics registry
(``run.retries``, ``run.shard_failures``) and each attempt is a ``shard``
span, so degraded runs stay fully observable.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, ShardExecutionError, ShardTimeoutError
from repro.obs import (
    Observer,
    current_observer,
    record_checkpoint,
    record_resumed_shard,
    record_retry,
    record_shard,
    record_shard_failure,
    use_observer,
)
from repro.runtime.backends import Backend, BackendReport
from repro.runtime.durability import RunCheckpoint
from repro.runtime.plan import ExecutionPlan, QueryShard

logger = logging.getLogger(__name__)

#: Legal values of :attr:`BatchScheduler.mode`.
EXECUTION_MODES = ("sequential", "thread", "process")

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """One SplitMix64 step — the repo-wide seed-mixing primitive."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler treats a shard attempt that fails.

    Backoff before retry ``a`` (the second attempt is ``a = 2``) is

        ``backoff_base_s * backoff_factor ** (a - 2)``

    scaled down by up to ``jitter`` — the jitter fraction is derived from
    ``(jitter_seed, shard, attempt)`` with SplitMix64, so two runs of the
    same configuration wait exactly the same amount (wall-clock
    reproducibility is a repo invariant; there is no ambient randomness).
    """

    #: Total attempts per shard (1 = no retry).
    max_attempts: int = 1
    #: Delay before the first retry; 0 retries immediately.
    backoff_base_s: float = 0.0
    #: Multiplier applied per additional retry (exponential backoff).
    backoff_factor: float = 2.0
    #: Fraction of the delay randomized away deterministically, in [0, 1].
    jitter: float = 0.0
    #: Seed of the deterministic jitter stream.
    jitter_seed: int = 0
    #: Wall-clock budget of one shard attempt (None = unlimited).
    shard_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ConfigError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_factor < 1:
            raise ConfigError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ConfigError(
                f"shard_timeout_s must be positive, got {self.shard_timeout_s}"
            )

    @property
    def retries(self) -> int:
        return self.max_attempts - 1

    def backoff_s(self, shard: int, attempt: int) -> float:
        """Deterministic delay before ``attempt`` (>= 2) of ``shard``."""
        if attempt <= 1 or self.backoff_base_s <= 0:
            return 0.0
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 2)
        if self.jitter <= 0:
            return base
        word = _splitmix64(
            (self.jitter_seed & _MASK64)
            ^ _splitmix64(shard * 0x10001 + attempt)
        )
        fraction = word / float(1 << 64)
        return base * (1.0 - self.jitter * fraction)


@dataclass(frozen=True)
class ShardFailure:
    """One shard that exhausted its attempt budget."""

    #: Shard index in the plan's layout.
    shard: int
    #: Global query id of the shard's first query.
    offset: int
    #: Number of (sampled) queries the shard would have walked.
    num_queries: int
    #: Exception class name of the final attempt.
    error_type: str
    #: Exception message of the final attempt.
    message: str
    #: Attempts consumed (== the policy's ``max_attempts``).
    attempts: int
    #: True when the final attempt hit the per-shard timeout.
    timed_out: bool = False

    def query_ids(self) -> np.ndarray:
        """Global ids of the queries this failure lost."""
        return self.offset + np.arange(self.num_queries, dtype=np.int64)

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "offset": self.offset,
            "num_queries": self.num_queries,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
        }


@dataclass(frozen=True)
class BatchOutcome:
    """What executing a plan produced: the merged report plus any failures."""

    #: Merged report over the surviving shards (all of them when ``ok``).
    report: BackendReport
    failures: tuple[ShardFailure, ...] = ()
    #: Total retry attempts consumed across every shard.
    retries: int = 0
    #: Shards restored from a checkpoint instead of re-executed.
    resumed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


# -- process-mode worker protocol ---------------------------------------------
#
# A process-pool worker unpickles the (backend, plan) payload exactly once
# (in its initializer) and then executes shard attempts against that
# resident state, so per-attempt traffic is just two small integers out
# and one shard report (plus the worker observer's exports) back.

_WORKER_STATE: dict[str, object] = {}


def _process_worker_init(payload: bytes) -> None:
    """Pool-worker initializer: materialize the run state once per worker."""
    backend, plan, observed = pickle.loads(payload)
    _WORKER_STATE["backend"] = backend
    _WORKER_STATE["plan"] = plan
    _WORKER_STATE["observed"] = observed


def _process_worker_ready() -> bool:
    """No-op warmup task: forces a worker process to spawn."""
    return True


def _process_shard_attempt(index: int, attempt: int):
    """Execute one shard attempt inside a pool worker.

    Returns ``(report, metric_state, span_records)``: the worker runs
    under a fresh :class:`~repro.obs.Observer` and ships its exported
    metrics and finished spans back for the parent to merge (the parent
    owns ``record_shard`` — the worker never double-counts it).
    """
    backend = _WORKER_STATE["backend"]
    plan = _WORKER_STATE["plan"]
    shard = next(s for s in plan.shards if s.index == index)
    # Stateful wrappers (fault injection) track attempts per shard; a
    # retry may land on a worker that never saw the earlier attempts, so
    # let the wrapper fast-forward its count to the scheduler's.
    prime = getattr(backend, "prime_attempt", None)
    if prime is not None:
        prime(index, attempt)
    if not _WORKER_STATE["observed"]:
        return backend.execute(plan, shard), [], []
    worker_obs = Observer()
    with use_observer(worker_obs):
        report = backend.execute(plan, shard)
    return report, worker_obs.metrics.export_state(), worker_obs.spans.finished()


def _call_with_timeout(call, timeout_s: float, shard: int, attempt: int):
    """Run ``call`` on a watchdog thread, abandoning it past ``timeout_s``.

    Backends cannot be interrupted cooperatively mid-kernel, so a
    timed-out attempt keeps running on its (daemon) thread while the
    scheduler moves on — the standard thread-pool trade-off.
    """
    box: dict[str, object] = {}
    done = threading.Event()

    def target() -> None:
        try:
            box["report"] = call()
        except BaseException as exc:  # noqa: BLE001 - re-raised on the caller
            box["error"] = exc
        finally:
            done.set()

    worker = threading.Thread(
        target=target, name=f"shard-{shard}-attempt-{attempt}", daemon=True
    )
    worker.start()
    if not done.wait(timeout_s):
        raise ShardTimeoutError(
            f"shard {shard} attempt {attempt} exceeded the "
            f"{timeout_s:.3g}s shard timeout"
        )
    if "error" in box:
        raise box["error"]
    return box["report"]


@dataclass
class BatchScheduler:
    """Execution policy for a planned batch.

    Parameters
    ----------
    parallel:
        Execute shards through a thread pool when the backend declares
        ``thread_safe``.  Walks are identical either way (per-query RNG);
        only wall-clock changes.  Shorthand for ``mode="thread"``.
    max_workers:
        Pool width; defaults to ``cpu_count`` and is always clamped to
        the shard count.  Zero or negative widths are a
        :class:`~repro.errors.ConfigError` at construction, not a
        mid-run ``ThreadPoolExecutor`` crash.
    retry:
        Per-shard attempt budget, backoff and timeout (default: one
        attempt, no timeout).
    strict:
        ``True`` raises :class:`~repro.errors.ShardExecutionError` on any
        shard failure; ``False`` merges the survivors into a partial
        result and reports the failures on the :class:`BatchOutcome`.
    mode:
        Explicit execution mode — ``"sequential"``, ``"thread"`` or
        ``"process"`` — overriding ``parallel``.  ``"process"`` fans
        shards out to a ``ProcessPoolExecutor`` and requires the backend
        to declare ``process_safe`` (a :class:`~repro.errors.ConfigError`
        otherwise); walks stay byte-identical because per-query RNG is
        keyed by global query id, and each worker's metrics/spans are
        merged back into the parent observer.  ``None`` (default) keeps
        the historical behavior: ``"thread"`` when ``parallel`` else
        ``"sequential"``.
    """

    parallel: bool = False
    max_workers: int | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    strict: bool = True
    mode: str | None = None

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.mode is not None and self.mode not in EXECUTION_MODES:
            raise ConfigError(
                f"mode must be one of {EXECUTION_MODES}, got {self.mode!r}"
            )

    @property
    def resolved_mode(self) -> str:
        """The effective execution mode (``mode`` over ``parallel``)."""
        if self.mode is not None:
            return self.mode
        return "thread" if self.parallel else "sequential"

    def execute(
        self,
        backend: Backend,
        plan: ExecutionPlan,
        checkpoint: RunCheckpoint | None = None,
    ) -> BatchOutcome:
        """Run every shard of ``plan`` on ``backend`` and merge the survivors.

        With a ``checkpoint``, shards already persisted in it are restored
        instead of re-executed, and every shard that completes here is
        persisted the moment it finishes — so a killed process resumes at
        the first unfinished shard and, because per-query RNG lanes are
        keyed by global query id, merges to byte-identical walks.
        """
        shards = plan.shards
        if not shards:
            raise ValueError("plan has no shards to execute")
        mode = self.resolved_mode
        if mode == "process" and not backend.capabilities.process_safe:
            raise ConfigError(
                f"backend {backend.name!r} does not declare process_safe "
                f"execution; use mode='thread' or mode='sequential'"
            )
        obs = current_observer()
        policy = self.retry

        restored: dict[int, BackendReport] = {}
        if checkpoint is not None:
            valid = {shard.index for shard in shards}
            restored = {
                index: report
                for index, report in checkpoint.load_completed().items()
                if index in valid
            }
            if restored:
                logger.info(
                    "resume: restoring %d of %d shard(s) from %s",
                    len(restored), len(shards), checkpoint.directory,
                )
                if obs.enabled:
                    for index in sorted(restored):
                        record_resumed_shard(
                            obs.metrics, backend=backend.name, shard=index
                        )
                        # Replay the restored report's counters so a
                        # resumed run reports the same dac./dyb./pipeline.
                        # totals as an uninterrupted one.
                        record_shard(
                            obs.metrics, restored[index].breakdown,
                            backend=backend.name, shard=index,
                        )

        # Assigned a live pool for the duration of process-mode execution;
        # attempt_shard dispatches on it at call time.
        process_pool: ProcessPoolExecutor | None = None

        def attempt_shard_process(shard: QueryShard, attempt: int) -> BackendReport:
            # The attempt runs in a pool worker under its own observer;
            # the parent opens the shard span, waits, then grafts the
            # worker's spans under it and folds its metric deltas in.
            with use_observer(obs), obs.span(
                "shard", backend=backend.name, shard=shard.index,
                queries=shard.num_queries, attempt=attempt, mode="process",
            ) as shard_span:
                future = process_pool.submit(
                    _process_shard_attempt, shard.index, attempt
                )
                try:
                    report, metric_state, span_records = future.result(
                        timeout=policy.shard_timeout_s
                    )
                except FuturesTimeoutError:
                    # The worker keeps running its stale attempt (process
                    # tasks cannot be interrupted); the retry queues
                    # behind it — the same trade-off as the thread path.
                    future.cancel()
                    raise ShardTimeoutError(
                        f"shard {shard.index} attempt {attempt} exceeded the "
                        f"{policy.shard_timeout_s:.3g}s shard timeout"
                    ) from None
                if obs.enabled:
                    obs.metrics.merge_state(metric_state)
                    obs.spans.adopt(
                        span_records,
                        parent_id=shard_span.span_id,
                        offset_s=shard_span.start_s,
                    )
            if obs.enabled:
                record_shard(
                    obs.metrics, report.breakdown,
                    backend=backend.name, shard=shard.index,
                )
            return report

        def attempt_shard(shard: QueryShard, attempt: int) -> BackendReport:
            if process_pool is not None:
                return attempt_shard_process(shard, attempt)

            def call() -> BackendReport:
                # Worker threads start with a fresh context, so re-install
                # the observer; spans opened by the backend then nest under
                # the shard span on this thread's own track.
                with use_observer(obs), obs.span(
                    "shard", backend=backend.name, shard=shard.index,
                    queries=shard.num_queries, attempt=attempt,
                ):
                    report = backend.execute(plan, shard)
                if obs.enabled:
                    record_shard(
                        obs.metrics, report.breakdown,
                        backend=backend.name, shard=shard.index,
                    )
                return report

            if policy.shard_timeout_s is None:
                return call()
            return _call_with_timeout(
                call, policy.shard_timeout_s, shard.index, attempt
            )

        def run_shard(shard: QueryShard) -> tuple[BackendReport | ShardFailure, int]:
            last: Exception | None = None
            for attempt in range(1, policy.max_attempts + 1):
                if attempt > 1:
                    if obs.enabled:
                        record_retry(
                            obs.metrics, backend=backend.name, shard=shard.index
                        )
                    delay = policy.backoff_s(shard.index, attempt)
                    if delay > 0:
                        time.sleep(delay)
                try:
                    report = attempt_shard(shard, attempt)
                except Exception as exc:  # noqa: BLE001 - isolation boundary
                    last = exc
                    logger.warning(
                        "shard %d attempt %d/%d on %s failed: %s: %s",
                        shard.index, attempt, policy.max_attempts,
                        backend.name, type(exc).__name__, exc,
                    )
                else:
                    if checkpoint is not None:
                        try:
                            checkpoint.record_shard(shard.index, report)
                            if obs.enabled:
                                record_checkpoint(
                                    obs.metrics, backend=backend.name,
                                    shard=shard.index,
                                )
                        except (OSError, TypeError, ValueError) as exc:
                            # A checkpoint that cannot be written costs
                            # resumability, never the run itself.
                            logger.warning(
                                "failed to checkpoint shard %d: %s: %s",
                                shard.index, type(exc).__name__, exc,
                            )
                    return report, attempt
            failure = ShardFailure(
                shard=shard.index,
                offset=shard.offset,
                num_queries=shard.num_queries,
                error_type=type(last).__name__,
                message=str(last),
                attempts=policy.max_attempts,
                timed_out=isinstance(last, ShardTimeoutError),
            )
            return failure, policy.max_attempts

        pending = [shard for shard in shards if shard.index not in restored]
        if mode == "process" and len(pending) > 1:
            requested = self.max_workers or (os.cpu_count() or 1)
            workers = min(requested, len(pending))
            logger.debug(
                "executing %d shard(s) on %s via %d process worker(s)",
                len(pending), backend.name, workers,
            )
            if obs.enabled:
                obs.metrics.gauge(
                    "run.process_workers", backend=backend.name
                ).set(workers)
            payload = pickle.dumps((backend, plan, obs.enabled))
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context(start_method),
                initializer=_process_worker_init,
                initargs=(payload,),
            ) as pool:
                # Spawn every worker from this thread before the retry
                # coordinators start (forking from a multithreaded parent
                # mid-run risks inheriting held locks).
                for warmup in [
                    pool.submit(_process_worker_ready) for _ in range(workers)
                ]:
                    warmup.result()
                process_pool = pool
                try:
                    # Retry loops (backoff, checkpointing) stay on parent
                    # threads — one per shard; the process pool bounds the
                    # actual execution parallelism.
                    with ThreadPoolExecutor(
                        max_workers=len(pending)
                    ) as coordinator:
                        executed = list(coordinator.map(run_shard, pending))
                finally:
                    process_pool = None
        elif (
            mode == "thread"
            and len(pending) > 1
            and backend.capabilities.thread_safe
        ):
            requested = self.max_workers or (os.cpu_count() or 1)
            workers = min(requested, len(pending))
            logger.debug(
                "executing %d shard(s) on %s via %d worker(s)",
                len(pending), backend.name, workers,
            )
            with ThreadPoolExecutor(max_workers=workers) as pool:
                executed = list(pool.map(run_shard, pending))
        else:
            logger.debug(
                "executing %d shard(s) on %s sequentially", len(pending), backend.name
            )
            executed = [run_shard(shard) for shard in pending]

        # Stitch restored and freshly executed shards back into shard
        # order so the merge stays in global query-id order.
        by_index = {shard.index: outcome for shard, outcome in zip(pending, executed)}
        outcomes = [
            (restored[shard.index], 0)
            if shard.index in restored
            else by_index[shard.index]
            for shard in shards
        ]

        reports = [r for r, _ in outcomes if isinstance(r, BackendReport)]
        failures = tuple(r for r, _ in outcomes if isinstance(r, ShardFailure))
        retries = sum(max(0, attempts - 1) for _, attempts in outcomes)
        if failures:
            if obs.enabled:
                for failure in failures:
                    record_shard_failure(
                        obs.metrics, failure, backend=backend.name
                    )
            detail = "; ".join(
                f"shard {f.shard} ({f.error_type} after {f.attempts} attempt(s)): "
                f"{f.message}"
                for f in failures
            )
            if self.strict:
                raise ShardExecutionError(
                    f"{len(failures)} of {len(shards)} shard(s) failed: {detail}",
                    failures=failures,
                )
            if not reports:
                raise ShardExecutionError(
                    f"every shard failed, no partial result to return: {detail}",
                    failures=failures,
                )
            logger.warning(
                "degraded run: %d of %d shard(s) failed, merging %d survivor(s)",
                len(failures), len(shards), len(reports),
            )
        with obs.span("merge", backend=backend.name, shards=len(reports)):
            merged = backend.merge(plan, reports)
        return BatchOutcome(
            report=merged,
            failures=failures,
            retries=retries,
            resumed=len(restored),
        )


def run_plan(
    backend: Backend,
    plan: ExecutionPlan,
    scheduler: BatchScheduler | None = None,
) -> BackendReport:
    """Convenience wrapper: execute ``plan`` and return the merged report.

    Uses a default (strict) scheduler unless one is given, so any shard
    failure raises; callers that need the per-shard failure records use
    :meth:`BatchScheduler.execute` directly and read the
    :class:`BatchOutcome`.
    """
    return (scheduler or BatchScheduler()).execute(backend, plan).report
