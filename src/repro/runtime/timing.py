"""Unified timing results for every execution backend.

The public API used to type ``RunResult.breakdown`` as the union
``FPGATimeBreakdown | CPUTimeBreakdown | CycleSimResult``, which forced
callers into ``isinstance`` ladders and made shard merging ad hoc.  This
module replaces the union with a small dataclass hierarchy:

* :class:`TimingBreakdown` — the backend-independent surface every caller
  can rely on (``kernel_s``, ``total_steps``, ``num_queries``,
  ``steps_per_second``, ``components()``), plus the backend-native object
  on ``.detail``;
* one subclass per backend family, each knowing how to **merge** the
  per-shard reports the batch scheduler produces back into a single
  breakdown.

Backward compatibility: attribute access falls through to ``detail``, so
existing code reading e.g. ``result.breakdown.cache_accesses`` (analytic
model) or ``result.breakdown.instances`` (cycle simulator) keeps working
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Sequence

import numpy as np


@dataclass
class TimingBreakdown:
    """Backend-independent view of one modeled execution.

    ``detail`` holds the backend-native breakdown (``FPGATimeBreakdown``,
    ``CycleSimResult`` or ``CPUTimeBreakdown``); unknown attributes are
    delegated to it so legacy call sites keep working.
    """

    backend: str
    kernel_s: float
    total_steps: int
    num_queries: int
    setup_s: float = 0.0
    detail: Any = None

    @property
    def steps_per_second(self) -> float:
        """Kernel-time step throughput (the paper's figure-of-merit)."""
        return self.total_steps / self.kernel_s if self.kernel_s > 0 else 0.0

    def components(self) -> dict[str, float]:
        """Named time components (seconds); backend families refine this."""
        return {"kernel": self.kernel_s, "setup": self.setup_s}

    def __getattr__(self, name: str) -> Any:
        # Only reached when normal lookup fails; fall through to the
        # backend-native breakdown for compatibility with pre-runtime code.
        if name.startswith("_") or name == "detail":
            raise AttributeError(name)
        detail = self.__dict__.get("detail")
        if detail is None:
            raise AttributeError(
                f"{type(self).__name__} has no attribute {name!r} and no detail"
            )
        return getattr(detail, name)

    @classmethod
    def merged(cls, parts: Sequence["TimingBreakdown"]) -> "TimingBreakdown":
        """Combine per-shard breakdowns of a sequentially executed batch."""
        if not parts:
            raise ValueError("cannot merge zero breakdowns")
        if len(parts) == 1:
            return parts[0]
        return cls(
            backend=parts[0].backend,
            kernel_s=sum(p.kernel_s for p in parts),
            total_steps=sum(p.total_steps for p in parts),
            num_queries=sum(p.num_queries for p in parts),
            setup_s=sum(p.setup_s for p in parts),
            detail=cls._merge_details(parts),
        )

    @classmethod
    def _merge_details(cls, parts: Sequence["TimingBreakdown"]) -> Any:
        return parts[0].detail


@dataclass
class FPGAModelBreakdown(TimingBreakdown):
    """Timing from the analytic performance model (``fpga-model``)."""

    def components(self) -> dict[str, float]:
        native = self.detail
        out = {"kernel": self.kernel_s, "setup": self.setup_s}
        if native is not None:
            hz = native.config.frequency_hz
            out.update(
                memory=float(native.mem_cycles.sum()) / hz,
                sampler=float(native.sampler_cycles.sum()) / hz,
                controller=float(native.controller_cycles.sum()) / hz,
                fill=float(native.fill_cycles) / hz,
            )
        return out

    @classmethod
    def _merge_details(cls, parts: Sequence[TimingBreakdown]) -> Any:
        natives = [p.detail for p in parts]
        if any(n is None for n in natives):
            return natives[0]
        first = natives[0]
        latencies = [n.query_latency_cycles for n in natives]
        merged_latency = (
            np.concatenate(latencies) if all(x is not None for x in latencies) else None
        )
        # Re-running __post_init__ via replace() recomputes kernel_cycles
        # from the summed busy arrays — sequential shards stack resources.
        return replace(
            first,
            total_steps=sum(n.total_steps for n in natives),
            num_queries=sum(n.num_queries for n in natives),
            mem_cycles=np.sum([n.mem_cycles for n in natives], axis=0),
            sampler_cycles=np.sum([n.sampler_cycles for n in natives], axis=0),
            controller_cycles=np.sum([n.controller_cycles for n in natives], axis=0),
            fill_cycles=sum(n.fill_cycles for n in natives),
            cache_accesses=sum(n.cache_accesses for n in natives),
            cache_hits=sum(n.cache_hits for n in natives),
            bytes_valid=sum(n.bytes_valid for n in natives),
            bytes_loaded=sum(n.bytes_loaded for n in natives),
            query_latency_cycles=merged_latency,
        )


@dataclass
class FPGACycleBreakdown(TimingBreakdown):
    """Timing from the cycle-accurate simulator (``fpga-cycle``)."""

    def components(self) -> dict[str, float]:
        out = {"kernel": self.kernel_s, "setup": self.setup_s}
        native = self.detail
        if native is not None:
            for module, busy in native.utilization_report().items():
                out[module] = busy * self.kernel_s
        return out

    @classmethod
    def _merge_details(cls, parts: Sequence[TimingBreakdown]) -> Any:
        from repro.fpga.accelerator import CycleSimResult, InstanceStats

        natives = [p.detail for p in parts]
        if any(n is None for n in natives):
            return natives[0]
        first = natives[0]
        paths: dict[int, list[int]] = {}
        latencies: dict[int, int] = {}
        for native in natives:
            paths.update(native.paths)
            latencies.update(native.query_latency_cycles)
        n_instances = max(len(n.instances) for n in natives)
        instances = []
        for idx in range(n_instances):
            shard_stats = [n.instances[idx] for n in natives if idx < len(n.instances)]
            module_busy: dict[str, int] = {}
            fifo_stalls: dict[str, int] = {}
            for stats in shard_stats:
                for module, busy in stats.module_busy.items():
                    module_busy[module] = module_busy.get(module, 0) + busy
                for fifo, stalled in stats.fifo_stalls.items():
                    fifo_stalls[fifo] = fifo_stalls.get(fifo, 0) + stalled
            instances.append(
                InstanceStats(
                    cycles=sum(s.cycles for s in shard_stats),
                    dram_busy_cycles=sum(s.dram_busy_cycles for s in shard_stats),
                    dram_bytes=sum(s.dram_bytes for s in shard_stats),
                    dram_requests=sum(s.dram_requests for s in shard_stats),
                    cache_hits=sum(s.cache_hits for s in shard_stats),
                    cache_misses=sum(s.cache_misses for s in shard_stats),
                    bytes_valid=sum(s.bytes_valid for s in shard_stats),
                    bytes_loaded=sum(s.bytes_loaded for s in shard_stats),
                    module_busy=module_busy,
                    fifo_stalls=fifo_stalls,
                )
            )
        return CycleSimResult(
            config=first.config,
            cycles=sum(n.cycles for n in natives),
            paths=paths,
            instances=instances,
            query_latency_cycles=latencies,
            tracer=None,
        )


@dataclass
class CPUBaselineBreakdown(TimingBreakdown):
    """Timing from the modeled ThunderRW engine (``cpu-baseline``)."""

    def components(self) -> dict[str, float]:
        out = {"kernel": self.kernel_s, "setup": self.setup_s}
        native = self.detail
        if native is not None:
            out.update(
                sequential=native.seq_time_s,
                random=native.rand_time_s,
                instructions=native.instr_time_s,
                init=native.init_time_s,
            )
        return out

    @classmethod
    def _merge_details(cls, parts: Sequence[TimingBreakdown]) -> Any:
        natives = [p.detail for p in parts]
        if any(n is None for n in natives):
            return natives[0]
        first = natives[0]
        latencies = [n.query_latency_s for n in natives]
        merged_latency = (
            np.concatenate(latencies) if all(x is not None for x in latencies) else None
        )
        total_steps = sum(n.total_steps for n in natives)
        miss = (
            sum(n.llc_miss_ratio * n.total_steps for n in natives) / total_steps
            if total_steps
            else first.llc_miss_ratio
        )
        return replace(
            first,
            total_steps=total_steps,
            num_queries=sum(n.num_queries for n in natives),
            seq_time_s=sum(n.seq_time_s for n in natives),
            rand_time_s=sum(n.rand_time_s for n in natives),
            instr_time_s=sum(n.instr_time_s for n in natives),
            init_time_s=sum(n.init_time_s for n in natives),
            query_latency_s=merged_latency,
            llc_miss_ratio=miss,
        )
