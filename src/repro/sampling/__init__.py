"""Sampling substrate: RNG streams and weighted sampling methods.

This package collects every sampling primitive the paper touches:

* :mod:`repro.sampling.rng` — the ThundeRiNG substitute: many independent,
  deterministic 32-bit uniform lanes, one value per lane per cycle.
* :mod:`repro.sampling.reservoir` — sequential weighted reservoir sampling
  (WRS), the single-pass method LightRW is built around.
* :mod:`repro.sampling.parallel_wrs` — the paper's Algorithm 4.1: the
  parallelized WRS that consumes ``k`` items per cycle, including the
  integer-only comparison of Equation (8).
* :mod:`repro.sampling.inverse_transform` — the two-phase
  initialization/generation sampler ThunderRW is configured with.
* :mod:`repro.sampling.alias` — Walker's alias method, the other classic
  table-based sampler referenced as a baseline.
"""

from repro.sampling.alias import AliasTable
from repro.sampling.inverse_transform import InverseTransformTable
from repro.sampling.parallel_wrs import ParallelWRS, integer_accept, parallel_wrs_sample
from repro.sampling.reservoir import reservoir_sample, reservoir_sample_stream
from repro.sampling.rng import ThundeRingRNG, XorShift128Plus, derive_seed, splitmix64
from repro.sampling.stattests import BatteryResult, run_battery

__all__ = [
    "AliasTable",
    "BatteryResult",
    "InverseTransformTable",
    "ParallelWRS",
    "ThundeRingRNG",
    "XorShift128Plus",
    "derive_seed",
    "integer_accept",
    "run_battery",
    "parallel_wrs_sample",
    "reservoir_sample",
    "reservoir_sample_stream",
    "splitmix64",
]
