"""Walker's alias method (Vose's O(n) construction).

The other classic table-based weighted sampler the paper cites as a baseline
(reference [29]).  Like inverse-transform sampling it needs an O(n)
initialization pass producing an O(n) table, which is precisely the
synchronization barrier and intermediate-data traffic that LightRW's
reservoir sampling eliminates; it is included here so the CPU baseline can
be configured with either method and so the ablation benchmarks can compare
initialization costs.
"""

from __future__ import annotations

import numpy as np


class AliasTable:
    """Alias table over a non-negative weight vector.

    Sampling draws one uniform, splits it into a slot index and a coin, and
    returns either the slot or its alias — O(1) per draw after the O(n)
    build.
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
        if weights.size and weights.min() < 0:
            raise ValueError("weights must be non-negative")
        n = weights.size
        self.n = n
        self.total = float(weights.sum())
        self.prob = np.zeros(n, dtype=np.float64)
        self.alias = np.zeros(n, dtype=np.int64)
        # Memory accounting mirrors InverseTransformTable: each item is read
        # once and each table slot written once (prob + alias counted as one
        # logical entry).
        self.init_reads = n
        self.init_writes = n
        if n == 0 or self.total <= 0.0:
            return
        scaled = weights * (n / self.total)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            g = large.pop()
            self.prob[s] = scaled[s]
            self.alias[s] = g
            scaled[g] = (scaled[g] + scaled[s]) - 1.0
            if scaled[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        for i in large:
            self.prob[i] = 1.0
        for i in small:
            # Only reachable through floating-point round-off.
            self.prob[i] = 1.0

    def __len__(self) -> int:
        return self.n

    def sample(self, uniform: float) -> int:
        """Draw one index from a single uniform in ``[0, 1)``."""
        if not 0.0 <= uniform < 1.0:
            raise ValueError(f"uniform must be in [0, 1), got {uniform}")
        if self.n == 0 or self.total <= 0.0:
            return -1
        scaled = uniform * self.n
        slot = min(int(scaled), self.n - 1)
        coin = scaled - slot
        if coin < self.prob[slot]:
            return slot
        return int(self.alias[slot])

    def sample_many(self, uniforms: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sample` over an array of uniforms."""
        uniforms = np.asarray(uniforms, dtype=np.float64)
        if self.n == 0 or self.total <= 0.0:
            return np.full(uniforms.shape, -1, dtype=np.int64)
        scaled = uniforms * self.n
        slots = np.minimum(scaled.astype(np.int64), self.n - 1)
        coins = scaled - slots
        take_alias = coins >= self.prob[slots]
        return np.where(take_alias, self.alias[slots], slots).astype(np.int64)
