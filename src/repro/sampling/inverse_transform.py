"""Inverse transform sampling — ThunderRW's configured method.

The two-phase structure is exactly what Section 2.2 of the paper describes
and what LightRW removes:

* **initialization** builds an intermediate table describing the discrete
  distribution — here the inclusive prefix-sum (CDF) of the weights, with
  O(n) time and O(n) space; on a CPU this table lives in memory and is the
  source of the ``2 |N(v)|`` intermediate accesses per step;
* **generation** draws one uniform and binary-searches the table.

The class keeps an explicit count of the memory touches each phase performs
so the CPU cost model (:mod:`repro.cpu.memory_model`) can charge them.
"""

from __future__ import annotations

import numpy as np


class InverseTransformTable:
    """CDF table over a non-negative weight vector.

    Parameters
    ----------
    weights:
        1-D array of non-negative weights.  An all-zero vector is allowed
        and makes :meth:`sample` return ``-1`` (nothing samplable).
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
        if weights.size and weights.min() < 0:
            raise ValueError("weights must be non-negative")
        self.cdf = np.cumsum(weights)
        self.total = float(self.cdf[-1]) if weights.size else 0.0
        # Memory accounting (elements touched): read every weight, write
        # every table entry.
        self.init_reads = weights.size
        self.init_writes = weights.size

    def __len__(self) -> int:
        return int(self.cdf.size)

    def sample(self, uniform: float) -> int:
        """Draw one index given a uniform in ``[0, 1)``.

        Items with zero weight are never returned; if the total weight is
        zero, returns ``-1``.
        """
        if not 0.0 <= uniform < 1.0:
            raise ValueError(f"uniform must be in [0, 1), got {uniform}")
        if self.total <= 0.0:
            return -1
        target = uniform * self.total
        index = int(np.searchsorted(self.cdf, target, side="right"))
        # Guard against landing exactly on the total due to rounding.
        return min(index, len(self) - 1)

    def sample_many(self, uniforms: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sample` over an array of uniforms."""
        uniforms = np.asarray(uniforms, dtype=np.float64)
        if self.total <= 0.0:
            return np.full(uniforms.shape, -1, dtype=np.int64)
        targets = uniforms * self.total
        indices = np.searchsorted(self.cdf, targets, side="right")
        return np.minimum(indices, len(self) - 1).astype(np.int64)
