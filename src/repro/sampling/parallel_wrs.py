"""Parallel weighted reservoir sampling — the paper's Algorithm 4.1.

The sequential WRS acceptance test for item ``i`` needs the running weight
sum of all earlier items, which serializes the loop.  Algorithm 4.1 breaks
the dependency by processing ``k`` items per cycle:

1. compute the *intra-batch* inclusive prefix sum ``W_ps`` of the k weights,
2. add the carried total ``w_sum`` of all previous batches (Equation 5),
3. test each lane independently against its own random lane,
4. the highest-index accepted lane wins the batch (it would have overwritten
   the others sequentially),
5. carry ``w_sum += sum(batch)`` to the next cycle.

Because the lanes use independent uniforms, the combined process is
*distribution-identical* to sequential WRS for every ``k`` — an invariant the
test suite checks both exactly (same uniforms, same result) and
statistically.

Acceptance is evaluated with the paper's integer-only comparison
(Equation 8), which the hardware computes with one shift, one DSP multiply
and one add per lane:

    p > r   <=>   2^32 * w > r* * (w_sum + W_ps) + w

with ``r*`` the raw 32-bit random integer.  :func:`integer_accept` implements
it exactly in 64-bit arithmetic (with an arbitrary-precision fallback when
the running weight sum exceeds 32 bits), so the cycle simulator and the fast
analytic model produce bit-identical decisions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.sampling.rng import ThundeRingRNG

_SHIFT32 = np.uint64(32)
_U32_LIMIT = 1 << 32


def integer_accept(
    weights: np.ndarray, inclusive_prefix: np.ndarray, r_star: np.ndarray
) -> np.ndarray:
    """Equation (8): exact integer acceptance test, vectorized.

    Parameters
    ----------
    weights:
        Per-lane fixed-point weights ``w`` (non-negative integers < 2^32).
    inclusive_prefix:
        Per-lane ``w_sum + W_ps[j]`` — the inclusive running weight total up
        to and including this lane.
    r_star:
        Per-lane raw 32-bit uniform integers.

    Returns
    -------
    ndarray of bool
        ``True`` where the lane's item is accepted as a candidate.

    Notes
    -----
    With ``inclusive_prefix < 2^32`` everything fits in uint64
    (``r* * prefix < 2^64``) and the comparison is done natively.  Larger
    running sums — possible only on extreme degree/weight combinations —
    fall back to Python integers, preserving exactness at some speed cost.
    """
    weights = np.asarray(weights)
    inclusive_prefix = np.asarray(inclusive_prefix)
    r_star = np.asarray(r_star)
    if weights.dtype.kind == "i" and weights.size and int(weights.min()) < 0:
        raise ValueError("weights must be non-negative")
    max_prefix = int(inclusive_prefix.max()) if inclusive_prefix.size else 0
    if max_prefix < _U32_LIMIT:
        w64 = np.asarray(weights, dtype=np.uint64)
        prefix64 = np.asarray(inclusive_prefix, dtype=np.uint64)
        r64 = np.asarray(r_star, dtype=np.uint64)
        with np.errstate(over="ignore"):
            lhs = w64 << _SHIFT32
            rhs = r64 * prefix64 + w64
        return lhs > rhs
    # Arbitrary-precision fallback for running sums beyond 32 bits.
    accept = np.zeros(weights.shape, dtype=bool)
    flat = accept.reshape(-1)
    w_flat = np.asarray(weights, dtype=object).reshape(-1)
    p_flat = np.asarray(inclusive_prefix, dtype=object).reshape(-1)
    r_flat = np.asarray(r_star, dtype=object).reshape(-1)
    for i in range(flat.size):
        w = int(w_flat[i])
        flat[i] = (w << 32) > int(r_flat[i]) * int(p_flat[i]) + w
    return accept


class ParallelWRS:
    """Stateful k-wide WRS sampler — the software twin of the WRS Sampler.

    One instance samples a *single* stream.  Feed it batches of up to ``k``
    items with :meth:`consume` (one call per hardware cycle) and read the
    reservoir with :meth:`result` when the stream ends.

    Weights are non-negative **integers** (fixed-point; see
    :mod:`repro.walks.base` for the quantization used by the walk layer).
    """

    def __init__(self, k: int, rng: ThundeRingRNG) -> None:
        if k <= 0:
            raise ConfigError(f"parallelism k must be positive, got {k}")
        if rng.n_lanes < k:
            raise ConfigError(
                f"rng provides {rng.n_lanes} lanes but k={k} are required"
            )
        self.k = int(k)
        self.rng = rng
        self.w_sum = 0
        self.reservoir_item: int | None = None
        self.items_seen = 0
        self.cycles = 0

    def reset(self) -> None:
        """Clear the reservoir for a fresh stream (does not reseed the RNG)."""
        self.w_sum = 0
        self.reservoir_item = None
        self.items_seen = 0

    def consume(self, items: np.ndarray, weights: np.ndarray) -> None:
        """Process one cycle's batch of at most ``k`` (item, weight) pairs.

        A partial batch (fewer than ``k`` items, e.g. the stream tail) still
        consumes a full cycle of random lanes, exactly as the hardware does:
        the unused lanes' uniforms are drawn and discarded.
        """
        items = np.asarray(items)
        weights = np.asarray(weights, dtype=np.uint64)
        if items.shape != weights.shape or items.ndim != 1:
            raise ValueError("items and weights must be equal-length 1-D arrays")
        if items.size > self.k:
            raise ValueError(f"batch of {items.size} exceeds k={self.k}")
        r_star = self.rng.next_uint32()[: self.k]
        self.cycles += 1
        if items.size == 0:
            return
        prefix = np.cumsum(weights, dtype=np.uint64) + np.uint64(self.w_sum & 0xFFFFFFFFFFFFFFFF)
        accept = integer_accept(weights, prefix, r_star[: items.size])
        accepted = np.nonzero(accept)[0]
        if accepted.size:
            self.reservoir_item = int(items[accepted[-1]])
        self.w_sum += int(weights.sum())
        self.items_seen += items.size

    def result(self) -> int | None:
        """Sampled item for the stream consumed so far (None if nothing)."""
        return self.reservoir_item


def parallel_wrs_sample(
    items: np.ndarray,
    weights: np.ndarray,
    k: int,
    rng: ThundeRingRNG,
) -> tuple[int, int]:
    """One-shot parallel WRS over a complete stream (vectorized fast path).

    Runs the whole stream in ``ceil(n / k)`` cycles worth of random draws
    and returns ``(sampled_item, cycles_consumed)``.  Bit-identical to
    feeding :class:`ParallelWRS` batch by batch with the same RNG state —
    the analytic FPGA model relies on this equivalence to reproduce the
    cycle simulator's walks exactly.

    Returns ``(-1, cycles)`` when every weight is zero.
    """
    items = np.asarray(items)
    weights = np.asarray(weights, dtype=np.uint64)
    if items.shape != weights.shape or items.ndim != 1:
        raise ValueError("items and weights must be equal-length 1-D arrays")
    if k <= 0:
        raise ConfigError(f"parallelism k must be positive, got {k}")
    n = items.size
    n_cycles = -(-n // k) if n else 0
    r_block = rng.uint32_block(n_cycles)[:, :k]
    if n == 0:
        return -1, 0
    prefix = np.cumsum(weights, dtype=np.uint64)
    r_flat = r_block.reshape(-1)[:n]
    accept = integer_accept(weights, prefix, r_flat)
    accepted = np.nonzero(accept)[0]
    if accepted.size == 0:
        return -1, n_cycles
    return int(items[accepted[-1]]), n_cycles
