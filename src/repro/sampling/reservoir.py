"""Sequential weighted reservoir sampling (WRS).

This is the single-pass sampling rule LightRW is built around (Section 3.2 of
the paper): stream the items once, and accept item ``i`` into the (size-one)
reservoir with probability

    p_i = w_i / sum_{m<=i} w_m .

After the stream ends the reservoir holds item ``i`` with probability
``w_i / sum(w)`` — the induction is classic (Efraimidis & Spirakis 2006, and
Chao 1982 for the size-one case) and is verified empirically by the test
suite with chi-square tests.

Two entry points are provided:

* :func:`reservoir_sample_stream` — the literal streaming form, consuming
  ``(weight, uniform)`` pairs one at a time; used by the cycle simulator's
  golden model and by docs.
* :func:`reservoir_sample` — a vectorized equivalent over a weight array,
  used by tests and the CPU-engine variant "ThunderRW w/ PWRS".
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


def reservoir_sample_stream(
    pairs: Iterable[tuple[float, float]],
) -> int:
    """Run sequential WRS over a stream of ``(weight, uniform)`` pairs.

    Parameters
    ----------
    pairs:
        Iterable of ``(w_i, r_i)`` where ``w_i >= 0`` is the item weight and
        ``r_i`` is a uniform random draw in ``[0, 1)`` consumed for that item.

    Returns
    -------
    int
        Index of the sampled item, or ``-1`` if every weight was zero (the
        stream offered nothing to sample — a MetaPath dead end).
    """
    selected = -1
    w_sum = 0.0
    for index, (weight, r) in enumerate(pairs):
        if weight < 0:
            raise ValueError(f"negative weight {weight} at stream index {index}")
        w_sum += weight
        if w_sum > 0 and weight / w_sum > r:
            selected = index
    return selected


def reservoir_sample(weights: np.ndarray, uniforms: np.ndarray) -> int:
    """Vectorized sequential WRS over a full weight array.

    Semantically identical to :func:`reservoir_sample_stream` over
    ``zip(weights, uniforms)``: the accepted set is computed for all items at
    once and the *last* accepted index wins, which is exactly what sequential
    overwriting of a size-one reservoir produces.
    """
    weights = np.asarray(weights, dtype=np.float64)
    uniforms = np.asarray(uniforms, dtype=np.float64)
    if weights.shape != uniforms.shape:
        raise ValueError(
            f"weights and uniforms must align, got {weights.shape} vs {uniforms.shape}"
        )
    if weights.size == 0:
        return -1
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    prefix = np.cumsum(weights)
    with np.errstate(invalid="ignore", divide="ignore"):
        probability = np.where(prefix > 0, weights / prefix, 0.0)
    accepted = np.nonzero(probability > uniforms)[0]
    if accepted.size == 0:
        return -1
    return int(accepted[-1])


def reservoir_sample_many(
    weights: np.ndarray, uniforms_iter: Iterator[np.ndarray], n_samples: int
) -> np.ndarray:
    """Draw ``n_samples`` independent WRS selections from one weight array.

    Convenience used by statistical tests; each draw consumes one uniform
    array from ``uniforms_iter``.
    """
    out = np.empty(n_samples, dtype=np.int64)
    for i in range(n_samples):
        out[i] = reservoir_sample(weights, next(uniforms_iter))
    return out
