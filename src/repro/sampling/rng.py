"""Multi-lane pseudo-random number generation (ThundeRiNG substitute).

The paper's WRS sampler needs ``k`` *independent* uniform random numbers per
clock cycle.  On the real FPGA this is provided by ThundeRiNG (Tan et al.,
ICS'21), which shares one costly state-generation core among many output
instances, each followed by a per-instance *decorrelator* that makes the
lanes statistically independent.

We reproduce that architecture in software with a **counter-based** design
that is bit-exact, seedable, and vectorizable:

* the *shared state* is a 64-bit cycle counter (one increment per cycle,
  shared by all lanes — exactly the cheap-to-share part of ThundeRiNG);
* the *per-lane decorrelator* is a keyed SplitMix64 finalizer, with the lane
  key derived from the seed and lane index.

Each lane therefore traverses its own SplitMix64 sequence; the finalizer is
the standard avalanche function used by Java's ``SplittableRandom`` and
passes BigCrush as a 64-bit mixer.  Independence across lanes is exercised
directly by the test suite (chi-square per lane, cross-lane correlation).

The module also provides :class:`XorShift128Plus`, a small classic PRNG used
by a few tests as an unrelated reference generator.
"""

from __future__ import annotations

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)

# Uniform floats are produced as uint32 / 2**32, matching the paper's
# fixed-point convention r = r* / (2**32 - 1) up to one ulp.
UINT32_SPAN = float(1 << 32)


def splitmix64(value: int | np.ndarray) -> int | np.ndarray:
    """SplitMix64 avalanche finalizer.

    Accepts either a Python int (returned as int) or a ``uint64`` ndarray
    (returned as ndarray).  This is the per-lane decorrelator as well as the
    seed-expansion function used everywhere a sub-seed is derived.
    """
    scalar = not isinstance(value, np.ndarray)
    if scalar:
        z = np.uint64(value & 0xFFFFFFFFFFFFFFFF)
    elif value.dtype == np.uint64:
        z = value
    else:
        z = value.astype(np.uint64)
    with np.errstate(over="ignore"):
        z = (z + _GOLDEN) & _MASK64
        z = ((z ^ (z >> np.uint64(30))) * _MIX1) & _MASK64
        z = ((z ^ (z >> np.uint64(27))) * _MIX2) & _MASK64
        z = z ^ (z >> np.uint64(31))
    return int(z) if scalar else z


def derive_seed(seed: int, *salts: int) -> int:
    """Derive a decorrelated 64-bit sub-seed from ``seed`` and salt values.

    Used to hand out independent seeds to sub-components (per query, per
    accelerator instance, per lane) without any shared-stream aliasing.
    """
    acc = seed & 0xFFFFFFFFFFFFFFFF
    for salt in salts:
        acc = splitmix64(acc ^ (salt & 0xFFFFFFFFFFFFFFFF))
    return splitmix64(acc)


class ThundeRingRNG:
    """``n_lanes`` independent uniform 32-bit streams, one value per cycle.

    Parameters
    ----------
    n_lanes:
        Number of independent output lanes (the sampler parallelism ``k``).
    seed:
        64-bit seed.  Two generators with the same seed and lane count
        produce identical output forever.

    The generator is deterministic and supports save/restore through the
    ``counter`` attribute, which is all the mutable state there is.
    """

    def __init__(self, n_lanes: int, seed: int = 0) -> None:
        if n_lanes <= 0:
            raise ValueError(f"n_lanes must be positive, got {n_lanes}")
        self.n_lanes = int(n_lanes)
        self.seed = int(seed) & 0xFFFFFFFFFFFFFFFF
        lane_ids = np.arange(self.n_lanes, dtype=np.uint64)
        with np.errstate(over="ignore"):
            raw = splitmix64(np.uint64(self.seed) ^ ((lane_ids + np.uint64(1)) * _GOLDEN))
        self._lane_keys = raw.astype(np.uint64)
        self.counter = 0

    # -- core generation ---------------------------------------------------

    def _raw64(self, counters: np.ndarray) -> np.ndarray:
        """Mix a column of counters against every lane key.

        ``counters`` has shape ``(n,)``; the result has shape
        ``(n, n_lanes)`` of uint64.
        """
        with np.errstate(over="ignore"):
            base = (counters[:, None].astype(np.uint64) * _GOLDEN) & _MASK64
            return splitmix64(base ^ self._lane_keys[None, :])

    def next_uint32(self) -> np.ndarray:
        """Return one uint32 per lane and advance the shared counter."""
        out = self.uint32_block(1)[0]
        return out

    def uint32_block(self, n_cycles: int) -> np.ndarray:
        """Return ``(n_cycles, n_lanes)`` uint32 values, advancing the counter.

        This is the vectorized path used by the analytic models: it produces
        exactly the same values, in the same order, as ``n_cycles`` calls to
        :meth:`next_uint32`.
        """
        if n_cycles < 0:
            raise ValueError(f"n_cycles must be non-negative, got {n_cycles}")
        counters = np.arange(self.counter, self.counter + n_cycles, dtype=np.uint64)
        self.counter += n_cycles
        raw = self._raw64(counters)
        return (raw >> np.uint64(32)).astype(np.uint32)

    def uniform_block(self, n_cycles: int) -> np.ndarray:
        """Return ``(n_cycles, n_lanes)`` float64 uniforms in ``[0, 1)``."""
        return self.uint32_block(n_cycles).astype(np.float64) / UINT32_SPAN

    def next_uniform(self) -> np.ndarray:
        """Return one float64 uniform in ``[0, 1)`` per lane."""
        return self.next_uint32().astype(np.float64) / UINT32_SPAN

    # -- state management --------------------------------------------------

    def fork(self, salt: int) -> "ThundeRingRNG":
        """Create an independent generator keyed off this one's seed."""
        return ThundeRingRNG(self.n_lanes, derive_seed(self.seed, salt))

    def reset(self) -> None:
        """Rewind the shared counter to cycle zero."""
        self.counter = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ThundeRingRNG(n_lanes={self.n_lanes}, seed={self.seed:#x}, "
            f"counter={self.counter})"
        )


class XorShift128Plus:
    """Classic xorshift128+ scalar generator.

    Kept as an architecturally distinct reference PRNG: statistical tests of
    :class:`ThundeRingRNG` compare against it, and it doubles as the "costly
    shared state core" in documentation examples.
    """

    def __init__(self, seed: int = 1) -> None:
        s = seed & 0xFFFFFFFFFFFFFFFF
        if s == 0:
            s = 0x853C49E6748FEA9B
        self._s0 = splitmix64(s)
        self._s1 = splitmix64(self._s0)
        if self._s0 == 0 and self._s1 == 0:
            self._s1 = 1

    def next_uint64(self) -> int:
        s1 = self._s0
        s0 = self._s1
        result = (s0 + s1) & 0xFFFFFFFFFFFFFFFF
        self._s0 = s0
        s1 ^= (s1 << 23) & 0xFFFFFFFFFFFFFFFF
        self._s1 = s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26)
        return result

    def next_uint32(self) -> int:
        return self.next_uint64() >> 32

    def next_uniform(self) -> float:
        return self.next_uint32() / UINT32_SPAN
