"""Empirical randomness test battery for the multi-lane RNG.

The paper selects ThundeRiNG because it passes "the most stringent
empirical randomness tests" (TestU01's BigCrush).  We cannot run BigCrush
offline, so this module implements a compact battery in its spirit —
frequency, serial-pair, gap, runs and birthday-spacings tests plus
cross-lane independence — applied to our substitute generator by the test
suite and exposed for users who swap in their own generator.

Each test returns a p-value; under the null (perfect randomness) p-values
are uniform, so extremely small values signal failure.  The battery
summarizes with the number of tests below a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats

from repro.sampling.rng import ThundeRingRNG


def frequency_test(bits: np.ndarray) -> float:
    """Monobit frequency: the share of ones is ~1/2."""
    n = bits.size
    ones = int(bits.sum())
    statistic = abs(ones - n / 2) / np.sqrt(n / 4)
    return float(2 * stats.norm.sf(statistic))


def serial_pair_test(values: np.ndarray, buckets: int = 16) -> float:
    """Consecutive-pair equidistribution over a buckets x buckets grid."""
    coded = (values >> np.uint32(32 - buckets.bit_length() + 1)).astype(np.int64)
    coded = coded % buckets
    pairs = coded[:-1] * buckets + coded[1:]
    counts = np.bincount(pairs, minlength=buckets * buckets)
    __, p_value = stats.chisquare(counts)
    return float(p_value)


def gap_test(uniforms: np.ndarray, low: float = 0.0, high: float = 0.25, max_gap: int = 16) -> float:
    """Gaps between visits to [low, high) are geometrically distributed."""
    in_band = (uniforms >= low) & (uniforms < high)
    positions = np.nonzero(in_band)[0]
    if positions.size < 50:
        return 1.0
    gaps = np.diff(positions) - 1
    gaps = np.minimum(gaps, max_gap)
    counts = np.bincount(gaps, minlength=max_gap + 1).astype(np.float64)
    p_band = high - low
    expected = np.array(
        [p_band * (1 - p_band) ** g for g in range(max_gap)] + [(1 - p_band) ** max_gap]
    ) * gaps.size
    keep = expected >= 5
    if keep.sum() < 2:
        return 1.0
    # Renormalize over kept buckets to preserve totals.
    __, p_value = stats.chisquare(
        counts[keep] * expected[keep].sum() / max(counts[keep].sum(), 1e-12),
        expected[keep],
    )
    return float(p_value)


def runs_test(uniforms: np.ndarray) -> float:
    """Wald-Wolfowitz runs test around the median."""
    binary = uniforms > np.median(uniforms)
    n1 = int(binary.sum())
    n2 = binary.size - n1
    if n1 == 0 or n2 == 0:
        return 0.0
    runs = 1 + int((binary[1:] != binary[:-1]).sum())
    mean = 2 * n1 * n2 / (n1 + n2) + 1
    variance = (mean - 1) * (mean - 2) / (n1 + n2 - 1)
    statistic = abs(runs - mean) / np.sqrt(max(variance, 1e-12))
    return float(2 * stats.norm.sf(statistic))


def birthday_spacings_test(values: np.ndarray, bits: int = 24, m_per_trial: int = 512) -> float:
    """Marsaglia's birthday spacings: duplicate spacings are ~Poisson.

    Each trial throws ``m`` "birthdays" into a year of ``2^bits`` days;
    the number of duplicated spacings is approximately Poisson with
    ``lambda = m^3 / (4 * 2^bits)`` (=2 for the defaults).  Trials are
    independent, so the total over all trials is Poisson with the summed
    rate; the p-value is the two-sided Poisson tail.
    """
    n_trials = values.size // m_per_trial
    if n_trials == 0:
        return 1.0
    lam = m_per_trial**3 / (4.0 * (1 << bits))
    total_duplicates = 0
    for trial in range(n_trials):
        chunk = values[trial * m_per_trial : (trial + 1) * m_per_trial]
        days = np.sort((chunk >> np.uint32(32 - bits)).astype(np.int64))
        spacings = np.sort(np.diff(days))
        total_duplicates += int((np.diff(spacings) == 0).sum())
    rate = lam * n_trials
    lower = stats.poisson.cdf(total_duplicates, rate)
    upper = stats.poisson.sf(total_duplicates - 1, rate)
    return float(2 * min(lower, upper, 0.5))


def cross_lane_correlation_test(block: np.ndarray) -> float:
    """Fisher-transformed max |corr| between lanes; returns min p-value."""
    uniforms = block.astype(np.float64) / float(1 << 32)
    n_lanes = uniforms.shape[1]
    n = uniforms.shape[0]
    corr = np.corrcoef(uniforms.T)
    p_min = 1.0
    for i in range(n_lanes):
        for j in range(i + 1, n_lanes):
            z = np.arctanh(np.clip(corr[i, j], -0.999999, 0.999999)) * np.sqrt(n - 3)
            p = 2 * stats.norm.sf(abs(z))
            p_min = min(p_min, float(p))
    # Bonferroni over the pairs tested.
    pairs = n_lanes * (n_lanes - 1) // 2
    return min(p_min * pairs, 1.0)


@dataclass
class BatteryResult:
    """Outcome of the full battery."""

    p_values: dict[str, float]
    threshold: float

    @property
    def failures(self) -> list[str]:
        return [name for name, p in self.p_values.items() if p < self.threshold]

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [f"{name}: p = {p:.4f}" for name, p in sorted(self.p_values.items())]
        verdict = "PASS" if self.passed else f"FAIL ({', '.join(self.failures)})"
        return "\n".join(lines + [f"battery: {verdict} at threshold {self.threshold}"])


def run_battery(
    rng: ThundeRingRNG,
    n_samples: int = 50_000,
    threshold: float = 1e-4,
    lane: int = 0,
) -> BatteryResult:
    """Run every test on one lane (plus the cross-lane test on all lanes)."""
    block = rng.uint32_block(n_samples)
    values = block[:, lane]
    uniforms = values.astype(np.float64) / float(1 << 32)
    bits = np.unpackbits(np.ascontiguousarray(values).view(np.uint8))
    p_values: dict[str, Callable] = {
        "frequency": frequency_test(bits),
        "serial_pair": serial_pair_test(values),
        "gap": gap_test(uniforms),
        "runs": runs_test(uniforms),
        "birthday_spacings": birthday_spacings_test(values),
    }
    if rng.n_lanes > 1:
        p_values["cross_lane_correlation"] = cross_lane_correlation_test(block)
    return BatteryResult(p_values=p_values, threshold=threshold)
