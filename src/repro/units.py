"""Physical-unit helpers shared by the hardware models.

The FPGA and CPU performance models mix quantities in cycles, seconds, bytes
and bytes/second.  Keeping the conversions in one module avoids the classic
"GB vs GiB" calibration bugs; throughout this library **GB means 1e9 bytes**,
matching the convention of the paper (17.57 GB/s memory bandwidth).
"""

from __future__ import annotations

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` into seconds."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert seconds into (fractional) cycles at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return seconds * frequency_hz


def bandwidth_gbps(bytes_moved: float, seconds: float) -> float:
    """Achieved bandwidth in GB/s (1 GB = 1e9 bytes)."""
    if seconds <= 0:
        raise ValueError(f"duration must be positive, got {seconds}")
    return bytes_moved / seconds / GIGA


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count, e.g. ``'68.9 MB'``."""
    value = float(num_bytes)
    for suffix in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1000.0 or suffix == "TB":
            return f"{value:.4g} {suffix}"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_rate(per_second: float, unit: str = "steps") -> str:
    """Human-readable rate, e.g. ``'4.8e+07 steps/s'``."""
    return f"{per_second:.3g} {unit}/s"
