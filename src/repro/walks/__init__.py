"""Graph dynamic random walk (GDRW) algorithms and the multi-query stepper.

A *walk algorithm* supplies the application-specific weight update function
``F`` of the paper (Section 2.1): given the walker's state it assigns a
sampling weight to every out-edge of the current vertex.  Four algorithms
are provided:

* :class:`~repro.walks.uniform.UniformWalk` — unbiased (DeepWalk-style),
* :class:`~repro.walks.static.StaticWalk` — biased by static edge weights,
* :class:`~repro.walks.metapath.MetaPathWalk` — Equation (1),
* :class:`~repro.walks.node2vec.Node2VecWalk` — Equation (2).

The *stepper* (:mod:`repro.walks.stepper`) advances a whole batch of queries
one step at a time, fully vectorized, parameterized by a sampler strategy
(parallel WRS for the LightRW backends, inverse-transform for the ThunderRW
baseline), and records the access trace the performance models replay.
"""

from repro.walks.base import (
    WEIGHT_SCALE,
    StepContext,
    WalkAlgorithm,
    quantize_weights,
)
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk
from repro.walks.ppr import RestartWalk, exact_ppr, run_restart_walks, visit_frequencies
from repro.walks.static import StaticWalk
from repro.walks.stepper import (
    InverseTransformSampler,
    PWRSSampler,
    StepRecord,
    WalkSession,
    run_walks,
    walk_single_query,
)
from repro.walks.termination import (
    FixedLength,
    TargetLabel,
    TargetVertex,
    TerminationCondition,
    apply_termination,
)
from repro.walks.uniform import UniformWalk
from repro.walks.validation import (
    chi_square_step_test,
    empirical_step_distribution,
    exact_step_distribution,
    total_variation_distance,
)

__all__ = [
    "InverseTransformSampler",
    "MetaPathWalk",
    "Node2VecWalk",
    "PWRSSampler",
    "RestartWalk",
    "FixedLength",
    "StaticWalk",
    "StepContext",
    "StepRecord",
    "TargetLabel",
    "TargetVertex",
    "TerminationCondition",
    "UniformWalk",
    "WEIGHT_SCALE",
    "WalkAlgorithm",
    "WalkSession",
    "apply_termination",
    "chi_square_step_test",
    "empirical_step_distribution",
    "exact_ppr",
    "exact_step_distribution",
    "quantize_weights",
    "run_restart_walks",
    "run_walks",
    "total_variation_distance",
    "visit_frequencies",
    "walk_single_query",
]
