"""Core abstractions of the walk layer.

The central object is :class:`WalkAlgorithm`, whose
:meth:`~WalkAlgorithm.dynamic_weights` is the paper's application-specific
weight update function ``F`` — it maps every candidate edge of the current
step to its *sampling weight* ``w^t`` (the unnormalized transition
probability).  Implementations receive a :class:`StepContext` holding the
flattened candidate-edge arrays for every active query at once, so a single
vectorized call covers the whole batch.

Fixed-point weights
-------------------
The hardware WRS sampler (Equation 8) compares integers; the walk layer
quantizes float weights to ``round(w * WEIGHT_SCALE)`` with any positive
weight clamped to at least one so quantization never silently forbids an
edge the algorithm allowed.  ``WEIGHT_SCALE = 256`` (8 fractional bits)
represents the paper's weight range — random static weights in ``[1, 4)``
scaled by Node2Vec's ``1/p``/``1/q`` factors — with relative error below
0.4 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.graph.csr import CSRGraph

#: Fixed-point scale for the integer weights consumed by the WRS hardware.
WEIGHT_FRAC_BITS = 8
WEIGHT_SCALE = 1 << WEIGHT_FRAC_BITS


def quantize_weights(weights: np.ndarray) -> np.ndarray:
    """Quantize non-negative float weights to the hardware fixed point.

    Zero stays zero (a forbidden edge must stay forbidden); any positive
    weight becomes at least one (an allowed edge must stay allowed).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size and weights.min() < 0:
        raise ValueError("sampling weights must be non-negative")
    quantized = np.rint(weights * WEIGHT_SCALE).astype(np.uint64)
    positive = weights > 0
    quantized[positive & (quantized == 0)] = 1
    return quantized


@dataclass
class StepContext:
    """Flattened candidate-edge view of one step across all active queries.

    All per-edge arrays share one flat index space: query ``j`` (a position
    within this step's active set, not a global query id) owns the slice
    ``[seg_starts[j], seg_starts[j] + degrees[j])``.
    """

    graph: "CSRGraph"
    step: int
    #: per-query arrays (length = number of active queries this step)
    curr: np.ndarray
    prev: np.ndarray  # -1 where the query has no previous vertex yet
    degrees: np.ndarray
    seg_starts: np.ndarray
    #: per-edge arrays (length = degrees.sum())
    edge_query: np.ndarray  # active-set position owning each edge
    dst: np.ndarray
    static_weights: np.ndarray
    edge_positions: np.ndarray  # index into graph.col_index for each edge
    #: sorted u*|V|+v keys of the whole graph, for O(log E) membership tests
    edge_keys_sorted: np.ndarray | None = None

    @property
    def n_edges(self) -> int:
        return int(self.dst.size)

    @property
    def n_queries(self) -> int:
        return int(self.curr.size)

    def prev_per_edge(self) -> np.ndarray:
        """Previous vertex of the owning query, broadcast per edge."""
        return self.prev[self.edge_query]

    def edges_exist(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorized ``(u, v) in E`` over aligned source/target arrays.

        Exploits the global sortedness of the CSR edge keys (col_index is
        sorted within rows laid out in row order), giving one
        ``searchsorted`` for the entire batch.
        """
        if self.edge_keys_sorted is None:
            raise ValueError("StepContext was built without edge keys")
        n = np.int64(self.graph.num_vertices)
        keys = np.asarray(sources, dtype=np.int64) * n + np.asarray(targets, dtype=np.int64)
        pos = np.searchsorted(self.edge_keys_sorted, keys)
        pos_clipped = np.minimum(pos, self.edge_keys_sorted.size - 1)
        found = self.edge_keys_sorted[pos_clipped] == keys
        found &= pos < self.edge_keys_sorted.size
        return found


class WalkAlgorithm:
    """Base class for GDRW weight-update functions.

    Subclasses override :meth:`dynamic_weights` and the class attributes
    describing the memory behaviour the hardware models must account for.
    """

    #: Human-readable algorithm name used in reports.
    name: str = "walk"

    #: Whether the update function depends on the previously visited vertex
    #: (second-order walks such as Node2Vec).
    needs_previous: bool = False

    #: row_index (neighbor-info) lookups issued per step: 1 for first-order
    #: walks; 2 for Node2Vec, which also resolves N(a_{t-1}).
    row_lookups_per_step: int = 1

    #: Whether the step must also stream the previous vertex's adjacency
    #: from DRAM (Node2Vec's membership test), doubling col_index traffic.
    fetches_previous_neighbors: bool = False

    #: Whether the graph must carry static edge weights.
    requires_edge_weights: bool = False

    def dynamic_weights(self, ctx: StepContext) -> np.ndarray:
        """Return per-edge sampling weights (float64, non-negative)."""
        raise NotImplementedError

    def needs_edge_keys(self) -> bool:
        """Whether StepContext must be built with the sorted edge-key array."""
        return self.needs_previous

    def validate_graph(self, graph: "CSRGraph") -> None:
        """Raise if the graph lacks attributes this algorithm requires."""
        if self.requires_edge_weights and graph.edge_weights is None:
            raise ValueError(
                f"{self.name} requires static edge weights; call "
                "repro.graph.assign_random_weights or provide weights"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
