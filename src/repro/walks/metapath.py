"""MetaPath random walk — Equation (1) of the paper.

A MetaPath ``M = L1 -R1-> L2 -R2-> ... `` constrains each step of the walk
to follow edges satisfying the next element of a schema.  The weight update
function keeps the static weight when the constraint is met and zeroes it
otherwise:

    w^t(a, b) = w*(a, b)   if the edge matches schema[t]
              = 0          otherwise.

Two schema conventions are supported, both used in the heterogeneous-graph
literature:

* ``match="vertex"`` (default, metapath2vec-style): ``schema`` is a sequence
  of vertex labels; step ``t`` may only move to a neighbor whose label
  equals ``schema[(t + 1) % len(schema)]``.  The schema is applied
  cyclically so any query length is supported.
* ``match="edge"``: ``schema`` is a sequence of edge relation labels; step
  ``t`` requires the traversed edge's label to equal
  ``schema[t % len(schema)]``.

A step where no neighbor matches is a *dead end*: the total weight is zero
and the query terminates early (the same behaviour ThunderRW exhibits).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.walks.base import StepContext, WalkAlgorithm


class MetaPathWalk(WalkAlgorithm):
    """GDRW constrained by a (cyclic) label schema.

    Parameters
    ----------
    schema:
        Non-empty sequence of integer labels.
    match:
        ``"vertex"`` to match destination vertex labels, ``"edge"`` to match
        edge relation labels.
    weighted:
        When ``True`` matching edges keep their static weight ``w*``; when
        ``False`` all matching edges weigh one (unweighted MetaPath).
    """

    name = "metapath"

    def __init__(
        self,
        schema: Sequence[int],
        match: str = "vertex",
        weighted: bool = True,
    ) -> None:
        if len(schema) == 0:
            raise QueryError("MetaPath schema must be non-empty")
        if match not in ("vertex", "edge"):
            raise QueryError(f"match must be 'vertex' or 'edge', got {match!r}")
        self.schema = np.asarray(list(schema), dtype=np.int64)
        if self.schema.min() < 0:
            raise QueryError("schema labels must be non-negative")
        self.match = match
        self.weighted = weighted

    def validate_graph(self, graph) -> None:
        super().validate_graph(graph)
        if self.match == "vertex" and graph.vertex_labels is None:
            raise QueryError(
                "vertex-matched MetaPath requires vertex labels; call "
                "repro.graph.assign_vertex_labels first"
            )
        if self.match == "edge" and graph.edge_labels is None:
            raise QueryError(
                "edge-matched MetaPath requires edge labels; call "
                "repro.graph.assign_edge_labels first"
            )

    def _required_label(self, step: int) -> int:
        if self.match == "vertex":
            return int(self.schema[(step + 1) % self.schema.size])
        return int(self.schema[step % self.schema.size])

    def dynamic_weights(self, ctx: StepContext) -> np.ndarray:
        required = self._required_label(ctx.step)
        if self.match == "vertex":
            labels = ctx.graph.vertex_labels[ctx.dst]
        else:
            labels = ctx.graph.edge_labels[ctx.edge_positions]
        matches = labels == required
        if self.weighted:
            return np.where(matches, ctx.static_weights.astype(np.float64), 0.0)
        return matches.astype(np.float64)

    def __repr__(self) -> str:
        return (
            f"MetaPathWalk(schema={self.schema.tolist()}, match={self.match!r}, "
            f"weighted={self.weighted})"
        )
