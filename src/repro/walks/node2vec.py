"""Node2Vec random walk — Equation (2) of the paper.

Node2Vec (Grover & Leskovec, KDD'16) is a second-order walk: the weight of
moving from the current vertex ``a`` to neighbor ``b`` depends on the
previously visited vertex ``a_{t-1}``:

    w^t(a, b) = w*(a, b) / p   if b == a_{t-1}           (return)
              = w*(a, b)       if (a_{t-1}, b) in E      (stay close)
              = w*(a, b) / q   otherwise                 (explore)

``p`` is the return parameter and ``q`` the in-out parameter; the paper's
evaluation uses ``p = 2, q = 0.5``.  The membership test
``(a_{t-1}, b) in E`` is what makes Node2Vec memory-hungry: the engine must
consult the previous vertex's adjacency for every candidate neighbor, which
on the accelerator means a second ``row_index`` lookup and a second
``col_index`` stream per step — those costs are declared through the class
attributes the hardware models read.

The first step of a query has no previous vertex and degenerates to a
static walk step (``w^t = w*``), matching the reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.walks.base import StepContext, WalkAlgorithm


class Node2VecWalk(WalkAlgorithm):
    """Second-order biased walk with return/in-out parameters ``p``/``q``."""

    name = "node2vec"
    needs_previous = True
    row_lookups_per_step = 2
    fetches_previous_neighbors = True
    requires_edge_weights = False  # defaults to w* = 1 on unweighted graphs

    def __init__(self, p: float = 2.0, q: float = 0.5) -> None:
        if p <= 0 or q <= 0:
            raise QueryError(f"p and q must be positive, got p={p}, q={q}")
        self.p = float(p)
        self.q = float(q)

    def dynamic_weights(self, ctx: StepContext) -> np.ndarray:
        weights = ctx.static_weights.astype(np.float64)
        prev = ctx.prev_per_edge()
        has_prev = prev >= 0
        if not np.any(has_prev):
            return weights
        is_return = (np.asarray(ctx.dst, dtype=np.int64) == prev) & has_prev
        connected = np.zeros(ctx.n_edges, dtype=bool)
        candidates = has_prev & ~is_return
        if np.any(candidates):
            connected[candidates] = ctx.edges_exist(
                prev[candidates], ctx.dst[candidates]
            )
        scale = np.ones(ctx.n_edges, dtype=np.float64)
        scale[is_return] = 1.0 / self.p
        explore = has_prev & ~is_return & ~connected
        scale[explore] = 1.0 / self.q
        return weights * scale

    def __repr__(self) -> str:
        return f"Node2VecWalk(p={self.p}, q={self.q})"
