"""Random walk with restart (the personalized-PageRank walk).

The walk the paper's introduction cites for recommendation and network
analysis: at every step the walker either restarts at its source vertex
(probability ``alpha``) or moves to a neighbor chosen proportionally to
the static edge weight.  The visit frequencies of such walks converge to
personalized PageRank scores.

Restart composes with the GDRW machinery rather than replacing it: the
neighbor choice is the ordinary weighted selection (the same parallel WRS
lanes every other walk uses, so the FPGA timing models replay the trace
unchanged), and the restart coin is one extra decorrelated lane per query
per step — hardware-wise a single extra comparison in the Query
Controller.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.graph.csr import CSRGraph
from repro.sampling.rng import derive_seed
from repro.walks.base import StepContext, WalkAlgorithm
from repro.walks.stepper import (
    PWRSSampler,
    StepRecord,
    WalkSession,
    _lane_uint32,
    _query_lane_keys,
)


class RestartWalk(WalkAlgorithm):
    """Weighted walk with per-step restart probability ``alpha``.

    The weight update itself is static (``w^t = w*``); the restart is
    applied by :func:`run_restart_walks` after sampling, so this class is
    usable anywhere a :class:`WalkAlgorithm` is expected (the restart then
    simply never fires).
    """

    name = "restart"

    def __init__(self, alpha: float = 0.15) -> None:
        if not 0.0 <= alpha < 1.0:
            raise QueryError(f"restart probability must be in [0, 1), got {alpha}")
        self.alpha = float(alpha)

    def dynamic_weights(self, ctx: StepContext) -> np.ndarray:
        return ctx.static_weights.astype(np.float64)


def run_restart_walks(
    graph: CSRGraph,
    starts: np.ndarray,
    n_steps: int,
    alpha: float = 0.15,
    k: int = 16,
    seed: int = 0,
    query_ids: np.ndarray | None = None,
) -> WalkSession:
    """Walk every query ``n_steps`` steps with restart probability ``alpha``.

    Teleports appear in the paths (the walker really is at its source
    after a restart), and the recorded trace charges each step the work
    the hardware performs: a restart step decides before any memory access
    is issued, so it contributes a zero-degree record entry.

    ``query_ids`` are the global ids that key per-query randomness
    (default ``arange``); sharded execution passes each shard's ids so
    restart walks are shard-invariant too.
    """
    starts = np.asarray(starts, dtype=np.int64)
    algorithm = RestartWalk(alpha)
    algorithm.validate_graph(graph)
    n_queries = starts.size
    if query_ids is None:
        query_ids = np.arange(n_queries, dtype=np.int64)
    else:
        query_ids = np.asarray(query_ids, dtype=np.int64)

    sampler = PWRSSampler(k=k, seed=seed)
    sampler.attach(n_queries, query_ids)
    coin_keys = _query_lane_keys(derive_seed(seed, 0x9E57A97), query_ids, 1)[:, 0]
    coin_counters = np.zeros(n_queries, dtype=np.uint64)

    row_index = graph.row_index
    degrees = graph.degrees
    col64 = graph.col_index.astype(np.int64)
    weights64 = (
        graph.edge_weights.astype(np.float64)
        if graph.edge_weights is not None
        else None
    )

    paths = np.full((n_queries, n_steps + 1), -1, dtype=np.int64)
    paths[:, 0] = starts
    lengths = np.zeros(n_queries, dtype=np.int64)
    curr = starts.copy()
    alive = degrees[starts] > 0
    records: list[StepRecord] = []

    for step in range(n_steps):
        active = np.nonzero(alive)[0]
        if active.size == 0:
            break
        coins = (
            _lane_uint32(coin_counters[active], coin_keys[active]).astype(np.float64)
            / float(1 << 32)
        )
        coin_counters[active] += np.uint64(1)
        restart = coins < alpha

        next_vertices = np.full(active.size, -1, dtype=np.int64)
        next_vertices[restart] = starts[active[restart]]

        walkers = active[~restart]
        if walkers.size:
            a_curr = curr[walkers]
            a_deg = degrees[a_curr]
            seg_starts = np.zeros(walkers.size, dtype=np.int64)
            np.cumsum(a_deg[:-1], out=seg_starts[1:])
            within = np.arange(int(a_deg.sum()), dtype=np.int64) - np.repeat(
                seg_starts, a_deg
            )
            positions = np.repeat(row_index[a_curr], a_deg) + within
            dst = col64[positions]
            flat_weights = (
                weights64[positions]
                if weights64 is not None
                else np.ones(dst.size, dtype=np.float64)
            )
            ctx = StepContext(
                graph=graph,
                step=step,
                curr=a_curr,
                prev=np.full(walkers.size, -1, dtype=np.int64),
                degrees=a_deg,
                seg_starts=seg_starts,
                edge_query=np.repeat(np.arange(walkers.size, dtype=np.int64), a_deg),
                dst=dst,
                static_weights=flat_weights,
                edge_positions=positions,
            )
            chosen = sampler.select(ctx, flat_weights, walkers)
            sampled = chosen >= 0
            picks = np.full(walkers.size, -1, dtype=np.int64)
            if np.any(sampled):
                picks[sampled] = dst[seg_starts[sampled] + chosen[sampled]]
            next_vertices[~restart] = picks

        # Trace: restart steps cost no memory traffic (degree recorded 0).
        step_degrees = np.where(restart, 0, degrees[curr[active]])
        records.append(
            StepRecord(
                step=step,
                query_ids=active.copy(),
                curr=curr[active].copy(),
                degrees=step_degrees.astype(np.int64),
                prev=np.full(active.size, -1, dtype=np.int64),
                prev_degrees=np.zeros(active.size, dtype=np.int64),
                next_vertex=next_vertices.copy(),
            )
        )

        moved = next_vertices >= 0
        targets = active[moved]
        curr[targets] = next_vertices[moved]
        paths[targets, step + 1] = next_vertices[moved]
        lengths[targets] = step + 1
        alive[active[~moved]] = False
        alive[targets] = degrees[curr[targets]] > 0

    return WalkSession(
        graph=graph,
        algorithm=algorithm.name,
        sampler=sampler.name,
        starts=starts,
        paths=paths,
        lengths=lengths,
        records=records,
    )


def visit_frequencies(paths: np.ndarray, num_vertices: int) -> np.ndarray:
    """Normalized visit counts over all paths — the PPR estimate."""
    visited = paths[paths >= 0]
    counts = np.bincount(visited, minlength=num_vertices).astype(np.float64)
    total = counts.sum()
    return counts / total if total > 0 else counts


def exact_ppr(
    graph: CSRGraph, source: int, alpha: float = 0.15, iterations: int = 200
) -> np.ndarray:
    """Exact personalized PageRank by power iteration (small graphs).

    The reference the statistical tests compare walk-based estimates to.
    Dangling mass restarts at the source (matching the walk semantics,
    where a stranded walker's query terminates and a new visit begins at
    the source on average).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise QueryError(f"source {source} out of range")
    weights = (
        graph.edge_weights.astype(np.float64)
        if graph.edge_weights is not None
        else np.ones(graph.num_edges, dtype=np.float64)
    )
    sources = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    out_weight = np.zeros(n)
    np.add.at(out_weight, sources, weights)
    probability = np.zeros(n)
    probability[source] = 1.0
    restart_vector = np.zeros(n)
    restart_vector[source] = 1.0
    for _ in range(iterations):
        flow = np.where(out_weight[sources] > 0, probability[sources] * weights / out_weight[sources], 0.0)
        spread = np.zeros(n)
        np.add.at(spread, graph.col_index.astype(np.int64), flow)
        dangling = probability[out_weight == 0].sum()
        probability = alpha * restart_vector + (1 - alpha) * (spread + dangling * restart_vector)
    return probability
