"""Static biased random walk.

The transition probability is proportional to the *static* edge weight
``w*`` — the weights never depend on the walker's state, so per-edge
probabilities could be precomputed offline (which is exactly why static
walks are easy and GDRWs are the hard case the paper targets).
"""

from __future__ import annotations

import numpy as np

from repro.walks.base import StepContext, WalkAlgorithm


class StaticWalk(WalkAlgorithm):
    """First-order biased walk: ``w^t = w*`` for every neighbor."""

    name = "static"
    requires_edge_weights = True

    def dynamic_weights(self, ctx: StepContext) -> np.ndarray:
        return ctx.static_weights.astype(np.float64)
