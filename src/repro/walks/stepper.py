"""Vectorized multi-query walk execution.

:func:`run_walks` advances a whole batch of random-walk queries in lockstep,
one step per iteration, with every per-edge computation vectorized across
the batch.  It is the *functional* engine shared by all backends: the FPGA
models and the CPU baseline all replay walks produced here (with their own
sampler strategy) and differ only in how they cost them.

Sampler strategies
------------------
* :class:`PWRSSampler` — the parallel weighted reservoir sampler of
  Algorithm 4.1, with per-query decorrelated ThundeRiNG lanes.  Its batch
  math is **bit-identical** to driving one :class:`repro.sampling.ParallelWRS`
  instance per query (the cycle simulator's path); tests assert this.
* :class:`InverseTransformSampler` — ThunderRW's configured method: one
  uniform per step, binary search in the per-step CDF table.

Per-query randomness
--------------------
Each query ``q`` draws from its own lane family, keyed by
``derive_seed(seed, q)``.  This makes a query's walk independent of
scheduling (how queries interleave on the hardware), which is what lets a
cycle-accurate simulation and a fast analytic model produce *the same
walks* — the one deliberate deviation from the physical accelerator, where
lanes are shared by arrival order (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, QueryError
from repro.graph.csr import CSRGraph
from repro.sampling.parallel_wrs import ParallelWRS, integer_accept
from repro.sampling.rng import ThundeRingRNG, derive_seed, splitmix64
from repro.walks.base import StepContext, WalkAlgorithm, quantize_weights

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _query_lane_keys(seed: int, query_ids: np.ndarray, k: int) -> np.ndarray:
    """Lane keys for every query — matches ``ThundeRingRNG`` construction.

    Row ``i`` equals the ``_lane_keys`` of
    ``ThundeRingRNG(k, derive_seed(seed, query_ids[i]))``.
    """
    qids = np.asarray(query_ids, dtype=np.uint64)
    seed64 = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    # derive_seed(seed, qid) == splitmix64(splitmix64(seed ^ qid))
    qseeds = splitmix64(splitmix64(seed64 ^ qids))
    lanes = np.arange(k, dtype=np.uint64)
    with np.errstate(over="ignore"):
        return splitmix64(qseeds[:, None] ^ ((lanes + np.uint64(1)) * _GOLDEN)[None, :])


def _lane_uint32(counters: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """One 32-bit draw per (counter, key) pair — matches ``ThundeRingRNG``."""
    with np.errstate(over="ignore"):
        raw = splitmix64((counters.astype(np.uint64) * _GOLDEN) ^ keys)
    return (raw >> np.uint64(32)).astype(np.uint64)


class PWRSSampler:
    """Parallel WRS selection across a batch of queries (Algorithm 4.1).

    Parameters
    ----------
    k:
        Sampler parallelism — items consumed per hardware cycle.
    seed:
        Master seed; per-query lanes derive from it.
    """

    name = "pwrs"

    def __init__(self, k: int = 16, seed: int = 0) -> None:
        if k <= 0:
            raise ConfigError(f"k must be positive, got {k}")
        self.k = int(k)
        self.seed = int(seed)
        self._lane_keys: np.ndarray | None = None
        self._counters: np.ndarray | None = None

    def attach(self, num_queries: int, query_ids: np.ndarray) -> None:
        """Allocate per-query lane keys and cycle counters."""
        self._lane_keys = _query_lane_keys(self.seed, query_ids, self.k)
        self._counters = np.zeros(num_queries, dtype=np.uint64)

    def select(
        self,
        ctx: StepContext,
        weights: np.ndarray,
        active_index: np.ndarray,
    ) -> np.ndarray:
        """Pick one neighbor per active query; returns within-segment index.

        ``active_index`` maps each active query to its row in the attached
        per-query state.  A return of ``-1`` means every candidate weight
        was zero (dead end).
        """
        if self._lane_keys is None or self._counters is None:
            raise ConfigError("sampler not attached; call attach() first")
        w_int = quantize_weights(weights)
        degrees = ctx.degrees.astype(np.int64)
        seg_starts = ctx.seg_starts

        global_cumsum = np.cumsum(w_int, dtype=np.uint64)
        seg_base = global_cumsum[seg_starts] - w_int[seg_starts]
        incl_prefix = global_cumsum - np.repeat(seg_base, degrees)

        pos = np.arange(w_int.size, dtype=np.int64) - np.repeat(seg_starts, degrees)
        lanes = pos % self.k
        cycles_within = pos // self.k
        counters = self._counters[active_index][ctx.edge_query] + cycles_within.astype(
            np.uint64
        )
        keys = self._lane_keys[active_index[ctx.edge_query], lanes]
        r_star = _lane_uint32(counters, keys)

        accept = integer_accept(w_int, incl_prefix, r_star)
        marked = np.where(accept, pos, np.int64(-1))
        chosen = np.maximum.reduceat(marked, seg_starts)

        cycles_per_query = -(-degrees // self.k)
        np.add.at(self._counters, active_index, cycles_per_query.astype(np.uint64))
        return chosen

    def fork_single(self, query_id: int) -> ThundeRingRNG:
        """The scalar RNG a lone :class:`ParallelWRS` would use for a query."""
        return ThundeRingRNG(self.k, derive_seed(self.seed, int(query_id)))


class InverseTransformSampler:
    """ThunderRW-style sampling: build a CDF table, draw once per step."""

    name = "inverse-transform"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._keys: np.ndarray | None = None
        self._counters: np.ndarray | None = None

    def attach(self, num_queries: int, query_ids: np.ndarray) -> None:
        self._keys = _query_lane_keys(self.seed, query_ids, 1)[:, 0]
        self._counters = np.zeros(num_queries, dtype=np.uint64)

    def select(
        self,
        ctx: StepContext,
        weights: np.ndarray,
        active_index: np.ndarray,
    ) -> np.ndarray:
        if self._keys is None or self._counters is None:
            raise ConfigError("sampler not attached; call attach() first")
        weights = np.asarray(weights, dtype=np.float64)
        degrees = ctx.degrees.astype(np.int64)
        seg_starts = ctx.seg_starts

        global_cdf = np.cumsum(weights)
        seg_base = global_cdf[seg_starts] - weights[seg_starts]
        seg_ends = seg_starts + degrees
        seg_total = global_cdf[seg_ends - 1] - seg_base

        draws = _lane_uint32(self._counters[active_index], self._keys[active_index])
        uniforms = draws.astype(np.float64) / float(1 << 32)
        self._counters[active_index] += np.uint64(1)

        targets = seg_base + uniforms * seg_total
        raw = np.searchsorted(global_cdf, targets, side="right")
        chosen = np.minimum(raw, seg_ends - 1) - seg_starts
        chosen = np.maximum(chosen, 0)
        return np.where(seg_total > 0, chosen, np.int64(-1))


@dataclass
class StepRecord:
    """Everything the performance models need about one executed step."""

    step: int
    query_ids: np.ndarray  # global query ids active this step
    curr: np.ndarray  # vertex each query stood on
    degrees: np.ndarray  # out-degree of curr
    prev: np.ndarray  # previous vertex (-1 on the first step)
    prev_degrees: np.ndarray  # out-degree of prev (0 where prev == -1)
    next_vertex: np.ndarray  # sampled vertex (-1 on dead end)

    @property
    def n_queries(self) -> int:
        return int(self.query_ids.size)


@dataclass
class WalkSession:
    """Result of a batch walk: the paths plus the recorded access trace."""

    graph: CSRGraph
    algorithm: str
    sampler: str
    starts: np.ndarray
    paths: np.ndarray  # (Q, max_steps + 1), -1 padded
    lengths: np.ndarray  # steps actually taken per query
    records: list[StepRecord] = field(default_factory=list)

    @property
    def num_queries(self) -> int:
        return int(self.starts.size)

    @property
    def total_steps(self) -> int:
        return int(self.lengths.sum())

    def path(self, q: int) -> np.ndarray:
        """The walked path of query ``q`` without padding."""
        return self.paths[q, : self.lengths[q] + 1]


def run_walks(
    graph: CSRGraph,
    starts: np.ndarray,
    n_steps: int,
    algorithm: WalkAlgorithm,
    sampler: PWRSSampler | InverseTransformSampler,
    record_trace: bool = True,
    query_ids: np.ndarray | None = None,
) -> WalkSession:
    """Walk every query ``n_steps`` steps (or until a dead end).

    Parameters
    ----------
    graph:
        The CSR graph (validated).
    starts:
        Start vertex per query; queries are identified by position.
    n_steps:
        Target number of steps (edges) per walk — the paper's "query
        length" is 5 for MetaPath and 80 for Node2Vec.
    algorithm:
        The GDRW weight-update function.
    sampler:
        Sampler strategy instance (its ``attach`` is called here).
    record_trace:
        Keep per-step :class:`StepRecord` entries (required by the
        performance models; disable only for pure functional runs).
    query_ids:
        Global query ids used to derive per-query RNG lanes; defaults to
        ``arange(len(starts))``.  The sharded batch scheduler passes each
        shard's global ids here so a query's walk is independent of the
        shard layout.
    """
    starts = np.asarray(starts, dtype=np.int64)
    if starts.ndim != 1:
        raise QueryError(f"starts must be 1-D, got shape {starts.shape}")
    if starts.size and (starts.min() < 0 or starts.max() >= graph.num_vertices):
        raise QueryError("start vertex out of range")
    if n_steps < 0:
        raise QueryError(f"n_steps must be non-negative, got {n_steps}")
    algorithm.validate_graph(graph)

    n_queries = starts.size
    if query_ids is None:
        query_ids = np.arange(n_queries, dtype=np.int64)
    else:
        query_ids = np.asarray(query_ids, dtype=np.int64)
        if query_ids.shape != starts.shape:
            raise QueryError("query_ids must align with starts")
    sampler.attach(n_queries, query_ids)

    paths = np.full((n_queries, n_steps + 1), -1, dtype=np.int64)
    paths[:, 0] = starts
    lengths = np.zeros(n_queries, dtype=np.int64)
    curr = starts.copy()
    prev = np.full(n_queries, -1, dtype=np.int64)
    alive = np.ones(n_queries, dtype=bool)
    records: list[StepRecord] = []

    edge_keys = graph.edge_keys() if algorithm.needs_edge_keys() else None
    row_index = graph.row_index
    all_degrees = graph.degrees
    # Hot-path dtype staging: one conversion per run instead of one per step.
    col_index64 = graph.col_index.astype(np.int64)
    edge_weights64 = (
        graph.edge_weights.astype(np.float64) if graph.edge_weights is not None else None
    )

    for step in range(n_steps):
        active = np.nonzero(alive)[0]
        if active.size == 0:
            break
        a_curr = curr[active]
        a_deg = all_degrees[a_curr]
        walkable = a_deg > 0
        # Queries stranded on a sink vertex terminate before sampling.
        if not np.all(walkable):
            alive[active[~walkable]] = False
            active = active[walkable]
            if active.size == 0:
                break
            a_curr = curr[active]
            a_deg = all_degrees[a_curr]

        seg_starts = np.zeros(active.size, dtype=np.int64)
        np.cumsum(a_deg[:-1], out=seg_starts[1:])
        n_edges = int(a_deg.sum())
        edge_query = np.repeat(np.arange(active.size, dtype=np.int64), a_deg)
        within = np.arange(n_edges, dtype=np.int64) - np.repeat(seg_starts, a_deg)
        edge_positions = np.repeat(row_index[a_curr], a_deg) + within
        dst = col_index64[edge_positions]
        static_w = (
            edge_weights64[edge_positions]
            if edge_weights64 is not None
            else np.ones(n_edges, dtype=np.float64)
        )

        ctx = StepContext(
            graph=graph,
            step=step,
            curr=a_curr,
            prev=prev[active],
            degrees=a_deg,
            seg_starts=seg_starts,
            edge_query=edge_query,
            dst=dst,
            static_weights=static_w,
            edge_positions=edge_positions,
            edge_keys_sorted=edge_keys,
        )
        weights = algorithm.dynamic_weights(ctx)
        chosen = sampler.select(ctx, weights, active)

        sampled = chosen >= 0
        next_vertices = np.full(active.size, -1, dtype=np.int64)
        if np.any(sampled):
            flat = seg_starts[sampled] + chosen[sampled]
            next_vertices[sampled] = dst[flat]

        if record_trace:
            records.append(
                StepRecord(
                    step=step,
                    query_ids=active.copy(),
                    curr=a_curr.copy(),
                    degrees=a_deg.astype(np.int64),
                    prev=prev[active].copy(),
                    prev_degrees=np.where(
                        prev[active] >= 0, all_degrees[np.maximum(prev[active], 0)], 0
                    ).astype(np.int64),
                    next_vertex=next_vertices.copy(),
                )
            )

        moved = active[sampled]
        prev[moved] = curr[moved]
        curr[moved] = next_vertices[sampled]
        paths[moved, step + 1] = curr[moved]
        lengths[moved] = step + 1
        alive[active[~sampled]] = False

    return WalkSession(
        graph=graph,
        algorithm=algorithm.name,
        sampler=sampler.name,
        starts=starts,
        paths=paths,
        lengths=lengths,
        records=records,
    )


def walk_single_query(
    graph: CSRGraph,
    start: int,
    n_steps: int,
    algorithm: WalkAlgorithm,
    k: int,
    seed: int,
    query_id: int = 0,
) -> np.ndarray:
    """Golden scalar reference: one query, one :class:`ParallelWRS` instance.

    Feeds the candidate stream through the stateful k-wide sampler in
    batches exactly as the hardware WRS Sampler consumes it.  With the same
    ``seed``/``query_id``, :func:`run_walks` with a :class:`PWRSSampler`
    reproduces this path bit-for-bit — the equivalence test anchoring the
    vectorized engine to Algorithm 4.1.
    """
    algorithm.validate_graph(graph)
    rng = ThundeRingRNG(k, derive_seed(seed, query_id))
    sampler = ParallelWRS(k, rng)
    edge_keys = graph.edge_keys() if algorithm.needs_edge_keys() else None
    path = [int(start)]
    curr = int(start)
    prev = -1
    for step in range(n_steps):
        begin, end = graph.neighbor_slice(curr)
        degree = end - begin
        if degree == 0:
            break
        dst = graph.col_index[begin:end].astype(np.int64)
        static_w = (
            graph.edge_weights[begin:end].astype(np.float64)
            if graph.edge_weights is not None
            else np.ones(degree, dtype=np.float64)
        )
        ctx = StepContext(
            graph=graph,
            step=step,
            curr=np.array([curr]),
            prev=np.array([prev]),
            degrees=np.array([degree]),
            seg_starts=np.array([0]),
            edge_query=np.zeros(degree, dtype=np.int64),
            dst=dst,
            static_weights=static_w,
            edge_positions=np.arange(begin, end, dtype=np.int64),
            edge_keys_sorted=edge_keys,
        )
        weights = quantize_weights(algorithm.dynamic_weights(ctx))
        sampler.reset()
        for chunk_start in range(0, degree, k):
            chunk = slice(chunk_start, min(chunk_start + k, degree))
            sampler.consume(dst[chunk], weights[chunk])
        selected = sampler.result()
        if selected is None:
            break
        prev, curr = curr, int(selected)
        path.append(curr)
    return np.asarray(path, dtype=np.int64)
