"""Query termination conditions — Algorithm 2.1's ``Q.is_end()``.

The paper's pseudocode abstracts the walk's stopping rule as a per-query
predicate ("a specific termination condition, such as a target length
being reached").  The evaluation only uses fixed lengths, but the
abstraction matters for applications: random walk with restart stops on a
visit budget, link-prediction samplers stop at a target vertex, MetaPath
mining stops when the schema completes.

:func:`apply_termination` post-processes a walked session: the stepper
always walks to the maximum length (cheap, vectorized), and the condition
then truncates each path to its logical end — equivalent to the hardware's
Query Controller retiring the query at that step, and exactly how a
fixed-function accelerator with host-side filtering would be used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.walks.stepper import WalkSession


class TerminationCondition:
    """Base: decides, per query, the last step index to keep."""

    name = "none"

    def cutoff_steps(self, session: WalkSession) -> np.ndarray:
        """Steps to keep per query (values in ``[0, lengths]``)."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class FixedLength(TerminationCondition):
    """Stop after ``n_steps`` steps (the paper's evaluation setting)."""

    n_steps: int
    name = "fixed-length"

    def __post_init__(self) -> None:
        if self.n_steps < 0:
            raise QueryError(f"n_steps must be non-negative, got {self.n_steps}")

    def cutoff_steps(self, session: WalkSession) -> np.ndarray:
        return np.minimum(session.lengths, self.n_steps)

    def describe(self) -> str:
        return f"length == {self.n_steps}"


@dataclass(frozen=True)
class TargetVertex(TerminationCondition):
    """Stop as soon as any vertex in ``targets`` is reached."""

    targets: tuple[int, ...]
    name = "target-vertex"

    def __post_init__(self) -> None:
        if not self.targets:
            raise QueryError("targets must be non-empty")

    def cutoff_steps(self, session: WalkSession) -> np.ndarray:
        target_set = np.asarray(self.targets, dtype=np.int64)
        hits = np.isin(session.paths, target_set) & (session.paths >= 0)
        # Exclude the start position: a query *starting* on a target still
        # takes its first step (matching restart-walk semantics).
        hits[:, 0] = False
        cutoffs = session.lengths.copy()
        rows, cols = np.nonzero(hits)
        if rows.size:
            # First hit per row.
            order = np.argsort(rows * session.paths.shape[1] + cols)
            rows, cols = rows[order], cols[order]
            first_rows, first_idx = np.unique(rows, return_index=True)
            cutoffs[first_rows] = np.minimum(
                cutoffs[first_rows], cols[first_idx]
            )
        return cutoffs

    def describe(self) -> str:
        return f"reach any of {len(self.targets)} target vertices"


@dataclass(frozen=True)
class TargetLabel(TerminationCondition):
    """Stop on reaching a vertex with the given label (MetaPath mining)."""

    label: int
    name = "target-label"

    def cutoff_steps(self, session: WalkSession) -> np.ndarray:
        labels = session.graph.vertex_labels
        if labels is None:
            raise QueryError("graph has no vertex labels")
        targets = np.nonzero(labels == self.label)[0]
        if targets.size == 0:
            return session.lengths.copy()
        return TargetVertex(tuple(targets.tolist())).cutoff_steps(session)

    def describe(self) -> str:
        return f"reach label {self.label}"


def apply_termination(
    session: WalkSession, condition: TerminationCondition
) -> WalkSession:
    """Truncate a session's paths at each query's termination point.

    Returns a new session sharing the graph; paths beyond the cutoff are
    re-padded with -1 and lengths updated.  Trace records are kept intact
    (the hardware did execute those steps; the model should still charge
    them — truncation is a host-side concern).
    """
    cutoffs = condition.cutoff_steps(session)
    if np.any(cutoffs < 0) or np.any(cutoffs > session.lengths):
        raise QueryError("termination cutoffs out of range")
    paths = session.paths.copy()
    columns = np.arange(paths.shape[1])
    paths[columns[None, :] > cutoffs[:, None]] = -1
    return WalkSession(
        graph=session.graph,
        algorithm=session.algorithm,
        sampler=session.sampler,
        starts=session.starts,
        paths=paths,
        lengths=cutoffs,
        records=session.records,
    )
