"""Unbiased random walk (the DeepWalk primitive).

Every out-edge of the current vertex gets weight one, so the next vertex is
uniform over the neighbors.  Included as the simplest walk for tests and as
the paper's reference point for what *static* walk engines optimize.
"""

from __future__ import annotations

import numpy as np

from repro.walks.base import StepContext, WalkAlgorithm


class UniformWalk(WalkAlgorithm):
    """First-order unbiased walk: ``w^t = 1`` for every neighbor."""

    name = "uniform"

    def dynamic_weights(self, ctx: StepContext) -> np.ndarray:
        return np.ones(ctx.n_edges, dtype=np.float64)
