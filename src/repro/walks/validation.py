"""Statistical validation of walk distributions.

The reproduction's correctness story leans on one chain of evidence: the
hardware sampler implements Algorithm 4.1 exactly, Algorithm 4.1 is
distribution-identical to sequential WRS, and sequential WRS samples item
``i`` with probability ``w_i / sum(w)``.  This module closes the loop
empirically: it computes the *exact* one-step transition distribution of
any walk algorithm on a small graph and chi-square-tests sampled steps
against it.

Used by the test suite and available to users validating custom
:class:`~repro.walks.base.WalkAlgorithm` implementations.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import QueryError
from repro.graph.csr import CSRGraph
from repro.walks.base import StepContext, WalkAlgorithm


def exact_step_distribution(
    graph: CSRGraph,
    algorithm: WalkAlgorithm,
    vertex: int,
    prev: int = -1,
    step: int = 0,
) -> np.ndarray:
    """Exact next-vertex probabilities from ``vertex`` (length |V| vector).

    Computed straight from the algorithm's weight-update function — no
    sampling involved.  All-zero weights (a dead end) give the zero
    vector.
    """
    if not 0 <= vertex < graph.num_vertices:
        raise QueryError(f"vertex {vertex} out of range")
    begin, end = graph.neighbor_slice(vertex)
    degree = end - begin
    out = np.zeros(graph.num_vertices, dtype=np.float64)
    if degree == 0:
        return out
    ctx = StepContext(
        graph=graph,
        step=step,
        curr=np.array([vertex]),
        prev=np.array([prev]),
        degrees=np.array([degree]),
        seg_starts=np.array([0]),
        edge_query=np.zeros(degree, dtype=np.int64),
        dst=graph.col_index[begin:end].astype(np.int64),
        static_weights=(
            graph.edge_weights[begin:end].astype(np.float64)
            if graph.edge_weights is not None
            else np.ones(degree, dtype=np.float64)
        ),
        edge_positions=np.arange(begin, end, dtype=np.int64),
        edge_keys_sorted=graph.edge_keys() if algorithm.needs_edge_keys() else None,
    )
    weights = algorithm.dynamic_weights(ctx)
    total = weights.sum()
    if total <= 0:
        return out
    np.add.at(out, ctx.dst, weights / total)
    return out


def chi_square_step_test(
    graph: CSRGraph,
    algorithm: WalkAlgorithm,
    vertex: int,
    sampled_next: np.ndarray,
    prev: int = -1,
    step: int = 0,
    min_expected: float = 5.0,
) -> tuple[float, float]:
    """Chi-square test of sampled next-vertices against the exact law.

    Parameters
    ----------
    sampled_next:
        Next vertices drawn by repeated sampling from ``vertex``.
    min_expected:
        Buckets with expected counts below this are pooled (standard
        chi-square hygiene).

    Returns
    -------
    (statistic, p_value)
    """
    expected_probability = exact_step_distribution(graph, algorithm, vertex, prev, step)
    support = np.nonzero(expected_probability > 0)[0]
    if support.size == 0:
        raise QueryError(f"vertex {vertex} has no outgoing probability mass")
    sampled_next = np.asarray(sampled_next)
    n = sampled_next.size
    observed = np.array([(sampled_next == v).sum() for v in support], dtype=np.float64)
    expected = expected_probability[support] * n
    if observed.sum() != n:
        raise QueryError("samples fall outside the exact support")
    # Pool small-expectation buckets.
    order = np.argsort(expected)
    observed, expected = observed[order], expected[order]
    pooled_obs: list[float] = []
    pooled_exp: list[float] = []
    acc_o = acc_e = 0.0
    for o, e in zip(observed, expected):
        acc_o += o
        acc_e += e
        if acc_e >= min_expected:
            pooled_obs.append(acc_o)
            pooled_exp.append(acc_e)
            acc_o = acc_e = 0.0
    if acc_e > 0 and pooled_exp:
        pooled_obs[-1] += acc_o
        pooled_exp[-1] += acc_e
    elif acc_e > 0:
        pooled_obs.append(acc_o)
        pooled_exp.append(acc_e)
    if len(pooled_exp) < 2:
        return 0.0, 1.0
    statistic, p_value = stats.chisquare(pooled_obs, pooled_exp)
    return float(statistic), float(p_value)


def empirical_step_distribution(
    graph: CSRGraph,
    algorithm: WalkAlgorithm,
    vertex: int,
    n_samples: int,
    k: int = 16,
    seed: int = 0,
    prev: int = -1,
) -> np.ndarray:
    """Draw ``n_samples`` one-step transitions with the PWRS machinery.

    Each draw uses an independent query id, exactly like distinct hardware
    queries standing on the same vertex.
    """
    from repro.walks.stepper import PWRSSampler, run_walks

    starts = np.full(n_samples, vertex, dtype=np.int64)
    if prev >= 0:
        raise QueryError(
            "second-order conditioning requires walking from the previous "
            "vertex; use two-step walks instead"
        )
    session = run_walks(graph, starts, 1, algorithm, PWRSSampler(k=k, seed=seed))
    return session.paths[:, 1]


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """TV distance between two distributions over the same support."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return 0.5 * float(np.abs(p - q).sum())
