"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builders import from_edge_list
from repro.graph.generators import chung_lu_graph, rmat_graph
from repro.graph.labels import assign_random_weights, assign_vertex_labels


@pytest.fixture
def tiny_graph():
    """A hand-checkable weighted digraph.

    0 -> 1 (w 3), 0 -> 2 (w 1), 0 -> 3 (w 4),
    1 -> 2 (w 2), 2 -> 0 (w 1), 3 -> 0 (w 5), 3 -> 2 (w 2).
    Vertex 4 is a sink reachable from nothing (isolated).
    """
    edges = np.array(
        [[0, 1], [0, 2], [0, 3], [1, 2], [2, 0], [3, 0], [3, 2]], dtype=np.int64
    )
    weights = np.array([3, 1, 4, 2, 1, 5, 2], dtype=np.float32)
    return from_edge_list(edges, num_vertices=5, weights=weights, name="tiny")


@pytest.fixture
def labeled_graph():
    """A small power-law graph with labels and weights for walk tests."""
    graph = chung_lu_graph(256, avg_degree=8.0, seed=5, directed=False, name="labeled")
    graph = assign_vertex_labels(graph, n_labels=3, seed=6)
    graph = assign_random_weights(graph, seed=7)
    return graph


@pytest.fixture
def rmat_small():
    """An RMAT graph big enough to exercise caches and bursts."""
    return rmat_graph(10, edge_factor=8, seed=3)
