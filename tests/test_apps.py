"""Application layer: skip-gram embeddings and link prediction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.link_prediction import (
    LinkPredictionPipeline,
    auc_score,
    split_edges,
)
from repro.apps.word2vec import (
    SkipGramModel,
    train_skipgram,
    walk_training_pairs,
)
from repro.graph.generators import chung_lu_graph


class TestTrainingPairs:
    def test_window_pairs(self):
        paths = np.array([[0, 1, 2, -1]])
        lengths = np.array([2])
        pairs = walk_training_pairs(paths, lengths, window=1)
        expected = {(0, 1), (1, 0), (1, 2), (2, 1)}
        assert set(map(tuple, pairs.tolist())) == expected

    def test_window_two(self):
        paths = np.array([[0, 1, 2]])
        pairs = walk_training_pairs(paths, np.array([2]), window=2)
        assert (0, 2) in set(map(tuple, pairs.tolist()))

    def test_padding_ignored(self):
        paths = np.array([[3, -1, -1]])
        pairs = walk_training_pairs(paths, np.array([0]), window=2)
        assert pairs.shape[0] == 0

    def test_subsampling(self):
        paths = np.tile(np.arange(20), (50, 1))
        pairs = walk_training_pairs(paths, np.full(50, 19), window=3, max_pairs=100)
        assert pairs.shape[0] == 100

    def test_empty(self):
        pairs = walk_training_pairs(np.zeros((0, 5), dtype=int), np.zeros(0), window=2)
        assert pairs.shape == (0, 2)


class TestSkipGram:
    def test_shapes_and_determinism(self):
        pairs = np.array([[0, 1], [1, 0], [1, 2], [2, 1]] * 30)
        a = train_skipgram(pairs, 4, dim=8, epochs=1, seed=3)
        b = train_skipgram(pairs, 4, dim=8, epochs=1, seed=3)
        assert a.in_vectors.shape == (4, 8)
        np.testing.assert_array_equal(a.in_vectors, b.in_vectors)

    def test_cooccurring_vertices_become_similar(self):
        """Two communities; embeddings should separate them."""
        rng = np.random.default_rng(0)
        pairs = []
        for group in (range(0, 5), range(5, 10)):
            members = list(group)
            for _ in range(600):
                u, v = rng.choice(members, 2, replace=False)
                pairs.append((u, v))
        model = train_skipgram(np.array(pairs), 10, dim=12, epochs=4, seed=1)
        same = model.similarity(0, 1)
        cross = model.similarity(0, 7)
        assert same > cross

    def test_score_pairs_matches_similarity(self):
        model = train_skipgram(np.array([[0, 1]] * 10), 3, dim=4, epochs=1, seed=0)
        pairs = np.array([[0, 1], [1, 2]])
        scores = model.score_pairs(pairs)
        assert scores[0] == pytest.approx(model.similarity(0, 1))
        assert scores[1] == pytest.approx(model.similarity(1, 2))

    def test_invalid_pairs(self):
        with pytest.raises(ValueError):
            train_skipgram(np.zeros((3, 3)), 4)

    def test_zero_norm_similarity(self):
        model = SkipGramModel(
            in_vectors=np.zeros((2, 4)), out_vectors=np.zeros((2, 4))
        )
        assert model.similarity(0, 1) == 0.0


class TestAUC:
    def test_perfect_separation(self):
        assert auc_score(np.array([0.9, 0.8]), np.array([0.1, 0.2])) == 1.0

    def test_random_is_half(self):
        rng = np.random.default_rng(1)
        auc = auc_score(rng.random(2000), rng.random(2000))
        assert auc == pytest.approx(0.5, abs=0.05)

    def test_inverted(self):
        assert auc_score(np.array([0.1]), np.array([0.9])) == 0.0

    def test_empty(self):
        with pytest.raises(ValueError):
            auc_score(np.array([]), np.array([0.5]))


class TestSplitEdges:
    def test_holdout_counts(self, labeled_graph):
        train, positives, negatives = split_edges(labeled_graph, 0.1, seed=1)
        assert positives.shape == negatives.shape
        # Undirected: each held-out edge removes two arcs.
        removed = labeled_graph.num_edges - train.num_edges
        assert removed == pytest.approx(2 * positives.shape[0], abs=2)

    def test_negatives_are_non_edges(self, labeled_graph):
        __, __, negatives = split_edges(labeled_graph, 0.05, seed=2)
        for u, v in negatives.tolist():
            assert not labeled_graph.has_edge(u, v)

    def test_positives_are_edges(self, labeled_graph):
        __, positives, __ = split_edges(labeled_graph, 0.05, seed=3)
        for u, v in positives.tolist():
            assert labeled_graph.has_edge(u, v)

    def test_invalid_fraction(self, labeled_graph):
        with pytest.raises(ValueError):
            split_edges(labeled_graph, 0.0)
        with pytest.raises(ValueError):
            split_edges(labeled_graph, 1.0)


class TestPipeline:
    def test_end_to_end_small(self):
        graph = chung_lu_graph(512, avg_degree=10.0, seed=4, directed=False)
        pipeline = LinkPredictionPipeline(
            graph, hardware_scale=64, walk_length=10, embedding_dim=12, seed=4
        )
        report = pipeline.run(
            holdout_fraction=0.1,
            max_sampled_queries=128,
            max_training_pairs=20_000,
            epochs=1,
        )
        assert 0.0 <= report.auc <= 1.0
        assert report.snap.total_s > 0
        assert report.snap_with_lightrw.total_s > 0
        # Accelerating the walk can only help end to end.
        assert report.snap_with_lightrw.walk_s < report.snap.walk_s
        assert report.end_to_end_speedup > 1.0
        assert report.extras["walk_speedup"] > 1.0

    def test_embeddings_beat_random_on_structured_graph(self):
        """AUC above chance on a community-structured graph."""
        # Ring of cliques: strong link structure for the embeddings.
        rng = np.random.default_rng(7)
        blocks = 16
        size = 12
        edges = []
        for b in range(blocks):
            base = b * size
            for i in range(size):
                for j in range(i + 1, size):
                    if rng.random() < 0.6:
                        edges.append((base + i, base + j))
            edges.append((base, ((b + 1) % blocks) * size))
        from repro.graph.builders import from_edge_list

        graph = from_edge_list(
            np.array(edges), num_vertices=blocks * size, directed=False,
            deduplicate=True,
        )
        pipeline = LinkPredictionPipeline(
            graph, hardware_scale=16, walk_length=15, embedding_dim=16, seed=5
        )
        report = pipeline.run(
            holdout_fraction=0.1, max_sampled_queries=192,
            max_training_pairs=60_000, epochs=3,
        )
        assert report.auc > 0.6
