"""Experiment harness: every regenerator runs and shows the paper's shape.

These use deliberately small parameters — the full-size runs live in
``benchmarks/``; here we assert the *qualitative* claims cheaply.
"""

from __future__ import annotations

import pytest

from repro.bench import REGISTRY
from repro.bench.fig06_burst_bandwidth import run as fig6
from repro.bench.fig10_wrs_throughput import run_parallelism, run_stream_lengths
from repro.bench.fig11_cache_miss import run as fig11
from repro.bench.fig12_burst_strategies import run as fig12
from repro.bench.fig13_breakdown import run as fig13
from repro.bench.fig14_speedup import run as fig14
from repro.bench.fig16_query_count import run as fig16
from repro.bench.fig17_query_length import run as fig17
from repro.bench.table1_cpu_profile import run as table1
from repro.bench.table2_datasets import run as table2
from repro.bench.table4_pcie import run as table4
from repro.bench.table5_resources import run as table5


def test_registry_covers_every_table_and_figure():
    expected = {
        "table1", "table2", "table3", "table4", "table5",
        "fig6", "fig10a", "fig10b", "fig11", "fig12", "fig13",
        "fig14", "fig15", "fig16", "fig17", "fig18",
    }
    assert expected <= set(REGISTRY)


def test_result_formatting():
    result = table5()
    text = result.report()
    assert "table5" in text
    assert "metapath" in text


def test_result_save_json(tmp_path):
    result = table2(scale_divisor=2048)
    path = result.save_json(tmp_path)
    assert path.exists()
    assert "livejournal" in path.read_text()


class TestShapes:
    def test_fig6_monotone(self):
        result = fig6(scale_divisor=2048, burst_lengths=(1, 4, 16, 64))
        bandwidths = [row["bandwidth_gbps"] for row in result.rows]
        ratios = [row["valid_data_ratio"] for row in result.rows]
        assert bandwidths == sorted(bandwidths)
        assert ratios == sorted(ratios, reverse=True)
        assert bandwidths[-1] == pytest.approx(17.57, rel=0.01)

    def test_fig10a_saturates(self):
        result = run_parallelism(k_values=(1, 4, 16, 32))
        rates = [float(row["measured_items_per_s"]) for row in result.rows]
        assert rates[1] == pytest.approx(4 * rates[0], rel=0.01)
        assert rates[3] == pytest.approx(rates[2], rel=0.01)  # saturated

    def test_fig10b_short_streams_slower(self):
        result = run_stream_lengths(exponents=(6, 12))
        fractions = [row["fraction_of_peak"] for row in result.rows]
        assert fractions[0] < fractions[1]
        assert fractions[1] == pytest.approx(1.0, abs=0.05)

    def test_fig11_dac_beats_dmc_beyond_capacity(self):
        result = fig11(scales=(8, 14), max_queries=1 << 12, walk_length=15)
        small, large = result.rows
        assert small["dac_miss_ratio"] < 0.2  # fits
        assert large["dac_miss_ratio"] < large["dmc_miss_ratio"]

    def test_fig12_dynamic_beats_baseline_b2_worst(self):
        result = fig12(scale_divisor=512, rmat_scales=(14,), long_lengths=(0, 2, 32))
        for row in result.rows:
            assert row["b1+b32"] > 1.2
            assert row["b1+b2"] < 1.0

    def test_fig13_wrs_contributes_most(self):
        result = fig13(scale_divisor=512, graphs=("livejournal",), node2vec_length=10)
        for row in result.rows:
            assert row["w/o WRS"] < 0.7  # big loss
            assert row["w/o DAC"] > 0.9  # small loss
            assert row["w/o WRS"] < row["w/o DAC"]

    def test_fig14_lightrw_wins(self):
        result = fig14(
            scale_divisor=512, graphs=("livejournal",), node2vec_length=10,
            max_sampled_queries=256,
        )
        for row in result.rows:
            assert row["speedup"] > 1.5

    def test_fig16_small_batches_amplify_speedup(self):
        result = fig16(
            scale_divisor=512, query_exponents=(10, 18), max_sampled_queries=256,
            node2vec_length=10,
        )
        metapath = [r for r in result.rows if r["app"] == "MetaPath"]
        assert metapath[0]["speedup"] > metapath[1]["speedup"]
        # LightRW throughput stays roughly flat.
        light = [float(r["lightrw_steps_per_s"]) for r in metapath]
        assert light[1] == pytest.approx(light[0], rel=0.5)

    def test_fig17_speedup_stable_across_lengths(self):
        result = fig17(scale_divisor=512, lengths=(10, 40), max_sampled_queries=256)
        for app in ("MetaPath", "Node2Vec"):
            rows = [r for r in result.rows if r["app"] == app]
            speedups = [r["speedup"] for r in rows]
            assert max(speedups) / min(speedups) < 1.8

    def test_table1_memory_dominates(self):
        result = table1(scale_divisor=512, node2vec_length=10)
        for row in result.rows:
            miss = float(row["llc_miss"].rstrip("%"))
            retiring = float(row["retiring"].rstrip("%"))
            assert miss > 30.0
            assert retiring < 50.0

    def test_table4_metapath_pays_more_pcie(self):
        result = table4(
            scale_divisor=1024, node2vec_length=40, max_sampled_queries=256
        )
        metapath, node2vec = result.rows
        lj_mp = float(metapath["livejournal"].split("%")[0])
        lj_n2v = float(node2vec["livejournal"].split("%")[0])
        assert lj_mp > 5 * lj_n2v

    def test_table5_matches_paper(self):
        result = table5()
        for row in result.rows:
            for column in ("LUTs", "REGs", "BRAMs", "DSPs"):
                ours = float(row[column].split("%")[0])
                paper = float(row[column].split("paper ")[1].rstrip(")%"))
                assert ours == pytest.approx(paper, abs=1.0)
