"""Experiment CLI runner and result formatting edge cases."""

from __future__ import annotations

from repro.bench.common import ExperimentResult, REGISTRY, _format_cell
from repro.bench.runner import main


class TestFormatting:
    def test_format_cell_floats(self):
        assert _format_cell(1.5) == "1.5"
        assert _format_cell(1.0) == "1"
        assert _format_cell(0.00001) == "1e-05"
        assert _format_cell(123456.0) == "1.23e+05"
        assert _format_cell("text") == "text"
        assert _format_cell(0.0) == "0"

    def test_empty_rows(self):
        result = ExperimentResult("x", "t", [], "expectation")
        assert result.format_table() == "(no rows)"

    def test_ragged_rows_union_columns(self):
        result = ExperimentResult(
            "x", "t", [{"a": 1}, {"b": 2}], "expectation"
        )
        table = result.format_table()
        assert "a" in table and "b" in table

    def test_report_includes_notes_and_params(self):
        result = ExperimentResult(
            "x", "t", [{"a": 1}], "expectation", params={"p": 2}, notes=["hello"]
        )
        text = result.report()
        assert "note: hello" in text
        assert "{'p': 2}" in text


class TestRunnerCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out and "table5" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig6" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["figure-nine"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_and_save(self, tmp_path, capsys):
        assert main(["table5", "--save-dir", str(tmp_path)]) == 0
        assert (tmp_path / "table5.json").exists()

    def test_report_requires_save_dir(self, capsys):
        assert main(["table5", "--report", "/tmp/r.md"]) == 2

    def test_report_written(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        assert main([
            "table5", "--save-dir", str(tmp_path), "--report", str(report)
        ]) == 0
        assert report.exists()
        assert "table5" in report.read_text()

    def test_scale_override_passed(self, capsys):
        assert main(["table2", "--scale", "2048"]) == 0
        out = capsys.readouterr().out
        assert "'scale_divisor': 2048" in out

    def test_registry_well_formed(self):
        for name, fn in REGISTRY.items():
            assert callable(fn), name
