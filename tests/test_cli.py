"""Command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main


def test_info_dataset(capsys):
    assert main(["info", "youtube", "--scale", "2048"]) == 0
    out = capsys.readouterr().out
    assert "youtube" in out
    assert "mean_degree" in out


def test_info_histogram(capsys):
    main(["info", "yt", "--scale", "2048", "--histogram"])
    assert "degree histogram" in capsys.readouterr().out


def test_info_unknown_graph():
    with pytest.raises(SystemExit):
        main(["info", "not-a-dataset"])


def test_generate_and_walk_roundtrip(tmp_path, capsys):
    bundle = tmp_path / "g.npz"
    assert main([
        "generate", "rmat", str(bundle), "--vertices-log2", "7",
        "--labels", "3", "--weights",
    ]) == 0
    assert bundle.exists()

    paths_file = tmp_path / "paths.npz"
    assert main([
        "walk", str(bundle), "--algorithm", "node2vec", "--length", "6",
        "--queries", "20", "--output", str(paths_file),
    ]) == 0
    payload = np.load(paths_file)
    assert payload["paths"].shape[0] == 20
    assert payload["lengths"].max() <= 6


def test_walk_prints_paths(tmp_path, capsys):
    bundle = tmp_path / "g.npz"
    main(["generate", "chung-lu", str(bundle), "--vertices-log2", "7"])
    capsys.readouterr()
    main(["walk", str(bundle), "--algorithm", "uniform", "--length", "4",
          "--queries", "8", "--show", "2"])
    out = capsys.readouterr().out
    assert "steps/s" in out


def test_walk_metapath_schema(tmp_path, capsys):
    bundle = tmp_path / "g.npz"
    main(["generate", "rmat", str(bundle), "--vertices-log2", "7", "--labels", "2"])
    capsys.readouterr()
    assert main([
        "walk", str(bundle), "--algorithm", "metapath", "--schema", "0,1",
        "--length", "4", "--queries", "10",
    ]) == 0


def test_walk_text_edge_list(tmp_path):
    edge_file = tmp_path / "edges.txt"
    edge_file.write_text("0 1\n1 2\n2 0\n")
    assert main([
        "walk", str(edge_file), "--algorithm", "uniform", "--length", "3",
        "--queries", "3",
    ]) == 0


def test_rngtest(capsys):
    assert main(["rngtest", "--samples", "20000", "--lanes", "4"]) == 0
    assert "battery: PASS" in capsys.readouterr().out


def test_walk_unknown_backend_one_line_error(tmp_path):
    bundle = tmp_path / "g.npz"
    main(["generate", "rmat", str(bundle), "--vertices-log2", "6"])
    with pytest.raises(SystemExit) as excinfo:
        main(["walk", str(bundle), "--backend", "warp-drive"])
    message = str(excinfo.value)
    assert message.startswith("error:")
    assert "\n" not in message
    assert "fpga-model" in message  # names the registered backends


def test_walk_out_of_range_scale_one_line_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["walk", "youtube", "--scale", "-3"])
    message = str(excinfo.value)
    assert message.startswith("error:")
    assert "\n" not in message


def test_config_errors_become_one_line_errors(tmp_path, capsys):
    bundle = tmp_path / "g.npz"
    main(["generate", "rmat", str(bundle), "--vertices-log2", "6"])
    capsys.readouterr()
    # Metapath on an unlabeled graph raises a library error deep inside;
    # the CLI must turn it into `error: ...`, not a traceback.
    assert main([
        "walk", str(bundle), "--algorithm", "metapath", "--length", "3",
        "--queries", "4",
    ]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")


def test_walk_help_lists_registered_backends(capsys):
    with pytest.raises(SystemExit):
        main(["walk", "--help"])
    out = capsys.readouterr().out
    assert "registered backends" in out
    for name in ("fpga-model", "fpga-cycle", "cpu-baseline"):
        assert name in out


def test_walk_sharded_matches_unsharded(tmp_path, capsys):
    bundle = tmp_path / "g.npz"
    main(["generate", "rmat", str(bundle), "--vertices-log2", "7", "--weights"])
    out_a = tmp_path / "a.npz"
    out_b = tmp_path / "b.npz"
    assert main([
        "walk", str(bundle), "--algorithm", "uniform", "--length", "5",
        "--queries", "16", "--output", str(out_a),
    ]) == 0
    assert main([
        "walk", str(bundle), "--algorithm", "uniform", "--length", "5",
        "--queries", "16", "--shards", "4", "--output", str(out_b),
    ]) == 0
    a, b = np.load(out_a), np.load(out_b)
    np.testing.assert_array_equal(a["paths"], b["paths"])
    np.testing.assert_array_equal(a["lengths"], b["lengths"])
