"""Public API: LightRW facade, queries, results, comparisons."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import LightRW
from repro.core.compare import compare_engines
from repro.core.queries import make_queries, sample_queries
from repro.core.results import latency_box_stats
from repro.errors import ConfigError, QueryError
from repro.graph.generators import path_graph
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk
from repro.walks.uniform import UniformWalk


class TestMakeQueries:
    def test_default_all_walkable(self, tiny_graph):
        starts = make_queries(tiny_graph, shuffle=False)
        np.testing.assert_array_equal(np.sort(starts), [0, 1, 2, 3])

    def test_shuffled_deterministic(self, labeled_graph):
        a = make_queries(labeled_graph, seed=4)
        b = make_queries(labeled_graph, seed=4)
        np.testing.assert_array_equal(a, b)
        c = make_queries(labeled_graph, seed=5)
        assert not np.array_equal(a, c)

    def test_subset(self, labeled_graph):
        starts = make_queries(labeled_graph, n_queries=10)
        assert starts.size == 10

    def test_wraps_past_walkable(self, tiny_graph):
        starts = make_queries(tiny_graph, n_queries=11)
        assert starts.size == 11
        assert (tiny_graph.degrees[starts] > 0).all()

    def test_no_walkable_vertices(self):
        graph = path_graph(1)
        with pytest.raises(QueryError):
            make_queries(graph)

    def test_invalid_count(self, tiny_graph):
        with pytest.raises(QueryError):
            make_queries(tiny_graph, n_queries=0)


class TestSampleQueries:
    def test_pass_through_when_small(self):
        starts = np.arange(10)
        sampled, total = sample_queries(starts, 20)
        assert total == 10
        np.testing.assert_array_equal(sampled, starts)

    def test_subsample(self):
        starts = np.arange(1000)
        sampled, total = sample_queries(starts, 100, seed=1)
        assert total == 1000
        assert sampled.size == 100
        assert np.unique(sampled).size == 100

    def test_invalid(self):
        with pytest.raises(QueryError):
            sample_queries(np.arange(5), 0)


class TestLatencyStats:
    def test_five_numbers(self):
        stats = latency_box_stats(np.array([1.0, 2.0, 3.0, 4.0, 100.0]))
        assert stats.minimum == 1.0
        assert stats.maximum == 100.0
        assert stats.median == 3.0
        assert stats.q1 <= stats.median <= stats.q3

    def test_empty(self):
        with pytest.raises(ValueError):
            latency_box_stats(np.array([]))

    def test_unit_scale(self):
        row = latency_box_stats(np.array([1e-6, 2e-6])).as_row(unit_scale=1e6)
        assert row["min"] == pytest.approx(1.0)


class TestLightRWFacade:
    def test_invalid_backend(self, labeled_graph):
        with pytest.raises(ConfigError):
            LightRW(labeled_graph, backend="gpu")

    @pytest.mark.parametrize("backend", ["fpga-model", "cpu-baseline"])
    def test_run_defaults(self, labeled_graph, backend):
        engine = LightRW(labeled_graph, backend=backend, hardware_scale=64, seed=2)
        result = engine.run(UniformWalk(), 5, max_sampled_queries=64)
        assert result.backend == backend
        assert result.total_steps > 0
        assert result.kernel_s > 0
        assert result.steps_per_second > 0
        assert 0 <= result.pcie_fraction < 1

    def test_cycle_backend_small(self, labeled_graph):
        engine = LightRW(labeled_graph, backend="fpga-cycle", hardware_scale=64, seed=2)
        starts = make_queries(labeled_graph, n_queries=8, seed=2)
        result = engine.run(UniformWalk(), 4, starts=starts)
        assert result.num_queries == 8
        assert result.paths.shape[0] == 8
        assert result.query_latency_s.shape == (8,)

    def test_fpga_backends_agree_on_walks(self, labeled_graph):
        starts = make_queries(labeled_graph, n_queries=12, seed=6)
        model = LightRW(labeled_graph, backend="fpga-model", hardware_scale=64, seed=6)
        cycle = LightRW(labeled_graph, backend="fpga-cycle", hardware_scale=64, seed=6)
        r_model = model.run(Node2VecWalk(), 5, starts=starts)
        r_cycle = cycle.run(Node2VecWalk(), 5, starts=starts)
        for q in range(12):
            length = r_model.lengths[q]
            np.testing.assert_array_equal(
                r_model.paths[q, : length + 1], r_cycle.paths[q, : length + 1]
            )
            assert r_cycle.lengths[q] == length

    def test_query_sampling_extrapolates(self, labeled_graph):
        engine = LightRW(labeled_graph, backend="fpga-model", hardware_scale=64, seed=1)
        full = make_queries(labeled_graph, seed=1)
        result = engine.run(UniformWalk(), 5, starts=full, max_sampled_queries=32)
        assert result.num_queries == full.size
        assert result.paths.shape[0] == 32  # functional sample only

    def test_cpu_setup_separated(self, labeled_graph):
        engine = LightRW(labeled_graph, backend="cpu-baseline", hardware_scale=64)
        result = engine.run(UniformWalk(), 5, max_sampled_queries=64)
        assert result.setup_s > 0
        assert result.end_to_end_s == pytest.approx(
            result.kernel_s + result.setup_s + result.pcie_s
        )

    def test_pcie_excluded_option(self, labeled_graph):
        engine = LightRW(labeled_graph, backend="fpga-model", hardware_scale=64)
        with_pcie = engine.run(UniformWalk(), 5, max_sampled_queries=32)
        without = engine.run(UniformWalk(), 5, max_sampled_queries=32, include_pcie=False)
        assert without.pcie_s == 0.0
        assert with_pcie.pcie_s > 0


class TestCompareEngines:
    def test_report_structure(self, labeled_graph):
        report = compare_engines(
            labeled_graph,
            MetaPathWalk([0, 1, 2]),
            5,
            hardware_scale=64,
            max_sampled_queries=64,
            include_pwrs_variant=True,
        )
        assert report.speedup > 0
        assert report.kernel_speedup > 0
        assert report.pwrs_on_cpu_speedup is not None
        assert report.power_efficiency_improvement() > 0

    def test_fpga_wins_on_scaled_platform(self, labeled_graph):
        report = compare_engines(
            labeled_graph, Node2VecWalk(), 10, hardware_scale=256,
            max_sampled_queries=64,
        )
        assert report.kernel_speedup > 1.0

    def test_no_pwrs_variant_by_default(self, labeled_graph):
        report = compare_engines(
            labeled_graph, UniformWalk(), 3, hardware_scale=64, max_sampled_queries=32
        )
        assert report.thunderrw_pwrs is None
        assert report.pwrs_on_cpu_speedup is None


class TestRestartFacade:
    def test_run_restart_produces_walks_and_timing(self, labeled_graph):
        engine = LightRW(labeled_graph, hardware_scale=64, seed=3)
        result = engine.run_restart(n_steps=10, alpha=0.2, max_sampled_queries=64)
        assert result.algorithm == "restart"
        assert result.total_steps > 0
        assert result.kernel_s > 0
        assert result.query_latency_s is not None

    def test_run_restart_paths_teleport_to_start(self, labeled_graph):
        starts = make_queries(labeled_graph, n_queries=16, seed=4)
        engine = LightRW(labeled_graph, hardware_scale=64, seed=4)
        result = engine.run_restart(n_steps=12, alpha=0.5, starts=starts)
        for q in range(min(16, result.paths.shape[0])):
            path = result.paths[q][result.paths[q] >= 0]
            for u, v in zip(path[:-1], path[1:]):
                assert labeled_graph.has_edge(int(u), int(v)) or v == path[0]

    def test_run_restart_requires_model_backend(self, labeled_graph):
        engine = LightRW(labeled_graph, backend="cpu-baseline", hardware_scale=64)
        with pytest.raises(ConfigError):
            engine.run_restart(n_steps=5)
