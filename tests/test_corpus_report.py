"""Walk-corpus persistence and the aggregate report generator."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.apps.corpus import (
    corpus_statistics,
    load_walk_corpus,
    save_walk_corpus,
)
from repro.bench.common import ExperimentResult
from repro.bench.report import (
    render_experiment,
    render_report,
    text_bar_chart,
    write_report,
)
from repro.errors import QueryError


class TestCorpus:
    def test_round_trip(self, tmp_path):
        paths = np.array([[0, 1, 2, -1], [3, 4, -1, -1], [5, -1, -1, -1]])
        lengths = np.array([2, 1, 0])
        file = tmp_path / "walks.txt"
        written = save_walk_corpus(paths, lengths, file)
        assert written == 2  # the zero-step walk is dropped by default
        loaded_paths, loaded_lengths = load_walk_corpus(file)
        np.testing.assert_array_equal(loaded_lengths, [2, 1])
        np.testing.assert_array_equal(loaded_paths[0], [0, 1, 2])
        np.testing.assert_array_equal(loaded_paths[1, :2], [3, 4])
        assert loaded_paths[1, 2] == -1

    def test_min_length_zero_keeps_singletons(self, tmp_path):
        paths = np.array([[5, -1]])
        file = tmp_path / "walks.txt"
        assert save_walk_corpus(paths, np.array([0]), file, min_length=0) == 1
        loaded, lengths = load_walk_corpus(file)
        assert lengths[0] == 0

    def test_empty_file(self, tmp_path):
        file = tmp_path / "empty.txt"
        file.write_text("\n\n")
        paths, lengths = load_walk_corpus(file)
        assert paths.shape[0] == 0

    def test_malformed(self, tmp_path):
        file = tmp_path / "bad.txt"
        file.write_text("0 1 x\n")
        with pytest.raises(QueryError, match="non-integer"):
            load_walk_corpus(file)

    def test_invalid_shapes(self, tmp_path):
        with pytest.raises(QueryError):
            save_walk_corpus(np.zeros(3), np.zeros(3), tmp_path / "x.txt")

    def test_statistics(self):
        paths = np.array([[0, 1, 2, -1], [0, 1, -1, -1]])
        stats = corpus_statistics(paths, np.array([2, 1]))
        assert stats["walks"] == 2
        assert stats["tokens"] == 5
        assert stats["mean_length"] == 1.5
        assert stats["distinct_vertices"] == 3

    def test_real_session_round_trip(self, labeled_graph, tmp_path):
        from repro.walks import PWRSSampler, UniformWalk, run_walks

        starts = labeled_graph.nonzero_degree_vertices()[:16]
        session = run_walks(labeled_graph, starts, 6, UniformWalk(), PWRSSampler(8, 2))
        file = tmp_path / "session.txt"
        save_walk_corpus(session.paths, session.lengths, file)
        paths, lengths = load_walk_corpus(file)
        kept = session.lengths >= 1
        np.testing.assert_array_equal(lengths, session.lengths[kept])


class TestTextBarChart:
    def test_proportional_bars(self):
        chart = text_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_empty(self):
        assert text_bar_chart([], []) == "(no data)"

    def test_mismatched(self):
        with pytest.raises(ValueError):
            text_bar_chart(["a"], [1.0, 2.0])


class TestReport:
    def _save(self, tmp_path, name, rows, chartable=False):
        result = ExperimentResult(
            name=name,
            title=f"title of {name}",
            rows=rows,
            paper_expectation="expectation text",
            params={"x": 1},
            notes=["a note"],
        )
        result.save_json(tmp_path)

    def test_render_single_experiment(self, tmp_path):
        self._save(tmp_path, "table2", [{"name": "lj", "paper_V": 5}])
        payload = json.loads((tmp_path / "table2.json").read_text())
        section = render_experiment(payload)
        assert "## table2" in section
        assert "| name | paper_V |" in section
        assert "> a note" in section

    def test_chart_included_for_known_figures(self, tmp_path):
        self._save(
            tmp_path, "fig14",
            [{"graph": "yt", "speedup": 2.0}, {"graph": "lj", "speedup": 4.0}],
        )
        payload = json.loads((tmp_path / "fig14.json").read_text())
        section = render_experiment(payload)
        assert "```" in section
        assert "#" in section

    def test_full_report_ordering(self, tmp_path):
        self._save(tmp_path, "fig14", [{"graph": "yt", "speedup": 2.0}])
        self._save(tmp_path, "table1", [{"app": "mp"}])
        self._save(tmp_path, "custom-extra", [{"k": 1}])
        report = render_report(tmp_path)
        assert report.index("## table1") < report.index("## fig14")
        assert report.index("## fig14") < report.index("## custom-extra")

    def test_write_report(self, tmp_path):
        self._save(tmp_path, "table5", [{"app": "metapath"}])
        destination = write_report(tmp_path, tmp_path / "report.md")
        assert destination.read_text().startswith("# LightRW reproduction")

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            render_report(tmp_path)
