"""CPU baseline: cache models, cost model, profiling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu.costmodel import CPUSpec, cpu_time_for_session
from repro.cpu.engine import ThunderRWEngine
from repro.cpu.memory_model import CacheSim, llc_hit_ratio
from repro.cpu.profiling import profile_session
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk
from repro.walks.stepper import InverseTransformSampler, run_walks
from repro.walks.uniform import UniformWalk


class TestCacheSim:
    def test_lru_eviction(self):
        # One set, two ways.
        cache = CacheSim(capacity_bytes=128, ways=2, line_bytes=64)
        assert cache.n_sets == 1
        assert not cache.access(0)
        assert not cache.access(64)
        assert cache.access(0)  # hit, promotes line 0
        assert not cache.access(128)  # evicts line 64 (LRU)
        assert cache.access(0)
        assert not cache.access(64)

    def test_line_granularity(self):
        cache = CacheSim(capacity_bytes=64, ways=1)
        cache.access(0)
        assert cache.access(63)  # same line
        assert not cache.access(64)

    def test_access_many(self):
        cache = CacheSim(capacity_bytes=1024, ways=4)
        hits = cache.access_many(np.array([0, 0, 0, 64, 64]))
        assert hits == 3
        assert cache.miss_ratio == pytest.approx(2 / 5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            CacheSim(0)


class TestLLCHitRatio:
    def test_everything_fits(self):
        assert llc_hit_ratio(np.array([3, 2, 1]), 8, 1000) == 1.0

    def test_nothing_fits(self):
        assert llc_hit_ratio(np.array([3, 2, 1]), 8, 0.5) == 0.0

    def test_hot_prefix(self):
        # Capacity holds 1 of 3 vertices; the hottest has 6/10 of visits.
        degrees = np.array([6.0, 3.0, 1.0])
        assert llc_hit_ratio(degrees, 8, 8) == pytest.approx(0.6)

    def test_monotone_in_capacity(self):
        degrees = np.random.default_rng(0).zipf(2.0, 500).astype(float)
        ratios = [llc_hit_ratio(degrees, 8, c) for c in (8, 64, 512, 4096)]
        assert all(a <= b + 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_invalid(self):
        with pytest.raises(ValueError):
            llc_hit_ratio(np.array([1.0]), 0, 100)


@pytest.fixture
def session(labeled_graph):
    starts = labeled_graph.nonzero_degree_vertices()[:64]
    return run_walks(labeled_graph, starts, 10, UniformWalk(), InverseTransformSampler(3))


@pytest.fixture
def n2v_session(labeled_graph):
    starts = labeled_graph.nonzero_degree_vertices()[:64]
    return run_walks(
        labeled_graph, starts, 10, Node2VecWalk(), InverseTransformSampler(3)
    )


class TestCostModel:
    def test_components_positive(self, session):
        timing = cpu_time_for_session(session, UniformWalk(), CPUSpec())
        assert timing.seq_time_s > 0
        assert timing.rand_time_s > 0
        assert timing.instr_time_s > 0
        assert timing.wall_s > timing.exec_s
        assert timing.steps_per_second > 0

    def test_threads_divide_busy_time(self, session):
        t8 = cpu_time_for_session(session, UniformWalk(), CPUSpec(n_threads=8))
        t16 = cpu_time_for_session(session, UniformWalk(), CPUSpec(n_threads=16))
        assert t8.exec_s == pytest.approx(2 * t16.exec_s)

    def test_pwrs_variant_drops_intermediate_traffic(self, session):
        itx = cpu_time_for_session(session, UniformWalk(), CPUSpec(), "inverse-transform")
        pwrs = cpu_time_for_session(session, UniformWalk(), CPUSpec(), "pwrs")
        assert pwrs.seq_time_s < itx.seq_time_s
        assert pwrs.instr_time_s > itx.instr_time_s  # per-item RNG cost

    def test_node2vec_costs_more_per_step(self, session, n2v_session):
        uniform = cpu_time_for_session(session, UniformWalk(), CPUSpec())
        n2v = cpu_time_for_session(n2v_session, Node2VecWalk(), CPUSpec())
        assert (n2v.exec_s / n2v.total_steps) > (uniform.exec_s / uniform.total_steps)

    def test_scaled_platform_slows_model(self, session):
        """Shrinking the LLC with the dataset raises the miss ratio."""
        unscaled = cpu_time_for_session(session, UniformWalk(), CPUSpec())
        # The fixture graph is tiny; only a large divisor shrinks the LLC
        # below its footprint.
        scaled = cpu_time_for_session(session, UniformWalk(), CPUSpec().scaled(8192))
        assert scaled.llc_miss_ratio > unscaled.llc_miss_ratio
        assert scaled.exec_s > unscaled.exec_s

    def test_extrapolation(self, session):
        base = cpu_time_for_session(session, UniformWalk(), CPUSpec())
        doubled = cpu_time_for_session(
            session, UniformWalk(), CPUSpec(), total_queries=2 * session.num_queries
        )
        assert doubled.total_steps == 2 * base.total_steps
        assert doubled.exec_s == pytest.approx(2 * base.exec_s)
        with pytest.raises(ValueError):
            cpu_time_for_session(session, UniformWalk(), CPUSpec(), total_queries=1)

    def test_query_latencies(self, session):
        timing = cpu_time_for_session(session, UniformWalk(), CPUSpec())
        assert timing.query_latency_s.shape == (session.num_queries,)
        moved = session.lengths > 0
        assert (timing.query_latency_s[moved] > 0).all()

    def test_rejects_traceless_session(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:4]
        bare = run_walks(
            labeled_graph, starts, 3, UniformWalk(), InverseTransformSampler(0),
            record_trace=False,
        )
        with pytest.raises(ValueError):
            cpu_time_for_session(bare, UniformWalk(), CPUSpec())

    def test_unknown_sampler(self, session):
        with pytest.raises(ValueError):
            cpu_time_for_session(session, UniformWalk(), CPUSpec(), sampler="rejection")


class TestEngine:
    def test_run_produces_walks_and_timing(self, labeled_graph):
        engine = ThunderRWEngine(labeled_graph, CPUSpec().scaled(64), seed=3)
        starts = labeled_graph.nonzero_degree_vertices()[:32]
        outcome = engine.run(starts, 6, MetaPathWalk([0, 1, 2]))
        assert outcome.session.num_queries == 32
        assert outcome.wall_s > 0
        assert outcome.steps_per_second > 0

    def test_invalid_sampler_kind(self, labeled_graph):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ThunderRWEngine(labeled_graph, sampler="rejection")


class TestProfiling:
    def test_profile_fractions_valid(self, session):
        timing = cpu_time_for_session(session, UniformWalk(), CPUSpec().scaled(64))
        profile = profile_session(timing, "Uniform", "labeled")
        assert 0 <= profile.llc_miss_ratio <= 1
        assert 0 <= profile.memory_bound <= 1
        assert 0 <= profile.retiring <= 1
        assert profile.memory_bound + profile.retiring <= 1.01

    def test_profile_row_format(self, session):
        timing = cpu_time_for_session(session, UniformWalk(), CPUSpec())
        row = profile_session(timing, "Uniform", "labeled").as_row()
        assert row["Application"] == "Uniform"
        assert row["LLC Miss"].endswith("%")
