"""Cross-sampler distributional agreement on a shared workload.

Both engines (PWRS on the accelerator, inverse transform on the CPU) must
sample from the same transition laws — the paper's comparisons would be
meaningless otherwise.  These tests pit the two samplers against each
other and against the exact law on identical workloads.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.graph.builders import from_edge_list
from repro.walks.node2vec import Node2VecWalk
from repro.walks.static import StaticWalk
from repro.walks.stepper import InverseTransformSampler, PWRSSampler, run_walks
from repro.walks.validation import exact_step_distribution


@pytest.fixture(scope="module")
def weighted_fan():
    """A fan with distinctive weights: 0 -> {1..6} with w = 1..6."""
    edges = np.array([[0, v] for v in range(1, 7)])
    weights = np.arange(1, 7, dtype=np.float32)
    return from_edge_list(edges, num_vertices=7, weights=weights)


class TestAgainstExactLaw:
    N = 24_000

    def _first_steps(self, graph, sampler):
        starts = np.zeros(self.N, dtype=np.int64)
        session = run_walks(graph, starts, 1, StaticWalk(), sampler)
        return session.paths[:, 1]

    @pytest.mark.parametrize("make_sampler", [
        lambda: PWRSSampler(k=16, seed=77),
        lambda: PWRSSampler(k=1, seed=77),
        lambda: InverseTransformSampler(seed=77),
    ], ids=["pwrs16", "pwrs1", "itx"])
    def test_sampler_matches_exact(self, weighted_fan, make_sampler):
        exact = exact_step_distribution(weighted_fan, StaticWalk(), 0)
        picks = self._first_steps(weighted_fan, make_sampler())
        observed = np.bincount(picks, minlength=7)[1:]
        expected = exact[1:] * self.N
        __, p_value = stats.chisquare(observed, expected)
        assert p_value > 1e-4

    def test_pwrs_and_itx_are_homogeneous(self, weighted_fan):
        """The two samplers' draws are statistically indistinguishable."""
        pwrs = self._first_steps(weighted_fan, PWRSSampler(16, 13))
        itx = self._first_steps(weighted_fan, InverseTransformSampler(13))
        table = np.stack([
            np.bincount(pwrs, minlength=7)[1:],
            np.bincount(itx, minlength=7)[1:],
        ])
        __, p_value, *_ = stats.chi2_contingency(table)
        assert p_value > 1e-4


class TestSecondOrderAgreement:
    def test_node2vec_visit_distributions_agree(self, labeled_graph):
        """Multi-step Node2Vec visit frequencies match across samplers."""
        starts = np.tile(labeled_graph.nonzero_degree_vertices()[:64], 8)
        walk = Node2VecWalk(2.0, 0.5)
        a = run_walks(labeled_graph, starts, 15, walk, PWRSSampler(16, 3))
        b = run_walks(labeled_graph, starts, 15, walk, InverseTransformSampler(3))
        freq_a = np.bincount(
            a.paths[a.paths >= 0], minlength=labeled_graph.num_vertices
        ).astype(float)
        freq_b = np.bincount(
            b.paths[b.paths >= 0], minlength=labeled_graph.num_vertices
        ).astype(float)
        freq_a /= freq_a.sum()
        freq_b /= freq_b.sum()
        assert np.corrcoef(freq_a, freq_b)[0, 1] > 0.97
        assert 0.5 * np.abs(freq_a - freq_b).sum() < 0.15  # TV distance
