"""Named dataset stand-ins (Table 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.datasets import (
    DATASET_ORDER,
    DATASETS,
    dataset_table,
    load_dataset,
)


def test_specs_match_paper_table2():
    lj = DATASETS["livejournal"]
    assert lj.num_vertices == 4_800_000
    assert lj.num_edges == 68_900_000
    assert lj.avg_degree == 14
    assert not lj.directed
    uk = DATASETS["uk2002"]
    assert uk.directed
    assert uk.num_edges == 298_110_000
    assert len(DATASET_ORDER) == 5


def test_load_by_abbreviation():
    a = load_dataset("LJ", scale_divisor=1024)
    b = load_dataset("livejournal", scale_divisor=1024)
    np.testing.assert_array_equal(a.col_index, b.col_index)


def test_unknown_name():
    with pytest.raises(KeyError, match="unknown dataset"):
        load_dataset("facebook")


def test_invalid_scale():
    with pytest.raises(ValueError):
        load_dataset("youtube", scale_divisor=0)


def test_deterministic():
    a = load_dataset("youtube", scale_divisor=512, seed=9)
    b = load_dataset("youtube", scale_divisor=512, seed=9)
    np.testing.assert_array_equal(a.col_index, b.col_index)
    np.testing.assert_array_equal(a.vertex_labels, b.vertex_labels)
    np.testing.assert_array_equal(a.edge_weights, b.edge_weights)


@pytest.mark.parametrize("name", DATASET_ORDER)
def test_standins_preserve_structure(name):
    spec = DATASETS[name]
    graph = load_dataset(name, scale_divisor=512)
    assert graph.directed == spec.directed
    assert graph.num_vertices == pytest.approx(spec.num_vertices / 512, rel=0.01)
    # Average degree within 35% of the original (dedup collisions allow
    # some slack on the heaviest graphs).
    assert graph.average_degree == pytest.approx(spec.avg_degree, rel=0.35)
    # Power-law skew: the hubs dominate.
    assert graph.max_degree > 8 * graph.average_degree
    assert graph.vertex_labels is not None
    assert graph.edge_weights is not None


def test_without_weights():
    graph = load_dataset("youtube", scale_divisor=1024, with_weights=False)
    assert graph.edge_weights is None


def test_dataset_table_rows():
    rows = dataset_table(scale_divisor=1024)
    assert [row["name"] for row in rows] == DATASET_ORDER
    for row in rows:
        assert row["standin_V"] > 0
        assert row["standin_E"] > 0
