"""Durability: checkpoint/resume, crash-safe artifact I/O, simulator watchdog."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import LightRW, Observer
from repro.artifacts import (
    ARTIFACT_VERSION,
    atomic_write_bytes,
    checked_record,
    load_npz_checked,
    quarantine,
    read_binary_artifact,
    read_json_artifact,
    record_checksum_ok,
    save_npz_checked,
    write_binary_artifact,
    write_json_artifact,
)
from repro.bench.runner import main as bench_main
from repro.cli import main as cli_main
from repro.core.queries import make_queries
from repro.errors import (
    ArtifactCorruptionError,
    ConfigError,
    GraphFormatError,
    ShardExecutionError,
    SimulationError,
    SimulationStallError,
)
from repro.fpga.sim.clock import Simulator
from repro.fpga.sim.fifo import FIFO
from repro.fpga.sim.module import Module
from repro.graph.io import load_csr_npz, save_csr_npz
from repro.obs import append_jsonl, read_jsonl, use_observer
from repro.runtime import InjectedFault, RunCheckpoint, SweepCheckpoint, resume_run
from repro.walks.uniform import UniformWalk


@pytest.fixture
def engine(labeled_graph):
    return LightRW(labeled_graph, hardware_scale=64, seed=3)


@pytest.fixture
def starts(labeled_graph):
    return make_queries(labeled_graph, n_queries=32, seed=4)


# -- artifact layer -----------------------------------------------------------


class TestJsonArtifacts:
    def test_round_trip_strips_envelope(self, tmp_path):
        path = tmp_path / "a.json"
        write_json_artifact(path, {"rows": [1, 2], "name": "x"}, kind="test")
        assert read_json_artifact(path, kind="test") == {"rows": [1, 2], "name": "x"}

    def test_reserved_keys_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="reserved"):
            write_json_artifact(tmp_path / "a.json", {"checksum": "x"}, kind="t")

    def test_tampering_quarantines(self, tmp_path):
        path = tmp_path / "a.json"
        write_json_artifact(path, {"value": 1}, kind="test")
        envelope = json.loads(path.read_text())
        envelope["value"] = 2  # flip the payload, keep the old checksum
        path.write_text(json.dumps(envelope))
        with pytest.raises(ArtifactCorruptionError, match="checksum") as excinfo:
            read_json_artifact(path, kind="test")
        assert not path.exists(), "corrupt file must not survive under its name"
        assert excinfo.value.quarantine_path is not None
        assert excinfo.value.quarantine_path.exists()

    def test_truncated_write_quarantines(self, tmp_path):
        path = tmp_path / "a.json"
        write_json_artifact(path, {"value": 1}, kind="test")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(ArtifactCorruptionError):
            read_json_artifact(path)

    def test_wrong_kind_quarantines(self, tmp_path):
        path = tmp_path / "a.json"
        write_json_artifact(path, {"value": 1}, kind="bench-result")
        with pytest.raises(ArtifactCorruptionError, match="kind"):
            read_json_artifact(path, kind="run-checkpoint")

    def test_newer_version_is_config_error_not_quarantine(self, tmp_path):
        path = tmp_path / "a.json"
        write_json_artifact(path, {"value": 1}, kind="test")
        envelope = json.loads(path.read_text())
        envelope["format_version"] = ARTIFACT_VERSION + 1
        path.write_text(json.dumps(envelope))
        with pytest.raises(ConfigError, match="newer"):
            read_json_artifact(path, kind="test")
        assert path.exists(), "a future-version file is intact, never destroyed"


class TestBinaryArtifacts:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "a.bin"
        write_binary_artifact(path, b"\x00payload\xff", kind="blob")
        assert read_binary_artifact(path, kind="blob") == b"\x00payload\xff"

    @pytest.mark.parametrize("keep", [0, 5, 30])
    def test_truncation_detected(self, tmp_path, keep):
        path = tmp_path / "a.bin"
        write_binary_artifact(path, b"x" * 64, kind="blob")
        atomic_write_bytes(path, path.read_bytes()[:keep])
        with pytest.raises(ArtifactCorruptionError):
            read_binary_artifact(path, kind="blob")

    def test_bad_magic_detected(self, tmp_path):
        path = tmp_path / "a.bin"
        atomic_write_bytes(path, b"not an artifact at all, but long enough")
        with pytest.raises(ArtifactCorruptionError, match="magic"):
            read_binary_artifact(path)

    def test_payload_bitflip_detected(self, tmp_path):
        path = tmp_path / "a.bin"
        write_binary_artifact(path, b"x" * 64, kind="blob")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        atomic_write_bytes(path, bytes(blob))
        with pytest.raises(ArtifactCorruptionError, match="checksum"):
            read_binary_artifact(path, kind="blob")


class TestNpzArtifacts:
    def test_round_trip(self, tmp_path):
        path = save_npz_checked(tmp_path / "a", {"x": np.arange(5)})
        assert path.suffix == ".npz"
        arrays = load_npz_checked(path, require_checksum=True)
        np.testing.assert_array_equal(arrays["x"], np.arange(5))
        assert "checksum" not in arrays

    def test_zero_byte_file_quarantined(self, tmp_path):
        path = tmp_path / "a.npz"
        path.touch()
        with pytest.raises(ArtifactCorruptionError, match="zero-byte"):
            load_npz_checked(path)
        assert not path.exists()

    def test_truncated_npz_quarantined(self, tmp_path):
        path = save_npz_checked(tmp_path / "a.npz", {"x": np.arange(100)})
        atomic_write_bytes(path, path.read_bytes()[:40])
        with pytest.raises(ArtifactCorruptionError):
            load_npz_checked(path)

    def test_legacy_bundle_needs_no_checksum_unless_required(self, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, x=np.arange(3))
        np.testing.assert_array_equal(load_npz_checked(path)["x"], np.arange(3))
        with pytest.raises(ArtifactCorruptionError, match="missing checksum"):
            load_npz_checked(path, require_checksum=True)

    def test_quarantine_numbers_collisions(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_text("junk")
        first = quarantine(path)
        path.write_text("junk again")
        second = quarantine(path)
        assert first != second and first.exists() and second.exists()


class TestJsonlIntegrity:
    def test_round_trip_strips_checksum(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_jsonl(path, {"a": 1})
        append_jsonl(path, {"b": 2})
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_torn_final_line_skipped(self, tmp_path, caplog):
        path = tmp_path / "runs.jsonl"
        append_jsonl(path, {"a": 1})
        with path.open("a") as handle:
            handle.write('{"b": 2, "chec')  # crash mid-append
        with caplog.at_level("WARNING"):
            assert read_jsonl(path) == [{"a": 1}]
        assert "torn final record" in caplog.text
        assert path.exists(), "a torn tail is expected damage, not corruption"

    def test_midfile_damage_quarantined(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_jsonl(path, {"a": 1})
        with path.open("a") as handle:
            handle.write("garbage\n")
        append_jsonl(path, {"b": 2})
        with pytest.raises(ArtifactCorruptionError, match="mid-file"):
            read_jsonl(path)
        assert not path.exists()

    def test_tampered_record_detected(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_jsonl(path, {"a": 1})
        record = json.loads(path.read_text())
        record["a"] = 999
        path.write_text(json.dumps(record) + "\n" + json.dumps(record) + "\n")
        with pytest.raises(ArtifactCorruptionError, match="checksum"):
            read_jsonl(path)

    def test_record_checksum_helpers(self):
        record = checked_record({"x": 1})
        assert record_checksum_ok(record) is True
        record["x"] = 2
        assert record_checksum_ok(record) is False
        assert record_checksum_ok({"x": 1}) is None  # legacy, nothing to verify


class TestGraphBundleIntegrity:
    def test_round_trip_verified(self, tmp_path, labeled_graph):
        path = tmp_path / "g.npz"
        save_csr_npz(labeled_graph, path)
        loaded = load_csr_npz(path)
        np.testing.assert_array_equal(loaded.row_index, labeled_graph.row_index)
        np.testing.assert_array_equal(loaded.col_index, labeled_graph.col_index)
        np.testing.assert_array_equal(
            loaded.vertex_labels, labeled_graph.vertex_labels
        )

    def test_bitflip_quarantined(self, tmp_path, tiny_graph):
        path = tmp_path / "g.npz"
        save_csr_npz(tiny_graph, path)
        blob = bytearray(path.read_bytes())
        third = len(blob) // 3
        for offset in range(third, 2 * third):  # scramble the middle third
            blob[offset] ^= 0xFF
        atomic_write_bytes(path, bytes(blob))
        with pytest.raises(ArtifactCorruptionError):
            load_csr_npz(path)
        assert not path.exists()

    def test_zero_byte_bundle_rejected(self, tmp_path):
        path = tmp_path / "g.npz"
        path.touch()
        with pytest.raises(ArtifactCorruptionError, match="zero-byte"):
            load_csr_npz(path)

    def test_newer_format_version_rejected_clearly(self, tmp_path, tiny_graph):
        path = tmp_path / "g.npz"
        save_npz_checked(
            path,
            {
                "format_version": np.int64(99),
                "row_index": tiny_graph.row_index,
                "col_index": tiny_graph.col_index,
                "directed": np.bool_(True),
                "name": np.str_("future"),
            },
        )
        with pytest.raises(GraphFormatError, match="newer.*upgrade"):
            load_csr_npz(path)

    def test_non_bundle_npz_rejected(self, tmp_path):
        path = save_npz_checked(tmp_path / "g.npz", {"x": np.arange(3)})
        with pytest.raises(GraphFormatError, match="not a CSR bundle"):
            load_csr_npz(path)

    def test_legacy_v1_bundle_still_loads(self, tmp_path, tiny_graph):
        path = tmp_path / "g.npz"
        np.savez_compressed(  # exactly what version 1 of the library wrote
            path,
            format_version=np.int64(1),
            row_index=tiny_graph.row_index,
            col_index=tiny_graph.col_index,
            directed=np.bool_(tiny_graph.directed),
            name=np.str_(tiny_graph.name),
        )
        loaded = load_csr_npz(path)
        np.testing.assert_array_equal(loaded.col_index, tiny_graph.col_index)


# -- run checkpoint / resume --------------------------------------------------


class TestRunCheckpointResume:
    def _interrupt(self, engine, starts, directory, shard=2):
        """Simulate a crash: shard ``shard`` fails, the others checkpoint."""
        with pytest.raises(ShardExecutionError):
            engine.run(
                UniformWalk(), 5, starts=starts, shards=4,
                checkpoint_dir=directory,
                faults=[InjectedFault(shard=shard, fail_attempts=-1)],
            )

    def test_resume_is_byte_identical(self, engine, starts, tmp_path):
        """The tentpole claim: restored + re-executed shards merge to the
        same walks an uninterrupted run produces."""
        baseline = engine.run(UniformWalk(), 5, starts=starts, shards=4)
        directory = tmp_path / "ck"
        self._interrupt(engine, starts, directory)
        assert sorted(p.name for p in directory.glob("shard-*.ckpt")) == [
            "shard-0000.ckpt", "shard-0001.ckpt", "shard-0003.ckpt",
        ]
        observer = Observer()
        resumed = engine.run(
            UniformWalk(), 5, starts=starts, shards=4,
            checkpoint_dir=directory, resume=True, observer=observer,
        )
        assert resumed.resumed_shards == 3
        np.testing.assert_array_equal(resumed.paths, baseline.paths)
        np.testing.assert_array_equal(resumed.lengths, baseline.lengths)
        assert observer.metrics.total("run.resumed_shards") == 3
        assert observer.metrics.total("run.checkpoints") == 1  # only shard 2

    def test_resume_replays_restored_shard_metrics(self, engine, starts, tmp_path):
        """Restored shards re-emit their per-shard counters on restore, so
        a resumed run's metric snapshot matches an uninterrupted run's."""
        families = ("dac.", "dyb.", "dram.", "pipeline.", "cpu.", "time.", "query.")

        def picked(observer):
            return {
                key: value
                for key, value in observer.metrics.snapshot().items()
                if key.startswith(families)
            }

        base_obs = Observer()
        engine.run(UniformWalk(), 5, starts=starts, shards=4, observer=base_obs)
        directory = tmp_path / "ck"
        self._interrupt(engine, starts, directory)
        resumed_obs = Observer()
        engine.run(
            UniformWalk(), 5, starts=starts, shards=4,
            checkpoint_dir=directory, resume=True, observer=resumed_obs,
        )
        assert picked(base_obs) == picked(resumed_obs)
        assert len(picked(base_obs)) > 0
        assert resumed_obs.metrics.total("run.resumed_shards") == 3

    def test_process_mode_resume_is_byte_identical(self, engine, starts, tmp_path):
        baseline = engine.run(UniformWalk(), 5, starts=starts, shards=4)
        directory = tmp_path / "ck"
        with pytest.raises(ShardExecutionError):
            engine.run(
                UniformWalk(), 5, starts=starts, shards=4, mode="process",
                checkpoint_dir=directory,
                faults=[InjectedFault(shard=2, fail_attempts=-1)],
            )
        resumed = engine.run(
            UniformWalk(), 5, starts=starts, shards=4, mode="process",
            checkpoint_dir=directory, resume=True,
        )
        assert resumed.resumed_shards == 3
        np.testing.assert_array_equal(resumed.paths, baseline.paths)
        np.testing.assert_array_equal(resumed.lengths, baseline.lengths)

    def test_resumed_manifest_equivalent_modulo_timing(self, engine, starts, tmp_path):
        baseline = engine.run(UniformWalk(), 5, starts=starts, shards=4)
        directory = tmp_path / "ck"
        self._interrupt(engine, starts, directory)
        resumed = engine.run(
            UniformWalk(), 5, starts=starts, shards=4,
            checkpoint_dir=directory, resume=True,
        )
        skip = {"created_unix", "host"}
        base = {
            k: v for k, v in baseline.manifest.as_dict().items() if k not in skip
        }
        res = {
            k: v for k, v in resumed.manifest.as_dict().items() if k not in skip
        }
        assert base == res

    def test_corrupt_shard_checkpoint_is_reexecuted(self, engine, starts, tmp_path):
        baseline = engine.run(UniformWalk(), 5, starts=starts, shards=4)
        directory = tmp_path / "ck"
        self._interrupt(engine, starts, directory)
        victim = directory / "shard-0001.ckpt"
        blob = bytearray(victim.read_bytes())
        blob[-3] ^= 0xFF
        atomic_write_bytes(victim, bytes(blob))
        resumed = engine.run(
            UniformWalk(), 5, starts=starts, shards=4,
            checkpoint_dir=directory, resume=True,
        )
        # Damaged checkpoint costs time (one extra shard re-executed),
        # never correctness — and the evidence is quarantined.
        assert resumed.resumed_shards == 2
        np.testing.assert_array_equal(resumed.paths, baseline.paths)
        assert list(directory.glob("shard-0001.ckpt.corrupt"))

    def test_completed_run_resumes_to_identical_result(self, engine, starts, tmp_path):
        directory = tmp_path / "ck"
        first = engine.run(
            UniformWalk(), 5, starts=starts, shards=4, checkpoint_dir=directory,
        )
        again = engine.run(
            UniformWalk(), 5, starts=starts, shards=4,
            checkpoint_dir=directory, resume=True,
        )
        assert again.resumed_shards == 4
        np.testing.assert_array_equal(again.paths, first.paths)

    def test_parallel_resume_matches_sequential(self, engine, starts, tmp_path):
        baseline = engine.run(UniformWalk(), 5, starts=starts, shards=4)
        directory = tmp_path / "ck"
        self._interrupt(engine, starts, directory)
        resumed = engine.run(
            UniformWalk(), 5, starts=starts, shards=4,
            checkpoint_dir=directory, resume=True, parallel=True,
        )
        np.testing.assert_array_equal(resumed.paths, baseline.paths)

    def test_resume_run_convenience(self, engine, starts, tmp_path):
        baseline = engine.run(UniformWalk(), 5, starts=starts, shards=4)
        directory = tmp_path / "ck"
        self._interrupt(engine, starts, directory)
        resumed = resume_run(
            engine, UniformWalk(), 5, directory, starts=starts, shards=4,
        )
        np.testing.assert_array_equal(resumed.paths, baseline.paths)
        with pytest.raises(ConfigError, match="cannot resume"):
            resume_run(
                engine, UniformWalk(), 5, tmp_path / "nowhere",
                starts=starts, shards=4,
            )

    def test_resume_without_checkpoint_dir_rejected(self, engine, starts):
        with pytest.raises(ConfigError, match="checkpoint_dir"):
            engine.run(UniformWalk(), 5, starts=starts, resume=True)

    def test_resume_missing_directory_rejected(self, engine, starts, tmp_path):
        with pytest.raises(ConfigError, match="cannot resume"):
            engine.run(
                UniformWalk(), 5, starts=starts, shards=4,
                checkpoint_dir=tmp_path / "nope", resume=True,
            )

    def test_resume_different_config_rejected(self, labeled_graph, starts, tmp_path):
        directory = tmp_path / "ck"
        engine = LightRW(labeled_graph, hardware_scale=64, seed=3)
        self._interrupt(engine, starts, directory)
        other = LightRW(labeled_graph, hardware_scale=64, seed=99)
        with pytest.raises(ConfigError, match="different run configuration"):
            other.run(
                UniformWalk(), 5, starts=starts, shards=4,
                checkpoint_dir=directory, resume=True,
            )

    def test_fresh_run_discards_incompatible_shards(self, engine, starts, tmp_path):
        directory = tmp_path / "ck"
        self._interrupt(engine, starts, directory)
        assert list(directory.glob("shard-*.ckpt"))
        # A *different* plan reusing the directory must not inherit them.
        engine.run(
            UniformWalk(), 7, starts=starts, shards=2, checkpoint_dir=directory,
        )
        checkpoint = RunCheckpoint(
            directory,
            read_json_artifact(directory / "run.json", kind="run-checkpoint")[
                "fingerprint"
            ],
        )
        assert checkpoint.completed_indices() == (0, 1)

    def test_shard_kind_binds_fingerprint(self, engine, starts, tmp_path):
        """A shard file from another run fails verification, never merges."""
        a, b = tmp_path / "a", tmp_path / "b"
        self._interrupt(engine, starts, a, shard=0)
        engine.run(UniformWalk(), 9, starts=starts, shards=4, checkpoint_dir=b)
        foreign = b / "shard-0001.ckpt"
        (a / "shard-0001.ckpt").write_bytes(foreign.read_bytes())
        checkpoint = RunCheckpoint(
            a,
            read_json_artifact(a / "run.json", kind="run-checkpoint")[
                "fingerprint"
            ],
        )
        restored = checkpoint.load_completed()
        assert 1 not in restored  # quarantined as wrong-kind, will re-execute
        assert list(a.glob("shard-0001.ckpt.corrupt"))


class TestCLIResume:
    def _generate(self, tmp_path):
        bundle = tmp_path / "g.npz"
        assert cli_main(
            ["generate", "rmat", str(bundle), "--vertices-log2", "7"]
        ) == 0
        return bundle

    def test_kill_and_resume_byte_identical_output(self, tmp_path, capsys):
        bundle = self._generate(tmp_path)
        base = [
            "walk", str(bundle), "--algorithm", "uniform", "--length", "4",
            "--queries", "32", "--shards", "4",
        ]
        assert cli_main(base + ["--output", str(tmp_path / "clean")]) == 0
        directory = tmp_path / "ck"
        assert cli_main(
            base + ["--checkpoint-dir", str(directory), "--inject-fault", "3"]
        ) == 2  # the "crash"
        capsys.readouterr()
        assert cli_main(
            base + [
                "--checkpoint-dir", str(directory), "--resume",
                "--output", str(tmp_path / "resumed"),
            ]
        ) == 0
        assert "3 shard(s) restored from checkpoint" in capsys.readouterr().out
        clean = load_npz_checked(tmp_path / "clean.npz", require_checksum=True)
        resumed = load_npz_checked(
            tmp_path / "resumed.npz", require_checksum=True
        )
        np.testing.assert_array_equal(resumed["paths"], clean["paths"])
        np.testing.assert_array_equal(resumed["lengths"], clean["lengths"])

    def test_resume_without_dir_is_config_error(self, tmp_path, capsys):
        bundle = self._generate(tmp_path)
        assert cli_main(["walk", str(bundle), "--resume"]) == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_resume_missing_dir_is_config_error(self, tmp_path, capsys):
        bundle = self._generate(tmp_path)
        code = cli_main([
            "walk", str(bundle), "--resume",
            "--checkpoint-dir", str(tmp_path / "nothing-here"),
        ])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


# -- bench sweep resume -------------------------------------------------------


class TestSweepResume:
    def test_checkpoint_records_completions_in_order(self, tmp_path):
        checkpoint = SweepCheckpoint.open(tmp_path / "sweep")
        assert checkpoint.completed() == []
        checkpoint.mark_done("fig6")
        checkpoint.mark_done("table1")
        checkpoint.mark_done("fig6")  # idempotent
        assert checkpoint.completed() == ["fig6", "table1"]

    def test_resume_requires_existing_checkpoint(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot resume"):
            SweepCheckpoint.open(tmp_path / "missing", resume=True)

    def test_fresh_open_resets_previous_sweep(self, tmp_path):
        checkpoint = SweepCheckpoint.open(tmp_path / "sweep")
        checkpoint.mark_done("fig6")
        fresh = SweepCheckpoint.open(tmp_path / "sweep", resume=False)
        assert fresh.completed() == []

    def test_corrupt_sweep_checkpoint_degrades_to_empty(self, tmp_path, caplog):
        checkpoint = SweepCheckpoint.open(tmp_path / "sweep")
        checkpoint.mark_done("fig6")
        checkpoint.path.write_text("{ torn")
        with caplog.at_level("WARNING"):
            assert checkpoint.completed() == []

    def test_runner_resume_skips_completed(self, tmp_path, capsys):
        directory = tmp_path / "sweep"
        assert bench_main(
            ["table5", "--checkpoint-dir", str(directory)]
        ) == 0
        capsys.readouterr()
        assert bench_main([
            "table5", "table2", "--scale", "2048",
            "--checkpoint-dir", str(directory), "--resume",
        ]) == 0
        out = capsys.readouterr().out
        assert "skipping table5" in out
        assert "table2" in out
        checkpoint = SweepCheckpoint(directory)
        assert checkpoint.completed() == ["table5", "table2"]

    def test_runner_resume_without_dir_rejected(self, capsys):
        assert bench_main(["table5", "--resume"]) == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_runner_resume_missing_dir_rejected(self, tmp_path, capsys):
        code = bench_main([
            "table5", "--resume", "--checkpoint-dir", str(tmp_path / "void"),
        ])
        assert code == 2
        assert "cannot resume" in capsys.readouterr().err


# -- simulator watchdog -------------------------------------------------------


class _IdleModule(Module):
    """A stage that never does anything — a wedged pipeline."""

    def tick(self, cycle: int) -> None:
        pass


class _BusyModule(Module):
    """A stage that is always making (pointless) progress."""

    def tick(self, cycle: int) -> None:
        self.busy_cycles += 1


class TestWatchdog:
    def test_stalled_pipeline_aborts_with_diagnostics(self):
        fifo = FIFO("stuck", depth=2)
        fifo.push(1)
        fifo.push(2)
        fifo.commit()
        sim = Simulator([_IdleModule("wedged")], [fifo])
        with pytest.raises(SimulationStallError) as excinfo:
            sim.run_until(lambda: False, max_cycles=10**9, watchdog_cycles=200)
        message = str(excinfo.value)
        assert "no pipeline progress for 200 cycles" in message
        assert "stuck[occ 2/2" in message  # per-FIFO occupancy dump
        assert "wedged[idle" in message  # per-module state dump
        assert sim.cycle < 1000, "watchdog must fire long before max_cycles"

    def test_progress_defers_the_watchdog(self):
        sim = Simulator([_BusyModule("spin")], [])
        with pytest.raises(SimulationError, match="exceeded 5000 cycles"):
            sim.run_until(lambda: False, max_cycles=5000, watchdog_cycles=100)

    def test_watchdog_none_disables(self):
        sim = Simulator([_IdleModule("wedged")], [])
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run_until(lambda: False, max_cycles=3000, watchdog_cycles=None)

    @pytest.mark.parametrize("budget", [0, -5])
    def test_non_positive_budget_rejected(self, budget):
        sim = Simulator([_IdleModule("m")], [])
        with pytest.raises(SimulationError, match="positive"):
            sim.run_until(lambda: True, watchdog_cycles=budget)

    def test_healthy_run_unaffected(self):
        ticks = {"n": 0}

        class _Counter(Module):
            def tick(self, cycle: int) -> None:
                ticks["n"] += 1
                self.busy_cycles += 1

        sim = Simulator([_Counter("c")], [])
        cycles = sim.run_until(lambda: ticks["n"] >= 50, watchdog_cycles=10)
        assert cycles == 50

    def test_abort_records_metrics(self):
        observer = Observer()
        sim = Simulator([_IdleModule("wedged")], [])
        with use_observer(observer):
            with pytest.raises(SimulationStallError):
                sim.run_until(lambda: False, max_cycles=10**9, watchdog_cycles=64)
        assert observer.metrics.total("sim.watchdog_aborts") == 1
        (series,) = [
            value
            for key, value in observer.metrics.snapshot().items()
            if key.startswith("sim.watchdog_abort_cycle")
        ]
        assert series >= 64


class TestFifoBackpressure:
    def test_full_fifo_with_no_pop_counts_a_stall(self):
        fifo = FIFO("f", depth=2)
        fifo.push("a")
        fifo.push("b")
        fifo.commit()  # the filling cycle's pushes succeeded: not a stall
        assert fifo.stalled_cycles == 0
        fifo.commit()  # full all cycle, nothing popped: backpressure
        fifo.commit()
        assert fifo.stalled_cycles == 2

    def test_pop_breaks_the_stall(self):
        fifo = FIFO("f", depth=1)
        fifo.push("a")
        fifo.commit()
        assert fifo.pop() == "a"
        fifo.commit()
        assert fifo.stalled_cycles == 0
        assert fifo.total_popped == 1

    def test_cycle_backend_reports_stall_metrics(self, labeled_graph, starts):
        engine = LightRW(
            labeled_graph, backend="fpga-cycle", hardware_scale=64, seed=3
        )
        observer = Observer()
        result = engine.run(
            UniformWalk(), 3, starts=starts[:8], observer=observer,
        )
        assert result.ok
        keys = observer.metrics.snapshot().keys()
        assert any(k.startswith("pipeline.fifo_stall_cycles") for k in keys)
        # Every FIFO of the pipeline surfaces a labelled series.
        assert any("fifo=results" in k for k in keys)

    def test_instance_stats_carry_fifo_stalls(self, tiny_graph):
        from repro.fpga.accelerator import LightRWAcceleratorSim
        from repro.fpga.config import LightRWConfig

        sim = LightRWAcceleratorSim(
            tiny_graph, LightRWConfig(n_instances=1), UniformWalk(), seed=1
        )
        result = sim.run(np.array([0, 1, 2]), n_steps=4)
        stats = result.instances[0]
        assert set(stats.fifo_stalls) == {
            "tasks", "info", "manifests", "edges", "weighted", "results",
        }
        assert all(v >= 0 for v in stats.fifo_stalls.values())


def test_checkpoint_shard_reports_survive_strip(engine, starts, tmp_path):
    """The persisted report drops only re-derivable weight (session, tracer)."""
    from repro.runtime import create_backend, plan_run
    from repro.runtime.durability import _strip_report

    plan = plan_run("fpga-model", UniformWalk(), 4, starts, shards=1, seed=3)
    backend = create_backend("fpga-model", engine.runtime_context())
    report = backend.execute(plan, plan.shards[0])
    stripped = _strip_report(report)
    assert stripped.session is None
    np.testing.assert_array_equal(stripped.paths, report.paths)
    fields = {f.name for f in dataclasses.fields(report)}
    assert {"paths", "lengths", "breakdown"} <= fields
