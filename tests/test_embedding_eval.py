"""Embedding evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.evaluation import (
    community_separation,
    embedding_report,
    nearest_neighbor_label_accuracy,
    precision_at_k,
)
from repro.apps.word2vec import SkipGramModel


def _clustered_model(n_per_block=10, blocks=3, dim=8, noise=0.05, seed=0):
    """Embeddings placed on well-separated cluster centers."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(blocks, dim)) * 3
    vectors = np.concatenate(
        [centers[b] + noise * rng.normal(size=(n_per_block, dim)) for b in range(blocks)]
    )
    labels = np.repeat(np.arange(blocks), n_per_block)
    return SkipGramModel(in_vectors=vectors, out_vectors=vectors.copy()), labels


class TestPrecisionAtK:
    def test_perfect_model(self):
        model, labels = _clustered_model()
        # Positives: same-cluster pairs; negatives: cross-cluster.
        positives = np.array([[0, 1], [10, 11], [20, 21]])
        negatives = np.array([[0, 10], [1, 20], [11, 21]])
        assert precision_at_k(model, positives, negatives, 3) == 1.0

    def test_k_larger_than_sample(self):
        model, __ = _clustered_model()
        positives = np.array([[0, 1]])
        negatives = np.array([[0, 10]])
        value = precision_at_k(model, positives, negatives, 100)
        assert value == pytest.approx(0.5)

    def test_invalid_k(self):
        model, __ = _clustered_model()
        with pytest.raises(ValueError):
            precision_at_k(model, np.array([[0, 1]]), np.array([[0, 2]]), 0)


class TestLabelCoherence:
    def test_clustered_embeddings_score_high(self):
        model, labels = _clustered_model()
        assert nearest_neighbor_label_accuracy(model, labels) == 1.0
        assert community_separation(model, labels) > 0.3

    def test_random_embeddings_score_at_chance(self):
        rng = np.random.default_rng(1)
        vectors = rng.normal(size=(90, 8))
        model = SkipGramModel(in_vectors=vectors, out_vectors=vectors)
        labels = np.repeat(np.arange(3), 30)
        accuracy = nearest_neighbor_label_accuracy(model, labels)
        assert accuracy < 0.6  # chance is ~1/3
        assert abs(community_separation(model, labels)) < 0.1

    def test_single_community_rejected(self):
        model, __ = _clustered_model(blocks=1)
        with pytest.raises(ValueError):
            community_separation(model, np.zeros(10, dtype=int))


class TestReport:
    def test_full_report_keys(self):
        model, labels = _clustered_model()
        positives = np.array([[0, 1], [10, 11]])
        negatives = np.array([[0, 10], [1, 20]])
        report = embedding_report(model, positives, negatives, labels, k=4)
        assert set(report) == {
            "auc", "precision_at_4", "nn_label_accuracy", "community_separation",
        }
        assert report["auc"] == 1.0

    def test_report_without_labels(self):
        model, __ = _clustered_model()
        report = embedding_report(
            model, np.array([[0, 1]]), np.array([[0, 10]])
        )
        assert "nn_label_accuracy" not in report


class TestEndToEndQuality:
    def test_accelerated_walks_produce_coherent_embeddings(self):
        """Walks from the modeled accelerator → SGNS → coherent space."""
        from repro import LightRW, Node2VecWalk
        from repro.apps.word2vec import train_skipgram, walk_training_pairs
        from repro.graph.builders import from_edge_list

        rng = np.random.default_rng(3)
        blocks, size = 6, 20
        edges = []
        for b in range(blocks):
            base = b * size
            for i in range(size):
                for j in range(i + 1, size):
                    if rng.random() < 0.35:
                        edges.append((base + i, base + j))
            edges.append((base, ((b + 1) % blocks) * size))
        graph = from_edge_list(
            np.array(edges), num_vertices=blocks * size, directed=False,
            deduplicate=True,
        )
        labels = np.repeat(np.arange(blocks), size)

        engine = LightRW(graph, seed=4)
        result = engine.run(Node2VecWalk(1.0, 0.5), 25)
        pairs = walk_training_pairs(result.paths, result.lengths, window=4, seed=4)
        model = train_skipgram(
            pairs, graph.num_vertices, dim=16, epochs=4, seed=4,
            degree_weights=graph.degrees,
        )
        assert nearest_neighbor_label_accuracy(model, labels) > 0.7
        assert community_separation(model, labels) > 0.1
