"""Energy accounting and terabyte-scale capacity projection."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fpga.distributed import NetworkSpec
from repro.fpga.energy import EnergyReport, energy_comparison
from repro.fpga.projection import (
    BoardSpec,
    graph_footprint_bytes,
    plan_capacity,
)


class TestEnergy:
    def test_joules(self):
        report = EnergyReport("x", time_s=2.0, watts=40.0)
        assert report.joules == 80.0
        assert report.joules_per_step(1000) == pytest.approx(0.08)
        assert report.energy_delay_product == 160.0

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            EnergyReport("x", 1.0, 40.0).joules_per_step(0)

    def test_comparison_improvements(self):
        row = energy_comparison("metapath", fpga_time_s=1.0, cpu_time_s=8.0,
                                total_steps=10_000)
        # 8x faster at ~1/3 the power: energy improvement ~ 20-25x.
        assert 15 < row["energy_improvement"] < 30
        # EDP squares the time advantage.
        assert row["edp_improvement"] == pytest.approx(
            row["energy_improvement"] * 8.0
        )
        assert row["lightrw_nj_per_step"] < row["thunderrw_nj_per_step"]

    def test_invalid_times(self):
        with pytest.raises(ValueError):
            energy_comparison("metapath", 0.0, 1.0, 100)


class TestFootprint:
    def test_layout_bytes(self):
        # 8 B per vertex + (4 + 4) B per weighted edge.
        assert graph_footprint_bytes(100, 1000, weighted=True) == 100 * 8 + 1000 * 8
        assert graph_footprint_bytes(100, 1000, weighted=False) == 100 * 8 + 1000 * 4


class TestCapacityPlan:
    def test_small_graph_single_board_replicated(self):
        plan = plan_capacity(1_000_000, 10_000_000)
        assert plan.boards_planned == 1
        assert plan.replicated_within_board
        assert plan.network_bound_fraction == 0.0
        assert plan.projected_steps_per_second == pytest.approx(4.8e7)

    def test_terabyte_graph_needs_boards(self):
        # ~1 TB of edges: 125e9 edges at 8 B.
        plan = plan_capacity(4_000_000_000, 125_000_000_000)
        assert not plan.replicated_within_board
        assert plan.boards_for_capacity >= 30  # 64 GB boards, 2x headroom
        assert plan.projected_steps_per_second > 0

    def test_insufficient_boards_rejected(self):
        with pytest.raises(ConfigError):
            plan_capacity(4_000_000_000, 125_000_000_000, target_boards=2)

    def test_more_boards_more_throughput_until_network(self):
        kwargs = dict(num_vertices=100_000_000, num_edges=3_000_000_000)
        rates = [
            plan_capacity(**kwargs, target_boards=b).projected_steps_per_second
            for b in (2, 4, 8, 16)
        ]
        assert all(a <= b * 1.0001 for a, b in zip(rates, rates[1:]))

    def test_slow_network_caps_throughput(self):
        slow = NetworkSpec(bandwidth_bytes_per_s=1e8)
        plan = plan_capacity(
            100_000_000, 3_000_000_000, network=slow, target_boards=8
        )
        fast = plan_capacity(100_000_000, 3_000_000_000, target_boards=8)
        assert plan.projected_steps_per_second < fast.projected_steps_per_second
        assert plan.network_bound_fraction == 1.0

    def test_row_format(self):
        row = plan_capacity(1_000_000, 10_000_000).as_row()
        assert row["replication"] == "per-channel"

    def test_invalid_graph(self):
        with pytest.raises(ConfigError):
            plan_capacity(0, 10)

    def test_custom_board(self):
        big_board = BoardSpec(name="hypothetical", dram_bytes=512 << 30, n_channels=8,
                              steps_per_second_per_channel=1.2e7)
        plan = plan_capacity(4_000_000_000, 60_000_000_000, board=big_board)
        assert plan.boards_for_capacity < plan_capacity(
            4_000_000_000, 60_000_000_000
        ).boards_for_capacity
