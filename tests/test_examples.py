"""Every example script runs end to end (rot protection).

Each example is executed as a subprocess the way a user would run it; the
assertions check the banner output each script promises.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "speedup" in out
        assert "steps/s" in out

    def test_metapath_knowledge_graph(self):
        out = _run("metapath_knowledge_graph.py")
        assert "meta-path" in out
        assert "verified against the schema" in out

    def test_node2vec_embeddings(self):
        out = _run("node2vec_embeddings.py")
        assert "shares the community for" in out

    def test_cycle_accurate_inspection(self):
        out = _run("cycle_accurate_inspection.py")
        assert "bit-identical across backends: True" in out
        assert "pipeline utilization" in out

    def test_personalized_pagerank(self):
        out = _run("personalized_pagerank.py")
        assert "correlation of walk-based scores with exact PPR: 0.9" in out

    def test_custom_walk(self):
        out = _run("custom_walk.py")
        assert "hubs avoided" in out

    def test_burst_tuning(self):
        out = _run("burst_tuning.py", "youtube", "512")
        assert "best strategy" in out

    def test_link_prediction_case_study(self):
        out = _run("link_prediction_case_study.py")
        assert "AUC" in out
        assert "end-to-end speedup" in out
