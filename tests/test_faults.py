"""Fault tolerance: shard isolation, retry/backoff/timeout, degraded merges."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import LightRW, Observer
from repro.cli import main as cli_main
from repro.core.queries import make_queries
from repro.errors import ConfigError, ShardExecutionError
from repro.runtime import (
    BatchScheduler,
    FaultInjectionBackend,
    InjectedFault,
    InjectedFaultError,
    RetryPolicy,
    create_backend,
    plan_run,
)
from repro.walks.uniform import UniformWalk


@pytest.fixture
def engine(labeled_graph):
    return LightRW(labeled_graph, hardware_scale=64, seed=3)


@pytest.fixture
def starts(labeled_graph):
    return make_queries(labeled_graph, n_queries=32, seed=4)


class TestRetryPolicy:
    def test_defaults_mean_one_attempt(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.retries == 0
        assert policy.shard_timeout_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"max_attempts": -2},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.5},
            {"shard_timeout_s": 0.0},
            {"shard_timeout_s": -1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_s=0.5, backoff_factor=3.0)
        assert policy.backoff_s(0, 1) == 0.0  # first attempt never waits
        assert policy.backoff_s(0, 2) == pytest.approx(0.5)
        assert policy.backoff_s(0, 3) == pytest.approx(1.5)
        assert policy.backoff_s(0, 4) == pytest.approx(4.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=3, backoff_base_s=1.0, jitter=0.5, jitter_seed=42
        )
        twin = RetryPolicy(
            max_attempts=3, backoff_base_s=1.0, jitter=0.5, jitter_seed=42
        )
        delays = {
            (shard, attempt): policy.backoff_s(shard, attempt)
            for shard in range(4)
            for attempt in (2, 3)
        }
        for (shard, attempt), delay in delays.items():
            # Same (seed, shard, attempt) => exactly the same wait.
            assert twin.backoff_s(shard, attempt) == delay
            base = 1.0 * 2.0 ** (attempt - 2)
            assert base * 0.5 <= delay <= base
        # ... and distinct coordinates get distinct jitter.
        assert len(set(delays.values())) > 1

    def test_different_seed_different_jitter(self):
        a = RetryPolicy(max_attempts=2, backoff_base_s=1.0, jitter=1.0, jitter_seed=1)
        b = RetryPolicy(max_attempts=2, backoff_base_s=1.0, jitter=1.0, jitter_seed=2)
        assert a.backoff_s(0, 2) != b.backoff_s(0, 2)


class TestInjectedFault:
    def test_transient_vs_permanent_schedule(self):
        transient = InjectedFault(shard=0, fail_attempts=1)
        assert transient.fails_attempt(1) and not transient.fails_attempt(2)
        permanent = InjectedFault(shard=0, fail_attempts=-1)
        assert permanent.permanent
        assert permanent.fails_attempt(1) and permanent.fails_attempt(99)
        healthy = InjectedFault(shard=0, fail_attempts=0, delay_s=0.01)
        assert not healthy.fails_attempt(1)

    @pytest.mark.parametrize(
        "kwargs",
        [{"shard": -1}, {"shard": 0, "fail_attempts": -2}, {"shard": 0, "delay_s": -1}],
    )
    def test_invalid_fault_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            InjectedFault(**kwargs)

    def test_duplicate_shard_rejected(self, engine):
        inner = create_backend("fpga-model", engine.runtime_context())
        with pytest.raises(ConfigError, match="duplicate"):
            FaultInjectionBackend(
                inner, [InjectedFault(shard=1), InjectedFault(shard=1)]
            )


class TestSchedulerConfig:
    @pytest.mark.parametrize("workers", [0, -1, -8])
    def test_invalid_max_workers_fails_at_construction(self, workers):
        with pytest.raises(ConfigError, match="max_workers"):
            BatchScheduler(parallel=True, max_workers=workers)

    def test_oversized_pool_is_clamped_to_shards(self, engine, starts):
        # max_workers far above the shard count must not crash or change walks.
        baseline = engine.run(UniformWalk(), 4, starts=starts, shards=2)
        plan = plan_run("fpga-model", UniformWalk(), 4, starts, shards=2, seed=3)
        backend = create_backend("fpga-model", engine.runtime_context())
        scheduler = BatchScheduler(parallel=True, max_workers=64)
        outcome = scheduler.execute(backend, plan)
        assert outcome.ok and outcome.retries == 0
        np.testing.assert_array_equal(outcome.report.paths, baseline.paths)


class TestStrictMode:
    def test_failure_raises_with_structured_failures(self, engine, starts):
        with pytest.raises(ShardExecutionError) as excinfo:
            engine.run(
                UniformWalk(), 4, starts=starts, shards=4,
                faults=[InjectedFault(shard=1, fail_attempts=-1)],
            )
        (failure,) = excinfo.value.failures
        assert failure.shard == 1
        assert failure.error_type == "InjectedFaultError"
        assert failure.attempts == 1
        assert not failure.timed_out

    def test_sibling_shards_still_run(self, engine, starts):
        """Error isolation: the failing shard never aborts its siblings."""
        backend = FaultInjectionBackend(
            create_backend("fpga-model", engine.runtime_context()),
            [InjectedFault(shard=0, fail_attempts=-1)],
        )
        plan = plan_run("fpga-model", UniformWalk(), 4, starts, shards=4, seed=3)
        with pytest.raises(ShardExecutionError):
            BatchScheduler().execute(backend, plan)
        # All four shards were attempted despite shard 0 failing first.
        assert backend.attempts(0) == 1

    def test_fault_on_out_of_range_shard_is_inert(self, engine, starts):
        result = engine.run(
            UniformWalk(), 4, starts=starts, shards=2,
            faults=[InjectedFault(shard=17, fail_attempts=-1)],
        )
        assert result.ok


class TestDegradedMode:
    def test_partial_merge_keeps_global_query_order(self, engine, starts):
        clean = engine.run(UniformWalk(), 5, starts=starts, shards=4)
        part = engine.run(
            UniformWalk(), 5, starts=starts, shards=4, strict=False,
            faults=[InjectedFault(shard=2, fail_attempts=-1)],
        )
        assert not part.ok and not part.strict
        (failure,) = part.failures
        assert failure.shard == 2
        lost = failure.query_ids()
        np.testing.assert_array_equal(lost, part.failed_query_ids())
        assert part.executed_queries == clean.executed_queries - lost.size
        # Surviving rows are exactly the fault-free rows minus the lost shard,
        # in global query-id order.
        surviving = np.setdiff1d(np.arange(clean.executed_queries), lost)
        np.testing.assert_array_equal(part.paths, clean.paths[surviving])

    def test_parallel_degraded_matches_sequential(self, engine, starts):
        faults = [InjectedFault(shard=1, fail_attempts=-1)]
        seq = engine.run(
            UniformWalk(), 5, starts=starts, shards=4, strict=False, faults=faults,
        )
        par = engine.run(
            UniformWalk(), 5, starts=starts, shards=4, strict=False, faults=faults,
            parallel=True,
        )
        np.testing.assert_array_equal(seq.paths, par.paths)
        assert [f.shard for f in seq.failures] == [f.shard for f in par.failures]

    def test_all_shards_failing_still_raises(self, engine, starts):
        with pytest.raises(ShardExecutionError, match="every shard failed"):
            engine.run(
                UniformWalk(), 4, starts=starts, shards=2, strict=False,
                faults=[
                    InjectedFault(shard=0, fail_attempts=-1),
                    InjectedFault(shard=1, fail_attempts=-1),
                ],
            )

    def test_failures_land_in_manifest_and_metrics(self, engine, starts):
        observer = Observer()
        part = engine.run(
            UniformWalk(), 4, starts=starts, shards=4, strict=False,
            faults=[InjectedFault(shard=3, fail_attempts=-1)],
            observer=observer,
        )
        (entry,) = part.manifest.failures
        assert entry["shard"] == 3
        assert entry["error_type"] == "InjectedFaultError"
        assert observer.metrics.total("run.shard_failures") == 1
        assert observer.metrics.total("run.failed_queries") == part.failures[0].num_queries
        assert observer.metrics.total("run.injected_faults") == 1


class TestRetry:
    def test_transient_fault_retries_to_identical_walks(self, engine, starts):
        """The tentpole determinism claim: per-query RNG keyed by global id
        means a retried shard reproduces byte-identical walks."""
        clean = engine.run(UniformWalk(), 6, starts=starts, shards=4)
        observer = Observer()
        retried = engine.run(
            UniformWalk(), 6, starts=starts, shards=4, retries=1,
            faults=[InjectedFault(shard=2, fail_attempts=1)],
            observer=observer,
        )
        assert retried.ok and retried.failures == ()
        np.testing.assert_array_equal(retried.paths, clean.paths)
        np.testing.assert_array_equal(retried.lengths, clean.lengths)
        assert observer.metrics.total("run.retries") == 1
        assert observer.metrics.total("run.injected_faults") == 1
        assert observer.metrics.total("run.shard_failures") == 0
        assert retried.manifest.failures == ()

    def test_retry_budget_exhausted_becomes_failure(self, engine, starts):
        with pytest.raises(ShardExecutionError) as excinfo:
            engine.run(
                UniformWalk(), 4, starts=starts, shards=4, retries=2,
                faults=[InjectedFault(shard=0, fail_attempts=-1)],
            )
        (failure,) = excinfo.value.failures
        assert failure.attempts == 3

    def test_explicit_retry_policy_overrides_shorthand(self, engine, starts):
        policy = RetryPolicy(max_attempts=2)
        result = engine.run(
            UniformWalk(), 4, starts=starts, shards=4, retry=policy,
            faults=[InjectedFault(shard=1, fail_attempts=1)],
        )
        assert result.ok


class TestTimeout:
    def test_slow_shard_times_out(self, engine, starts):
        result = engine.run(
            UniformWalk(), 4, starts=starts, shards=4, strict=False,
            shard_timeout_s=0.05,
            faults=[InjectedFault(shard=0, fail_attempts=0, delay_s=1.0)],
        )
        (failure,) = result.failures
        assert failure.timed_out
        assert failure.error_type == "ShardTimeoutError"
        assert result.executed_queries < len(starts)

    def test_generous_timeout_is_harmless(self, engine, starts):
        clean = engine.run(UniformWalk(), 4, starts=starts, shards=2)
        timed = engine.run(
            UniformWalk(), 4, starts=starts, shards=2, shard_timeout_s=60.0,
        )
        assert timed.ok
        np.testing.assert_array_equal(timed.paths, clean.paths)


class TestCLI:
    def _make_graph(self, tmp_path):
        bundle = tmp_path / "g.npz"
        assert cli_main(
            ["generate", "rmat", str(bundle), "--vertices-log2", "7"]
        ) == 0
        return bundle

    def test_no_strict_partial_run_records_failure(self, tmp_path, capsys):
        bundle = self._make_graph(tmp_path)
        metrics = tmp_path / "metrics.jsonl"
        capsys.readouterr()
        assert cli_main([
            "walk", str(bundle), "--algorithm", "uniform", "--length", "4",
            "--queries", "32", "--shards", "4", "--no-strict",
            "--inject-fault", "2:-1", "--metrics", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "shard 2 failed after 1 attempt(s)" in out
        record = json.loads(metrics.read_text().splitlines()[-1])
        assert record["summary"]["strict"] is False
        (failure,) = record["summary"]["failures"]
        assert failure["shard"] == 2
        assert record["summary"]["executed_queries"] < record["summary"]["num_queries"]
        assert record["manifest"]["failures"]

    def test_strict_fault_is_one_line_error(self, tmp_path, capsys):
        bundle = self._make_graph(tmp_path)
        capsys.readouterr()
        code = cli_main([
            "walk", str(bundle), "--algorithm", "uniform", "--length", "4",
            "--queries", "16", "--shards", "2", "--inject-fault", "0",
        ])
        assert code != 0

    def test_retry_flag_recovers_transient_fault(self, tmp_path, capsys):
        bundle = self._make_graph(tmp_path)
        capsys.readouterr()
        assert cli_main([
            "walk", str(bundle), "--algorithm", "uniform", "--length", "4",
            "--queries", "16", "--shards", "2", "--retries", "1",
            "--inject-fault", "1:1",
        ]) == 0
        assert "failed after" not in capsys.readouterr().out

    def test_bad_fault_spec_rejected(self, tmp_path):
        bundle = self._make_graph(tmp_path)
        with pytest.raises(SystemExit):
            cli_main([
                "walk", str(bundle), "--algorithm", "uniform", "--length", "4",
                "--queries", "8", "--inject-fault", "nope",
            ])


def test_injected_fault_error_is_not_a_repro_error():
    """Injected faults must exercise the generic isolation path."""
    from repro.errors import ReproError

    assert not issubclass(InjectedFaultError, ReproError)
