"""On-chip vertex caches: policies and exact vectorized trace simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.fpga.cache import (
    DegreeAwareCache,
    DirectMappedCache,
    FIFOCache,
    LRUCache,
    simulate_degree_aware,
    simulate_direct_mapped,
    simulate_fifo,
    simulate_lru,
)


class TestDegreeAwareStateful:
    def test_paper_figure5_behaviour(self):
        """Low-degree vertices cannot evict high-degree residents."""
        cache = DegreeAwareCache(4)
        assert not cache.access(0, degree=10)  # cold miss, cached
        assert cache.access(0, degree=10)  # hit
        # Vertex 4 maps to the same line (4 % 4 == 0) with lower degree:
        assert not cache.access(4, degree=3)  # miss, NOT cached
        assert cache.access(0, degree=10)  # 0 still resident
        # Vertex 8 with higher degree evicts it:
        assert not cache.access(8, degree=20)
        assert not cache.access(0, degree=10)  # 0 was evicted ... and does
        # not displace 8 (degree 10 < 20):
        assert cache.access(8, degree=20)

    def test_tie_keeps_incumbent(self):
        cache = DegreeAwareCache(2)
        cache.access(0, degree=5)
        cache.access(2, degree=5)  # same set, same degree -> not replaced
        assert cache.access(0, degree=5)

    def test_miss_ratio(self):
        cache = DegreeAwareCache(2)
        cache.access(0, 1)
        cache.access(0, 1)
        assert cache.miss_ratio == pytest.approx(0.5)

    def test_capacity_power_of_two(self):
        with pytest.raises(ConfigError):
            DegreeAwareCache(3)


class TestDirectMappedStateful:
    def test_always_replaces(self):
        cache = DirectMappedCache(4)
        assert not cache.access(0)
        assert not cache.access(4)  # evicts 0
        assert not cache.access(0)  # miss again
        assert cache.access(0)


class TestRecencyCaches:
    def test_lru_promotes_on_hit(self):
        cache = LRUCache(4, ways=2)  # 2 sets x 2 ways
        cache.access(0)
        cache.access(2)  # set 0 now holds {0, 2}
        cache.access(0)  # touch 0 -> LRU victim is 2
        cache.access(4)  # evicts 2
        assert cache.access(0)
        assert not cache.access(2)

    def test_fifo_ignores_hits(self):
        cache = FIFOCache(4, ways=2)
        cache.access(0)
        cache.access(2)
        cache.access(0)  # hit does not refresh insertion order
        cache.access(4)  # evicts 0 (oldest inserted)
        assert not cache.access(0)  # miss; reinserting 0 evicts 2
        assert cache.access(4)  # 4 survived both evictions

    def test_ways_must_divide(self):
        with pytest.raises(ConfigError):
            LRUCache(4, ways=3)


class TestVectorizedEquivalence:
    """The fast trace simulations must be *exact* vs the stateful caches."""

    @given(
        seed=st.integers(0, 10_000),
        capacity_log=st.integers(1, 5),
        n_vertices=st.integers(2, 200),
        trace_len=st.integers(1, 400),
    )
    @settings(max_examples=60, deadline=None)
    def test_degree_aware_matches_stateful(self, seed, capacity_log, n_vertices, trace_len):
        rng = np.random.default_rng(seed)
        capacity = 1 << capacity_log
        degrees = rng.integers(0, 50, size=n_vertices)
        trace = rng.integers(0, n_vertices, size=trace_len)
        vector_hits = simulate_degree_aware(trace, degrees, capacity)
        cache = DegreeAwareCache(capacity)
        stateful_hits = np.array(
            [cache.access(int(v), int(degrees[v])) for v in trace]
        )
        np.testing.assert_array_equal(vector_hits, stateful_hits)

    @given(
        seed=st.integers(0, 10_000),
        capacity_log=st.integers(1, 5),
        n_vertices=st.integers(2, 200),
        trace_len=st.integers(1, 400),
    )
    @settings(max_examples=60, deadline=None)
    def test_direct_mapped_matches_stateful(self, seed, capacity_log, n_vertices, trace_len):
        rng = np.random.default_rng(seed)
        capacity = 1 << capacity_log
        trace = rng.integers(0, n_vertices, size=trace_len)
        vector_hits = simulate_direct_mapped(trace, capacity)
        cache = DirectMappedCache(capacity)
        stateful_hits = np.array([cache.access(int(v)) for v in trace])
        np.testing.assert_array_equal(vector_hits, stateful_hits)

    @given(
        seed=st.integers(0, 10_000),
        capacity_log=st.integers(1, 5),
        ways_log=st.integers(0, 5),
        n_vertices=st.integers(2, 200),
        trace_len=st.integers(1, 400),
    )
    @settings(max_examples=60, deadline=None)
    def test_lru_matches_stateful(self, seed, capacity_log, ways_log, n_vertices, trace_len):
        rng = np.random.default_rng(seed)
        capacity = 1 << capacity_log
        ways = 1 << min(ways_log, capacity_log)  # always divides capacity
        trace = rng.integers(0, n_vertices, size=trace_len)
        vector_hits = simulate_lru(trace, capacity, ways=ways)
        cache = LRUCache(capacity, ways=ways)
        stateful_hits = np.array([cache.access(int(v)) for v in trace])
        np.testing.assert_array_equal(vector_hits, stateful_hits)

    @given(
        seed=st.integers(0, 10_000),
        capacity_log=st.integers(1, 5),
        ways_log=st.integers(0, 5),
        n_vertices=st.integers(2, 200),
        trace_len=st.integers(1, 400),
    )
    @settings(max_examples=60, deadline=None)
    def test_fifo_matches_stateful(self, seed, capacity_log, ways_log, n_vertices, trace_len):
        rng = np.random.default_rng(seed)
        capacity = 1 << capacity_log
        ways = 1 << min(ways_log, capacity_log)
        trace = rng.integers(0, n_vertices, size=trace_len)
        vector_hits = simulate_fifo(trace, capacity, ways=ways)
        cache = FIFOCache(capacity, ways=ways)
        stateful_hits = np.array([cache.access(int(v)) for v in trace])
        np.testing.assert_array_equal(vector_hits, stateful_hits)

    def test_lru_fifo_diverge_where_they_should(self):
        """Sanity: the two policies are genuinely different simulations."""
        # Set 0 of a 2-way cache: touch 0, 2, re-touch 0, insert 4.
        trace = np.array([0, 2, 0, 4, 0, 2])
        lru = simulate_lru(trace, 4, ways=2)
        fifo = simulate_fifo(trace, 4, ways=2)
        # LRU: re-touching 0 makes 2 the victim of 4; FIFO evicts 0.
        assert lru[4] and not lru[5]
        assert not fifo[4]
        assert not np.array_equal(lru, fifo)

    def test_empty_trace(self):
        assert simulate_degree_aware(np.array([]), np.array([1]), 4).size == 0
        assert simulate_direct_mapped(np.array([]), 4).size == 0
        assert simulate_lru(np.array([]), 4).size == 0
        assert simulate_fifo(np.array([]), 4).size == 0

    def test_ways_validation(self):
        with pytest.raises(ConfigError):
            simulate_lru(np.array([0, 1]), 4, ways=3)
        with pytest.raises(ConfigError):
            simulate_fifo(np.array([0, 1]), 4, ways=3)


class TestPolicyQuality:
    def test_degree_aware_beats_direct_mapped_on_skewed_trace(self):
        """The paper's Figure 11 claim on a synthetic skewed trace."""
        rng = np.random.default_rng(1)
        n_vertices = 1 << 14
        degrees = rng.zipf(2.5, size=n_vertices).clip(max=100_000)
        probs = degrees / degrees.sum()
        trace = rng.choice(n_vertices, size=40_000, p=probs)
        capacity = 1 << 8
        dac_hits = simulate_degree_aware(trace, degrees, capacity).mean()
        dmc_hits = simulate_direct_mapped(trace, capacity).mean()
        assert dac_hits > dmc_hits * 1.5

    def test_all_fits_eventually_all_hits(self):
        """With capacity >= universe, only cold misses remain (DAC)."""
        trace = np.tile(np.arange(16), 10)
        degrees = np.arange(16) + 1
        hits = simulate_degree_aware(trace, degrees, 16)
        assert (~hits).sum() == 16  # one cold miss per vertex


class TestStatsPublish:
    def test_publish_is_snapshot_idempotent(self):
        """Repeated publishes must not double-count into the counters."""
        from repro.obs import MetricsRegistry

        cache = DegreeAwareCache(4)
        cache.access(0, degree=10)
        cache.access(0, degree=10)
        cache.access(1, degree=5)
        metrics = MetricsRegistry()
        cache.publish(metrics)
        cache.publish(metrics)  # no new accesses -> no new counts
        assert metrics.total("dac.accesses") == 3
        assert metrics.total("dac.hits") == 1
        assert metrics.total("dac.misses") == 2

    def test_publish_adds_only_the_delta(self):
        from repro.obs import MetricsRegistry

        cache = DirectMappedCache(4)
        metrics = MetricsRegistry()
        cache.access(0)
        cache.publish(metrics)
        cache.access(0)  # hit
        cache.access(4)  # miss, same line
        cache.publish(metrics)
        assert metrics.total("dac.accesses") == 3
        assert metrics.total("dac.hits") == 1
        assert metrics.total("dac.misses") == 2
        # The gauge tracks the cache's own cumulative ratio.
        (value,) = [
            series.value
            for series in metrics.series()
            if series.name == "dac.hit_ratio"
        ]
        assert value == cache.hit_ratio
