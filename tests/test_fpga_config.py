"""LightRWConfig validation and derived properties."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fpga.burst import FIXED_LONG, BurstStrategy
from repro.fpga.config import LightRWConfig, PAPER_CACHE_ENTRIES


class TestValidation:
    def test_defaults_match_paper(self):
        config = LightRWConfig()
        assert config.k == 16
        assert config.frequency_hz == 300e6
        assert config.n_instances == 4
        assert config.cache_entries == PAPER_CACHE_ENTRIES == 4096
        assert config.strategy.label == "b1+b32"

    @pytest.mark.parametrize("k", [0, 3, 12, -4])
    def test_k_power_of_two(self, k):
        with pytest.raises(ConfigError):
            LightRWConfig(k=k)

    def test_cache_power_of_two(self):
        with pytest.raises(ConfigError):
            LightRWConfig(cache_entries=1000)

    def test_positive_frequency(self):
        with pytest.raises(ConfigError):
            LightRWConfig(frequency_hz=0)

    def test_positive_instances(self):
        with pytest.raises(ConfigError):
            LightRWConfig(n_instances=0)

    def test_cache_policy_names(self):
        for policy in ("degree", "direct", "lru", "fifo", "none"):
            LightRWConfig(cache_policy=policy)
        with pytest.raises(ConfigError):
            LightRWConfig(cache_policy="random")

    def test_positive_depths(self):
        with pytest.raises(ConfigError):
            LightRWConfig(fifo_depth=0)
        with pytest.raises(ConfigError):
            LightRWConfig(max_inflight=-1)

    def test_hardware_scale_positive(self):
        with pytest.raises(ConfigError):
            LightRWConfig(hardware_scale=0)


class TestScaledProperties:
    def test_cache_scales_and_stays_power_of_two(self):
        config = LightRWConfig().scaled(512)
        assert config.scaled_cache_entries == 8  # 4096 / 512
        odd = LightRWConfig(cache_entries=4096).scaled(500)
        entries = odd.scaled_cache_entries
        assert entries & (entries - 1) == 0
        assert entries >= 1

    def test_unscaled_passthrough(self):
        config = LightRWConfig()
        assert config.scaled_cache_entries == config.cache_entries
        assert config.scaled_prev_buffer_edges == config.prev_buffer_edges

    def test_prev_buffer_power_law_scaling(self):
        """Degree thresholds scale as V^0.71, not linearly."""
        config = LightRWConfig().scaled(512)
        assert config.scaled_prev_buffer_edges > 4096 // 512  # milder than linear
        assert config.scaled_prev_buffer_edges < 4096
        tiny = LightRWConfig().scaled(10**9)
        assert tiny.scaled_prev_buffer_edges >= 8  # floor

    def test_scaled_returns_copy(self):
        base = LightRWConfig()
        scaled = base.scaled(64)
        assert base.hardware_scale == 1
        assert scaled.hardware_scale == 64
        assert scaled.k == base.k


class TestAblationDerivation:
    def test_wrs_off(self):
        config = LightRWConfig().with_ablation(wrs=False)
        assert not config.use_wrs
        assert config.cache_policy == "degree"  # untouched

    def test_dyb_off_uses_fixed_long(self):
        config = LightRWConfig().with_ablation(dynamic_burst=False)
        assert config.strategy == FIXED_LONG
        assert not config.strategy.is_dynamic

    def test_cache_off(self):
        config = LightRWConfig().with_ablation(cache=False)
        assert config.cache_policy == "none"

    def test_no_changes_returns_same_config(self):
        config = LightRWConfig()
        assert config.with_ablation() is config

    def test_combined_ablation(self):
        config = LightRWConfig().with_ablation(wrs=False, dynamic_burst=False, cache=False)
        assert not config.use_wrs
        assert config.strategy == FIXED_LONG
        assert config.cache_policy == "none"


class TestBurstStrategyEquality:
    def test_frozen_and_comparable(self):
        assert BurstStrategy(1, 32) == BurstStrategy(1, 32)
        assert BurstStrategy(1, 16) != BurstStrategy(1, 32)
        with pytest.raises(Exception):
            BurstStrategy(1, 32).long_beats = 16  # frozen dataclass
