"""Cycle-accurate simulator: kernel semantics and cross-backend agreement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.fpga.accelerator import LightRWAcceleratorSim
from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel
from repro.fpga.sim.clock import Simulator
from repro.fpga.sim.fifo import FIFO
from repro.fpga.sim.module import Module
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk
from repro.walks.stepper import PWRSSampler, run_walks
from repro.walks.uniform import UniformWalk


class TestFIFO:
    def test_two_phase_visibility(self):
        fifo = FIFO("f", depth=4)
        fifo.push(1)
        assert not fifo.can_pop()  # not visible until commit
        fifo.commit()
        assert fifo.can_pop()
        assert fifo.pop() == 1

    def test_capacity_counts_pending(self):
        fifo = FIFO("f", depth=2)
        fifo.push(1)
        fifo.push(2)
        assert not fifo.can_push()
        with pytest.raises(SimulationError):
            fifo.push(3)

    def test_order_preserved(self):
        fifo = FIFO("f", depth=8)
        for i in range(5):
            fifo.push(i)
        fifo.commit()
        assert [fifo.pop() for _ in range(5)] == list(range(5))

    def test_pop_empty_raises(self):
        fifo = FIFO("f", depth=2)
        with pytest.raises(SimulationError):
            fifo.pop()
        with pytest.raises(SimulationError):
            fifo.peek()

    def test_stats(self):
        fifo = FIFO("f", depth=4)
        fifo.push(1)
        fifo.push(2)
        fifo.commit()
        assert fifo.total_pushed == 2
        assert fifo.max_occupancy == 2

    def test_invalid_depth(self):
        with pytest.raises(SimulationError):
            FIFO("f", depth=0)


class TestSimulator:
    def test_deadlock_detection(self):
        class Stuck(Module):
            def tick(self, cycle):
                pass

        sim = Simulator([Stuck("stuck")], [])
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until(lambda: False, max_cycles=100)

    def test_requires_modules(self):
        with pytest.raises(SimulationError):
            Simulator([], [])

    def test_run_until(self):
        class Counter(Module):
            def __init__(self):
                super().__init__("counter")
                self.value = 0

            def tick(self, cycle):
                self.value += 1

        counter = Counter()
        sim = Simulator([counter], [])
        cycles = sim.run_until(lambda: counter.value >= 10)
        assert cycles == 10


@pytest.fixture
def small_setup(labeled_graph):
    config = LightRWConfig(n_instances=2, max_inflight=8).scaled(64)
    starts = labeled_graph.nonzero_degree_vertices()[:24]
    return labeled_graph, config, starts


class TestWalkEquivalence:
    """The cycle simulator's walks are bit-identical to the fast engine."""

    @pytest.mark.parametrize("algorithm,steps", [
        (UniformWalk(), 6),
        (MetaPathWalk([0, 1, 2]), 5),
        (Node2VecWalk(2.0, 0.5), 6),
    ], ids=["uniform", "metapath", "node2vec"])
    def test_identical_paths(self, small_setup, algorithm, steps):
        graph, config, starts = small_setup
        sim = LightRWAcceleratorSim(graph, config, algorithm, seed=21)
        result = sim.run(starts, steps)
        session = run_walks(
            graph, starts, steps, algorithm, PWRSSampler(k=config.k, seed=21)
        )
        for q in range(starts.size):
            np.testing.assert_array_equal(result.path(q), session.path(q), err_msg=f"query {q}")

    def test_all_queries_complete(self, small_setup):
        graph, config, starts = small_setup
        result = LightRWAcceleratorSim(graph, config, UniformWalk(), seed=1).run(starts, 5)
        assert len(result.paths) == starts.size
        assert set(result.query_latency_cycles) == set(range(starts.size))


class TestTimingAgreement:
    """Cycle counts agree with the analytic model within the fill tolerance."""

    @pytest.mark.parametrize("algorithm,steps", [
        (UniformWalk(), 8),
        (Node2VecWalk(2.0, 0.5), 6),
    ], ids=["uniform", "node2vec"])
    def test_kernel_cycles_close(self, small_setup, algorithm, steps):
        graph, config, starts = small_setup
        result = LightRWAcceleratorSim(graph, config, algorithm, seed=5).run(starts, steps)
        session = run_walks(
            graph, starts, steps, algorithm, PWRSSampler(k=config.k, seed=5)
        )
        model = FPGAPerfModel(config, algorithm).evaluate(session)
        ratio = result.cycles / model.kernel_cycles
        assert 0.6 < ratio < 1.7, (result.cycles, model.kernel_cycles)

    def test_byte_accounting_matches(self, small_setup):
        graph, config, starts = small_setup
        result = LightRWAcceleratorSim(graph, config, UniformWalk(), seed=5).run(starts, 8)
        session = run_walks(graph, starts, 8, UniformWalk(), PWRSSampler(config.k, 5))
        model = FPGAPerfModel(config, UniformWalk()).evaluate(session)
        sim_valid = sum(s.bytes_valid for s in result.instances)
        sim_loaded = sum(s.bytes_loaded for s in result.instances)
        assert sim_valid == model.bytes_valid
        assert sim_loaded == model.bytes_loaded

    def test_cache_stats_match(self, small_setup):
        graph, config, starts = small_setup
        result = LightRWAcceleratorSim(graph, config, UniformWalk(), seed=5).run(starts, 8)
        session = run_walks(graph, starts, 8, UniformWalk(), PWRSSampler(config.k, 5))
        model = FPGAPerfModel(config, UniformWalk()).evaluate(session)
        sim_hits = sum(s.cache_hits for s in result.instances)
        sim_total = sum(s.cache_hits + s.cache_misses for s in result.instances)
        assert sim_total == model.cache_accesses
        # The pipelined simulator can reorder accesses of different queries
        # slightly relative to the model's step-major replay, moving a few
        # hits across the boundary.
        assert abs(sim_hits - model.cache_hits) <= max(3, 0.05 * sim_total)


class TestConfigurationVariants:
    def test_short_only_strategy_runs(self, small_setup):
        from repro.fpga.burst import SHORT_ONLY
        from dataclasses import replace

        graph, config, starts = small_setup
        config = replace(config, strategy=SHORT_ONLY)
        result = LightRWAcceleratorSim(graph, config, UniformWalk(), seed=2).run(starts, 4)
        assert result.total_steps > 0
        for stats in result.instances:
            assert stats.valid_ratio > 0.5  # shorts waste at most a beat

    def test_cache_policies_run(self, small_setup):
        from dataclasses import replace

        graph, config, starts = small_setup
        for policy in ("degree", "direct", "lru", "fifo", "none"):
            variant = replace(config, cache_policy=policy)
            result = LightRWAcceleratorSim(graph, variant, UniformWalk(), seed=3).run(
                starts[:8], 3
            )
            assert result.total_steps > 0

    def test_single_instance(self, labeled_graph):
        config = LightRWConfig(n_instances=1, max_inflight=4).scaled(64)
        starts = labeled_graph.nonzero_degree_vertices()[:6]
        result = LightRWAcceleratorSim(labeled_graph, config, UniformWalk(), seed=4).run(
            starts, 4
        )
        assert len(result.paths) == 6

    def test_sink_start(self, tiny_graph):
        config = LightRWConfig(n_instances=1, max_inflight=2, cache_entries=4)
        result = LightRWAcceleratorSim(tiny_graph, config, UniformWalk(), seed=0).run(
            np.array([4]), 5
        )
        assert result.paths[0] == [4]


class TestUtilizationReport:
    def test_memory_bound_profile(self, small_setup):
        """On a memory-bound workload, DRAM is the busiest resource."""
        graph, config, starts = small_setup
        result = LightRWAcceleratorSim(graph, config, UniformWalk(), seed=7).run(
            starts, 8
        )
        report = result.utilization_report()
        assert report, "expected a non-empty report"
        for name, value in report.items():
            assert 0.0 <= value <= 1.0, (name, value)
        assert report["dram"] == max(report.values())

    def test_empty_instances_skipped(self, labeled_graph):
        config = LightRWConfig(n_instances=4, max_inflight=4).scaled(64)
        # Two queries on four instances leave two instances idle.
        starts = labeled_graph.nonzero_degree_vertices()[:2]
        result = LightRWAcceleratorSim(labeled_graph, config, UniformWalk(), seed=1).run(
            starts, 3
        )
        report = result.utilization_report()
        assert report  # computed over the active instances only


class TestBackpressure:
    """Tiny FIFO depths force constant stalls; the pipeline must neither
    deadlock nor change the sampled walks."""

    @pytest.mark.parametrize("depth", [2, 4])
    @pytest.mark.parametrize("algorithm", [
        UniformWalk(), Node2VecWalk(2.0, 0.5), MetaPathWalk([0, 1, 2]),
    ], ids=["uniform", "node2vec", "metapath"])
    def test_tiny_fifos_still_correct(self, labeled_graph, depth, algorithm):
        from dataclasses import replace

        config = LightRWConfig(
            n_instances=1, max_inflight=8, fifo_depth=depth
        ).scaled(64)
        starts = labeled_graph.nonzero_degree_vertices()[:12]
        result = LightRWAcceleratorSim(labeled_graph, config, algorithm, seed=2).run(
            starts, 5, max_cycles=2_000_000
        )
        session = run_walks(labeled_graph, starts, 5, algorithm, PWRSSampler(16, 2))
        for q in range(12):
            np.testing.assert_array_equal(result.path(q), session.path(q))

    def test_deeper_fifos_never_slower(self, labeled_graph):
        """Backpressure costs cycles; relaxing it must not hurt."""
        starts = labeled_graph.nonzero_degree_vertices()[:12]
        cycles = []
        for depth in (2, 8, 64):
            config = LightRWConfig(
                n_instances=1, max_inflight=8, fifo_depth=depth
            ).scaled(64)
            result = LightRWAcceleratorSim(
                labeled_graph, config, UniformWalk(), seed=3
            ).run(starts, 6)
            cycles.append(result.cycles)
        assert cycles[0] >= cycles[1] >= cycles[2]


def test_cycle_sim_rejects_table_ablation(labeled_graph):
    """use_wrs=False is an analytic-model-only ablation."""
    from repro.errors import ConfigError

    config = LightRWConfig().with_ablation(wrs=False)
    with pytest.raises(ConfigError, match="streaming WRS"):
        LightRWAcceleratorSim(labeled_graph, config, UniformWalk())


class TestPlannerConsistency:
    """The cycle sim's Burst cmd Generator and the analytic planner must
    agree on burst counts and byte totals for any degree."""

    @pytest.mark.parametrize("long_beats", [0, 8, 32])
    def test_chunk_plan_matches_plan_bursts(self, labeled_graph, long_beats):
        import numpy as np

        from repro.fpga.burst import SHORT_ONLY, BurstStrategy, plan_bursts
        from repro.fpga.modules import BurstCmdGenerator, DRAMChannelSim
        from repro.fpga.sim.fifo import FIFO
        from repro.graph.csr import EDGE_RECORD_BYTES

        strategy = (
            SHORT_ONLY if long_beats == 0
            else BurstStrategy(short_beats=1, long_beats=long_beats)
        )
        config = LightRWConfig(strategy=strategy)
        generator = BurstCmdGenerator(
            config, DRAMChannelSim(config), FIFO("i", 4), FIFO("m", 4)
        )
        rng = np.random.default_rng(0)
        degrees = np.concatenate([[0, 1, 15, 16, 17, 512, 513],
                                  rng.integers(0, 3000, size=40)])
        plan = plan_bursts(degrees * EDGE_RECORD_BYTES, strategy, config.dram)
        for index, degree in enumerate(degrees.tolist()):
            chunks = generator._plan(int(degree))
            n_long = sum(1 for port, *_ in chunks if port == "long")
            n_short = sum(1 for port, *_ in chunks if port == "short")
            covered = sum(edges for *_, edges in chunks)
            assert covered == degree
            if strategy.is_dynamic:
                assert n_long == plan.n_long[index], degree
                assert n_short == plan.n_short[index], degree
            loaded = sum(
                beats * config.dram.bus_bytes for __, beats, __ in chunks
            )
            assert loaded == plan.loaded_bytes[index], degree
