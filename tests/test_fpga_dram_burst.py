"""DRAM timing model and dynamic burst planning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.fpga.burst import (
    FIXED_LONG,
    SHORT_ONLY,
    BurstStrategy,
    plan_bursts,
)
from repro.fpga.dram import DRAMTimings, PEAK_BANDWIDTH_GBPS, burst_bandwidth_gbps


class TestDRAMTimings:
    def test_bandwidth_monotone_in_burst_length(self):
        timings = DRAMTimings()
        bandwidths = [burst_bandwidth_gbps(timings, 1 << i) for i in range(7)]
        assert all(b1 <= b2 + 1e-9 for b1, b2 in zip(bandwidths, bandwidths[1:]))

    def test_peak_reached_at_long_bursts(self):
        timings = DRAMTimings()
        assert burst_bandwidth_gbps(timings, 64) == pytest.approx(
            PEAK_BANDWIDTH_GBPS, rel=0.01
        )

    def test_short_burst_far_below_peak(self):
        timings = DRAMTimings()
        assert burst_bandwidth_gbps(timings, 1) < 0.25 * PEAK_BANDWIDTH_GBPS

    def test_request_cycles(self):
        timings = DRAMTimings()
        assert timings.request_cycles(4) == 4 + timings.request_overhead_cycles

    def test_invalid_burst(self):
        with pytest.raises(ConfigError):
            burst_bandwidth_gbps(DRAMTimings(), 0)


class TestBurstStrategy:
    def test_labels(self):
        assert BurstStrategy(1, 32).label == "b1+b32"
        assert SHORT_ONLY.label == "b1+b0"
        assert FIXED_LONG.label == "b0+b32"

    def test_dynamic_flag(self):
        assert BurstStrategy(1, 32).is_dynamic
        assert not SHORT_ONLY.is_dynamic
        assert not FIXED_LONG.is_dynamic

    def test_invalid(self):
        with pytest.raises(ConfigError):
            BurstStrategy(0, 0)
        with pytest.raises(ConfigError):
            BurstStrategy(8, 4)  # short > long
        with pytest.raises(ConfigError):
            BurstStrategy(-1, 4)


class TestPlanBursts:
    def test_paper_example(self):
        """Figure 7's worked example with S1 = 16 units, S2 = 1 unit.

        The paper's units are abstract; with a 64-byte bus, a request of 33
        units (33 x 64 B) splits into two 16-beat longs and one short.
        """
        strategy = BurstStrategy(short_beats=1, long_beats=16)
        plan = plan_bursts(np.array([33 * 64, 2 * 64]), strategy)
        np.testing.assert_array_equal(plan.n_long, [2, 0])
        np.testing.assert_array_equal(plan.n_short, [1, 2])

    def test_unused_data_bounded_by_short_burst(self):
        """Section 5.2's bound: loaded - valid <= S2 per request."""
        strategy = BurstStrategy(short_beats=1, long_beats=32)
        sizes = np.arange(0, 5000, 7)
        plan = plan_bursts(sizes, strategy)
        waste = plan.loaded_bytes - plan.valid_bytes
        assert (waste >= 0).all()
        assert (waste < strategy.short_beats * 64).all()

    def test_loaded_equals_ceil_c_over_s2(self):
        strategy = BurstStrategy(short_beats=1, long_beats=32)
        sizes = np.array([1, 63, 64, 65, 2047, 2048, 2049, 10_000])
        plan = plan_bursts(sizes, strategy)
        expected = -(-sizes // 64) * 64
        np.testing.assert_array_equal(plan.loaded_bytes, expected)

    def test_short_only(self):
        plan = plan_bursts(np.array([200]), SHORT_ONLY)
        assert plan.n_long[0] == 0
        assert plan.n_short[0] == 4  # ceil(200/64)

    def test_fixed_long_overfetches(self):
        plan = plan_bursts(np.array([100]), FIXED_LONG)
        assert plan.n_long[0] == 1
        assert plan.loaded_bytes[0] == 2048
        assert plan.valid_ratio == pytest.approx(100 / 2048)

    def test_zero_bytes_cost_nothing(self):
        plan = plan_bursts(np.array([0]), BurstStrategy(1, 32))
        assert plan.interface_cycles[0] == 0
        assert plan.loaded_bytes[0] == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            plan_bursts(np.array([-1]), SHORT_ONLY)

    def test_interface_cycles_include_long_pipe_extra(self):
        timings = DRAMTimings()
        strategy = BurstStrategy(short_beats=1, long_beats=32)
        plan = plan_bursts(np.array([2048]), strategy, timings)
        expected = 32 + timings.request_overhead_cycles + timings.long_pipe_extra_cycles
        assert plan.interface_cycles[0] == pytest.approx(expected)

    def test_device_bandwidth_floor(self):
        """Huge bursts cannot stream faster than the DDR4 core."""
        timings = DRAMTimings()
        strategy = BurstStrategy(short_beats=0, long_beats=256)
        plan = plan_bursts(np.array([256 * 64]), strategy, timings)
        floor = 256 * timings.min_cycles_per_beat
        assert plan.interface_cycles[0] >= floor - 1e-9

    @given(
        sizes=st.lists(st.integers(0, 100_000), min_size=1, max_size=50),
        short=st.integers(1, 4),
        long=st.integers(4, 64),
    )
    @settings(max_examples=100, deadline=None)
    def test_dynamic_plan_invariants(self, sizes, short, long):
        strategy = BurstStrategy(short_beats=short, long_beats=long)
        plan = plan_bursts(np.asarray(sizes), strategy)
        # Everything requested is loaded.
        assert (plan.loaded_bytes >= plan.valid_bytes).all()
        # Waste bounded by one short burst.
        assert (plan.loaded_bytes - plan.valid_bytes < short * 64).all()
        # Long bursts cover exactly floor(c / S1).
        np.testing.assert_array_equal(
            plan.n_long, np.asarray(sizes) // (long * 64)
        )


class TestPlanDtypes:
    @pytest.mark.parametrize(
        "strategy", [SHORT_ONLY, FIXED_LONG, BurstStrategy(1, 32)]
    )
    def test_every_plan_field_stays_int64(self, strategy):
        """The bandwidth-cap maximum must not drift cycles to float64."""
        sizes = np.array([0, 1, 63, 64, 100, 2048, 256 * 64, 10**6])
        plan = plan_bursts(sizes, strategy)
        for field in ("n_long", "n_short", "loaded_bytes", "valid_bytes",
                      "interface_cycles"):
            assert getattr(plan, field).dtype == np.int64, field

    def test_bandwidth_floor_rounds_up_to_whole_cycles(self):
        timings = DRAMTimings()
        strategy = BurstStrategy(short_beats=0, long_beats=256)
        plan = plan_bursts(np.array([256 * 64]), strategy, timings)
        floor = 256 * timings.min_cycles_per_beat
        assert plan.interface_cycles[0] == int(np.ceil(floor))
