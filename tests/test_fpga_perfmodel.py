"""Analytic FPGA performance model: accounting, ablations, extrapolation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fpga.burst import FIXED_LONG, SHORT_ONLY
from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel, FPGATimeBreakdown
from repro.walks.node2vec import Node2VecWalk
from repro.walks.stepper import PWRSSampler, run_walks
from repro.walks.uniform import UniformWalk


@pytest.fixture
def session(labeled_graph):
    starts = labeled_graph.nonzero_degree_vertices()[:64]
    return run_walks(labeled_graph, starts, 8, UniformWalk(), PWRSSampler(16, 3))


@pytest.fixture
def n2v_session(labeled_graph):
    starts = labeled_graph.nonzero_degree_vertices()[:64]
    return run_walks(labeled_graph, starts, 8, Node2VecWalk(), PWRSSampler(16, 3))


class TestBasicAccounting:
    def test_positive_cycles_and_throughput(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        assert breakdown.kernel_cycles > 0
        assert breakdown.steps_per_second > 0
        assert breakdown.total_steps == session.total_steps

    def test_valid_ratio_bounds(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        assert 0.0 < breakdown.valid_ratio <= 1.0
        assert breakdown.bytes_loaded >= breakdown.bytes_valid

    def test_cache_stats(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        assert breakdown.cache_accesses == session.total_steps
        assert 0 <= breakdown.cache_hits <= breakdown.cache_accesses

    def test_needs_trace(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:4]
        bare = run_walks(
            labeled_graph, starts, 3, UniformWalk(), PWRSSampler(16, 0),
            record_trace=False,
        )
        with pytest.raises(ConfigError):
            FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(bare)

    def test_latency_recorded(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        latencies = breakdown.query_latency_seconds()
        assert latencies.shape == (session.num_queries,)
        assert (latencies[session.lengths > 0] > 0).all()

    def test_latency_can_be_skipped(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(
            session, record_latency=False
        )
        with pytest.raises(ValueError):
            breakdown.query_latency_seconds()


class TestInstances:
    def test_more_instances_faster(self, session):
        one = FPGAPerfModel(LightRWConfig(n_instances=1), UniformWalk()).evaluate(session)
        four = FPGAPerfModel(LightRWConfig(n_instances=4), UniformWalk()).evaluate(session)
        assert four.kernel_cycles < one.kernel_cycles
        # Not super-linear:
        assert four.kernel_cycles > one.kernel_cycles / 4.5

    def test_work_conserved_across_instances(self, session):
        # Burst traffic is identical; only cache behaviour (each instance
        # has a private cache over its partition) shifts the row-miss term.
        one = FPGAPerfModel(LightRWConfig(n_instances=1), UniformWalk()).evaluate(session)
        four = FPGAPerfModel(LightRWConfig(n_instances=4), UniformWalk()).evaluate(session)
        assert four.mem_cycles.sum() == pytest.approx(one.mem_cycles.sum(), rel=0.15)
        assert four.sampler_cycles.sum() == pytest.approx(one.sampler_cycles.sum())


class TestExtrapolation:
    def test_resources_scale_linearly(self, session):
        model = FPGAPerfModel(LightRWConfig(), UniformWalk())
        base = model.evaluate(session)
        doubled = model.evaluate(session, total_queries=2 * session.num_queries)
        assert doubled.total_steps == 2 * base.total_steps
        assert doubled.mem_cycles.sum() == pytest.approx(2 * base.mem_cycles.sum())
        # Throughput is unchanged when resource-bound.
        assert doubled.steps_per_second == pytest.approx(
            base.steps_per_second, rel=0.05
        )

    def test_cannot_shrink(self, session):
        model = FPGAPerfModel(LightRWConfig(), UniformWalk())
        with pytest.raises(ConfigError):
            model.evaluate(session, total_queries=1)


class TestAblations:
    def test_wrs_off_is_slower(self, session):
        config = LightRWConfig()
        full = FPGAPerfModel(config, UniformWalk()).evaluate(session)
        ablated = FPGAPerfModel(
            config.with_ablation(wrs=False), UniformWalk()
        ).evaluate(session)
        assert ablated.kernel_cycles > 1.3 * full.kernel_cycles
        assert not ablated.overlapped

    def test_cache_off_increases_memory_cycles(self, session):
        config = LightRWConfig()
        full = FPGAPerfModel(config, UniformWalk()).evaluate(session)
        ablated = FPGAPerfModel(
            config.with_ablation(cache=False), UniformWalk()
        ).evaluate(session)
        assert ablated.cache_hits == 0
        assert ablated.mem_cycles.sum() >= full.mem_cycles.sum()

    def test_short_only_strategy_never_beats_dynamic(self, session):
        full = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        short = FPGAPerfModel(
            LightRWConfig(strategy=SHORT_ONLY), UniformWalk()
        ).evaluate(session)
        # On a low-degree graph the dynamic plan degenerates to shorts, so
        # the two can tie; shorts can never be cheaper.
        assert short.mem_cycles.sum() >= full.mem_cycles.sum()

    def test_short_only_strategy_slower_on_hubs(self, rmat_small):
        starts = rmat_small.nonzero_degree_vertices()[:64]
        session = run_walks(rmat_small, starts, 6, UniformWalk(), PWRSSampler(16, 3))
        full = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        short = FPGAPerfModel(
            LightRWConfig(strategy=SHORT_ONLY), UniformWalk()
        ).evaluate(session)
        assert short.mem_cycles.sum() > full.mem_cycles.sum()

    def test_fixed_long_wastes_bytes(self, session):
        full = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        fixed = FPGAPerfModel(
            LightRWConfig(strategy=FIXED_LONG), UniformWalk()
        ).evaluate(session)
        assert fixed.valid_ratio < full.valid_ratio


class TestNode2VecAccounting:
    def test_second_order_costs_more(self, labeled_graph, session, n2v_session):
        uniform = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        n2v = FPGAPerfModel(LightRWConfig(), Node2VecWalk()).evaluate(n2v_session)
        per_step_uniform = uniform.kernel_cycles / uniform.total_steps
        per_step_n2v = n2v.kernel_cycles / n2v.total_steps
        assert per_step_n2v > per_step_uniform

    def test_prev_buffer_reduces_traffic(self, labeled_graph, n2v_session):
        big_buffer = LightRWConfig(prev_buffer_edges=1 << 20)
        no_buffer = LightRWConfig(prev_buffer_edges=0)
        # prev_buffer_edges = 0 would fail validation? it's allowed: int field.
        with_buf = FPGAPerfModel(big_buffer, Node2VecWalk()).evaluate(n2v_session)
        without = FPGAPerfModel(no_buffer, Node2VecWalk()).evaluate(n2v_session)
        assert with_buf.bytes_loaded < without.bytes_loaded
        assert with_buf.cache_accesses < without.cache_accesses


class TestBottleneck:
    def test_bottleneck_reported(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        assert breakdown.bottleneck in ("memory", "sampler", "controller")

    def test_tiny_k_shifts_bottleneck_to_sampler(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(k=1), UniformWalk()).evaluate(session)
        assert breakdown.sampler_cycles.sum() > breakdown.controller_cycles.sum()

    @staticmethod
    def _breakdown(mem, sampler, controller, overlapped):
        import numpy as np

        return FPGATimeBreakdown(
            config=LightRWConfig(),
            algorithm="uniform",
            total_steps=10,
            num_queries=2,
            mem_cycles=np.array(mem, dtype=np.float64),
            sampler_cycles=np.array(sampler, dtype=np.float64),
            controller_cycles=np.array(controller, dtype=np.float64),
            fill_cycles=0.0,
            overlapped=overlapped,
            cache_accesses=0,
            cache_hits=0,
            bytes_valid=0,
            bytes_loaded=0,
        )

    def test_skewed_instances_report_critical_resource(self):
        """The bottleneck is the resource binding the kernel-setting instance.

        Memory has the largest *cross-instance sum* here, but the instance
        that sets ``kernel_cycles`` is sampler-bound — the old ``.sum()``
        ranking reported "memory" for a batch gated by the sampler.
        """
        breakdown = self._breakdown(
            mem=[95.0, 90.0], sampler=[100.0, 5.0], controller=[1.0, 1.0],
            overlapped=True,
        )
        assert breakdown.kernel_cycles == 100.0
        assert breakdown.bottleneck == "sampler"

    def test_skewed_instances_serialized_stages(self):
        """Same property for the WRS-off ablation (stages add, not max)."""
        breakdown = self._breakdown(
            mem=[50.0, 10.0], sampler=[10.0, 45.0], controller=[5.0, 44.0],
            overlapped=False,
        )
        # Instance 1 (10 + 45 + 44 = 99) sets the kernel time and is
        # sampler-bound, even though instance 0 is memory-bound and the
        # cross-instance memory sum is the largest total.
        assert breakdown.kernel_cycles == 99.0
        assert breakdown.bottleneck == "sampler"


class TestCacheFastPath:
    """The vectorized LRU/FIFO path must not change any modeled number."""

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_identical_breakdown_to_reference_loop(self, session, policy):
        import numpy as np

        from repro.fpga.cache import FIFOCache, LRUCache

        class ReferenceLoopModel(FPGAPerfModel):
            """The pre-vectorization `_cache_hits`: one Python call per access."""

            def _cache_hits(self, trace, degrees):
                cache_cls = LRUCache if self.config.cache_policy == "lru" else FIFOCache
                cache = cache_cls(self.config.scaled_cache_entries, ways=4)
                hits = np.zeros(trace.size, dtype=bool)
                for i, vertex in enumerate(trace.tolist()):
                    hits[i] = cache.access(vertex, int(degrees[vertex]))
                return hits

        config = LightRWConfig(cache_policy=policy)
        fast = FPGAPerfModel(config, UniformWalk()).evaluate(session)
        slow = ReferenceLoopModel(config, UniformWalk()).evaluate(session)
        assert fast.cache_hits == slow.cache_hits
        assert fast.cache_accesses == slow.cache_accesses
        assert fast.kernel_cycles == slow.kernel_cycles
        np.testing.assert_array_equal(fast.mem_cycles, slow.mem_cycles)
        np.testing.assert_array_equal(fast.sampler_cycles, slow.sampler_cycles)
        np.testing.assert_array_equal(fast.controller_cycles, slow.controller_cycles)
        np.testing.assert_array_equal(
            fast.query_latency_cycles, slow.query_latency_cycles
        )
        assert fast.bytes_valid == slow.bytes_valid
        assert fast.bytes_loaded == slow.bytes_loaded
