"""Analytic FPGA performance model: accounting, ablations, extrapolation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fpga.burst import FIXED_LONG, SHORT_ONLY
from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel
from repro.walks.node2vec import Node2VecWalk
from repro.walks.stepper import PWRSSampler, run_walks
from repro.walks.uniform import UniformWalk


@pytest.fixture
def session(labeled_graph):
    starts = labeled_graph.nonzero_degree_vertices()[:64]
    return run_walks(labeled_graph, starts, 8, UniformWalk(), PWRSSampler(16, 3))


@pytest.fixture
def n2v_session(labeled_graph):
    starts = labeled_graph.nonzero_degree_vertices()[:64]
    return run_walks(labeled_graph, starts, 8, Node2VecWalk(), PWRSSampler(16, 3))


class TestBasicAccounting:
    def test_positive_cycles_and_throughput(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        assert breakdown.kernel_cycles > 0
        assert breakdown.steps_per_second > 0
        assert breakdown.total_steps == session.total_steps

    def test_valid_ratio_bounds(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        assert 0.0 < breakdown.valid_ratio <= 1.0
        assert breakdown.bytes_loaded >= breakdown.bytes_valid

    def test_cache_stats(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        assert breakdown.cache_accesses == session.total_steps
        assert 0 <= breakdown.cache_hits <= breakdown.cache_accesses

    def test_needs_trace(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:4]
        bare = run_walks(
            labeled_graph, starts, 3, UniformWalk(), PWRSSampler(16, 0),
            record_trace=False,
        )
        with pytest.raises(ConfigError):
            FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(bare)

    def test_latency_recorded(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        latencies = breakdown.query_latency_seconds()
        assert latencies.shape == (session.num_queries,)
        assert (latencies[session.lengths > 0] > 0).all()

    def test_latency_can_be_skipped(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(
            session, record_latency=False
        )
        with pytest.raises(ValueError):
            breakdown.query_latency_seconds()


class TestInstances:
    def test_more_instances_faster(self, session):
        one = FPGAPerfModel(LightRWConfig(n_instances=1), UniformWalk()).evaluate(session)
        four = FPGAPerfModel(LightRWConfig(n_instances=4), UniformWalk()).evaluate(session)
        assert four.kernel_cycles < one.kernel_cycles
        # Not super-linear:
        assert four.kernel_cycles > one.kernel_cycles / 4.5

    def test_work_conserved_across_instances(self, session):
        # Burst traffic is identical; only cache behaviour (each instance
        # has a private cache over its partition) shifts the row-miss term.
        one = FPGAPerfModel(LightRWConfig(n_instances=1), UniformWalk()).evaluate(session)
        four = FPGAPerfModel(LightRWConfig(n_instances=4), UniformWalk()).evaluate(session)
        assert four.mem_cycles.sum() == pytest.approx(one.mem_cycles.sum(), rel=0.15)
        assert four.sampler_cycles.sum() == pytest.approx(one.sampler_cycles.sum())


class TestExtrapolation:
    def test_resources_scale_linearly(self, session):
        model = FPGAPerfModel(LightRWConfig(), UniformWalk())
        base = model.evaluate(session)
        doubled = model.evaluate(session, total_queries=2 * session.num_queries)
        assert doubled.total_steps == 2 * base.total_steps
        assert doubled.mem_cycles.sum() == pytest.approx(2 * base.mem_cycles.sum())
        # Throughput is unchanged when resource-bound.
        assert doubled.steps_per_second == pytest.approx(
            base.steps_per_second, rel=0.05
        )

    def test_cannot_shrink(self, session):
        model = FPGAPerfModel(LightRWConfig(), UniformWalk())
        with pytest.raises(ConfigError):
            model.evaluate(session, total_queries=1)


class TestAblations:
    def test_wrs_off_is_slower(self, session):
        config = LightRWConfig()
        full = FPGAPerfModel(config, UniformWalk()).evaluate(session)
        ablated = FPGAPerfModel(
            config.with_ablation(wrs=False), UniformWalk()
        ).evaluate(session)
        assert ablated.kernel_cycles > 1.3 * full.kernel_cycles
        assert not ablated.overlapped

    def test_cache_off_increases_memory_cycles(self, session):
        config = LightRWConfig()
        full = FPGAPerfModel(config, UniformWalk()).evaluate(session)
        ablated = FPGAPerfModel(
            config.with_ablation(cache=False), UniformWalk()
        ).evaluate(session)
        assert ablated.cache_hits == 0
        assert ablated.mem_cycles.sum() >= full.mem_cycles.sum()

    def test_short_only_strategy_never_beats_dynamic(self, session):
        full = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        short = FPGAPerfModel(
            LightRWConfig(strategy=SHORT_ONLY), UniformWalk()
        ).evaluate(session)
        # On a low-degree graph the dynamic plan degenerates to shorts, so
        # the two can tie; shorts can never be cheaper.
        assert short.mem_cycles.sum() >= full.mem_cycles.sum()

    def test_short_only_strategy_slower_on_hubs(self, rmat_small):
        starts = rmat_small.nonzero_degree_vertices()[:64]
        session = run_walks(rmat_small, starts, 6, UniformWalk(), PWRSSampler(16, 3))
        full = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        short = FPGAPerfModel(
            LightRWConfig(strategy=SHORT_ONLY), UniformWalk()
        ).evaluate(session)
        assert short.mem_cycles.sum() > full.mem_cycles.sum()

    def test_fixed_long_wastes_bytes(self, session):
        full = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        fixed = FPGAPerfModel(
            LightRWConfig(strategy=FIXED_LONG), UniformWalk()
        ).evaluate(session)
        assert fixed.valid_ratio < full.valid_ratio


class TestNode2VecAccounting:
    def test_second_order_costs_more(self, labeled_graph, session, n2v_session):
        uniform = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        n2v = FPGAPerfModel(LightRWConfig(), Node2VecWalk()).evaluate(n2v_session)
        per_step_uniform = uniform.kernel_cycles / uniform.total_steps
        per_step_n2v = n2v.kernel_cycles / n2v.total_steps
        assert per_step_n2v > per_step_uniform

    def test_prev_buffer_reduces_traffic(self, labeled_graph, n2v_session):
        big_buffer = LightRWConfig(prev_buffer_edges=1 << 20)
        no_buffer = LightRWConfig(prev_buffer_edges=0)
        # prev_buffer_edges = 0 would fail validation? it's allowed: int field.
        with_buf = FPGAPerfModel(big_buffer, Node2VecWalk()).evaluate(n2v_session)
        without = FPGAPerfModel(no_buffer, Node2VecWalk()).evaluate(n2v_session)
        assert with_buf.bytes_loaded < without.bytes_loaded
        assert with_buf.cache_accesses < without.cache_accesses


class TestBottleneck:
    def test_bottleneck_reported(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(session)
        assert breakdown.bottleneck in ("memory", "sampler", "controller")

    def test_tiny_k_shifts_bottleneck_to_sampler(self, session):
        breakdown = FPGAPerfModel(LightRWConfig(k=1), UniformWalk()).evaluate(session)
        assert breakdown.sampler_cycles.sum() > breakdown.controller_cycles.sum()
