"""WRS Sampler timing model (Figures 10a/10b)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fpga.dram import DRAMTimings
from repro.fpga.wrs_sampler import WRSSamplerModel
from repro.units import GIGA


class TestStreamCycles:
    def test_complexity_formula(self):
        """Cycles follow the paper's O(n/k + log k)."""
        model = WRSSamplerModel(k=8)
        assert model.stream_cycles(80) == 10 + model.fill_cycles
        assert model.stream_cycles(81) == 11 + model.fill_cycles

    def test_zero_items(self):
        model = WRSSamplerModel(k=16)
        assert model.stream_cycles(0) == 0
        assert model.occupancy_cycles(0) == 0

    def test_vectorized(self):
        model = WRSSamplerModel(k=4)
        cycles = model.stream_cycles(np.array([0, 1, 4, 5]))
        fill = model.fill_cycles
        np.testing.assert_array_equal(cycles, [0, 1 + fill, 1 + fill, 2 + fill])

    def test_fill_grows_with_log_k(self):
        assert WRSSamplerModel(k=16).fill_cycles == WRSSamplerModel(k=4).fill_cycles + 2


class TestThroughput:
    def test_linear_scaling_until_bandwidth(self):
        dram = DRAMTimings()
        rates = [
            WRSSamplerModel(k=k).sustained_items_per_second(dram)
            for k in (1, 2, 4, 8)
        ]
        for k_index in range(3):
            assert rates[k_index + 1] == pytest.approx(2 * rates[k_index])

    def test_saturation_at_k16(self):
        """k = 16 hits the channel's byte rate; k = 32 gains nothing."""
        dram = DRAMTimings()
        peak = dram.peak_bandwidth_gbps * GIGA / 4
        assert WRSSamplerModel(k=16).sustained_items_per_second(dram) == pytest.approx(peak)
        assert WRSSamplerModel(k=32).sustained_items_per_second(dram) == pytest.approx(peak)

    def test_no_dram_cap(self):
        assert WRSSamplerModel(k=32).sustained_items_per_second(None) == 32 * 300e6

    def test_measured_below_peak_for_short_streams(self):
        model = WRSSamplerModel(k=16)
        dram = DRAMTimings()
        short = model.measured_throughput(64, dram)
        long = model.measured_throughput(1 << 16, dram)
        assert short < long
        assert short > 0.5 * long  # "slightly less", not a collapse

    def test_measured_never_exceeds_cap(self):
        model = WRSSamplerModel(k=32)
        dram = DRAMTimings()
        assert model.measured_throughput(1 << 20, dram) <= (
            model.sustained_items_per_second(dram) + 1
        )

    def test_zero_stream(self):
        assert WRSSamplerModel(k=4).measured_throughput(0) == 0.0


def test_k_must_be_power_of_two():
    with pytest.raises(ConfigError):
        WRSSamplerModel(k=3)
