"""Golden regression tests.

These lock the *exact* deterministic outputs of the seeded pipeline —
graph generation, the RNG lanes, and sampled walks — so that refactors
cannot silently change behaviour that downstream users rely on for
reproducibility.  If a change intentionally alters sampling semantics,
these values must be regenerated and the change called out loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import rmat_graph
from repro.graph.labels import assign_random_weights, assign_vertex_labels
from repro.sampling.rng import ThundeRingRNG, derive_seed, splitmix64
from repro.walks import (
    MetaPathWalk,
    Node2VecWalk,
    PWRSSampler,
    UniformWalk,
    run_walks,
)


@pytest.fixture(scope="module")
def golden_graph():
    graph = rmat_graph(7, edge_factor=6, seed=42, deduplicate=True)
    graph = assign_vertex_labels(graph, n_labels=3, seed=43)
    return assign_random_weights(graph, seed=44)


class TestGoldenGraph:
    def test_generation_fingerprint(self, golden_graph):
        assert golden_graph.num_vertices == 128
        assert golden_graph.num_edges == 545
        assert int(golden_graph.row_index.sum()) == 50162
        assert int(golden_graph.col_index.astype(np.int64).sum()) == 18291


class TestGoldenRNG:
    def test_splitmix_reference_values(self):
        # Independently verifiable SplitMix64 outputs.
        assert splitmix64(0) == 0xE220A8397B1DCDAF
        assert splitmix64(1) == 0x910A2DEC89025CC1

    def test_lane_block(self):
        block = ThundeRingRNG(4, seed=7).uint32_block(2)
        expected = [
            [2551625027, 1950809775, 4214272843, 690049624],
            [1229511393, 3014805488, 2928659307, 2259496053],
        ]
        np.testing.assert_array_equal(block, expected)

    def test_derive_seed_stable(self):
        assert derive_seed(7, 0) == derive_seed(7, 0)
        # Spot value pinned (downstream per-query lanes depend on it).
        assert derive_seed(0, 0) == splitmix64(splitmix64(0))


class TestGoldenWalks:
    STARTS = [0, 1, 2, 3, 4, 5]

    def _walk(self, graph, algorithm):
        starts = np.asarray(self.STARTS)
        session = run_walks(graph, starts, 6, algorithm, PWRSSampler(8, 2024))
        return [session.path(q).tolist() for q in range(3)]

    def test_uniform_paths(self, golden_graph):
        assert self._walk(golden_graph, UniformWalk()) == [
            [0, 35, 18, 34, 32, 10, 18],
            [1, 40, 97, 4, 8, 42, 9],
            [2, 109],
        ]

    def test_node2vec_paths(self, golden_graph):
        assert self._walk(golden_graph, Node2VecWalk(2.0, 0.5)) == [
            [0, 35, 18, 34, 32, 10, 18],
            [1, 40, 97, 4, 8, 42, 9],
            [2, 109],
        ]

    def test_metapath_paths(self, golden_graph):
        assert self._walk(golden_graph, MetaPathWalk([0, 1, 2])) == [
            [0, 35, 104, 68, 1, 82, 68],
            [1, 19, 20, 56, 9, 0, 30],
            [2, 32, 12, 44],
        ]
