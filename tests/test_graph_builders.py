"""Edge-list builders: CSR construction, symmetrization, attributes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph.builders import from_edge_list, symmetrize_edges


def _edge_multiset(graph):
    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    return sorted(zip(sources.tolist(), graph.col_index.tolist()))


class TestFromEdgeList:
    def test_simple(self):
        graph = from_edge_list(np.array([[1, 0], [0, 1], [0, 2]]), num_vertices=3)
        assert _edge_multiset(graph) == [(0, 1), (0, 2), (1, 0)]

    def test_rows_sorted_by_destination(self):
        graph = from_edge_list(np.array([[0, 5], [0, 1], [0, 3]]), num_vertices=6)
        np.testing.assert_array_equal(graph.neighbors(0), [1, 3, 5])

    def test_infers_num_vertices(self):
        graph = from_edge_list(np.array([[0, 9]]))
        assert graph.num_vertices == 10

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphFormatError, match="num_vertices"):
            from_edge_list(np.array([[0, 5]]), num_vertices=3)

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphFormatError, match="non-negative"):
            from_edge_list(np.array([[-1, 0]]))

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphFormatError, match="shape"):
            from_edge_list(np.array([[0, 1, 2]]))

    def test_weights_permuted_with_edges(self):
        edges = np.array([[1, 0], [0, 2], [0, 1]])
        weights = np.array([10.0, 20.0, 30.0], dtype=np.float32)
        graph = from_edge_list(edges, num_vertices=3, weights=weights)
        # After sorting, row 0 is [(0,1,w=30), (0,2,w=20)], row 1 is [(1,0,w=10)].
        np.testing.assert_allclose(graph.neighbor_weights(0), [30.0, 20.0])
        np.testing.assert_allclose(graph.neighbor_weights(1), [10.0])

    def test_edge_labels_permuted_with_edges(self):
        edges = np.array([[1, 0], [0, 2]])
        labels = np.array([7, 9], dtype=np.int16)
        graph = from_edge_list(edges, num_vertices=3, edge_labels=labels)
        assert graph.neighbor_edge_labels(0)[0] == 9
        assert graph.neighbor_edge_labels(1)[0] == 7

    def test_misaligned_weights(self):
        with pytest.raises(GraphFormatError, match="align"):
            from_edge_list(np.array([[0, 1]]), weights=np.array([1.0, 2.0]))

    def test_deduplicate(self):
        edges = np.array([[0, 1], [0, 1], [0, 2], [0, 1]])
        graph = from_edge_list(edges, num_vertices=3, deduplicate=True)
        assert _edge_multiset(graph) == [(0, 1), (0, 2)]

    def test_deduplicate_keeps_first_weight(self):
        edges = np.array([[0, 1], [0, 1]])
        # After the stable lexsort the original order within equal edges is
        # preserved, so the first occurrence's weight survives.
        graph = from_edge_list(
            edges, num_vertices=2, weights=np.array([5.0, 9.0]), deduplicate=True
        )
        assert graph.num_edges == 1
        assert graph.neighbor_weights(0)[0] == pytest.approx(5.0)

    def test_empty_edge_list(self):
        graph = from_edge_list(np.zeros((0, 2), dtype=np.int64), num_vertices=4)
        assert graph.num_vertices == 4
        assert graph.num_edges == 0

    def test_undirected_creates_both_arcs(self):
        graph = from_edge_list(np.array([[0, 1], [1, 2]]), num_vertices=3, directed=False)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert graph.has_edge(1, 2) and graph.has_edge(2, 1)
        assert graph.num_edges == 4

    def test_undirected_mirrors_weights(self):
        graph = from_edge_list(
            np.array([[0, 1]]), num_vertices=2, weights=np.array([4.5]), directed=False
        )
        assert graph.neighbor_weights(0)[0] == pytest.approx(4.5)
        assert graph.neighbor_weights(1)[0] == pytest.approx(4.5)

    def test_undirected_self_loop_single_arc(self):
        graph = from_edge_list(np.array([[1, 1]]), num_vertices=2, directed=False)
        assert graph.num_edges == 1

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=0, max_size=60
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_edge_multiset_preserved(self, edges):
        """CSR construction is a permutation of the input edges."""
        array = (
            np.asarray(edges, dtype=np.int64)
            if edges
            else np.zeros((0, 2), dtype=np.int64)
        )
        graph = from_edge_list(array, num_vertices=16)
        assert _edge_multiset(graph) == sorted(map(tuple, array.tolist()))
        assert graph.neighbors_sorted()


class TestSymmetrize:
    def test_mirrors_non_loops(self):
        out = symmetrize_edges(np.array([[0, 1], [2, 2]]))
        assert sorted(map(tuple, out.tolist())) == [(0, 1), (1, 0), (2, 2)]

    def test_bad_shape(self):
        with pytest.raises(GraphFormatError):
            symmetrize_edges(np.array([0, 1]))
