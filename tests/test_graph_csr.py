"""CSRGraph container: validation, adjacency access, bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph, EDGE_RECORD_BYTES, NEIGHBOR_INFO_BYTES


def test_basic_shape(tiny_graph):
    assert tiny_graph.num_vertices == 5
    assert tiny_graph.num_edges == 7
    assert tiny_graph.average_degree == pytest.approx(7 / 5)
    assert tiny_graph.max_degree == 3


def test_degrees(tiny_graph):
    np.testing.assert_array_equal(tiny_graph.degrees, [3, 1, 1, 2, 0])
    assert tiny_graph.degree(0) == 3
    assert tiny_graph.degree(4) == 0


def test_neighbors_sorted_and_correct(tiny_graph):
    np.testing.assert_array_equal(tiny_graph.neighbors(0), [1, 2, 3])
    np.testing.assert_array_equal(tiny_graph.neighbors(3), [0, 2])
    assert tiny_graph.neighbors(4).size == 0
    assert tiny_graph.neighbors_sorted()


def test_neighbor_slice(tiny_graph):
    start, end = tiny_graph.neighbor_slice(1)
    assert end - start == 1
    assert tiny_graph.col_index[start] == 2


def test_neighbor_weights(tiny_graph):
    np.testing.assert_allclose(tiny_graph.neighbor_weights(0), [3, 1, 4])
    np.testing.assert_allclose(tiny_graph.neighbor_weights(3), [5, 2])


def test_neighbor_weights_default_ones():
    graph = CSRGraph(row_index=np.array([0, 1]), col_index=np.array([0]))
    np.testing.assert_allclose(graph.neighbor_weights(0), [1.0])


def test_has_edge(tiny_graph):
    assert tiny_graph.has_edge(0, 2)
    assert tiny_graph.has_edge(3, 0)
    assert not tiny_graph.has_edge(1, 0)
    assert not tiny_graph.has_edge(4, 0)
    assert not tiny_graph.has_edge(2, 3)


def test_edge_keys_sorted(tiny_graph, rmat_small):
    for graph in (tiny_graph, rmat_small):
        keys = graph.edge_keys()
        assert keys.size == graph.num_edges
        assert np.all(np.diff(keys) >= 0)


def test_nonzero_degree_vertices(tiny_graph):
    np.testing.assert_array_equal(tiny_graph.nonzero_degree_vertices(), [0, 1, 2, 3])


def test_memory_bytes(tiny_graph):
    footprint = tiny_graph.memory_bytes()
    assert footprint["row_index"] == 5 * NEIGHBOR_INFO_BYTES
    assert footprint["col_index"] == 7 * EDGE_RECORD_BYTES
    assert footprint["edge_weights"] == 7 * 4
    assert tiny_graph.total_bytes() == sum(footprint.values())


def test_to_networkx(tiny_graph):
    nx_graph = tiny_graph.to_networkx()
    assert nx_graph.number_of_nodes() == 5
    assert nx_graph.number_of_edges() == 7
    assert nx_graph[0][1]["weight"] == pytest.approx(3.0)


def test_repr(tiny_graph):
    assert "tiny" in repr(tiny_graph)
    assert "|V|=5" in repr(tiny_graph)


class TestValidation:
    def test_row_index_must_start_at_zero(self):
        with pytest.raises(GraphFormatError, match="row_index\\[0\\]"):
            CSRGraph(row_index=np.array([1, 2]), col_index=np.array([0, 0]))

    def test_row_index_monotone(self):
        with pytest.raises(GraphFormatError, match="monotonically"):
            CSRGraph(row_index=np.array([0, 2, 1]), col_index=np.array([0, 0]))

    def test_row_index_total_matches_edges(self):
        with pytest.raises(GraphFormatError, match="num_edges"):
            CSRGraph(row_index=np.array([0, 1]), col_index=np.array([0, 0]))

    def test_col_index_in_range(self):
        with pytest.raises(GraphFormatError, match="references vertex"):
            CSRGraph(row_index=np.array([0, 1]), col_index=np.array([5]))

    def test_weight_alignment(self):
        with pytest.raises(GraphFormatError, match="edge_weights"):
            CSRGraph(
                row_index=np.array([0, 1]),
                col_index=np.array([0]),
                edge_weights=np.array([1.0, 2.0]),
            )

    def test_vertex_label_alignment(self):
        with pytest.raises(GraphFormatError, match="vertex_labels"):
            CSRGraph(
                row_index=np.array([0, 1]),
                col_index=np.array([0]),
                vertex_labels=np.array([1, 2, 3]),
            )

    def test_negative_weights_rejected(self):
        with pytest.raises(GraphFormatError, match="non-negative"):
            CSRGraph(
                row_index=np.array([0, 1]),
                col_index=np.array([0]),
                edge_weights=np.array([-1.0]),
            )

    def test_empty_graph_is_valid(self):
        graph = CSRGraph(row_index=np.array([0]), col_index=np.array([], dtype=np.uint32))
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert graph.average_degree == 0.0
