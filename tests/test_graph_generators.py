"""Synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import (
    chung_lu_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    rmat_graph,
    star_graph,
)


class TestRMAT:
    def test_shape(self):
        graph = rmat_graph(8, edge_factor=4, seed=1)
        assert graph.num_vertices == 256
        assert graph.num_edges == 1024

    def test_deterministic(self):
        a = rmat_graph(7, seed=42)
        b = rmat_graph(7, seed=42)
        np.testing.assert_array_equal(a.col_index, b.col_index)
        np.testing.assert_array_equal(a.row_index, b.row_index)

    def test_seed_changes_graph(self):
        a = rmat_graph(7, seed=1)
        b = rmat_graph(7, seed=2)
        assert not np.array_equal(a.col_index, b.col_index)

    def test_power_law_skew(self):
        """RMAT's quadrant bias concentrates degree on low vertex ids."""
        graph = rmat_graph(12, edge_factor=8, seed=5)
        degrees = np.sort(graph.degrees)[::-1]
        top_share = degrees[: graph.num_vertices // 100].sum() / graph.num_edges
        assert top_share > 0.15  # top 1% of vertices hold >15% of edges

    def test_deduplicate(self):
        dup = rmat_graph(6, edge_factor=16, seed=3, deduplicate=False)
        simple = rmat_graph(6, edge_factor=16, seed=3, deduplicate=True)
        assert simple.num_edges < dup.num_edges

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(4, a=0.9, b=0.2, c=0.2)

    def test_negative_scale(self):
        with pytest.raises(ValueError):
            rmat_graph(-1)

    def test_scale_zero(self):
        graph = rmat_graph(0, edge_factor=3, seed=1, deduplicate=True)
        assert graph.num_vertices == 1


class TestChungLu:
    def test_average_degree_calibrated(self):
        for target in (5.0, 14.0, 38.0):
            graph = chung_lu_graph(4096, avg_degree=target, seed=2, directed=False)
            assert graph.average_degree == pytest.approx(target, rel=0.25)

    def test_directed(self):
        graph = chung_lu_graph(512, avg_degree=8.0, seed=1, directed=True)
        assert graph.directed
        assert graph.average_degree == pytest.approx(8.0, rel=0.3)

    def test_skewed(self):
        graph = chung_lu_graph(4096, avg_degree=10.0, seed=3)
        assert graph.max_degree > 10 * graph.average_degree

    def test_no_self_loops(self):
        graph = chung_lu_graph(256, avg_degree=6.0, seed=4)
        sources = np.repeat(np.arange(graph.num_vertices), graph.degrees)
        assert not np.any(sources == graph.col_index)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            chung_lu_graph(0, avg_degree=5)
        with pytest.raises(ValueError):
            chung_lu_graph(10, avg_degree=0)


class TestErdosRenyi:
    def test_average_degree(self):
        graph = erdos_renyi_graph(2048, avg_degree=10.0, seed=1)
        assert graph.average_degree == pytest.approx(10.0, rel=0.15)

    def test_degree_concentration(self):
        """ER degrees concentrate near the mean, unlike power laws."""
        graph = erdos_renyi_graph(2048, avg_degree=10.0, seed=2)
        assert graph.max_degree < 5 * graph.average_degree


class TestMicroGraphs:
    def test_path(self):
        graph = path_graph(5)
        np.testing.assert_array_equal(graph.degrees, [1, 1, 1, 1, 0])
        assert graph.has_edge(2, 3)

    def test_cycle(self):
        graph = cycle_graph(4)
        assert graph.has_edge(3, 0)
        np.testing.assert_array_equal(graph.degrees, np.ones(4))

    def test_star(self):
        graph = star_graph(6)
        assert graph.degree(0) == 6
        assert graph.degree(3) == 0

    def test_star_undirected(self):
        graph = star_graph(6, directed=False)
        assert graph.degree(0) == 6
        assert graph.degree(3) == 1

    def test_complete(self):
        graph = complete_graph(4)
        assert graph.num_edges == 12
        np.testing.assert_array_equal(graph.degrees, np.full(4, 3))
