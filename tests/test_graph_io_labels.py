"""Graph persistence and random attribute assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.builders import from_edge_list
from repro.graph.io import (
    load_csr_npz,
    load_edge_list_text,
    save_csr_npz,
    save_edge_list_text,
)
from repro.graph.labels import (
    assign_edge_labels,
    assign_random_weights,
    assign_vertex_labels,
)


class TestNpzRoundTrip:
    def test_exact_round_trip(self, labeled_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_csr_npz(labeled_graph, path)
        loaded = load_csr_npz(path)
        np.testing.assert_array_equal(loaded.row_index, labeled_graph.row_index)
        np.testing.assert_array_equal(loaded.col_index, labeled_graph.col_index)
        np.testing.assert_array_equal(loaded.edge_weights, labeled_graph.edge_weights)
        np.testing.assert_array_equal(loaded.vertex_labels, labeled_graph.vertex_labels)
        assert loaded.directed == labeled_graph.directed
        assert loaded.name == labeled_graph.name

    def test_optional_attributes_absent(self, tmp_path):
        graph = from_edge_list(np.array([[0, 1]]), num_vertices=2)
        path = tmp_path / "bare.npz"
        save_csr_npz(graph, path)
        loaded = load_csr_npz(path)
        assert loaded.edge_weights is None
        assert loaded.vertex_labels is None
        assert loaded.edge_labels is None


class TestTextFormat:
    def test_round_trip_unweighted(self, tmp_path):
        graph = from_edge_list(np.array([[0, 1], [1, 2], [2, 0]]), num_vertices=3)
        path = tmp_path / "edges.txt"
        save_edge_list_text(graph, path)
        loaded = load_edge_list_text(path, num_vertices=3)
        np.testing.assert_array_equal(loaded.row_index, graph.row_index)
        np.testing.assert_array_equal(loaded.col_index, graph.col_index)

    def test_round_trip_weighted(self, tiny_graph, tmp_path):
        path = tmp_path / "weighted.txt"
        save_edge_list_text(tiny_graph, path)
        loaded = load_edge_list_text(path, num_vertices=5)
        np.testing.assert_allclose(loaded.edge_weights, tiny_graph.edge_weights, rtol=1e-5)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "input.txt"
        path.write_text("# header\n\n0 1\n1 2\n")
        loaded = load_edge_list_text(path)
        assert loaded.num_edges == 2

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nnot-an-edge\n")
        with pytest.raises(GraphFormatError, match="bad.txt:2"):
            load_edge_list_text(path)

    def test_non_integer_vertex(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("0 x\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            load_edge_list_text(path)

    def test_inconsistent_weight_column(self, tmp_path):
        path = tmp_path / "bad3.txt"
        path.write_text("0 1 2.5\n1 2\n")
        with pytest.raises(GraphFormatError, match="missing weight"):
            load_edge_list_text(path)

    def test_name_from_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert load_edge_list_text(path).name == "mygraph"


class TestLabels:
    def test_vertex_labels_deterministic_and_in_range(self, tiny_graph):
        a = assign_vertex_labels(tiny_graph, n_labels=4, seed=1)
        b = assign_vertex_labels(tiny_graph, n_labels=4, seed=1)
        np.testing.assert_array_equal(a.vertex_labels, b.vertex_labels)
        assert a.vertex_labels.min() >= 0
        assert a.vertex_labels.max() < 4

    def test_vertex_labels_do_not_mutate_input(self, tiny_graph):
        assign_vertex_labels(tiny_graph, n_labels=2, seed=0)
        assert tiny_graph.vertex_labels is None

    def test_weights_in_range(self, tiny_graph):
        graph = assign_random_weights(tiny_graph, low=2.0, high=3.0, seed=5)
        assert graph.edge_weights.min() >= 2.0
        assert graph.edge_weights.max() < 3.0

    def test_undirected_weights_symmetric(self):
        base = from_edge_list(
            np.array([[0, 1], [1, 2], [0, 2]]), num_vertices=3, directed=False
        )
        graph = assign_random_weights(base, seed=3)
        for u in range(3):
            for v in graph.neighbors(u).tolist():
                start_u, __ = graph.neighbor_slice(u)
                pos_u = start_u + int(np.searchsorted(graph.neighbors(u), v))
                start_v, __ = graph.neighbor_slice(v)
                pos_v = start_v + int(np.searchsorted(graph.neighbors(v), u))
                assert graph.edge_weights[pos_u] == graph.edge_weights[pos_v]

    def test_undirected_edge_labels_symmetric(self):
        base = from_edge_list(
            np.array([[0, 1], [1, 2]]), num_vertices=3, directed=False
        )
        graph = assign_edge_labels(base, n_labels=5, seed=9)
        start0, __ = graph.neighbor_slice(0)
        start1, __ = graph.neighbor_slice(1)
        pos_01 = start0 + int(np.searchsorted(graph.neighbors(0), 1))
        pos_10 = start1 + int(np.searchsorted(graph.neighbors(1), 0))
        assert graph.edge_labels[pos_01] == graph.edge_labels[pos_10]

    def test_invalid_parameters(self, tiny_graph):
        with pytest.raises(ValueError):
            assign_vertex_labels(tiny_graph, n_labels=0)
        with pytest.raises(ValueError):
            assign_random_weights(tiny_graph, low=3.0, high=2.0)
        with pytest.raises(ValueError):
            assign_edge_labels(tiny_graph, n_labels=-1)
