"""Graph statistics and degree reordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import chung_lu_graph, erdos_renyi_graph, star_graph
from repro.graph.reorder import (
    degree_sort_reorder,
    hot_prefix_hit_ratio,
    reordering_cost_model,
)
from repro.graph.stats import (
    degree_histogram,
    degree_stats,
    largest_component_fraction,
    reuse_distance_profile,
)


class TestDegreeStats:
    def test_star(self):
        graph = star_graph(10)
        stats = degree_stats(graph)
        assert stats.maximum == 10
        assert stats.mean == pytest.approx(10 / 11)
        # All edges belong to the hub.
        assert stats.stationary_mean_degree == pytest.approx(10.0)

    def test_gini_zero_for_regular(self):
        from repro.graph.generators import cycle_graph

        stats = degree_stats(cycle_graph(16))
        assert stats.gini == pytest.approx(0.0, abs=1e-9)

    def test_powerlaw_more_skewed_than_er(self):
        pl = degree_stats(chung_lu_graph(2048, avg_degree=8, seed=1))
        er = degree_stats(erdos_renyi_graph(2048, avg_degree=8, seed=1))
        assert pl.gini > er.gini
        assert pl.stationary_mean_degree > er.stationary_mean_degree
        assert pl.top_percent_edge_share > er.top_percent_edge_share

    def test_as_row(self):
        row = degree_stats(star_graph(4)).as_row()
        assert "stationary_mean_degree" in row


class TestHistogram:
    def test_buckets_cover_all_vertices(self):
        graph = chung_lu_graph(512, avg_degree=6, seed=2)
        rows = degree_histogram(graph)
        assert sum(count for __, count in rows) == graph.num_vertices


class TestComponents:
    def test_connected_cycle(self):
        from repro.graph.generators import cycle_graph

        assert largest_component_fraction(cycle_graph(8)) == 1.0

    def test_disconnected(self):
        from repro.graph.builders import from_edge_list

        graph = from_edge_list(np.array([[0, 1]]), num_vertices=4)
        assert largest_component_fraction(graph) == pytest.approx(0.5)


class TestReuseDistance:
    def test_simple_trace(self):
        # Trace a b a: the second 'a' saw one distinct vertex since.
        distances = reuse_distance_profile(np.array([0, 1, 0]))
        np.testing.assert_array_equal(distances, [1])

    def test_immediate_reuse(self):
        distances = reuse_distance_profile(np.array([5, 5, 5]))
        np.testing.assert_array_equal(distances, [0, 0])

    def test_cold_only(self):
        assert reuse_distance_profile(np.arange(10)).size == 0

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 12, size=200)
        fast = reuse_distance_profile(trace)
        # Brute force: distinct vertices between consecutive occurrences.
        slow = []
        last: dict[int, int] = {}
        for position, vertex in enumerate(trace.tolist()):
            if vertex in last:
                window = trace[last[vertex] + 1 : position]
                slow.append(len(set(window.tolist())))
            last[vertex] = position
        np.testing.assert_array_equal(fast, slow)


class TestReorder:
    def test_permutation_is_bijective(self, labeled_graph):
        reordered = degree_sort_reorder(labeled_graph)
        n = labeled_graph.num_vertices
        assert np.array_equal(np.sort(reordered.new_to_old), np.arange(n))
        assert np.array_equal(
            reordered.old_to_new[reordered.new_to_old], np.arange(n)
        )

    def test_degrees_descending(self, labeled_graph):
        reordered = degree_sort_reorder(labeled_graph)
        degrees = reordered.graph.degrees
        assert np.all(np.diff(degrees) <= 0)

    def test_edges_preserved_under_relabeling(self, labeled_graph):
        reordered = degree_sort_reorder(labeled_graph)
        assert reordered.graph.num_edges == labeled_graph.num_edges
        # Spot-check a handful of edges map correctly.
        rng = np.random.default_rng(0)
        for __ in range(50):
            u = int(rng.choice(labeled_graph.nonzero_degree_vertices()))
            v = int(rng.choice(labeled_graph.neighbors(u)))
            assert reordered.graph.has_edge(
                int(reordered.old_to_new[u]), int(reordered.old_to_new[v])
            )

    def test_vertex_labels_follow(self, labeled_graph):
        reordered = degree_sort_reorder(labeled_graph)
        for new_id in range(0, labeled_graph.num_vertices, 37):
            old_id = reordered.new_to_old[new_id]
            assert (
                reordered.graph.vertex_labels[new_id]
                == labeled_graph.vertex_labels[old_id]
            )

    def test_translate_round_trip(self, labeled_graph):
        reordered = degree_sort_reorder(labeled_graph)
        starts = labeled_graph.nonzero_degree_vertices()[:10]
        translated = reordered.translate_starts(starts)
        paths = np.stack([translated, np.full(10, -1)], axis=1)
        back = reordered.translate_paths_back(paths)
        np.testing.assert_array_equal(back[:, 0], starts)
        assert (back[:, 1] == -1).all()

    def test_cost_model_positive_and_scales(self, labeled_graph):
        small = reordering_cost_model(labeled_graph)
        big = reordering_cost_model(chung_lu_graph(4096, avg_degree=16, seed=1))
        assert 0 < small < big

    def test_hot_prefix_bounds(self, labeled_graph):
        assert hot_prefix_hit_ratio(labeled_graph, 0) == 0.0
        assert hot_prefix_hit_ratio(
            labeled_graph, labeled_graph.num_vertices
        ) == pytest.approx(1.0)
        mid = hot_prefix_hit_ratio(labeled_graph, 16)
        # 16 hubs of a power-law graph carry far more than 16/|V| of mass.
        assert mid > 16 / labeled_graph.num_vertices * 2
