"""Heterogeneous graph generation and the open-loop queueing model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, GraphFormatError
from repro.fpga.queueing import ServerModel, response_curve
from repro.graph.heterogeneous import (
    HeterogeneousSchema,
    bibliographic_schema,
    heterogeneous_graph,
)
from repro.walks.metapath import MetaPathWalk
from repro.walks.stepper import PWRSSampler, run_walks


@pytest.fixture(scope="module")
def biblio():
    schema = bibliographic_schema(n_authors=200, n_papers=400, n_venues=10)
    return schema, heterogeneous_graph(schema, seed=3)


class TestSchema:
    def test_labels_and_slices(self, biblio):
        schema, graph = biblio
        assert schema.label_of("author") == 0
        assert schema.label_of("venue") == 2
        start, end = schema.layer_slice("paper")
        assert end - start == 400
        assert (graph.vertex_labels[start:end] == schema.label_of("paper")).all()

    def test_metapath_translation(self, biblio):
        schema, __ = biblio
        assert schema.metapath_schema(["author", "paper", "venue"]) == [0, 1, 2]

    def test_unknown_layer(self, biblio):
        schema, __ = biblio
        with pytest.raises(GraphFormatError):
            schema.label_of("editor")
        with pytest.raises(GraphFormatError):
            schema.layer_slice("editor")

    def test_invalid_schemas(self):
        with pytest.raises(GraphFormatError):
            HeterogeneousSchema(layers={}, relations=[])
        with pytest.raises(GraphFormatError):
            HeterogeneousSchema(layers={"a": 0}, relations=[])
        with pytest.raises(GraphFormatError):
            HeterogeneousSchema(layers={"a": 5}, relations=[("a", "b", 1.0)])
        with pytest.raises(GraphFormatError):
            HeterogeneousSchema(layers={"a": 5}, relations=[("a", "a", 0.0)])


class TestGeneration:
    def test_edges_respect_relations(self, biblio):
        """Every edge connects layers that share a declared relation."""
        schema, graph = biblio
        allowed = set()
        for src, dst, __ in schema.relations:
            allowed.add((schema.label_of(src), schema.label_of(dst)))
            allowed.add((schema.label_of(dst), schema.label_of(src)))
        sources = np.repeat(np.arange(graph.num_vertices), graph.degrees)
        pairs = set(
            zip(
                graph.vertex_labels[sources].tolist(),
                graph.vertex_labels[graph.col_index].tolist(),
            )
        )
        assert pairs <= allowed

    def test_deterministic(self):
        schema = bibliographic_schema(100, 200, 5)
        a = heterogeneous_graph(schema, seed=9)
        b = heterogeneous_graph(schema, seed=9)
        np.testing.assert_array_equal(a.col_index, b.col_index)

    def test_skew_increases_hub_mass(self):
        schema = bibliographic_schema(300, 600, 15)
        flat = heterogeneous_graph(schema, seed=4, skew=0.0)
        skewed = heterogeneous_graph(schema, seed=4, skew=1.0)
        v_start, v_end = schema.layer_slice("venue")
        flat_max = flat.degrees[v_start:v_end].max()
        skewed_max = skewed.degrees[v_start:v_end].max()
        assert skewed_max > flat_max

    def test_invalid_skew(self):
        with pytest.raises(GraphFormatError):
            heterogeneous_graph(bibliographic_schema(10, 10, 2), skew=1.5)

    def test_metapath_walks_follow_layers(self, biblio):
        """A-P-V-P-A walks visit exactly those layers in order."""
        schema, graph = biblio
        labels = schema.metapath_schema(["author", "paper", "venue", "paper", "author"])
        walk = MetaPathWalk(labels, weighted=False)
        a_start, a_end = schema.layer_slice("author")
        authors = np.arange(a_start, a_end)
        starts = authors[graph.degrees[authors] > 0][:50]
        session = run_walks(graph, starts, 4, walk, PWRSSampler(16, 5))
        completed = session.lengths == 4
        assert completed.any()
        for q in np.nonzero(completed)[0]:
            path = session.path(q)
            observed = graph.vertex_labels[path].tolist()
            assert observed == labels


class TestServerModel:
    def test_from_latency_sample(self):
        latencies = np.array([1e-5, 1e-5, 2e-5, 2e-5])
        server = ServerModel.from_latency_sample("x", latencies, capacity_qps=1e5)
        assert server.mean_service_s == pytest.approx(1.5e-5)
        assert server.service_scv == pytest.approx((0.25e-10) / (1.5e-5) ** 2)

    def test_empty_sample(self):
        with pytest.raises(ConfigError):
            ServerModel.from_latency_sample("x", np.array([]), 1.0)

    def test_response_time_grows_with_load(self):
        server = ServerModel("x", mean_service_s=1e-5, service_scv=1.0, capacity_qps=1e5)
        times = [server.mean_response_s(f * 1e5) for f in (0.1, 0.5, 0.9, 0.99)]
        assert times == sorted(times)
        assert times[0] >= server.mean_service_s

    def test_saturation_is_infinite(self):
        server = ServerModel("x", 1e-5, 0.5, 1e5)
        assert server.mean_response_s(1e5) == float("inf")
        assert server.p99_response_s(2e5) == float("inf")

    def test_variance_hurts(self):
        calm = ServerModel("calm", 1e-5, 0.1, 1e5)
        jittery = ServerModel("jittery", 1e-5, 2.0, 1e5)
        load = 0.8 * 1e5
        assert jittery.mean_response_s(load) > calm.mean_response_s(load)

    def test_response_curve_rows(self):
        server = ServerModel("x", 1e-5, 0.5, 1e5)
        rows = response_curve(server, [0.2, 0.8])
        assert len(rows) == 2
        assert rows[1]["mean_response_s"] > rows[0]["mean_response_s"]
        with pytest.raises(ConfigError):
            response_curve(server, [1.0])

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            ServerModel("x", 0.0, 0.5, 1e5)
        with pytest.raises(ConfigError):
            ServerModel("x", 1e-5, -0.1, 1e5)
        with pytest.raises(ConfigError):
            ServerModel("x", 1e-5, 0.5, 1e5).mean_response_s(-1)
