"""Cross-cutting integration scenarios through the public API.

Each test exercises a realistic multi-module flow a downstream user would
run — generation, persistence, walking on several backends, analysis —
asserting the invariants that tie the subsystems together.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CPUSpec,
    LightRW,
    LightRWConfig,
    MetaPathWalk,
    Node2VecWalk,
    UniformWalk,
    compare_engines,
    load_dataset,
    make_queries,
    rmat_graph,
)
from repro.graph.io import load_csr_npz, save_csr_npz
from repro.graph.labels import assign_random_weights, assign_vertex_labels
from repro.graph.reorder import degree_sort_reorder
from repro.walks.stepper import PWRSSampler, run_walks


class TestPersistAndWalk:
    def test_saved_graph_walks_identically(self, tmp_path, labeled_graph):
        """Persistence round-trips preserve walk determinism exactly."""
        path = tmp_path / "graph.npz"
        save_csr_npz(labeled_graph, path)
        reloaded = load_csr_npz(path)
        starts = labeled_graph.nonzero_degree_vertices()[:24]
        original = run_walks(
            labeled_graph, starts, 8, Node2VecWalk(), PWRSSampler(16, 3)
        )
        replayed = run_walks(reloaded, starts, 8, Node2VecWalk(), PWRSSampler(16, 3))
        np.testing.assert_array_equal(original.paths, replayed.paths)


class TestAllAlgorithmsAllBackends:
    @pytest.mark.parametrize("algorithm", [
        UniformWalk(),
        MetaPathWalk([0, 1, 2]),
        Node2VecWalk(2.0, 0.5),
    ], ids=["uniform", "metapath", "node2vec"])
    def test_backends_agree_functionally(self, labeled_graph, algorithm):
        starts = make_queries(labeled_graph, n_queries=10, seed=4)
        config = LightRWConfig(n_instances=2, max_inflight=8)
        model = LightRW(labeled_graph, config=config, backend="fpga-model",
                        hardware_scale=64, seed=4)
        cycle = LightRW(labeled_graph, config=config, backend="fpga-cycle",
                        hardware_scale=64, seed=4)
        r_model = model.run(algorithm, 5, starts=starts)
        r_cycle = cycle.run(algorithm, 5, starts=starts)
        np.testing.assert_array_equal(r_model.lengths, r_cycle.lengths)
        for q in range(10):
            length = r_model.lengths[q]
            np.testing.assert_array_equal(
                r_model.paths[q, : length + 1], r_cycle.paths[q, : length + 1]
            )

    def test_cpu_backend_runs_everything(self, labeled_graph):
        engine = LightRW(labeled_graph, backend="cpu-baseline", hardware_scale=64)
        for algorithm in (UniformWalk(), MetaPathWalk([0, 1]), Node2VecWalk()):
            result = engine.run(algorithm, 4, max_sampled_queries=32)
            assert result.kernel_s > 0


class TestReorderedGraphEndToEnd:
    def test_walks_on_reordered_graph_translate_back(self, labeled_graph):
        """Degree reordering composes with the engine and translates back."""
        reordered = degree_sort_reorder(labeled_graph)
        starts = labeled_graph.nonzero_degree_vertices()[:16]
        engine = LightRW(reordered.graph, hardware_scale=64, seed=5)
        result = engine.run(
            UniformWalk(), 6, starts=reordered.translate_starts(starts)
        )
        translated = reordered.translate_paths_back(result.paths)
        # Every translated transition is an edge of the ORIGINAL graph.
        for q in range(16):
            path = translated[q][translated[q] >= 0]
            assert path[0] == starts[q]
            for u, v in zip(path[:-1], path[1:]):
                assert labeled_graph.has_edge(int(u), int(v))


class TestScaleConsistency:
    def test_speedup_stable_across_sample_sizes(self):
        """Query-sampled extrapolation doesn't change the verdict."""
        graph = load_dataset("livejournal", scale_divisor=1024, seed=7)
        small = compare_engines(
            graph, MetaPathWalk([0, 1, 2, 3]), 5, hardware_scale=1024,
            max_sampled_queries=256, seed=7,
        )
        large = compare_engines(
            graph, MetaPathWalk([0, 1, 2, 3]), 5, hardware_scale=1024,
            max_sampled_queries=2048, seed=7,
        )
        assert small.speedup == pytest.approx(large.speedup, rel=0.35)

    def test_scale_divisors_give_similar_speedups(self):
        """The scaled-platform rule keeps the comparison scale-invariant."""
        speedups = []
        for divisor in (512, 1024):
            graph = load_dataset("livejournal", scale_divisor=divisor, seed=7)
            report = compare_engines(
                graph, MetaPathWalk([0, 1, 2, 3]), 5, hardware_scale=divisor,
                max_sampled_queries=512, seed=7,
            )
            speedups.append(report.speedup)
        ratio = max(speedups) / min(speedups)
        assert ratio < 1.8, speedups


class TestGeneratedGraphPipeline:
    def test_rmat_to_walks_to_stats(self):
        """Generator -> labels -> weights -> walks -> models, end to end."""
        graph = rmat_graph(9, edge_factor=8, seed=11, deduplicate=True)
        graph = assign_vertex_labels(graph, n_labels=3, seed=12)
        graph = assign_random_weights(graph, seed=13)
        engine = LightRW(graph, hardware_scale=32, seed=11,
                         cpu_spec=CPUSpec().scaled(32))
        result = engine.run(MetaPathWalk([0, 1, 2]), 5)
        assert result.total_steps > 0
        breakdown = result.breakdown
        # Dead-end MetaPath steps still perform the row_index lookup, so
        # accesses can exceed the completed-step count.
        assert breakdown.cache_accesses >= result.total_steps
        assert 0 < breakdown.valid_ratio <= 1
        # The paths respect the schema: step t moves to label
        # schema[(t+1) % len], so path position i >= 1 has label
        # schema[i % len] (the start vertex is unconstrained).
        for q in range(min(20, result.paths.shape[0])):
            path = result.paths[q][result.paths[q] >= 0]
            for position, vertex in enumerate(path[1:], start=1):
                expected = [0, 1, 2][position % 3]
                assert graph.vertex_labels[vertex] == expected
