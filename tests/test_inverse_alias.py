"""Table-based samplers: inverse transform and alias method."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.sampling.alias import AliasTable
from repro.sampling.inverse_transform import InverseTransformTable


class TestInverseTransform:
    def test_boundaries(self):
        table = InverseTransformTable(np.array([1.0, 2.0, 3.0]))
        assert table.sample(0.0) == 0
        # CDF = [1, 3, 6]; u = 0.5 -> target 3.0 -> first entry > 3.0 is idx 2.
        assert table.sample(0.5) == 2
        assert table.sample(0.999) == 2

    def test_zero_weight_items_skipped(self):
        table = InverseTransformTable(np.array([0.0, 1.0, 0.0, 1.0]))
        draws = table.sample_many(np.linspace(0, 0.999, 100))
        assert set(draws.tolist()) <= {1, 3}

    def test_all_zero_returns_minus_one(self):
        table = InverseTransformTable(np.zeros(3))
        assert table.sample(0.5) == -1
        assert (table.sample_many(np.array([0.1, 0.9])) == -1).all()

    def test_empty(self):
        table = InverseTransformTable(np.array([]))
        assert len(table) == 0
        assert table.sample(0.5) == -1

    def test_memory_accounting(self):
        table = InverseTransformTable(np.ones(7))
        assert table.init_reads == 7
        assert table.init_writes == 7

    def test_uniform_out_of_range(self):
        table = InverseTransformTable(np.ones(2))
        with pytest.raises(ValueError):
            table.sample(1.0)
        with pytest.raises(ValueError):
            table.sample(-0.1)

    def test_negative_weights(self):
        with pytest.raises(ValueError):
            InverseTransformTable(np.array([1.0, -2.0]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            InverseTransformTable(np.ones((2, 2)))

    def test_sample_many_matches_scalar(self):
        weights = np.array([0.5, 3.0, 0.0, 1.5])
        table = InverseTransformTable(weights)
        uniforms = np.random.default_rng(1).random(500)
        vectorized = table.sample_many(uniforms)
        scalar = np.array([table.sample(u) for u in uniforms])
        np.testing.assert_array_equal(vectorized, scalar)

    def test_distribution(self):
        weights = np.array([1.0, 4.0, 5.0])
        table = InverseTransformTable(weights)
        draws = table.sample_many(np.random.default_rng(2).random(30_000))
        counts = np.bincount(draws, minlength=3)
        expected = weights / weights.sum() * draws.size
        __, p_value = stats.chisquare(counts, expected)
        assert p_value > 1e-4


class TestAlias:
    def test_distribution(self):
        weights = np.array([1.0, 2.0, 3.0, 6.0])
        table = AliasTable(weights)
        draws = table.sample_many(np.random.default_rng(3).random(40_000))
        counts = np.bincount(draws, minlength=4)
        expected = weights / weights.sum() * draws.size
        __, p_value = stats.chisquare(counts, expected)
        assert p_value > 1e-4

    def test_single_item(self):
        table = AliasTable(np.array([5.0]))
        assert table.sample(0.7) == 0

    def test_all_zero(self):
        table = AliasTable(np.zeros(4))
        assert table.sample(0.3) == -1

    def test_empty(self):
        assert AliasTable(np.array([])).sample(0.1) == -1

    def test_uniform_out_of_range(self):
        with pytest.raises(ValueError):
            AliasTable(np.ones(2)).sample(1.5)

    def test_negative_weights(self):
        with pytest.raises(ValueError):
            AliasTable(np.array([-0.5, 1.0]))

    def test_sample_many_matches_scalar(self):
        weights = np.array([2.0, 0.0, 1.0, 7.0])
        table = AliasTable(weights)
        uniforms = np.random.default_rng(4).random(300)
        vectorized = table.sample_many(uniforms)
        scalar = np.array([table.sample(u) for u in uniforms])
        np.testing.assert_array_equal(vectorized, scalar)

    @given(
        weights=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=30),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_returns_zero_weight_item_in_bulk(self, weights, seed):
        """Zero-weight items have vanishing selection probability."""
        weights = np.asarray(weights)
        table = AliasTable(weights)
        if weights.sum() <= 0:
            return
        draws = table.sample_many(np.random.default_rng(seed).random(200))
        picked_weights = weights[draws]
        # Exact-zero picks can only come from float round-off in the table
        # construction; they must be extremely rare.
        assert (picked_weights == 0).mean() < 0.05

    def test_table_probability_mass_conserved(self):
        weights = np.array([3.0, 1.0, 2.0, 2.0])
        table = AliasTable(weights)
        # Reconstruct each item's total probability from the table.
        prob = np.zeros(4)
        for slot in range(4):
            prob[slot] += table.prob[slot] / 4
            prob[table.alias[slot]] += (1 - table.prob[slot]) / 4
        np.testing.assert_allclose(prob, weights / weights.sum(), atol=1e-9)
