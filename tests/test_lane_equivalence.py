"""The vectorized lane math must equal ThundeRingRNG bit-for-bit.

This identity is the foundation of the cross-backend walk equality: the
batch sampler computes lane draws with broadcast arithmetic
(`_query_lane_keys` / `_lane_uint32`), the scalar sampler instantiates
real :class:`ThundeRingRNG` objects — here we pin them to each other
directly, not just through end-to-end walks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.rng import ThundeRingRNG, derive_seed
from repro.walks.stepper import _lane_uint32, _query_lane_keys


@pytest.mark.parametrize("seed", [0, 7, 123456789])
@pytest.mark.parametrize("k", [1, 4, 16])
def test_lane_keys_match_rng_construction(seed, k):
    query_ids = np.array([0, 1, 5, 1000, 2**31], dtype=np.int64)
    keys = _query_lane_keys(seed, query_ids, k)
    for row, qid in enumerate(query_ids.tolist()):
        rng = ThundeRingRNG(k, derive_seed(seed, qid))
        np.testing.assert_array_equal(keys[row], rng._lane_keys)


@pytest.mark.parametrize("seed", [3, 99])
def test_lane_draws_match_rng_stream(seed):
    k = 8
    qid = 42
    keys = _query_lane_keys(seed, np.array([qid]), k)[0]
    rng = ThundeRingRNG(k, derive_seed(seed, qid))
    reference = rng.uint32_block(10)
    for cycle in range(10):
        counters = np.full(k, cycle, dtype=np.uint64)
        draws = _lane_uint32(counters, keys)
        np.testing.assert_array_equal(draws.astype(np.uint32), reference[cycle])


def test_distinct_queries_distinct_lanes():
    keys = _query_lane_keys(5, np.arange(1000), 4)
    assert np.unique(keys.reshape(-1)).size == keys.size


def test_counter_is_the_only_state():
    """Draw order does not matter: (counter, key) fully determines output."""
    keys = _query_lane_keys(1, np.array([0]), 2)[0]
    forward = [_lane_uint32(np.array([c, c], dtype=np.uint64), keys) for c in range(5)]
    backward = [_lane_uint32(np.array([c, c], dtype=np.uint64), keys) for c in reversed(range(5))]
    for c in range(5):
        np.testing.assert_array_equal(forward[c], backward[4 - c])
