"""The unified telemetry layer: registry, spans, manifests, exporters."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.core.api import LightRW
from repro.fpga.cache import DegreeAwareCache, FIFOCache
from repro.obs import (
    NULL_OBSERVER,
    NULL_REGISTRY,
    MetricsRegistry,
    Observer,
    RunManifest,
    append_jsonl,
    chrome_trace,
    config_fingerprint,
    current_observer,
    prometheus_text,
    read_jsonl,
    run_record,
    series_key,
    span,
    summarize_records,
    use_observer,
)
from repro.obs.export import prometheus_from_snapshot
from repro.walks.uniform import UniformWalk


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.counter("dac.hits", shard=0).inc(3)
        reg.counter("dac.hits", shard=0).inc(2)
        reg.counter("dac.hits", shard=1).inc(10)
        assert reg.get("dac.hits", shard=0) == 5
        assert reg.get("dac.hits", shard=1) == 10
        assert reg.total("dac.hits") == 15

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("n").inc(-1)

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("dac.hit_ratio", backend="fpga-model").set(0.2)
        reg.gauge("dac.hit_ratio", backend="fpga-model").set(0.8)
        assert reg.get("dac.hit_ratio", backend="fpga-model") == 0.8

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 10.0))
        hist.observe_many([0.5, 5.0, 50.0])
        snap = reg.snapshot()[series_key("lat")]
        assert snap["kind"] == "histogram"
        assert snap["counts"] == [1, 1, 1]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(55.5)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_series_key_sorts_labels(self):
        assert series_key("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        assert series_key("m") == "m"

    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c", backend="fpga-model").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.01)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["c{backend=fpga-model}"] == 1
        assert snap["g"] == 1.5
        assert len(reg) == 3

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("x", shard=1).inc(5)
        NULL_REGISTRY.gauge("y").set(2.0)
        NULL_REGISTRY.histogram("z").observe(1.0)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == {}


class TestSpans:
    def test_nesting_records_parents(self):
        obs = Observer()
        with obs.span("run", backend="fpga-model"):
            with obs.span("plan"):
                pass
            with obs.span("shard", shard=0):
                pass
        records = obs.spans.finished()
        assert [r.name for r in records] == ["plan", "shard", "run"]
        run = obs.spans.find("run")[0]
        assert run.parent_id is None
        assert {c.name for c in obs.spans.children(run)} == {"plan", "shard"}
        assert run.attrs == {"backend": "fpga-model"}
        assert all(r.duration_s >= 0 for r in records)
        assert run.end_s >= run.start_s

    def test_module_level_span_uses_ambient_observer(self):
        obs = Observer()
        with use_observer(obs):
            with span("work", k=1):
                pass
        assert current_observer() is NULL_OBSERVER
        assert obs.spans.find("work")[0].attrs == {"k": 1}

    def test_null_observer_span_is_noop(self):
        with span("ignored"):
            pass
        assert not NULL_OBSERVER.enabled
        assert len(NULL_OBSERVER.spans) == 0

    def test_threads_get_independent_stacks(self):
        obs = Observer()

        def worker(i: int) -> None:
            with use_observer(obs), obs.span("thread-root", i=i):
                with obs.span("inner", i=i):
                    pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        with obs.span("main-root"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        roots = obs.spans.find("thread-root")
        assert len(roots) == 4
        # Worker roots must not be parented under the main thread's span.
        assert all(r.parent_id is None for r in roots)
        for inner in obs.spans.find("inner"):
            parent = [r for r in roots if r.span_id == inner.parent_id]
            assert parent and parent[0].attrs == inner.attrs


class TestManifest:
    def test_fingerprint_stable_and_sensitive(self):
        from repro.fpga.config import LightRWConfig

        base = LightRWConfig()
        assert config_fingerprint(base) == config_fingerprint(LightRWConfig())
        assert config_fingerprint(base) != config_fingerprint(
            LightRWConfig(n_instances=2)
        )
        assert len(config_fingerprint(base)) == 12

    def test_attached_to_every_result(self, labeled_graph):
        engine = LightRW(labeled_graph, hardware_scale=64, seed=3)
        result = engine.run(UniformWalk(), 4, max_sampled_queries=16)
        manifest = result.manifest
        assert isinstance(manifest, RunManifest)
        assert manifest.backend == "fpga-model"
        assert manifest.algorithm == "uniform"
        assert manifest.n_steps == 4
        assert manifest.seed == 3
        assert manifest.graph == "labeled"
        assert manifest.package_version
        assert manifest.config_hash
        payload = json.dumps(manifest.as_dict())
        assert "fpga-model" in payload


class TestBackendMetrics:
    """One public-API run per backend family yields the paper's counters."""

    def run_with_observer(self, graph, backend, **engine_kwargs):
        obs = Observer()
        engine = LightRW(
            graph, backend=backend, hardware_scale=64, seed=2, **engine_kwargs
        )
        result = engine.run(
            UniformWalk(), 4, max_sampled_queries=16, observer=obs
        )
        return result, obs.metrics

    def test_fpga_model_series(self, labeled_graph):
        __, metrics = self.run_with_observer(labeled_graph, "fpga-model")
        assert 0 <= metrics.get("dac.hit_ratio", backend="fpga-model") <= 1
        assert 0 < metrics.get("dyb.valid_ratio", backend="fpga-model") <= 1
        assert metrics.get("dram.bandwidth_gbps", backend="fpga-model") > 0
        assert metrics.total("dram.bytes_read") > 0
        assert metrics.total("run.total_steps") > 0
        assert metrics.get("run.kernel_seconds", backend="fpga-model") > 0

    def test_fpga_cycle_series(self, labeled_graph):
        __, metrics = self.run_with_observer(labeled_graph, "fpga-cycle")
        assert 0 <= metrics.get("dac.hit_ratio", backend="fpga-cycle") <= 1
        assert 0 < metrics.get("dyb.valid_ratio", backend="fpga-cycle") <= 1
        assert metrics.total("dac.accesses") == metrics.total(
            "dac.hits"
        ) + metrics.total("dac.misses")
        busy = [
            s
            for s in metrics.series()
            if s.name == "pipeline.busy_fraction" and "module" in s.labels
        ]
        assert {s.labels["module"] for s in busy} >= {
            "controller",
            "wrs-sampler",
        }

    def test_cpu_baseline_series(self, labeled_graph):
        __, metrics = self.run_with_observer(labeled_graph, "cpu-baseline")
        assert 0 <= metrics.get("cpu.llc_miss_ratio", backend="cpu-baseline") <= 1
        bound = metrics.get("cpu.memory_bound", backend="cpu-baseline")
        retiring = metrics.get("cpu.retiring", backend="cpu-baseline")
        assert bound is not None and retiring is not None
        assert metrics.total("time.component_seconds") > 0

    def test_sharded_runs_label_per_shard(self, labeled_graph):
        obs = Observer()
        engine = LightRW(labeled_graph, hardware_scale=64, seed=2)
        engine.run(
            UniformWalk(), 4, max_sampled_queries=32, shards=2, observer=obs
        )
        shards = {
            s.labels.get("shard")
            for s in obs.metrics.series()
            if s.name == "dram.bytes_read"
        }
        assert shards == {0, 1}
        # Per-shard spans nest under the run span.
        run = obs.spans.find("run")[0]
        shard_spans = obs.spans.find("shard")
        assert len(shard_spans) == 2
        assert {s.parent_id for s in shard_spans} <= {
            run.span_id,
            obs.spans.find("merge")[0].parent_id,
        }

    def test_off_by_default_records_nothing(self, labeled_graph):
        engine = LightRW(labeled_graph, hardware_scale=64, seed=2)
        result = engine.run(UniformWalk(), 4, max_sampled_queries=16)
        # No observer anywhere: ambient is the shared null sink.
        assert current_observer() is NULL_OBSERVER
        assert len(NULL_OBSERVER.metrics) == 0
        assert result.manifest is not None  # provenance is unconditional


class TestCachePublish:
    def test_mixin_feeds_registry(self):
        reg = MetricsRegistry()
        cache = DegreeAwareCache(4)
        cache.access(1, 10)
        cache.access(1, 10)
        cache.access(5, 3)
        cache.publish(reg, backend="ablation")
        labels = {"backend": "ablation", "policy": "degree-aware"}
        assert reg.get("dac.accesses", **labels) == 3
        assert reg.get("dac.hits", **labels) == 1
        assert reg.get("dac.misses", **labels) == 2
        assert reg.get("dac.hit_ratio", **labels) == pytest.approx(1 / 3)

    def test_policies_share_accounting(self):
        reg = MetricsRegistry()
        fifo = FIFOCache(4, ways=2)
        for v in (1, 2, 1, 3):
            fifo.access(v)
        assert fifo.hits + fifo.misses == fifo.accesses == 4
        assert fifo.hit_ratio + fifo.miss_ratio == pytest.approx(1.0)
        fifo.publish(reg)
        assert reg.get("dac.accesses", policy="fifo") == 4


class TestExporters:
    @pytest.fixture
    def observed_run(self, labeled_graph):
        obs = Observer()
        engine = LightRW(labeled_graph, hardware_scale=64, seed=2)
        result = engine.run(
            UniformWalk(), 4, max_sampled_queries=16, observer=obs
        )
        return result, obs

    def test_jsonl_round_trip(self, observed_run, tmp_path):
        result, obs = observed_run
        record = run_record(result, obs)
        path = append_jsonl(tmp_path / "runs.jsonl", record)
        append_jsonl(path, record)
        records = read_jsonl(path)
        assert len(records) == 2
        loaded = records[0]
        assert loaded["manifest"]["backend"] == "fpga-model"
        assert "dac.hit_ratio{backend=fpga-model}" in loaded["metrics"]
        assert any(s["name"] == "run" for s in loaded["spans"])

    def test_summarize_is_readable(self, observed_run):
        result, obs = observed_run
        text = summarize_records([run_record(result, obs)])
        assert "fpga-model" in text
        assert "uniform" in text
        assert "hit_ratio" in text

    def test_prometheus_text(self, observed_run):
        __, obs = observed_run
        text = prometheus_text(obs.metrics)
        assert "# TYPE dac_hit_ratio gauge" in text
        assert 'dac_hit_ratio{backend="fpga-model"}' in text
        assert "# TYPE run_total_steps counter" in text

    def test_prometheus_from_snapshot_matches_names(self, observed_run):
        __, obs = observed_run
        text = prometheus_from_snapshot(obs.metrics.snapshot())
        assert 'dac_hit_ratio{backend="fpga-model"}' in text

    def test_chrome_trace_from_spans(self, observed_run):
        __, obs = observed_run
        trace = chrome_trace(spans=obs.spans.finished())
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert "run" in names and "plan" in names
        ts = [e["ts"] for e in trace["traceEvents"] if "ts" in e]
        assert ts == sorted(ts)


class TestObservabilityCLI:
    @pytest.fixture
    def bundle(self, tmp_path):
        path = tmp_path / "g.npz"
        assert (
            main(["generate", "rmat", str(path), "--vertices-log2", "7"]) == 0
        )
        return path

    def test_walk_emits_metrics_and_trace(self, bundle, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "t.json"
        assert (
            main(
                [
                    "walk",
                    str(bundle),
                    "--algorithm",
                    "uniform",
                    "--length",
                    "4",
                    "--queries",
                    "16",
                    "--backend",
                    "fpga-cycle",
                    "--metrics",
                    str(metrics),
                    "--trace-out",
                    str(trace),
                ]
            )
            == 0
        )
        capsys.readouterr()
        records = read_jsonl(metrics)
        assert len(records) == 1
        assert records[0]["manifest"]["backend"] == "fpga-cycle"
        assert any(k.startswith("dac.hit_ratio") for k in records[0]["metrics"])
        payload = json.loads(trace.read_text())
        assert any(e["ph"] == "i" for e in payload["traceEvents"])

        assert main(["obs", "summarize", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "fpga-cycle" in out
        assert (
            main(["obs", "summarize", str(metrics), "--prometheus"]) == 0
        )
        assert "dac_hit_ratio" in capsys.readouterr().out

    def test_summarize_missing_file_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "summarize", str(tmp_path / "absent.jsonl")])


class TestCrossProcessMerge:
    """export_state/merge_state: the scheduler's worker-to-parent bridge."""

    def test_counter_gauge_histogram_round_trip(self):
        src = MetricsRegistry()
        src.counter("c", shard=1).inc(3)
        src.gauge("g").set(2.5)
        src.histogram("h", buckets=(1.0, 10.0)).observe_many([0.5, 5.0, 50.0])
        dst = MetricsRegistry()
        dst.counter("c", shard=1).inc(1)
        dst.merge_state(src.export_state())
        assert dst.get("c", shard=1) == 4  # counters add
        assert dst.get("g") == 2.5  # gauges overwrite
        merged = dst.snapshot()[series_key("h")]
        assert merged["counts"] == [1, 1, 1]
        assert merged["sum"] == pytest.approx(55.5)

    def test_histogram_merges_into_existing_series(self):
        src = MetricsRegistry()
        src.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        dst = MetricsRegistry()
        dst.histogram("h", buckets=(1.0, 10.0)).observe(5.0)
        dst.merge_state(src.export_state())
        merged = dst.snapshot()[series_key("h")]
        assert merged["counts"] == [1, 1, 0]
        assert merged["count"] == 2

    def test_histogram_bucket_mismatch_rejected(self):
        src = MetricsRegistry()
        src.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        dst = MetricsRegistry()
        dst.histogram("h", buckets=(2.0, 20.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket"):
            dst.merge_state(src.export_state())

    def test_unknown_kind_rejected(self):
        dst = MetricsRegistry()
        with pytest.raises(ValueError, match="kind"):
            dst.merge_state(
                [{"kind": "meter", "name": "x", "labels": {}, "value": 1.0}]
            )

    def test_export_state_is_picklable_and_empty_for_fresh_registry(self):
        import pickle

        assert MetricsRegistry().export_state() == []
        src = MetricsRegistry()
        src.counter("c").inc()
        assert pickle.loads(pickle.dumps(src.export_state())) == src.export_state()


class TestSpanAdoption:
    def test_adopt_remaps_ids_and_reparents(self):
        worker = Observer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        worker_records = worker.spans.finished()

        parent = Observer()
        with parent.span("shard") as shard_span:
            pass
        parent.spans.adopt(
            worker_records, parent_id=shard_span.span_id, offset_s=10.0
        )
        finished = parent.spans.finished()
        outer = next(r for r in finished if r.name == "outer")
        inner = next(r for r in finished if r.name == "inner")
        # Re-parented under the shard span, hierarchy preserved beneath it.
        assert outer.parent_id == shard_span.span_id
        assert inner.parent_id == outer.span_id
        # Fresh ids: no collision with anything already in the parent.
        ids = [r.span_id for r in finished]
        assert len(ids) == len(set(ids))
        # Timestamps shifted into the parent's clock domain.
        src_outer = next(r for r in worker_records if r.name == "outer")
        assert outer.start_s == pytest.approx(src_outer.start_s + 10.0)
        assert outer.duration_s == src_outer.duration_s

    def test_adopt_without_parent_keeps_roots(self):
        worker = Observer()
        with worker.span("root"):
            pass
        parent = Observer()
        parent.spans.adopt(worker.spans.finished())
        (root,) = parent.spans.finished()
        assert root.name == "root"
        assert root.parent_id is None
