"""Parallel WRS (Algorithm 4.1): exact batch equivalence and correctness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.errors import ConfigError
from repro.sampling.parallel_wrs import ParallelWRS, integer_accept, parallel_wrs_sample
from repro.sampling.rng import ThundeRingRNG


class TestIntegerAccept:
    """Equation 8's integer comparison is exactly p > r."""

    @given(
        w=st.integers(0, 2**20),
        prefix_extra=st.integers(0, 2**28),
        r_star=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_exact_rational_comparison(self, w, prefix_extra, r_star):
        prefix = w + prefix_extra  # inclusive prefix always >= own weight
        if prefix == 0:
            return
        got = integer_accept(
            np.array([w], dtype=np.uint64),
            np.array([prefix], dtype=np.uint64),
            np.array([r_star], dtype=np.uint64),
        )[0]
        # Eq. 6: accept iff w / prefix > r* / (2^32 - 1), in exact integers.
        expected = w * (2**32 - 1) > r_star * prefix
        assert bool(got) == expected

    def test_zero_weight_never_accepted(self):
        got = integer_accept(
            np.zeros(4, dtype=np.uint64),
            np.arange(1, 5, dtype=np.uint64),
            np.zeros(4, dtype=np.uint64),
        )
        assert not got.any()

    def test_large_prefix_fallback_path(self):
        """Prefixes beyond 32 bits use the arbitrary-precision branch."""
        w = np.array([1 << 20, 1], dtype=object)
        prefix = np.array([1 << 40, (1 << 40) + 1], dtype=object)
        r = np.array([0, 2**32 - 1], dtype=object)
        got = integer_accept(w, prefix, r)
        assert got[0]  # r = 0 accepts any positive weight
        assert not got[1]

    def test_fallback_agrees_with_uint64_path(self):
        rng = np.random.default_rng(4)
        w = rng.integers(0, 2**16, size=64).astype(np.uint64)
        prefix = (np.cumsum(w) + 1).astype(np.uint64)
        r = rng.integers(0, 2**32, size=64).astype(np.uint64)
        fast = integer_accept(w, prefix, r)
        slow = integer_accept(
            w.astype(object), prefix.astype(object) + (1 << 33) - (1 << 33), r.astype(object)
        )
        # Force the object path by inflating one prefix beyond 2^32 at the
        # end (it only affects its own lane).
        prefix_big = prefix.astype(object)
        prefix_big[-1] = int(prefix_big[-1]) + (1 << 33)
        mixed = integer_accept(w.astype(object), prefix_big, r.astype(object))
        np.testing.assert_array_equal(fast[:-1], mixed[:-1])
        np.testing.assert_array_equal(fast, slow)


class TestParallelWRSStateful:
    def test_requires_positive_k(self):
        with pytest.raises(ConfigError):
            ParallelWRS(0, ThundeRingRNG(1))

    def test_requires_enough_lanes(self):
        with pytest.raises(ConfigError):
            ParallelWRS(8, ThundeRingRNG(4))

    def test_oversized_batch_rejected(self):
        sampler = ParallelWRS(2, ThundeRingRNG(2))
        with pytest.raises(ValueError):
            sampler.consume(np.arange(3), np.ones(3, dtype=np.uint64))

    def test_empty_stream_yields_none(self):
        sampler = ParallelWRS(4, ThundeRingRNG(4))
        assert sampler.result() is None

    def test_zero_weights_yield_none(self):
        sampler = ParallelWRS(4, ThundeRingRNG(4, seed=1))
        sampler.consume(np.arange(4), np.zeros(4, dtype=np.uint64))
        assert sampler.result() is None

    def test_batchwise_equals_oneshot(self):
        """Feeding batches reproduces the vectorized one-shot exactly."""
        rng_data = np.random.default_rng(9)
        for trial in range(50):
            n = int(rng_data.integers(1, 70))
            k = int(rng_data.choice([1, 2, 4, 8, 16]))
            items = rng_data.integers(0, 1000, size=n)
            weights = rng_data.integers(0, 500, size=n).astype(np.uint64)
            one_shot, cycles = parallel_wrs_sample(
                items, weights, k, ThundeRingRNG(k, seed=trial)
            )
            sampler = ParallelWRS(k, ThundeRingRNG(k, seed=trial))
            for start in range(0, n, k):
                chunk = slice(start, min(start + k, n))
                sampler.consume(items[chunk], weights[chunk])
            stateful = sampler.result()
            assert cycles == -(-n // k)
            if one_shot == -1:
                assert stateful is None
            else:
                assert stateful == one_shot

    def test_reset_clears_reservoir_not_rng(self):
        rng = ThundeRingRNG(4, seed=3)
        sampler = ParallelWRS(4, rng)
        sampler.consume(np.arange(4), np.ones(4, dtype=np.uint64))
        counter_before = rng.counter
        sampler.reset()
        assert sampler.result() is None
        assert rng.counter == counter_before


class TestDistribution:
    @pytest.mark.parametrize("k", [1, 4, 16])
    def test_selection_probability_proportional_to_weight(self, k):
        weights = np.array([1, 3, 6, 10, 30], dtype=np.uint64)
        items = np.arange(weights.size)
        rng = ThundeRingRNG(k, seed=101)
        counts = np.zeros(weights.size)
        n_trials = 30_000
        for _ in range(n_trials):
            picked, __ = parallel_wrs_sample(items, weights, k, rng)
            counts[picked] += 1
        expected = weights.astype(float) / weights.sum() * n_trials
        __, p_value = stats.chisquare(counts, expected)
        assert p_value > 1e-4, f"k={k}: counts {counts} vs expected {expected}"

    def test_k_invariance(self):
        """The sampling distribution is identical for every k (Section 4.1)."""
        weights = np.array([2, 5, 1, 8], dtype=np.uint64)
        items = np.arange(4)
        distributions = []
        for k in (1, 2, 8):
            rng = ThundeRingRNG(k, seed=55)
            counts = np.zeros(4)
            for _ in range(20_000):
                picked, __ = parallel_wrs_sample(items, weights, k, rng)
                counts[picked] += 1
            distributions.append(counts)
        # Homogeneity test across k values.
        table = np.stack(distributions)
        __, p_value, *_ = stats.chi2_contingency(table)
        assert p_value > 1e-4
