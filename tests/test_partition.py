"""Graph partitioning and its effect on the distributed model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fpga.distributed import DistributedLightRW
from repro.fpga.platforms import u250_config
from repro.graph.generators import chung_lu_graph, cycle_graph
from repro.graph.partition import (
    greedy_grow_partition,
    hash_partition,
    partition_quality,
    range_partition,
)
from repro.walks.stepper import PWRSSampler, run_walks
from repro.walks.uniform import UniformWalk


@pytest.fixture(scope="module")
def community_graph():
    return chung_lu_graph(512, avg_degree=8.0, seed=3, directed=False)


class TestPartitioners:
    @pytest.mark.parametrize("partitioner", [
        hash_partition, range_partition,
        lambda g, p: greedy_grow_partition(g, p, seed=1),
    ], ids=["hash", "range", "greedy"])
    def test_complete_assignment(self, community_graph, partitioner):
        assignment = partitioner(community_graph, 4)
        assert assignment.shape == (community_graph.num_vertices,)
        assert assignment.min() >= 0
        assert assignment.max() <= 3

    def test_hash_balance_is_perfect(self, community_graph):
        quality = partition_quality(community_graph, hash_partition(community_graph, 4))
        assert quality.balance < 1.6  # edge balance under hashing is decent

    def test_range_partition_edge_balanced(self, community_graph):
        quality = partition_quality(
            community_graph, range_partition(community_graph, 4)
        )
        assert quality.balance < 1.3

    def test_greedy_cuts_fewer_edges_than_hash(self, community_graph):
        hash_q = partition_quality(community_graph, hash_partition(community_graph, 4))
        greedy_q = partition_quality(
            community_graph, greedy_grow_partition(community_graph, 4, seed=2)
        )
        assert greedy_q.edge_cut_fraction < hash_q.edge_cut_fraction

    def test_cycle_range_partition_cut(self):
        """A cycle split into contiguous ranges cuts exactly n_parts edges."""
        graph = cycle_graph(64)
        quality = partition_quality(graph, range_partition(graph, 4))
        assert quality.edge_cut_fraction == pytest.approx(4 / 64)

    def test_invalid_inputs(self, community_graph):
        with pytest.raises(ConfigError):
            hash_partition(community_graph, 0)
        with pytest.raises(ConfigError):
            partition_quality(community_graph, np.zeros(3, dtype=np.int32))


class TestDistributedWithPartitioners:
    def test_better_partition_less_migration(self, community_graph):
        starts = community_graph.nonzero_degree_vertices()[:64]
        session = run_walks(
            community_graph, starts, 8, UniformWalk(), PWRSSampler(16, 4)
        )
        config = u250_config().scaled(64)
        hashed = DistributedLightRW(config, UniformWalk(), 4).evaluate(session)
        greedy = DistributedLightRW(
            config, UniformWalk(), 4,
            assignment=greedy_grow_partition(community_graph, 4, seed=2),
        ).evaluate(session)
        assert greedy.migration_fraction < hashed.migration_fraction
        assert greedy.network_s < hashed.network_s

    def test_assignment_validated(self, community_graph):
        with pytest.raises(ConfigError):
            DistributedLightRW(
                u250_config(), UniformWalk(), 2,
                assignment=np.full(community_graph.num_vertices, 5),
            )
