"""Performance regression gate: comparisons, sequencing, CLI round trips."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import read_json_artifact, write_json_artifact
from repro.bench.perfgate import (
    GATED_METRICS,
    _next_sequence,
    compare_runs,
    default_workloads,
)
from repro.bench.perfgate import main as perfgate_main
from repro.bench.runner import main as bench_main

#: Shrunk matrix parameters so end-to-end runs stay sub-second.
MICRO = [
    "--rmat-scale", "8", "--rmat-scale-run", "8",
    "--queries", "16", "--length", "4", "--events", "2000",
]


class TestCompareRuns:
    def test_self_comparison_never_regresses(self):
        current = {"w": {"steps_per_s": 100.0, "wall_s": 1.0}}
        compared, regressions = compare_runs(current, current, 0.25)
        assert compared == 1  # wall_s is not a gated metric
        assert regressions == []

    def test_regression_detected_beyond_tolerance(self):
        baseline = {"w": {"speedup": 4.0}}
        current = {"w": {"speedup": 2.9}}
        compared, regressions = compare_runs(current, baseline, 0.25)
        assert compared == 1
        (entry,) = regressions
        assert entry["workload"] == "w"
        assert entry["metric"] == "speedup"
        assert entry["floor"] == pytest.approx(3.0)

    def test_within_tolerance_passes(self):
        baseline = {"w": {"speedup": 4.0}}
        current = {"w": {"speedup": 3.1}}
        _, regressions = compare_runs(current, baseline, 0.25)
        assert regressions == []

    def test_faster_is_never_a_regression(self):
        baseline = {"w": {name: 1.0 for name in GATED_METRICS}}
        current = {"w": {name: 50.0 for name in GATED_METRICS}}
        compared, regressions = compare_runs(current, baseline, 0.0)
        assert compared == len(GATED_METRICS)
        assert regressions == []

    def test_only_shared_pairs_gate(self):
        """--quick runs gate against the subset a full baseline shares."""
        baseline = {"a": {"steps_per_s": 10.0}, "b": {"cycles_per_s": 5.0}}
        current = {"a": {"steps_per_s": 10.0}, "c": {"cycles_per_s": 0.001}}
        compared, regressions = compare_runs(current, baseline, 0.25)
        assert compared == 1
        assert regressions == []


class TestWorkloadMatrix:
    def test_keys_pinned_and_unique(self):
        workloads = default_workloads()
        keys = [w.key for w in workloads]
        assert len(keys) == len(set(keys))
        # backend x algorithm x mode matrix + cycle + 2 cache sims + sim-tick
        assert len(workloads) == 16
        assert "run:fpga-model:uniform:process" in keys
        assert "run:fpga-cycle:uniform:sequential" in keys
        assert "cache-sim-lru" in keys and "cache-sim-fifo" in keys

    def test_quick_subset_is_a_proper_subset(self):
        workloads = default_workloads()
        quick = [w for w in workloads if w.quick]
        assert 0 < len(quick) < len(workloads)
        # The acceptance-critical cache ablation is always in the subset.
        assert any(w.key == "cache-sim-lru" for w in quick)

    def test_next_sequence_numbers_past_existing(self, tmp_path):
        assert _next_sequence(tmp_path) == 1
        (tmp_path / "BENCH_perf_1.json").write_text("{}")
        (tmp_path / "BENCH_perf_7.json").write_text("{}")
        (tmp_path / "BENCH_perf_baseline.json").write_text("{}")  # not a number
        assert _next_sequence(tmp_path) == 8


class TestCLI:
    def test_write_then_gate_round_trip(self, tmp_path):
        base_args = MICRO + [
            "--out-dir", str(tmp_path), "--repeat", "1",
            "--workload", "sim-tick",
        ]
        assert perfgate_main(base_args + ["--write-baseline"]) == 0
        baseline_path = tmp_path / "BENCH_perf_baseline.json"
        assert baseline_path.is_file()
        rc = perfgate_main(
            base_args + ["--baseline", str(baseline_path), "--tolerance", "0.9"]
        )
        assert rc == 0
        saved = read_json_artifact(tmp_path / "BENCH_perf_1.json", kind="perf-gate")
        assert saved["metrics"]["perfgate.regressions"] == 0
        assert saved["metrics"]["perfgate.comparisons"] >= 1
        assert saved["workloads"]["sim-tick"]["cycles_per_s"] > 0

    def test_inflated_baseline_fails_the_gate(self, tmp_path):
        base_args = MICRO + [
            "--out-dir", str(tmp_path), "--repeat", "1",
            "--workload", "sim-tick",
        ]
        assert perfgate_main(base_args + ["--write-baseline"]) == 0
        baseline_path = tmp_path / "BENCH_perf_baseline.json"
        doctored = read_json_artifact(baseline_path, kind="perf-gate")
        doctored["workloads"]["sim-tick"]["cycles_per_s"] *= 100.0
        write_json_artifact(baseline_path, doctored, kind="perf-gate")
        rc = perfgate_main(base_args + ["--baseline", str(baseline_path)])
        assert rc == 1
        report = read_json_artifact(tmp_path / "BENCH_perf_1.json", kind="perf-gate")
        assert report["metrics"]["perfgate.regressions"] >= 1
        assert report["regressions"][0]["workload"] == "sim-tick"

    def test_plain_json_baseline_supported(self, tmp_path):
        baseline_path = tmp_path / "base.json"
        baseline_path.write_text(
            json.dumps({"workloads": {"sim-tick": {"cycles_per_s": 1.0}}})
        )
        rc = perfgate_main(
            MICRO + [
                "--out-dir", str(tmp_path), "--repeat", "1",
                "--workload", "sim-tick", "--baseline", str(baseline_path),
            ]
        )
        assert rc == 0

    def test_missing_baseline_is_a_config_error(self, tmp_path):
        rc = perfgate_main(
            MICRO + [
                "--out-dir", str(tmp_path), "--repeat", "1",
                "--workload", "sim-tick",
                "--baseline", str(tmp_path / "absent.json"),
            ]
        )
        assert rc == 2

    def test_bad_flags_rejected(self, tmp_path):
        assert perfgate_main(["--tolerance", "1.5"]) == 2
        assert perfgate_main(["--repeat", "0"]) == 2
        assert perfgate_main(["--workload", "no-such-key"]) == 2

    def test_bench_runner_dispatches_subcommand(self):
        """`lightrw-bench perfgate ...` reaches the perfgate parser."""
        assert bench_main(["perfgate", "--workload", "no-such-key"]) == 2
