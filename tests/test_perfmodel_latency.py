"""Latency semantics of the analytic FPGA model (Figure 15's machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel
from repro.walks.node2vec import Node2VecWalk
from repro.walks.stepper import PWRSSampler, run_walks
from repro.walks.uniform import UniformWalk


@pytest.fixture
def session(labeled_graph):
    starts = labeled_graph.nonzero_degree_vertices()[:48]
    return run_walks(labeled_graph, starts, 10, UniformWalk(), PWRSSampler(16, 8))


class TestLatencySemantics:
    def test_longer_walks_higher_latency(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:32]
        model = FPGAPerfModel(LightRWConfig(), UniformWalk())
        short = model.evaluate(
            run_walks(labeled_graph, starts, 3, UniformWalk(), PWRSSampler(16, 1))
        ).query_latency_seconds()
        long = model.evaluate(
            run_walks(labeled_graph, starts, 12, UniformWalk(), PWRSSampler(16, 1))
        ).query_latency_seconds()
        assert np.median(long) > np.median(short)

    def test_contention_grows_with_inflight(self, session):
        relaxed = FPGAPerfModel(
            LightRWConfig(max_inflight=1), UniformWalk()
        ).evaluate(session).query_latency_seconds()
        contended = FPGAPerfModel(
            LightRWConfig(max_inflight=64), UniformWalk()
        ).evaluate(session).query_latency_seconds()
        assert np.median(contended) >= np.median(relaxed)

    def test_dram_latency_contributes(self, session):
        from repro.fpga.dram import DRAMTimings

        fast = FPGAPerfModel(
            LightRWConfig(dram=DRAMTimings(latency_cycles=10)), UniformWalk()
        ).evaluate(session).query_latency_seconds()
        slow = FPGAPerfModel(
            LightRWConfig(dram=DRAMTimings(latency_cycles=200)), UniformWalk()
        ).evaluate(session).query_latency_seconds()
        assert np.median(slow) > np.median(fast)

    def test_second_order_latency_higher(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:32]
        uniform = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(
            run_walks(labeled_graph, starts, 8, UniformWalk(), PWRSSampler(16, 2))
        )
        n2v = FPGAPerfModel(
            LightRWConfig(prev_buffer_edges=0), Node2VecWalk()
        ).evaluate(
            run_walks(labeled_graph, starts, 8, Node2VecWalk(), PWRSSampler(16, 2))
        )
        per_step_uniform = uniform.query_latency_seconds().sum() / uniform.total_steps
        per_step_n2v = n2v.query_latency_seconds().sum() / n2v.total_steps
        assert per_step_n2v > per_step_uniform

    def test_zero_step_queries_have_near_zero_latency(self, labeled_graph):
        """Queries starting on sinks never enter the pipeline."""
        sinks = np.nonzero(labeled_graph.degrees == 0)[0]
        if sinks.size == 0:
            pytest.skip("fixture graph has no sinks")
        walkable = labeled_graph.nonzero_degree_vertices()[:4]
        starts = np.concatenate([sinks[:2], walkable])
        session = run_walks(labeled_graph, starts, 5, UniformWalk(), PWRSSampler(16, 3))
        latencies = FPGAPerfModel(LightRWConfig(), UniformWalk()).evaluate(
            session
        ).query_latency_seconds()
        assert (latencies[:2] == 0).all()
        assert (latencies[2:] > 0).all()
