"""Platform presets, the distributed model, and the alias CPU mode."""

from __future__ import annotations

import pytest

from repro.cpu.costmodel import CPUSpec, cpu_time_for_session
from repro.errors import ConfigError
from repro.fpga.distributed import DistributedLightRW, NetworkSpec
from repro.fpga.perfmodel import FPGAPerfModel
from repro.fpga.platforms import HBM_PSEUDO_CHANNEL, U280, u250_config, u280_hbm_config
from repro.walks.stepper import InverseTransformSampler, PWRSSampler, run_walks
from repro.walks.uniform import UniformWalk


@pytest.fixture
def session(labeled_graph):
    starts = labeled_graph.nonzero_degree_vertices()[:64]
    return run_walks(labeled_graph, starts, 10, UniformWalk(), PWRSSampler(16, 4))


class TestPlatforms:
    def test_u250_defaults(self):
        config = u250_config()
        assert config.n_instances == 4
        assert config.k == 16

    def test_u250_overrides(self):
        config = u250_config(k=8)
        assert config.k == 8

    def test_u280_channels(self):
        config = u280_hbm_config(32)
        assert config.n_instances == 32
        assert config.dram.bus_bytes == 32
        assert config.dram is HBM_PSEUDO_CHANNEL

    def test_hbm_aggregate_beats_ddr(self, labeled_graph, session):
        """32 pseudo-channels out-run 4 DDR channels on the same walks."""
        ddr = FPGAPerfModel(u250_config(), UniformWalk()).evaluate(session)
        hbm_session = run_walks(
            labeled_graph,
            labeled_graph.nonzero_degree_vertices()[:64],
            10,
            UniformWalk(),
            PWRSSampler(8, 4),
        )
        hbm = FPGAPerfModel(u280_hbm_config(32), UniformWalk()).evaluate(hbm_session)
        assert hbm.kernel_s < ddr.kernel_s

    def test_u280_device(self):
        assert U280.dsps == 9_024


class TestDistributed:
    def test_invalid_boards(self):
        with pytest.raises(ConfigError):
            DistributedLightRW(u250_config(), UniformWalk(), 0)

    def test_single_board_no_migration(self, session):
        model = DistributedLightRW(u250_config(), UniformWalk(), 1)
        outcome = model.evaluate(session)
        assert outcome.migrated_steps == 0
        assert outcome.network_s == 0.0
        assert outcome.total_steps == session.total_steps

    def test_migration_fraction_grows_with_boards(self, session):
        fractions = []
        for boards in (2, 4, 8):
            outcome = DistributedLightRW(u250_config(), UniformWalk(), boards).evaluate(
                session
            )
            fractions.append(outcome.migration_fraction)
        assert fractions == sorted(fractions)
        # Hash partitioning migrates ~ (B-1)/B of steps.
        assert fractions[0] == pytest.approx(0.5, abs=0.15)

    def test_kernel_shrinks_with_boards(self, session):
        one = DistributedLightRW(u250_config(), UniformWalk(), 1).evaluate(session)
        eight = DistributedLightRW(u250_config(), UniformWalk(), 8).evaluate(session)
        assert eight.kernel_s < one.kernel_s

    def test_slow_network_dominates(self, session):
        slow = NetworkSpec(bandwidth_bytes_per_s=1e6, per_message_cycles=1000)
        outcome = DistributedLightRW(
            u250_config(), UniformWalk(), 4, network=slow
        ).evaluate(session)
        assert outcome.network_s > outcome.kernel_s
        assert outcome.wall_s >= outcome.network_s

    def test_scaling_curve(self, session):
        sweep = DistributedLightRW(u250_config(), UniformWalk(), 1).scaling_curve(
            session, [1, 2, 4]
        )
        assert [o.n_boards for o in sweep] == [1, 2, 4]

    def test_requires_trace(self, labeled_graph):
        bare = run_walks(
            labeled_graph,
            labeled_graph.nonzero_degree_vertices()[:4],
            3,
            UniformWalk(),
            PWRSSampler(16, 0),
            record_trace=False,
        )
        with pytest.raises(ConfigError):
            DistributedLightRW(u250_config(), UniformWalk(), 2).evaluate(bare)


class TestAliasCPUMode:
    def test_alias_between_itx_and_pwrs_traffic(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:64]
        session = run_walks(
            labeled_graph, starts, 10, UniformWalk(), InverseTransformSampler(4)
        )
        spec = CPUSpec()
        itx = cpu_time_for_session(session, UniformWalk(), spec, "inverse-transform")
        alias = cpu_time_for_session(session, UniformWalk(), spec, "alias")
        pwrs = cpu_time_for_session(session, UniformWalk(), spec, "pwrs")
        # Alias builds a bigger table (more traffic + instructions than ITX).
        assert alias.seq_time_s > itx.seq_time_s
        assert alias.instr_time_s > itx.instr_time_s
        # PWRS has no intermediate traffic at all.
        assert pwrs.seq_time_s < itx.seq_time_s

    def test_engine_accepts_alias(self, labeled_graph):
        from repro.cpu.engine import ThunderRWEngine

        engine = ThunderRWEngine(labeled_graph, sampler="alias")
        starts = labeled_graph.nonzero_degree_vertices()[:8]
        outcome = engine.run(starts, 3, UniformWalk())
        assert outcome.timing.sampler == "alias"
