"""Host-side models: PCIe transfer, power efficiency, FPGA resources."""

from __future__ import annotations

import pytest

from repro.fpga.config import LightRWConfig
from repro.fpga.pcie import PCIeModel, QUERY_BYTES
from repro.fpga.power import PowerModel
from repro.fpga.resources import ResourceModel, U250


class TestPCIe:
    def test_transfer_time_linear_plus_setup(self):
        model = PCIeModel()
        t1 = model.transfer_s(12e9)  # one second of payload
        assert t1 == pytest.approx(1.0 + model.setup_latency_s)
        assert model.transfer_s(0) == 0.0

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            PCIeModel().transfer_s(-1)

    def test_graph_replicated_per_instance(self, tiny_graph):
        one = PCIeModel(graph_copies=1).host_to_board_s(tiny_graph, 0)
        four = PCIeModel(graph_copies=4).host_to_board_s(tiny_graph, 0)
        setup = PCIeModel().setup_latency_s
        assert (four - setup) == pytest.approx(4 * (one - setup))

    def test_queries_add_bytes(self, tiny_graph):
        model = PCIeModel()
        base = model.host_to_board_s(tiny_graph, 0)
        with_queries = model.host_to_board_s(tiny_graph, 1000)
        expected = 1000 * QUERY_BYTES / model.bandwidth_bytes_per_s
        assert with_queries - base == pytest.approx(expected)

    def test_overhead_fraction(self, tiny_graph):
        model = PCIeModel()
        fraction = model.overhead_fraction(tiny_graph, 100, 1000, kernel_s=1.0)
        assert 0 < fraction < 0.01  # tiny transfer vs 1 s kernel
        dominated = model.overhead_fraction(tiny_graph, 100, 1000, kernel_s=1e-9)
        assert dominated > 0.99


class TestPower:
    def test_ranges_match_paper_envelopes(self):
        metapath = PowerModel("metapath")
        assert 41 <= metapath.fpga_watts(0.0) <= metapath.fpga_watts(1.0) <= 45
        assert 103 <= metapath.cpu_watts(0.0) <= metapath.cpu_watts(1.0) <= 124

    def test_unknown_application(self):
        with pytest.raises(ValueError):
            PowerModel("pagerank")

    def test_efficiency_formula(self):
        model = PowerModel("node2vec")
        # 8x faster at ~1/3 the power -> ~24x efficiency.
        improvement = model.efficiency_improvement(1.0, 8.0)
        expected = 8.0 * model.cpu_watts(0.8) / model.fpga_watts(0.8)
        assert improvement == pytest.approx(expected)

    def test_invalid_times(self):
        with pytest.raises(ValueError):
            PowerModel("metapath").efficiency_improvement(0.0, 1.0)


class TestResources:
    def test_default_builds_match_table5(self):
        model = ResourceModel()
        config = LightRWConfig()
        paper = {
            "metapath": {"LUTs": 0.3352, "REGs": 0.2976, "BRAMs": 0.1724, "DSPs": 0.0516},
            "node2vec": {"LUTs": 0.2084, "REGs": 0.1820, "BRAMs": 0.3612, "DSPs": 0.0262},
        }
        for app, expected in paper.items():
            utilization = model.estimate(config, app).utilization()
            for resource, value in expected.items():
                assert utilization[resource] == pytest.approx(value, abs=0.01), (
                    app, resource
                )

    def test_everything_fits_the_device(self):
        model = ResourceModel()
        for app in ("metapath", "node2vec", "uniform", "static"):
            utilization = model.estimate(LightRWConfig(), app).utilization()
            assert all(v < 0.8 for v in utilization.values())

    def test_scales_with_k(self):
        model = ResourceModel()
        small = model.estimate(LightRWConfig(k=4), "metapath")
        large = model.estimate(LightRWConfig(k=64), "metapath")
        assert large.luts > small.luts
        assert large.dsps > small.dsps

    def test_scales_with_cache(self):
        model = ResourceModel()
        small = model.estimate(LightRWConfig(cache_entries=1 << 10), "metapath")
        large = model.estimate(LightRWConfig(cache_entries=1 << 14), "metapath")
        assert large.brams > small.brams

    def test_scales_with_instances(self):
        model = ResourceModel()
        one = model.estimate(LightRWConfig(n_instances=1), "metapath")
        four = model.estimate(LightRWConfig(n_instances=4), "metapath")
        assert four.luts > 2 * one.luts

    def test_unknown_app_uses_generic_costs(self):
        estimate = ResourceModel().estimate(LightRWConfig(), "pagerank")
        assert estimate.luts > 0

    def test_device_constants(self):
        assert U250.luts == 1_341_000
        assert U250.brams == 2_000
        assert U250.dsps == 11_508
