"""Process execution mode: worker pools, observer merge-back, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LightRW, Observer
from repro.core.queries import make_queries
from repro.errors import ConfigError
from repro.runtime import (
    EXECUTION_MODES,
    BatchScheduler,
    InjectedFault,
    RetryPolicy,
)
from repro.walks.node2vec import Node2VecWalk
from repro.walks.uniform import UniformWalk


def _snapshot(observer):
    """Metric snapshot minus the one series that names the mode itself."""
    return {
        key: value
        for key, value in observer.metrics.snapshot().items()
        if "run.process_workers" not in key
    }


@pytest.fixture
def starts(labeled_graph):
    return make_queries(labeled_graph, n_queries=24, seed=6)


class TestModeSelection:
    def test_modes_exported(self):
        assert EXECUTION_MODES == ("sequential", "thread", "process")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            BatchScheduler(mode="fibers")

    def test_resolved_mode_defaults(self):
        assert BatchScheduler().resolved_mode == "sequential"
        assert BatchScheduler(parallel=True).resolved_mode == "thread"
        assert BatchScheduler(mode="process").resolved_mode == "process"
        # An explicit mode wins over the legacy parallel flag.
        assert BatchScheduler(parallel=True, mode="sequential").resolved_mode == (
            "sequential"
        )

    def test_process_requires_capability(self, labeled_graph, starts):
        """fpga-cycle does not declare process_safe: fail fast, not midway."""
        engine = LightRW(
            labeled_graph, backend="fpga-cycle", hardware_scale=64, seed=6
        )
        with pytest.raises(ConfigError, match="process_safe"):
            engine.run(UniformWalk(), 3, starts=starts, shards=2, mode="process")


class TestProcessParity:
    """Same seed => byte-identical walks and equivalent merged metrics."""

    @pytest.mark.parametrize("backend", ["fpga-model", "cpu-baseline"])
    def test_matches_sequential(self, labeled_graph, starts, backend):
        engine = LightRW(labeled_graph, backend=backend, hardware_scale=64, seed=6)
        seq_obs = Observer()
        seq = engine.run(
            Node2VecWalk(), 5, starts=starts, shards=4, observer=seq_obs
        )
        proc_obs = Observer()
        proc = engine.run(
            Node2VecWalk(), 5, starts=starts, shards=4,
            mode="process", workers=2, observer=proc_obs,
        )
        np.testing.assert_array_equal(seq.paths, proc.paths)
        np.testing.assert_array_equal(seq.lengths, proc.lengths)
        assert seq.total_steps == proc.total_steps
        # Worker registries merged back: the same series, the same values.
        assert _snapshot(seq_obs) == _snapshot(proc_obs)
        assert len(_snapshot(seq_obs)) > 0
        workers = proc_obs.metrics.get("run.process_workers", backend=backend)
        assert workers is not None and workers >= 1

    def test_shard_spans_adopt_worker_children(self, labeled_graph, starts):
        engine = LightRW(labeled_graph, hardware_scale=64, seed=6)
        obs = Observer()
        engine.run(
            UniformWalk(), 4, starts=starts, shards=4, mode="process", observer=obs
        )
        spans = obs.spans.finished()
        shard_spans = [
            s for s in spans
            if s.name == "shard" and s.attrs.get("mode") == "process"
        ]
        assert len(shard_spans) == 4
        span_ids = [s.span_id for s in spans]
        assert len(span_ids) == len(set(span_ids))  # adoption re-ids cleanly
        for shard_span in shard_spans:
            children = [s for s in spans if s.parent_id == shard_span.span_id]
            assert children, f"shard {shard_span.attrs['shard']} adopted no spans"
            for child in children:
                assert child.start_s >= shard_span.start_s

    def test_single_shard_falls_back_to_sequential(self, labeled_graph, starts):
        """One pending shard never pays for a worker pool."""
        engine = LightRW(labeled_graph, hardware_scale=64, seed=6)
        obs = Observer()
        result = engine.run(
            UniformWalk(), 4, starts=starts, shards=1, mode="process", observer=obs
        )
        assert result.total_steps > 0
        assert obs.metrics.get("run.process_workers", backend="fpga-model") is None


class TestProcessFaults:
    def test_transient_fault_retried_to_identical_walks(
        self, labeled_graph, starts
    ):
        engine = LightRW(labeled_graph, hardware_scale=64, seed=6)
        baseline = engine.run(UniformWalk(), 4, starts=starts, shards=4)
        obs = Observer()
        result = engine.run(
            UniformWalk(), 4, starts=starts, shards=4, mode="process",
            faults=[InjectedFault(shard=1, fail_attempts=1)],
            retry=RetryPolicy(max_attempts=3),
            observer=obs,
        )
        np.testing.assert_array_equal(result.paths, baseline.paths)
        np.testing.assert_array_equal(result.lengths, baseline.lengths)
        assert obs.metrics.total("run.retries") == 1

    def test_timeout_fails_shard(self, labeled_graph, starts):
        engine = LightRW(labeled_graph, hardware_scale=64, seed=6)
        outcome = engine.run(
            UniformWalk(), 4, starts=starts, shards=4, mode="process",
            faults=[InjectedFault(shard=3, fail_attempts=0, delay_s=5.0)],
            retry=RetryPolicy(max_attempts=1, shard_timeout_s=0.25),
            strict=False,
        )
        assert [f.shard for f in outcome.failures] == [3]
        assert outcome.total_steps > 0  # survivors still merged
