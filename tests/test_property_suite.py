"""Cross-module property tests (hypothesis).

Heavier invariants that tie subsystems together, run over randomized
inputs: probability conservation, accounting conservation, monotonicity of
the hardware cost models, and walk-path legality on arbitrary graphs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.burst import BurstStrategy, plan_bursts
from repro.fpga.cache import simulate_degree_aware
from repro.fpga.wrs_sampler import WRSSamplerModel
from repro.graph.builders import from_edge_list
from repro.graph.labels import assign_random_weights
from repro.walks.base import quantize_weights
from repro.walks.node2vec import Node2VecWalk
from repro.walks.static import StaticWalk
from repro.walks.stepper import PWRSSampler, run_walks
from repro.walks.uniform import UniformWalk
from repro.walks.validation import exact_step_distribution


def _random_graph(draw_edges: list[tuple[int, int]], n: int):
    array = (
        np.asarray(draw_edges, dtype=np.int64)
        if draw_edges
        else np.zeros((0, 2), dtype=np.int64)
    )
    return from_edge_list(array, num_vertices=n, deduplicate=True)


edges_strategy = st.lists(
    st.tuples(st.integers(0, 19), st.integers(0, 19)), min_size=1, max_size=80
)


class TestProbabilityConservation:
    @given(edges=edges_strategy, vertex=st.integers(0, 19))
    @settings(max_examples=80, deadline=None)
    def test_exact_distribution_sums_to_one_or_zero(self, edges, vertex):
        graph = _random_graph(edges, 20)
        for algorithm in (UniformWalk(), Node2VecWalk(2.0, 0.5)):
            dist = exact_step_distribution(graph, algorithm, vertex)
            total = dist.sum()
            assert total == pytest.approx(1.0, abs=1e-9) or total == 0.0
            assert (dist >= 0).all()

    @given(edges=edges_strategy, vertex=st.integers(0, 19), seed=st.integers(0, 999))
    @settings(max_examples=50, deadline=None)
    def test_weighted_distribution_proportional(self, edges, vertex, seed):
        graph = assign_random_weights(_random_graph(edges, 20), seed=seed)
        dist = exact_step_distribution(graph, StaticWalk(), vertex)
        if dist.sum() == 0:
            return
        weights = graph.neighbor_weights(vertex).astype(np.float64)
        neighbors = graph.neighbors(vertex)
        for idx, v in enumerate(neighbors.tolist()):
            # Multi-edges were deduplicated, so each neighbor appears once.
            assert dist[v] == pytest.approx(weights[idx] / weights.sum())


class TestQuantization:
    @given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_order_preserved_up_to_half_ulp(self, values):
        weights = np.asarray(values)
        quantized = quantize_weights(weights)
        # Strictly larger weights never quantize strictly smaller by more
        # than the clamping of tiny positives to one.
        order = np.argsort(weights)
        sorted_quantized = quantized[order].astype(np.int64)
        assert (np.diff(sorted_quantized) >= -1).all()

    @given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_zero_iff_zero(self, values):
        weights = np.asarray(values)
        quantized = quantize_weights(weights)
        np.testing.assert_array_equal(quantized == 0, weights == 0.0)


class TestBurstInvariants:
    """Interface cycles are *not* monotone in request size (a request just
    below a long-burst boundary can cost more than one just above it —
    the same effect that makes b1+b2 lose to short-only), so the testable
    invariants are the bounds, not monotonicity."""

    @given(
        sizes=st.lists(st.integers(0, 50_000), min_size=1, max_size=40),
        long_beats=st.sampled_from([4, 8, 16, 32]),
    )
    @settings(max_examples=80, deadline=None)
    def test_dynamic_never_worse_than_short_only(self, sizes, long_beats):
        """With long bursts of >= 4 beats, the dynamic plan's cycles are
        bounded by the short-only plan's (the engine's raison d'etre)."""
        from repro.fpga.burst import SHORT_ONLY

        requests = np.asarray(sizes)
        dynamic = plan_bursts(requests, BurstStrategy(1, long_beats))
        short_only = plan_bursts(requests, SHORT_ONLY)
        assert (
            dynamic.interface_cycles <= short_only.interface_cycles + 1e-9
        ).all()

    @given(
        sizes=st.lists(st.integers(0, 50_000), min_size=2, max_size=40),
        long_beats=st.sampled_from([4, 8, 16, 32]),
    )
    @settings(max_examples=80, deadline=None)
    def test_loaded_bytes_monotone(self, sizes, long_beats):
        ordered = np.sort(np.asarray(sizes))
        plan = plan_bursts(ordered, BurstStrategy(1, long_beats))
        assert (np.diff(plan.loaded_bytes) >= 0).all()


class TestSamplerModel:
    @given(n=st.integers(0, 10_000), k=st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=100, deadline=None)
    def test_cycles_formula(self, n, k):
        model = WRSSamplerModel(k=k)
        stream = int(model.stream_cycles(n))
        occupancy = int(model.occupancy_cycles(n))
        if n == 0:
            assert stream == occupancy == 0
        else:
            assert stream == -(-n // k) + model.fill_cycles
            assert occupancy == -(-n // k) + model.STREAM_BUBBLE_CYCLES


class TestWalkLegality:
    @given(
        edges=edges_strategy,
        seed=st.integers(0, 10_000),
        k=st.sampled_from([1, 4, 16]),
        steps=st.integers(0, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_walks_traverse_only_edges(self, edges, seed, k, steps):
        graph = _random_graph(edges, 20)
        starts = graph.nonzero_degree_vertices()
        if starts.size == 0:
            return
        session = run_walks(
            graph, starts[:8], steps, UniformWalk(), PWRSSampler(k, seed)
        )
        assert session.total_steps <= steps * min(8, starts.size)
        for q in range(min(8, starts.size)):
            path = session.path(q)
            for u, v in zip(path[:-1], path[1:]):
                assert graph.has_edge(int(u), int(v))

    @given(edges=edges_strategy, seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_trace_accounting_conserved(self, edges, seed):
        """Candidate edges in the trace equal the degrees of visited
        vertices — the quantity every cost model charges."""
        graph = _random_graph(edges, 20)
        starts = graph.nonzero_degree_vertices()
        if starts.size == 0:
            return
        session = run_walks(
            graph, starts[:6], 5, UniformWalk(), PWRSSampler(8, seed)
        )
        for record in session.records:
            np.testing.assert_array_equal(
                record.degrees, graph.degrees[record.curr]
            )


class TestCacheInvariants:
    @given(
        seed=st.integers(0, 10_000),
        capacity_log=st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_second_visit_of_max_degree_vertex_hits(self, seed, capacity_log):
        """The highest-degree vertex of a set, once seen, never misses."""
        rng = np.random.default_rng(seed)
        capacity = 1 << capacity_log
        n = 4 * capacity
        degrees = rng.integers(1, 100, size=n)
        trace = rng.integers(0, n, size=300)
        hits = simulate_degree_aware(trace, degrees, capacity)
        # Identify, per set, the first-seen max-degree vertex; all its
        # subsequent accesses must hit.
        best: dict[int, int] = {}
        for position, vertex in enumerate(trace.tolist()):
            set_index = vertex & (capacity - 1)
            incumbent = best.get(set_index)
            if incumbent is None or degrees[vertex] > degrees[incumbent]:
                best[set_index] = vertex
            elif vertex == incumbent:
                assert hits[position], (position, vertex)
